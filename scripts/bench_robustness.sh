#!/usr/bin/env bash
# Runs the robustness suite and copies its machine-readable result
# (BENCH_robustness.json: pathology-bearing test patients swept over the
# dose x slice-thickness x FOV scenario grid, FP32 vs INT8 manual/random
# calibration vs the mixed W4/W8 plan) to the repo root.
#
#   scripts/bench_robustness.sh [fast|reduced|paper]   (default: fast)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-fast}"
export SENECA_ARTIFACTS="${SENECA_ARTIFACTS:-target/seneca-artifacts}"

cargo run --release -q -p seneca-bench --bin reproduce -- robustness --scale "$scale"

src="$SENECA_ARTIFACTS/experiments/BENCH_robustness.json"
[ -f "$src" ] || { echo "expected $src after the robustness experiment" >&2; exit 1; }
cp "$src" BENCH_robustness.json
echo "BENCH_robustness.json updated (scale: $scale)"
