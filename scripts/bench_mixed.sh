#!/usr/bin/env bash
# Runs the mixed-precision bitwidth study and copies its machine-readable
# result (BENCH_mixed.json: per-layer W4 sensitivity sweep plus the greedy
# DPU-cost-aware W4/W8 plan search on the 1M and 16M models) to the repo
# root.
#
#   scripts/bench_mixed.sh [fast|reduced|paper]   (default: fast)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-fast}"
export SENECA_ARTIFACTS="${SENECA_ARTIFACTS:-target/seneca-artifacts}"

cargo run --release -q -p seneca-bench --bin reproduce -- mixed --scale "$scale"

src="$SENECA_ARTIFACTS/experiments/BENCH_mixed.json"
[ -f "$src" ] || { echo "expected $src after the mixed experiment" >&2; exit 1; }
cp "$src" BENCH_mixed.json
echo "BENCH_mixed.json updated (scale: $scale)"
