#!/usr/bin/env bash
# Runs the serving saturation experiment and copies its machine-readable
# result (BENCH_serve.json: per-backend saturation FPS plus p50/p95/p99,
# served FPS and shed/rejected counts per offered-load x batch-window cell)
# to the repo root.
#
#   scripts/bench_serve.sh [fast|reduced|paper]   (default: fast)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-fast}"
export SENECA_ARTIFACTS="${SENECA_ARTIFACTS:-target/seneca-artifacts}"

cargo run --release -q -p seneca-bench --bin reproduce -- serve --scale "$scale"

src="$SENECA_ARTIFACTS/experiments/BENCH_serve.json"
[ -f "$src" ] || { echo "expected $src after the serve experiment" >&2; exit 1; }
cp "$src" BENCH_serve.json
echo "BENCH_serve.json updated (scale: $scale)"
