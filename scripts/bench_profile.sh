#!/usr/bin/env bash
# Runs the measured cross-stack profile experiment and copies its
# machine-readable result (BENCH_profile.json: per-op/per-stage trace
# tables for all four backends on the 1M and 16M models, plus the
# measured-vs-modeled INT8 share comparison and a traced serving burst)
# to the repo root.
#
#   scripts/bench_profile.sh [fast|reduced|paper]   (default: fast)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-fast}"
export SENECA_ARTIFACTS="${SENECA_ARTIFACTS:-target/seneca-artifacts}"

cargo run --release -q -p seneca-bench --features trace-gemm --bin reproduce -- profile --scale "$scale"

src="$SENECA_ARTIFACTS/experiments/BENCH_profile.json"
[ -f "$src" ] || { echo "expected $src after the profile experiment" >&2; exit 1; }
cp "$src" BENCH_profile.json
echo "BENCH_profile.json updated (scale: $scale)"
