#!/usr/bin/env bash
# Runs the measured cross-stack profile experiment and copies its
# machine-readable result (BENCH_profile.json: per-op/per-stage trace
# tables for all four backends on the 1M and 16M models, plus the
# measured-vs-modeled INT8 share comparison and a traced serving burst)
# to the repo root.
#
#   scripts/bench_profile.sh [fast|reduced|paper]   (default: fast)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-fast}"
export SENECA_ARTIFACTS="${SENECA_ARTIFACTS:-target/seneca-artifacts}"

cargo run --release -q -p seneca-bench --features trace-gemm --bin reproduce -- profile --scale "$scale"

src="$SENECA_ARTIFACTS/experiments/BENCH_profile.json"
[ -f "$src" ] || { echo "expected $src after the profile experiment" >&2; exit 1; }
cp "$src" BENCH_profile.json
echo "BENCH_profile.json updated (scale: $scale)"

# Conv-level before/after: when a BENCH_profile_before.json snapshot exists
# (captured on the materialized-im2col route), print the paper-geometry
# per-frame deltas so a kernel change's end-to-end effect is visible in CI
# logs, not just raw-GEMM throughput.
if [ -f BENCH_profile_before.json ] && command -v jq >/dev/null; then
  echo "paper-geometry ms/frame, before (materialized) -> after (implicit):"
  jq -r --slurpfile before BENCH_profile_before.json '
    .paper_geometry[] as $a
    | ($before[0].paper_geometry[] | select(.model == $a.model)) as $b
    | "  \($a.model): \($b.wall_ns_per_frame / 1e6 | floor)ms -> " +
      "\($a.wall_ns_per_frame / 1e6 | floor)ms " +
      "(\(100 * (1 - $a.wall_ns_per_frame / $b.wall_ns_per_frame) * 10 | floor / 10)% faster)"
  ' BENCH_profile.json
fi
