#!/usr/bin/env bash
# The repo's CI gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo test -q =="
# The whole suite is expected green — including the eval-driver oracle test
# that the pre-PR-5 seed shipped broken. No known-failure carve-outs.
cargo test -q

echo "== serve smoke (seneca-serve demo) =="
cargo run --release -q -p seneca-serve --example serve_demo -- smoke

echo "== ir smoke (pass pipeline clean; peak arena < total activations; implicit-GEMM peak < materialized route) =="
cargo run --release -q -p seneca-bench --example ir_stats

echo "== kernel smoke (packed GEMM beats reference; igemm bit-exact; implicit conv bit-exact and not slower than materialized) =="
cargo run --release -q -p seneca-bench --example kernel_stats -- smoke

echo "== fleet smoke (2x batch overload: fleet up, interactive p99 in SLO, no cross-tenant misses) =="
cargo run --release -q -p seneca-bench --bin reproduce -- fleet --scale fast

echo "== trace smoke (profile: op spans fit the wall; 16M pack share drops) =="
cargo run --release -q -p seneca-bench --features trace-gemm --bin reproduce -- profile --scale fast

echo "== mixed smoke (16M W4/W8 plan cuts cycles and weight bytes above the agreement floor) =="
cargo run --release -q -p seneca-bench --bin reproduce -- mixed --scale fast

echo "== robustness smoke (lesion + scenario grid runs clean; small organs degrade most under INT8; calibration leveling recovers part) =="
cargo run --release -q -p seneca-bench --bin reproduce -- robustness --scale fast

echo "CI OK"
