#!/usr/bin/env bash
# Inlines the latest reproduce-run markdown into EXPERIMENTS.md between the
# RESULTS_BEGIN/RESULTS_END markers.
set -euo pipefail
cd "$(dirname "$0")/.."
ART="${SENECA_ARTIFACTS:-target/seneca-artifacts}/experiments"
[ -d "$ART" ] || { echo "no experiments at $ART — run the reproduce harness first" >&2; exit 1; }

tmp=$(mktemp)
{
  sed -n '1,/<!-- RESULTS_BEGIN -->/p' EXPERIMENTS.md
  echo
  for f in "$ART"/table1-*.md "$ART"/table2-*.md "$ART"/table3-*.md \
           "$ART"/table4-*.md "$ART"/table5-*.md "$ART"/fig3-*.md \
           "$ART"/fig4-*.md "$ART"/fig5-*.md "$ART"/fig6-*.md \
           "$ART"/ablation-*.md "$ART"/boundary-*.md "$ART"/serve-*.md; do
    [ -f "$f" ] && { cat "$f"; echo; }
  done
  sed -n '/<!-- RESULTS_END -->/,$p' EXPERIMENTS.md
} > "$tmp"
mv "$tmp" EXPERIMENTS.md
echo "EXPERIMENTS.md updated from $ART"
