#!/usr/bin/env bash
# Final verification pass: full test suite + benches, recorded to the repo
# root (test_output.txt / bench_output.txt). Pass --quick to shorten the
# criterion measurement phase.
set -uo pipefail
cd "$(dirname "$0")/.."

QUICK="${1:-}"
echo "== cargo test --workspace --release =="
cargo test --workspace --release 2>&1 | tee test_output.txt
status=${PIPESTATUS[0]}

echo "== cargo bench --workspace =="
if [ "$QUICK" = "--quick" ]; then
  cargo bench --workspace -- --quick 2>&1 | tee bench_output.txt
else
  cargo bench --workspace 2>&1 | tee bench_output.txt
fi
bstatus=${PIPESTATUS[0]}

echo "tests exit: $status, bench exit: $bstatus"
exit $((status + bstatus))
