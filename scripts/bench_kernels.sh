#!/usr/bin/env bash
# Regenerates BENCH_kernels.json at the repo root: packed GEMM engine vs the
# pre-PR kernels on the highest-MAC conv GEMM shape of each Table II model.
#
# Two passes:
#   1. The pre-PR baseline kernels are benchmarked from a build with
#      RUSTFLAGS="" — overriding .cargo/config.toml — because the pre-PR
#      tree had no config.toml and so was built for the default x86-64
#      target. A separate target dir keeps the two builds' caches apart.
#   2. The packed engine is benchmarked under the repo's own flags
#      (target-cpu=native), the two are merged, the >= 2x acceptance bar is
#      asserted, and BENCH_kernels.json is written.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=target/prepr-baseline/kernel_baseline.txt
mkdir -p "$(dirname "$BASELINE")"

echo "== pass 1: pre-PR kernels, pre-PR build flags (RUSTFLAGS=\"\") =="
RUSTFLAGS="" cargo run --release -q -p seneca-bench --example kernel_stats \
  --target-dir target/prepr-baseline -- baseline "$BASELINE"

echo "== pass 2: packed engine, repo flags; merge + BENCH_kernels.json =="
cargo run --release -q -p seneca-bench --example kernel_stats -- full "$BASELINE"

echo "bench_kernels OK"
