#!/usr/bin/env bash
# Runs the fleet saturation experiment and copies its machine-readable
# result (BENCH_fleet.json: per-tenant served/shed/downgraded counts and
# latency percentiles per batch-overload level, plus the Dice-floor routing
# audit) to the repo root. The run itself asserts the isolation gate: at 2x
# batch overload the fleet stays up, interactive p99 stays under the SLO,
# and no tenant is routed below its Dice floor.
#
#   scripts/bench_fleet.sh [fast|reduced|paper]   (default: fast)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-fast}"
export SENECA_ARTIFACTS="${SENECA_ARTIFACTS:-target/seneca-artifacts}"

cargo run --release -q -p seneca-bench --bin reproduce -- fleet --scale "$scale"

src="$SENECA_ARTIFACTS/experiments/BENCH_fleet.json"
[ -f "$src" ] || { echo "expected $src after the fleet experiment" >&2; exit 1; }
cp "$src" BENCH_fleet.json
echo "BENCH_fleet.json updated (scale: $scale)"
