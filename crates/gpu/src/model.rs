//! Analytic GPU timing and power model.

use seneca_nn::graph::{Graph, Op};
use seneca_tensor::Shape4;
use serde::{Deserialize, Serialize};

/// GPU device parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuModel {
    /// Device name.
    pub name: String,
    /// Peak FP32 throughput (TFLOPS).
    pub peak_tflops: f64,
    /// Memory bandwidth (GB/s).
    pub mem_gbps: f64,
    /// Per-kernel launch + framework overhead (ns). Batch-1 inference from a
    /// Python framework pays this on every layer.
    pub launch_overhead_ns: f64,
    /// Channel width at which the SMs reach full occupancy. Below this, the
    /// effective throughput degrades linearly — small CNN layers cannot fill
    /// 30 SMs with batch-1 work.
    pub occupancy_channels: f64,
    /// Board power under inference load (W) — laptops run TDP-bound.
    pub load_power_w: f64,
    /// Idle power (W).
    pub idle_power_w: f64,
}

impl GpuModel {
    /// The paper's baseline device.
    pub fn rtx2060_mobile() -> Self {
        Self {
            name: "NVIDIA GeForce RTX 2060 Mobile".into(),
            peak_tflops: 2.6,
            mem_gbps: 264.0,
            launch_overhead_ns: 75_000.0,
            occupancy_channels: 128.0,
            load_power_w: 78.0,
            idle_power_w: 9.0,
        }
    }

    /// Occupancy factor of a conv with the given channel widths.
    pub fn occupancy(&self, c_in: usize, c_out: usize) -> f64 {
        let width = (c_in.min(c_out)).max(1) as f64;
        (width / self.occupancy_channels).min(1.0)
    }

    /// Time of one layer (ns): compute at occupancy-derated FLOPS vs memory
    /// streaming, plus the launch overhead.
    pub fn layer_time_ns(&self, flops: f64, bytes: f64, c_in: usize, c_out: usize) -> f64 {
        let eff_flops = self.peak_tflops * 1e12 * self.occupancy(c_in, c_out);
        let compute_ns = flops / eff_flops * 1e9;
        let mem_ns = bytes / self.mem_gbps; // bytes / (GB/s) = ns
        compute_ns.max(mem_ns) + self.launch_overhead_ns
    }

    /// Frame latency (ns) of an FP32 graph at the given input geometry.
    /// Dropout/softmax/BN run as (cheap) kernels too — TensorFlow executes
    /// them unfused in the baseline — so they pay launch overhead.
    pub fn frame_time_ns(&self, graph: &Graph, input: Shape4) -> f64 {
        let shapes = graph.shapes(input);
        let mut total = 0.0;
        for (i, node) in graph.nodes.iter().enumerate() {
            match &node.op {
                Op::Input => {}
                Op::Conv { w, .. } => {
                    let out = shapes[i];
                    let flops = 2.0 * out.hw() as f64 * w.shape().len() as f64;
                    let bytes =
                        4.0 * (shapes[node.inputs[0]].len() + out.len() + w.shape().len()) as f64;
                    total += self.layer_time_ns(flops, bytes, w.shape().c, w.shape().n);
                }
                Op::TConv { w, .. } => {
                    let inp = shapes[node.inputs[0]];
                    let flops = 2.0 * inp.hw() as f64 * w.shape().len() as f64;
                    let bytes = 4.0 * (inp.len() + shapes[i].len() + w.shape().len()) as f64;
                    total += self.layer_time_ns(flops, bytes, w.shape().n, w.shape().c);
                }
                Op::BatchNorm { .. } | Op::Relu | Op::MaxPool2x2 | Op::Softmax => {
                    // Memory-bound elementwise kernel.
                    let bytes = 4.0 * 2.0 * shapes[i].len() as f64;
                    total += (bytes / self.mem_gbps) + self.launch_overhead_ns;
                }
                Op::Concat => {
                    let bytes = 4.0 * 2.0 * shapes[i].len() as f64;
                    total += (bytes / self.mem_gbps) + self.launch_overhead_ns;
                }
                Op::Dropout { .. } => {
                    // Identity at inference: TF prunes it from the session.
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seneca_nn::unet::{ModelSize, UNet};

    fn graph(size: ModelSize, seed: u64) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Graph::from_unet(&UNet::from_size(size, &mut rng), size.label())
    }

    #[test]
    fn occupancy_saturates() {
        let g = GpuModel::rtx2060_mobile();
        assert!(g.occupancy(8, 16) < 0.15);
        assert_eq!(g.occupancy(128, 256), 1.0);
        assert!(g.occupancy(1, 6) > 0.0);
    }

    #[test]
    fn small_model_is_launch_and_occupancy_bound() {
        let g = GpuModel::rtx2060_mobile();
        let m1 = graph(ModelSize::M1, 1);
        let input = Shape4::new(1, 1, 256, 256);
        let t = g.frame_time_ns(&m1, input);
        // Pure peak-FLOPS time would be far smaller than the modelled time.
        let macs: u64 = m1.macs(input).iter().sum();
        let ideal_ns = 2.0 * macs as f64 / (g.peak_tflops * 1e12) * 1e9;
        assert!(t > 3.0 * ideal_ns, "occupancy model lost: {t} vs ideal {ideal_ns}");
    }

    #[test]
    fn table4_gpu_ordering_2m_beats_1m() {
        // The paper's GPU column: 2M (77.45 FPS) > 1M (72.20) > 4M (65.90)
        // > 8M (52.22) > 16M (37.23).
        let g = GpuModel::rtx2060_mobile();
        let input = Shape4::new(1, 1, 256, 256);
        let t: Vec<f64> =
            ModelSize::ALL.iter().map(|&s| g.frame_time_ns(&graph(s, 2), input)).collect();
        assert!(t[1] < t[0], "2M must be faster than 1M on GPU: {t:?}");
        assert!(t[0] < t[2], "1M must be faster than 4M: {t:?}");
        assert!(t[2] < t[3], "4M must be faster than 8M: {t:?}");
        assert!(t[3] < t[4], "8M must be faster than 16M: {t:?}");
    }

    #[test]
    fn load_power_is_tdp_bound() {
        let g = GpuModel::rtx2060_mobile();
        assert!((g.load_power_w - 78.0).abs() < 1.0);
    }
}
