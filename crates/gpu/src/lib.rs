//! # seneca-gpu
//!
//! The FP32 baseline of the paper: the five U-Nets running on an NVIDIA
//! GeForce RTX 2060 Mobile. Functional execution reuses the FP32 graph
//! executor from `seneca-nn`; [`model`] adds an analytic timing/energy model
//! of the GPU (SM-occupancy-limited effective FLOPS, per-kernel launch
//! overhead, TDP-bound power ≈ 78 W) and [`runner`] wraps it into the same
//! throughput-report interface as the DPU runtime.
//!
//! The model captures the two GPU behaviours visible in Table IV:
//! small-channel convolutions under-occupy the SMs (so layer time scales
//! with channel *width*, making the f=6 "2M" net slightly faster than the
//! f=8 "1M" net despite more layers), and power is TDP-bound and nearly
//! model-independent (77–78 W).

pub mod model;
pub mod runner;

pub use model::GpuModel;
pub use runner::GpuRunner;
