//! GPU baseline runner: FP32 functional execution plus modelled throughput.

use crate::model::GpuModel;
use rand::{Rng, SeedableRng};
use seneca_backend::{Backend, Prediction, ThroughputReport};
use seneca_ir::{lower, LowerOptions, Lowered};
use seneca_nn::graph::Graph;
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;

/// The GPU runner: owns the FP32 graph and the device model.
#[derive(Clone)]
pub struct GpuRunner {
    /// FP32 inference graph (BN and softmax still explicit, like TF).
    pub graph: Graph,
    /// Device model.
    pub device: GpuModel,
    /// Input geometry.
    pub input_shape: Shape4,
    /// IR lowering of `graph` at `input_shape` (packed weight panels +
    /// liveness plan) for the functional batch path.
    lowered: Arc<Lowered>,
}

impl GpuRunner {
    /// Creates a runner.
    pub fn new(graph: Graph, device: GpuModel, input_shape: Shape4) -> Self {
        let lowered = Arc::new(lower(graph.to_ir(), input_shape, &LowerOptions::reference()));
        Self { graph, device, input_shape, lowered }
    }

    /// One throughput run: modelled frame latency with seeded measurement
    /// jitter (thermals, clocks), matching the paper's σ ≈ 0.5%.
    pub fn run_throughput(&self, n_frames: usize, seed: u64) -> ThroughputReport {
        let base_ns = self.device.frame_time_ns(&self.graph, self.input_shape);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut total_ns = 0.0;
        for _ in 0..n_frames {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            total_ns += base_ns * (1.0 + 0.006 * g).max(0.5);
        }
        let fps = n_frames as f64 / (total_ns * 1e-9);
        // TDP-bound power with a whiff of measurement noise.
        let u: f64 = rng.gen_range(-1.0..1.0);
        let watt = self.device.load_power_w + 0.5 * u;
        let plan = self.lowered.plan();
        ThroughputReport {
            fps,
            watt,
            frames: n_frames,
            // One synchronous host stream; TDP-bound => the device is modelled
            // as fully busy while a frame is resident.
            threads: 1,
            busy_cores: 1.0,
            util: 1.0,
            makespan_s: total_ns * 1e-9,
            peak_arena_bytes: plan.peak_arena_bytes(4),
            total_activation_bytes: plan.total_activation_bytes(4),
        }
    }

    /// FP32 functional inference: class probabilities for one image.
    pub fn infer(&self, image: &Tensor) -> Tensor {
        self.graph.execute(image)
    }

    /// Per-pixel argmax labels.
    pub fn predict(&self, image: &Tensor) -> Vec<u8> {
        seneca_tensor::activation::argmax_channels(&self.infer(image))
    }
}

impl Backend for GpuRunner {
    fn name(&self) -> String {
        format!("gpu/{}", self.graph.name)
    }

    fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction> {
        // The baseline submits frames on one synchronous stream (like the
        // paper's TF session), so the batch path is a plain sequential loop —
        // with one liveness-planned scratch arena reused across the batch.
        let mut scratch: Option<seneca_ir::FpScratch> = None;
        images
            .iter()
            .map(|img| {
                let s = match &mut scratch {
                    Some(s) if s.input_shape() == img.shape() => s,
                    slot => slot.insert(self.lowered.make_scratch_for(img.shape())),
                };
                Prediction::from_f32(self.lowered.execute_f32_into(img, s).to_tensor())
            })
            .collect()
    }

    fn throughput(&self, n_frames: usize, seed: u64) -> ThroughputReport {
        self.run_throughput(n_frames, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seneca_nn::unet::{UNet, UNetConfig};

    fn runner(seed: u64) -> GpuRunner {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        GpuRunner::new(
            Graph::from_unet(&net, "t"),
            GpuModel::rtx2060_mobile(),
            Shape4::new(1, 1, 16, 16),
        )
    }

    #[test]
    fn throughput_is_positive_and_deterministic() {
        let r = runner(1);
        let a = r.run_throughput(100, 3);
        let b = r.run_throughput(100, 3);
        assert!(a.fps > 0.0);
        assert_eq!(a.fps, b.fps);
        assert!((a.watt - 78.0).abs() < 2.0);
    }

    #[test]
    fn repeated_runs_small_sigma() {
        let r = runner(2);
        let s = r.throughput_repeated(200, 6, 11);
        assert!(s.fps_std / s.fps_mean < 0.01);
        assert!(s.ee_mean > 0.0);
    }

    #[test]
    fn functional_predict_in_range() {
        let r = runner(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let img = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
        let labels = r.predict(&img);
        assert_eq!(labels.len(), 256);
        assert!(labels.iter().all(|&l| l < 6));
    }

    #[test]
    fn backend_batch_matches_direct_execute() {
        let r = runner(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let img = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
        let b: &dyn Backend = &r;
        let preds = b.infer_batch(std::slice::from_ref(&img));
        assert_eq!(preds[0].as_f32().unwrap().data(), r.infer(&img).data());
        assert_eq!(preds[0].labels, r.predict(&img));
    }
}
