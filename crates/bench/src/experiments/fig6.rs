//! Fig. 6: per-organ DSC box plots for SENECA on the test cohort.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca_data::volume::Organ;
use seneca_nn::unet::ModelSize;

/// Regenerates Fig. 6 as quartile tables plus ASCII box plots.
pub fn run(ctx: &mut ExperimentCtx) {
    let rep = ctx.accuracy_int8(ModelSize::M1);
    let mut t = Table::new(vec!["Organ", "n", "Q1", "Median", "Q3", "Whiskers", "Outliers"]);
    let mut chart = String::new();
    let (lo, hi) = (50.0, 100.0);
    chart
        .push_str(&format!("{:>8} {:>5}                      (scale {lo:.0}..{hi:.0}%)\n", "", ""));

    for organ in Organ::TARGETS {
        match rep.organ_boxplot(organ) {
            Some(b) => {
                let samples = rep.per_organ_pct[organ.label() as usize - 1].len();
                t.row(vec![
                    organ.name().to_string(),
                    samples.to_string(),
                    format!("{:.2}", b.q1),
                    format!("{:.2}", b.median),
                    format!("{:.2}", b.q3),
                    format!("[{:.2}, {:.2}]", b.whisker_lo, b.whisker_hi),
                    b.outliers.len().to_string(),
                ]);
                chart.push_str(&format!("{:>8} {}\n", organ.name(), b.ascii_row(lo, hi, 60)));
            }
            None => {
                t.row(vec![
                    organ.name().to_string(),
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }

    let body = format!(
        "{}\n```text\n{chart}```\n\
         Paper shape: lungs highest (~96%), bones ~94%, liver ~92%, kidneys ~81%, bladder ~79%; \
         lungs/bladder DSC ratio ≈ 1.21 despite a 13.6x frequency gap.\n",
        t.markdown()
    );
    emit(&ctx.out_dir(), "fig6-per-organ-boxplots", &body);
}
