//! Table IV: FPS / Watt / Energy Efficiency / DSC for every model,
//! FP32 on the GPU model vs INT8 on the simulated ZCU104 (4 threads),
//! μ±σ over seeded runs.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, pm, ratio, Table};
use seneca_metrics::literature::TABLE4;
use seneca_nn::unet::ModelSize;

/// Regenerates Table IV.
pub fn run(ctx: &mut ExperimentCtx) {
    let frames = ctx.wf.config.throughput_frames;
    let runs = ctx.wf.config.throughput_runs;

    let mut t = Table::new(vec![
        "Cfg",
        "FPS fp32",
        "FPS int8",
        "W fp32",
        "W int8",
        "EE fp32",
        "EE int8",
        "DSC fp32 [%]",
        "DSC int8 [%]",
    ]);
    let mut paper_rows = Table::new(vec![
        "Cfg",
        "FPS fp32",
        "FPS int8",
        "W fp32",
        "W int8",
        "EE fp32",
        "EE int8",
        "DSC fp32 [%]",
        "DSC int8 [%]",
    ]);
    let mut summary = String::new();

    for (i, size) in ModelSize::ALL.into_iter().enumerate() {
        eprintln!("[table4] {size}: throughput ...");
        // Backends in list order: [gpu, dpu@4thr]; seeds follow the same order.
        let backends = ctx.backends_256(size, &[4]);
        let seeds = [0xFEED + i as u64, 0xBEEF + i as u64];
        let stats: Vec<_> = backends
            .iter()
            .zip(seeds)
            .map(|(b, seed)| {
                eprintln!("[table4]   {} ...", b.name());
                b.throughput_repeated(frames, runs, seed)
            })
            .collect();
        let (gstats, dstats) = (&stats[0], &stats[1]);
        let acc_fp32 = ctx.accuracy_fp32(size);
        let acc_int8 = ctx.accuracy_int8(size);
        let d32 = acc_fp32.global();
        let d8 = acc_int8.global();

        t.row(vec![
            size.label().to_string(),
            pm(gstats.fps_mean, gstats.fps_std, 2),
            pm(dstats.fps_mean, dstats.fps_std, 2),
            pm(gstats.watt_mean, gstats.watt_std, 2),
            pm(dstats.watt_mean, dstats.watt_std, 2),
            pm(gstats.ee_mean, gstats.ee_std, 2),
            pm(dstats.ee_mean, dstats.ee_std, 2),
            pm(d32.mean, d32.std, 2),
            pm(d8.mean, d8.std, 2),
        ]);
        let p = &TABLE4[i];
        paper_rows.row(vec![
            p.model.to_string(),
            pm(p.fps_fp32.mean, p.fps_fp32.std, 2),
            pm(p.fps_int8.mean, p.fps_int8.std, 2),
            pm(p.watt_fp32.mean, p.watt_fp32.std, 2),
            pm(p.watt_int8.mean, p.watt_int8.std, 2),
            pm(p.ee_fp32.mean, p.ee_fp32.std, 2),
            pm(p.ee_int8.mean, p.ee_int8.std, 2),
            pm(p.dsc_fp32.mean, p.dsc_fp32.std, 2),
            pm(p.dsc_int8.mean, p.dsc_int8.std, 2),
        ]);
        summary.push_str(&format!(
            "- {size}: FPS speedup {} (paper {}), EE gain {} (paper {})\n",
            ratio(dstats.fps_mean, gstats.fps_mean),
            ratio(p.fps_int8.mean, p.fps_fp32.mean),
            ratio(dstats.ee_mean, gstats.ee_mean),
            ratio(p.ee_int8.mean, p.ee_fp32.mean),
        ));
    }

    let body = format!(
        "Ours ({} frames x {} runs, DPU simulated at 256x256, accuracy at {} px):\n\n{}\n\
         Paper (Table IV):\n\n{}\n{}",
        frames,
        runs,
        ctx.wf.config.input_size,
        t.markdown(),
        paper_rows.markdown(),
        summary
    );
    emit(&ctx.out_dir(), "table4-fps-watt-ee-dsc", &body);
}
