//! Table III: calibration-set organ frequencies, random vs manual sampling.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca_data::calibration::{manual_calibration, random_calibration, PAPER_MANUAL_TARGET};
use seneca_data::dataset::SplitKind;
use seneca_data::preprocess::preprocess;
use seneca_data::volume::Organ;

/// Regenerates Table III with both samplers over the training slices.
pub fn run(ctx: &mut ExperimentCtx) {
    let ds = ctx.wf.cohort();
    let factor = ctx.wf.config.downsample_factor();
    eprintln!("[table3] building slice pool ...");
    let pool: Vec<_> = ds
        .slices(SplitKind::Train, ctx.wf.config.train_stride)
        .iter()
        .map(|s| preprocess(s, factor))
        .collect();
    let n = ctx.wf.config.calibration_images;
    let rnd = random_calibration(&pool, n, ctx.wf.config.seed);
    let man = manual_calibration(&pool, n, PAPER_MANUAL_TARGET, ctx.wf.config.seed);

    let organs = Organ::TARGETS;
    let mut t = Table::new(vec!["Sampling", "Liver", "Bladder", "Lungs", "Kidneys", "Bones"]);
    let paper_random = [24.38, 3.00, 35.27, 3.63, 33.72];
    let paper_manual = PAPER_MANUAL_TARGET;
    t.row(
        std::iter::once("Paper random".to_string())
            .chain(paper_random.iter().map(|v| format!("{v:.2}%")))
            .collect(),
    );
    t.row(
        std::iter::once("Ours random".to_string())
            .chain(organs.iter().map(|o| format!("{:.2}%", rnd.frequencies.of(*o))))
            .collect(),
    );
    t.row(
        std::iter::once("Paper manual".to_string())
            .chain(paper_manual.iter().map(|v| format!("{v:.2}%")))
            .collect(),
    );
    t.row(
        std::iter::once("Ours manual".to_string())
            .chain(organs.iter().map(|o| format!("{:.2}%", man.frequencies.of(*o))))
            .collect(),
    );
    let body = format!(
        "{}\n{} calibration slices drawn from {} training slices.\n",
        t.markdown(),
        n,
        pool.len()
    );
    emit(&ctx.out_dir(), "table3-calibration-sampling", &body);
}
