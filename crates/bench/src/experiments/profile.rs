//! Measured cross-stack profile: where a frame's wall clock actually goes,
//! per op and per session stage, on every inference path — from the
//! `seneca-trace` recorder rather than the analytical device models.
//!
//! For each model size the experiment runs the four backends (FP32 reference,
//! GPU baseline, bit-exact INT8 reference, DPU runtime) over a small batch
//! with tracing enabled and emits the aggregated span tables. All backends
//! run single-threaded so per-op attribution is unambiguous: the summed op
//! spans of a domain can never exceed the batch wall clock, and the harness
//! asserts exactly that (the CI smoke property).
//!
//! The INT8 section also cross-checks the *measured* per-op time shares
//! against the *modeled* shares from the compiled xmodel's `FrameProfile`.
//! The divergence is reported, not asserted: the model prices a 4096-MAC
//! array with DMA overlap, the host runs im2col GEMMs, so the shares are
//! expected to disagree — the table quantifies by how much.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca::backend::{Backend, Fp32RefBackend, QuantRefBackend};
use seneca_dpu::isa::DpuInstr;
use seneca_dpu::runtime::{DpuRunner, RuntimeConfig};
use seneca_dpu::xmodel::XModel;
use seneca_nn::unet::ModelSize;
use seneca_serve::{run_load, AdmissionPolicy, LoadSpec, ServeConfig, Server};
use seneca_tensor::{Shape4, Tensor};
use seneca_trace::TraceReport;
use serde::Serialize;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Model sizes profiled: the SENECA model and the largest Table II family
/// member, bounding the family from both ends.
const SIZES: [ModelSize; 2] = [ModelSize::M1, ModelSize::M16];

/// Frames per model for the paper-geometry (256 px) INT8 section. The host
/// executor needs hundreds of ms per 16M frame at this size, so a small
/// count keeps the CI smoke cheap while still amortising the warm-up.
const PAPER_FRAMES: usize = 2;

/// Ops participating in the paper-scale measured-vs-modeled band: anything
/// at or above this share on either side. Tiny ops (qconcat at a fraction
/// of a percent) are noise-dominated and excluded from the gate.
const BAND_SHARE_FLOOR: f64 = 0.05;

/// Maximum |measured − modeled| per-op share divergence tolerated at the
/// paper geometry, in share points (0.25 = 25 pp). The band is deliberately
/// loose: the model prices a 4096-MAC array with DMA overlap while the host
/// runs implicit-GEMM convolutions, so shares agree only in their broad
/// structure (conv-dominated, pool/concat marginal) — see EXPERIMENTS.md.
const BAND_MAX_DELTA: f64 = 0.25;

/// Deterministic frame (same ramp as the throughput harness).
fn frame(shape: Shape4) -> Tensor {
    let data = (0..shape.len()).map(|i| ((i * 37) % 255) as f32 / 127.0 - 1.0).collect();
    Tensor::from_vec(shape, data)
}

/// The op-span domain a backend's executor records into.
fn op_domain(backend_name: &str) -> &'static str {
    if backend_name.starts_with("int8-ref/") || backend_name.starts_with("dpu/") {
        "int8-op"
    } else {
        "fp32-op"
    }
}

/// One traced run of a backend: batch wall clock plus the drained report.
fn traced_run(backend: &dyn Backend, batch: &[Tensor]) -> (u64, TraceReport) {
    backend.infer_batch(&batch[..1]); // warm-up outside the trace window
    seneca_trace::reset();
    seneca_trace::set_enabled(true);
    let t0 = Instant::now();
    backend.infer_batch(batch);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    seneca_trace::set_enabled(false);
    (wall_ns, seneca_trace::report())
}

/// Modeled per-mnemonic time (ns) from the compiled xmodel's frame profile:
/// each layer is priced at its bounding engine plus dispatch overhead, keyed
/// back to the quantized-graph op it implements.
fn modeled_op_ns(xm: &XModel) -> BTreeMap<&'static str, u64> {
    let fp = seneca_dpu::profile::profile(xm, &xm.arch);
    let mut by_op: BTreeMap<&'static str, u64> = BTreeMap::new();
    for l in &fp.layers {
        let node = match xm.instrs[l.instr_index] {
            DpuInstr::Conv { node, .. }
            | DpuInstr::Pool { node, .. }
            | DpuInstr::Elew { node, .. } => node,
            _ => continue,
        };
        let mnemonic = xm.qgraph.nodes[node].op.mnemonic();
        *by_op.entry(mnemonic).or_default() += l.compute_ns.max(l.mem_ns) + l.overhead_ns;
    }
    by_op
}

/// Per-frame GEMM pack-vs-kernel time split of one INT8 lowering: runs
/// `frames` frames through a reused scratch arena with only the `gemm`
/// domain spans in the window. Compiled only with the `trace-gemm` feature,
/// which makes the GEMM engine price its pack and kernel sections.
#[cfg(feature = "trace-gemm")]
fn gemm_pack_split(
    qg: &seneca_quant::QuantizedGraph,
    shape: Shape4,
    frames: usize,
    opts: &seneca_ir::LowerOptions,
) -> (u64, u64) {
    let lowered = seneca_ir::lower(qg.to_ir(), shape, opts);
    let mut scratch = lowered.make_scratch_i8();
    let q = qg.quantize_input(&frame(shape));
    let _ = lowered.execute_i8_into(&q, &mut scratch); // warm-up outside the window
    seneca_trace::reset();
    seneca_trace::set_enabled(true);
    for _ in 0..frames {
        let _ = lowered.execute_i8_into(&q, &mut scratch);
    }
    seneca_trace::set_enabled(false);
    let rep = seneca_trace::report();
    let pack = rep.get("gemm", "pack").map_or(0, |r| r.total_ns);
    let kernel = rep.get("gemm", "kernel").map_or(0, |r| r.total_ns);
    (pack, kernel)
}

/// Regenerates the measured cross-stack profile (`profile.md` +
/// `BENCH_profile.json`).
pub fn run(ctx: &mut ExperimentCtx) {
    let frames = ctx.wf.config.throughput_frames.clamp(2, 8);
    let mut body = String::new();
    let mut json_models: Vec<Value> = Vec::new();

    for size in SIZES {
        let dep = ctx.deployment(size);
        let shape = dep.gpu_runner.input_shape;
        let batch: Vec<Tensor> = (0..frames).map(|_| frame(shape)).collect();

        // Single-threaded variants of all four paths: with one worker the
        // op spans nest strictly inside the batch wall clock, so coverage
        // (op time / wall) is a meaningful fraction in [0, 1].
        let mut backends: Vec<Box<dyn Backend>> = vec![
            Box::new(Fp32RefBackend::new(dep.graph.clone(), shape)),
            Box::new(dep.gpu_runner.clone()),
            Box::new(QuantRefBackend::new(dep.qgraph.clone(), shape)),
            Box::new(DpuRunner::new(
                Arc::clone(&dep.dpu_runner.xmodel),
                RuntimeConfig { threads: 1, ..Default::default() },
            )),
        ];

        let mut summary = Table::new(vec![
            "Backend",
            "Wall ms",
            "Op domain",
            "Op total ms",
            "Coverage %",
            "Hottest op",
            "Share %",
        ]);
        let mut json_backends: Vec<Value> = Vec::new();
        let mut dpu_report: Option<TraceReport> = None;
        let mut detail = String::new();

        for backend in &mut backends {
            backend.prepare();
            let name = backend.name();
            eprintln!("[profile] {size}: tracing {name} over {frames} frames ...");
            let (wall_ns, rep) = traced_run(backend.as_ref(), &batch);

            // The CI smoke property: the tracer saw the run, and measured
            // op time on a single-threaded backend fits inside the wall.
            assert!(!rep.rows.is_empty(), "tracer recorded nothing for {name}");
            let dom = op_domain(&name);
            let op_ns = rep.domain_total_ns(dom);
            assert!(op_ns > 0, "no `{dom}` spans recorded for {name}");
            assert!(
                op_ns <= wall_ns,
                "{name}: op total {op_ns} ns exceeds wall {wall_ns} ns on one thread"
            );

            let hottest = rep.domain_rows(dom).first().map(|r| (r.name.clone(), r.total_ns));
            let (hot_name, hot_ns) = hottest.unwrap_or(("-".into(), 0));
            summary.row(vec![
                name.clone(),
                format!("{:.2}", wall_ns as f64 / 1e6),
                dom.to_string(),
                format!("{:.2}", op_ns as f64 / 1e6),
                format!("{:.1}", 100.0 * op_ns as f64 / wall_ns as f64),
                hot_name,
                format!("{:.1}", 100.0 * hot_ns as f64 / op_ns as f64),
            ]);
            detail.push_str(&format!(
                "### {name} ({size}, {frames} frames, wall {:.2} ms)\n\n{}\n",
                wall_ns as f64 / 1e6,
                rep.to_markdown()
            ));
            json_backends.push(json!({
                "backend": name.clone(),
                "frames": frames,
                "wall_ns": wall_ns,
                "op_domain": dom,
                "op_total_ns": op_ns,
                "dropped": rep.dropped,
                "rows": Value::Array(rep.rows.iter().map(|r| r.to_value()).collect())
            }));
            if name.starts_with("dpu/") {
                dpu_report = Some(rep);
            }
        }

        // Measured vs modeled INT8 shares (report, don't assert).
        let dpu_report = dpu_report.expect("the DPU backend ran");
        let modeled = modeled_op_ns(&dep.dpu_runner.xmodel);
        let modeled_total: u64 = modeled.values().sum();
        let measured_total = dpu_report.domain_total_ns("int8-op").max(1);
        let mut cross =
            Table::new(vec!["Op", "Measured ms", "Measured %", "Modeled ms", "Modeled %", "Δ pp"]);
        let mut json_cross: Vec<Value> = Vec::new();
        // Union of mnemonics: modeled ops first, then any measured-only ops
        // (host-side work with no xmodel instruction).
        let mut op_names: Vec<String> = modeled.keys().map(|s| s.to_string()).collect();
        for r in dpu_report.domain_rows("int8-op") {
            if !op_names.contains(&r.name) {
                op_names.push(r.name.clone());
            }
        }
        for op in &op_names {
            let meas = dpu_report.get("int8-op", op).map_or(0, |r| r.total_ns);
            let model = modeled.get(op.as_str()).copied().unwrap_or(0);
            let meas_pct = 100.0 * meas as f64 / measured_total as f64;
            let model_pct = 100.0 * model as f64 / modeled_total.max(1) as f64;
            cross.row(vec![
                op.clone(),
                format!("{:.3}", meas as f64 / 1e6),
                format!("{meas_pct:.1}"),
                format!("{:.3}", model as f64 / 1e6),
                format!("{model_pct:.1}"),
                format!("{:+.1}", meas_pct - model_pct),
            ]);
            json_cross.push(json!({
                "op": op.clone(),
                "measured_ns": meas,
                "measured_share": meas_pct / 100.0,
                "modeled_ns": model,
                "modeled_share": model_pct / 100.0
            }));
        }

        body.push_str(&format!(
            "### {size} at {}x{} ({frames} frames per backend, 1 worker thread)\n\n{}\n{detail}",
            shape.h,
            shape.w,
            summary.markdown()
        ));
        body.push_str(&format!(
            "### {size}: measured INT8 op shares vs modeled `FrameProfile`\n\n{}\n\
             Measured is host wall time of the functional INT8 executor; modeled prices each \
             layer at its bounding engine (max of array and DMA time) plus dispatch overhead \
             on the B4096 model. Shares are expected to diverge — the host has no MAC array — \
             so the Δ column is informational, not a gate.\n\n",
            cross.markdown()
        ));
        json_models.push(json!({
            "model": format!("{size}"),
            "input": [shape.n, shape.c, shape.h, shape.w],
            "backends": Value::Array(json_backends),
            "int8_measured_vs_modeled": Value::Array(json_cross)
        }));
    }

    // Paper-geometry (256 px) measured-vs-modeled INT8 cross-check. The
    // fast/reduced scales run tiny inputs where fixed per-node overheads
    // dominate and the share comparison above is informational only; at the
    // paper's 256x256 geometry the GEMMs dominate on both sides, so here a
    // loose band between measured and modeled op shares is *asserted* (the
    // ROADMAP reconciliation gate). Runs at every scale: the DPU runner is
    // compiled for 256x256 regardless of the accuracy resolution, exactly
    // like the throughput experiments.
    let mut json_paper: Vec<Value> = Vec::new();
    for size in SIZES {
        let mut runner = ctx.dpu_runner_256(size, 1);
        Backend::prepare(&mut runner);
        let shape = runner.xmodel.input_shape;
        eprintln!(
            "[profile] {size}: paper geometry {}x{}, {PAPER_FRAMES} frames ...",
            shape.h, shape.w
        );
        let batch: Vec<Tensor> = (0..PAPER_FRAMES).map(|_| frame(shape)).collect();
        let (wall_ns, rep) = traced_run(&runner, &batch);
        let wall_frame_ns = wall_ns / PAPER_FRAMES as u64;

        let modeled = modeled_op_ns(&runner.xmodel);
        let modeled_total: u64 = modeled.values().sum::<u64>().max(1);
        let measured_total = rep.domain_total_ns("int8-op").max(1);
        let mut op_names: Vec<String> = modeled.keys().map(|s| s.to_string()).collect();
        for r in rep.domain_rows("int8-op") {
            if !op_names.contains(&r.name) {
                op_names.push(r.name.clone());
            }
        }

        let mut cross =
            Table::new(vec!["Op", "Measured ms", "Measured %", "Modeled ms", "Modeled %", "Δ pp"]);
        let mut json_ops: Vec<Value> = Vec::new();
        let mut worst: (f64, String) = (0.0, "-".into());
        for op in &op_names {
            let meas = rep.get("int8-op", op).map_or(0, |r| r.total_ns);
            let model = modeled.get(op.as_str()).copied().unwrap_or(0);
            let meas_share = meas as f64 / measured_total as f64;
            let model_share = model as f64 / modeled_total as f64;
            let delta = (meas_share - model_share).abs();
            if (meas_share >= BAND_SHARE_FLOOR || model_share >= BAND_SHARE_FLOOR)
                && delta > worst.0
            {
                worst = (delta, op.clone());
            }
            cross.row(vec![
                op.clone(),
                format!("{:.3}", meas as f64 / 1e6),
                format!("{:.1}", 100.0 * meas_share),
                format!("{:.3}", model as f64 / 1e6),
                format!("{:.1}", 100.0 * model_share),
                format!("{:+.1}", 100.0 * (meas_share - model_share)),
            ]);
            json_ops.push(json!({
                "op": op.clone(),
                "measured_ns": meas,
                "measured_share": meas_share,
                "modeled_ns": model,
                "modeled_share": model_share
            }));
        }

        // The band gate. Dominant ops must agree, and no op above the share
        // floor may diverge by more than the band.
        let hottest_meas = rep.domain_rows("int8-op").first().map(|r| r.name.clone());
        let hottest_model = modeled.iter().max_by_key(|(_, &ns)| ns).map(|(op, _)| op.to_string());
        assert_eq!(
            hottest_meas, hottest_model,
            "{size} paper geometry: hottest measured op diverges from the modeled FrameProfile"
        );
        assert!(
            worst.0 <= BAND_MAX_DELTA,
            "{size} paper geometry: op `{}` diverges {:.1} pp from the modeled share \
             (band {:.0} pp)",
            worst.1,
            100.0 * worst.0,
            100.0 * BAND_MAX_DELTA
        );

        body.push_str(&format!(
            "### {size} at paper geometry {}x{}: measured INT8 shares vs modeled \
             `FrameProfile` ({PAPER_FRAMES} frames, {:.1} ms/frame)\n\n{}\n\
             At 256 px the fixed per-node overheads stop dominating, so this table *is* \
             asserted: the hottest op must match the model and no op above {:.0}% share may \
             diverge by more than {:.0} pp (worst here: `{}` at {:.1} pp).\n\n",
            shape.h,
            shape.w,
            wall_frame_ns as f64 / 1e6,
            cross.markdown(),
            100.0 * BAND_SHARE_FLOOR,
            100.0 * BAND_MAX_DELTA,
            worst.1,
            100.0 * worst.0,
        ));
        json_paper.push(json!({
            "model": format!("{size}"),
            "input": [shape.n, shape.c, shape.h, shape.w],
            "frames": PAPER_FRAMES,
            "wall_ns_per_frame": wall_frame_ns,
            "band_share_floor": BAND_SHARE_FLOOR,
            "band_max_delta": BAND_MAX_DELTA,
            "worst_delta": worst.0,
            "worst_op": worst.1,
            "ops": Value::Array(json_ops)
        }));
    }

    // GEMM pack-vs-kernel split on the 16M INT8 model: pack-slot caching
    // (weight panels packed once at lowering) must cut the per-frame pack
    // share against the per-call baseline. This is the CI gate for the
    // pack-once optimisation; it needs the `trace-gemm` feature.
    #[cfg(feature = "trace-gemm")]
    let gemm_pack_share = {
        let dep = ctx.deployment(ModelSize::M16);
        let shape = dep.gpu_runner.input_shape;
        eprintln!("[profile] M16: tracing GEMM pack share, pack-once vs per-call ...");
        let packed =
            gemm_pack_split(&dep.qgraph, shape, frames, &seneca_ir::LowerOptions::reference());
        let percall = gemm_pack_split(
            &dep.qgraph,
            shape,
            frames,
            &seneca_ir::LowerOptions::reference_unpacked(),
        );
        let share = |(p, k): (u64, u64)| p as f64 / (p + k).max(1) as f64;
        assert!(
            share(packed) < share(percall),
            "pack-slot caching must cut the 16M per-frame pack share: \
             pack-once {:.1}% vs per-call {:.1}%",
            100.0 * share(packed),
            100.0 * share(percall)
        );
        let mut t = Table::new(vec!["Lowering", "Pack ms", "Kernel ms", "Pack share %"]);
        for (label, (p, k)) in
            [("pack-once (reference)", packed), ("per-call (reference_unpacked)", percall)]
        {
            t.row(vec![
                label.to_string(),
                format!("{:.2}", p as f64 / 1e6),
                format!("{:.2}", k as f64 / 1e6),
                format!("{:.1}", 100.0 * share((p, k))),
            ]);
        }
        body.push_str(&format!(
            "### M16 INT8: per-frame GEMM pack share, pack-once vs per-call ({frames} frames)\n\n\
             {}\nWeights are immutable at inference, so the reference lowering packs their \
             GEMM panels once at model load; each frame then only packs activation panels. \
             The gate asserts the pack share drops against the per-call baseline.\n\n",
            t.markdown()
        ));
        json!({
            "model": "M16",
            "frames": frames,
            "pack_once": { "pack_ns": packed.0, "kernel_ns": packed.1,
                           "pack_share": share(packed) },
            "per_call": { "pack_ns": percall.0, "kernel_ns": percall.1,
                          "pack_share": share(percall) }
        })
    };
    #[cfg(not(feature = "trace-gemm"))]
    let gemm_pack_share = Value::Null;

    // Serving-stage spans: a short closed-loop burst against the M1 INT8
    // reference exercises the queue/batcher/replica probes.
    let dep = ctx.deployment(ModelSize::M1);
    let shape = dep.gpu_runner.input_shape;
    let n_serve = ctx.wf.config.throughput_frames.clamp(8, 24);
    eprintln!("[profile] tracing serve lifecycle over {n_serve} requests ...");
    let backend: Arc<dyn Backend> = Arc::new(QuantRefBackend::new(dep.qgraph.clone(), shape));
    seneca_trace::reset();
    seneca_trace::set_enabled(true);
    let server = Server::start(
        backend,
        ServeConfig {
            replicas: 2,
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            queue_capacity: 8,
            admission: AdmissionPolicy::Block,
        },
    );
    run_load(&server.handle(), &frame(shape), &LoadSpec::closed(n_serve, 4, 0x51EC));
    let stats = server.shutdown();
    seneca_trace::set_enabled(false);
    let serve_rep = seneca_trace::report();
    assert!(
        serve_rep.get("serve", "replica_exec").is_some(),
        "serve burst recorded no replica_exec spans"
    );
    body.push_str(&format!(
        "### Serving lifecycle (M1 int8-ref, {n_serve} closed-loop requests, {} served)\n\n{}\n",
        stats.served,
        serve_rep.to_markdown()
    ));

    body.push_str(
        "Spans come from the `seneca-trace` thread-local ring recorder; `session` rows \
         nest inside the per-op rows' wall clock, so domains are compared to the wall \
         independently, never summed across domains.\n",
    );
    emit(&ctx.out_dir(), "profile", &body);

    let doc = json!({
        "experiment": "profile",
        "scale": ctx.scale.name(),
        "frames_per_backend": frames,
        "models": Value::Array(json_models),
        "paper_geometry": Value::Array(json_paper),
        "gemm_pack_share_16m": gemm_pack_share,
        "serve": json!({
            "model": "M1",
            "requests": n_serve,
            "served": stats.served,
            "rows": Value::Array(serve_rep.rows.iter().map(|r| r.to_value()).collect())
        })
    });
    let path = ctx.out_dir().join("BENCH_profile.json");
    match serde_json::to_string(&doc) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                eprintln!("[profile] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize BENCH_profile.json: {e}"),
    }
}
