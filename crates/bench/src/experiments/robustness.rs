//! Robustness suite: pathology + acquisition-scenario grid, FP32 vs
//! quantized deployments.
//!
//! Every test patient carries seeded lesions (liver tumors, lung nodules,
//! renal cysts — labels folded into the host organ, so Dice is scored on
//! lesion-bearing anatomy) and is re-acquired under a factorial grid of
//! dose x slice-thickness x FOV scenarios. The model under study is the 1M
//! U-Net trained with the train-time augmentation pipeline at full raster
//! resolution (see [`robust_deployment`]). The same scenario tensors feed
//! four inference paths of it:
//!
//! * **fp32** — the reference float graph;
//! * **int8-manual** — PTQ with the Table III frequency-leveled
//!   calibration set (the deployed configuration);
//! * **int8-random** — PTQ with a randomly sampled calibration set;
//! * **mixed-w4w8** — the PR-8 cost-aware per-layer W4/W8 plan.
//!
//! Two headline claims are asserted (and re-checked by the CI smoke run):
//!
//! (a) per-organ Dice degradation under quantization is largest for the
//!     smallest structures — the under-represented organs sit in the
//!     activation-range tails that INT8 grids truncate first. Asserted on
//!     the *magnitude* of the quantization-induced Dice shift: at smoke
//!     scale the sign is noise (quantization can nudge a weak model either
//!     way), but the sensitivity ordering is stable across scales;
//! (b) calibration-set leveling recovers part of it — the manual sampler
//!     never perturbs the small structures more than the random sampler.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca::backend::{Backend, Fp32RefBackend, QuantRefBackend};
use seneca::eval::{evaluate_backend_on, AccuracyReport};
use seneca::workflow::slice_to_sample;
use seneca::{Deployment, PreparedData, Workflow};
use seneca_data::calibration::random_calibration;
use seneca_data::dataset::SplitKind;
use seneca_data::pathology::PathologyConfig;
use seneca_data::preprocess::preprocess;
use seneca_data::scenario::ScenarioGrid;
use seneca_data::volume::Organ;
use seneca_dpu::arch::DpuArch;
use seneca_nn::augment::AugmentConfig;
use seneca_nn::unet::ModelSize;
use seneca_quant::ptq::{argmax_agreement, calibrate};
use seneca_quant::{
    fuse, quantize_from_calibration, quantize_post_training, search_mixed_plan, Bitwidth,
    PtqConfig, QuantizedGraph,
};
use seneca_tensor::Tensor;
use serde_json::{json, Value};

/// The model under study (the SENECA model).
const SIZE: ModelSize = ModelSize::M1;

/// FP32 Dice floor (percent) below which an organ carries no usable signal
/// and its quantization drop is 0-vs-0 noise. Keeps the headline assertions
/// anchored to organs the model actually finds, which matters at the fast
/// smoke scale where tiny models barely learn the rare classes.
const ELIGIBILITY_FLOOR_PCT: f64 = 3.0;

/// Slack (percentage points) on the ordering assertions — absorbs
/// patient-count noise without letting the claims invert outright.
const ORDERING_SLACK_PP: f64 = 1.0;

/// Agreement the mixed plan may give up vs uniform INT8 (same as the
/// mixed-precision study).
const AGREEMENT_MARGIN: f64 = 0.02;

/// Pooled per-organ Dice samples for one backend across the whole grid.
struct PooledDice {
    /// Index = organ label - 1; samples are per (scenario, patient).
    samples: Vec<Vec<f64>>,
}

impl PooledDice {
    fn new() -> Self {
        Self { samples: vec![Vec::new(); 5] }
    }

    fn absorb(&mut self, rep: &AccuracyReport) {
        for (pool, org) in self.samples.iter_mut().zip(&rep.per_organ_pct) {
            pool.extend_from_slice(org);
        }
    }

    fn mean(&self, organ: Organ) -> Option<f64> {
        let xs = &self.samples[organ.label() as usize - 1];
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }
}

/// Builds the robustness deployment: the 1M model trained with the
/// train-time augmentation pipeline at full raster resolution
/// (downsample factor 1). The smoke-scale deployed input (2x
/// majority-vote downsample) leaves rare structures a handful of pixels
/// — the fast model then learns only Bones, and the robustness claims
/// would be vacuous; at factor 1 the small structures physically exist
/// in the labels. The deployment caches under its own zoo fingerprint
/// (input size + `-aug` suffix), so re-runs stay warm.
fn robust_deployment(ctx: &ExperimentCtx) -> (Workflow, PreparedData, Deployment) {
    let mut cfg = ctx.wf.config.clone();
    cfg.input_size = cfg.cohort.slice_size;
    cfg.train.epochs *= 2;
    cfg.train.augment = Some(AugmentConfig::default());
    let wf = Workflow::new(cfg);
    let data = wf.prepare_data();
    let dep = wf.deploy(SIZE, &data);
    (wf, data, dep)
}

/// Builds the three quantized graphs: manual-calibration INT8 (the
/// deployed one), random-calibration INT8 and the mixed W4/W8 plan.
fn quantized_variants(
    wf: &Workflow,
    data: &PreparedData,
    dep: &Deployment,
) -> (QuantizedGraph, QuantizedGraph, QuantizedGraph, usize) {
    let shape = dep.gpu_runner.input_shape;
    let n = wf.config.calibration_images;
    let fg = fuse(&dep.graph);
    let cfg = PtqConfig { max_images: n, ..Default::default() };

    // Random-calibration PTQ over the same training pool the manual
    // sampler used (Table III "random" row, pushed through deployment).
    eprintln!("[robustness] building random calibration set ({n} slices) ...");
    let ds = wf.cohort();
    let factor = wf.config.downsample_factor();
    let pool: Vec<_> = ds
        .slices(SplitKind::Train, wf.config.train_stride)
        .iter()
        .map(|s| preprocess(s, factor))
        .collect();
    let rnd = random_calibration(&pool, n, wf.config.seed ^ 0xCA11);
    let rnd_imgs: Vec<Tensor> = rnd.slices.iter().map(|s| slice_to_sample(s).image).collect();
    let (qg_random, _) = quantize_post_training(&fg, &rnd_imgs, &cfg);

    // Mixed W4/W8 plan from the manual calibration set (PR-8 search).
    eprintln!("[robustness] searching mixed W4/W8 plan for {SIZE} ...");
    let report = calibrate(&fg, &data.calibration, &cfg);
    let eval = &data.calibration[..data.calibration.len().min(4)];
    let uniform = quantize_from_calibration(&fg, &report, &vec![Bitwidth::W8; fg.nodes.len()]);
    let floor = argmax_agreement(&fg, &uniform, eval) - AGREEMENT_MARGIN;
    let arch = DpuArch::b4096_zcu104();
    let cycles = |qg: &QuantizedGraph| -> f64 {
        seneca_dpu::compile(qg, shape, arch.clone()).stats.compute_cycles as f64
    };
    let res = search_mixed_plan(&fg, &report, eval, floor, &cycles);
    let qg_mixed = quantize_from_calibration(&fg, &report, &res.plan.wbits);
    let n_w4 = res.plan.n_w4();

    (dep.qgraph.clone(), qg_random, qg_mixed, n_w4)
}

/// Regenerates the robustness study (`robustness.md` +
/// `BENCH_robustness.json`).
pub fn run(ctx: &mut ExperimentCtx) {
    let grid = ScenarioGrid::paper_default();
    let scenarios = grid.scenarios();
    let pathology = PathologyConfig::default();

    eprintln!("[robustness] building augmented full-resolution {SIZE} deployment ...");
    let (rwf, rdata, dep) = robust_deployment(ctx);
    let shape = dep.gpu_runner.input_shape;
    let (qg_manual, qg_random, qg_mixed, n_w4) = quantized_variants(&rwf, &rdata, &dep);

    let mut backends: Vec<(&str, Box<dyn Backend>)> = vec![
        ("fp32", Box::new(Fp32RefBackend::new(dep.graph.clone(), shape))),
        ("int8-manual", Box::new(QuantRefBackend::new(qg_manual, shape))),
        ("int8-random", Box::new(QuantRefBackend::new(qg_random, shape))),
        ("mixed-w4w8", Box::new(QuantRefBackend::new(qg_mixed, shape))),
    ];
    for (_, b) in &mut backends {
        b.prepare();
    }

    // Sweep the grid: every backend sees the same scenario tensors.
    let mut pooled: Vec<PooledDice> = backends.iter().map(|_| PooledDice::new()).collect();
    let mut scenario_tbl = Table::new(vec![
        "Scenario",
        "Dose",
        "Thickness",
        "FOV",
        "fp32",
        "int8-manual",
        "int8-random",
        "mixed-w4w8",
    ]);
    let mut json_scenarios: Vec<Value> = Vec::new();
    for sc in &scenarios {
        eprintln!("[robustness] scenario {} ...", sc.name());
        let patients = rwf.scenario_test_patients(sc, Some(&pathology));
        let mut row = vec![
            sc.name(),
            format!("{:.0}%", sc.dose * 100.0),
            format!("{}x", sc.slice_thickness),
            format!("{:.0}%", sc.fov * 100.0),
        ];
        let mut json_backends: Vec<Value> = Vec::new();
        for ((name, backend), pool) in backends.iter().zip(&mut pooled) {
            let rep = evaluate_backend_on(backend.as_ref(), &patients);
            row.push(format!("{:.1}", rep.global().mean));
            json_backends.push(json!({
                "backend": *name,
                "global_dice_pct": rep.global().mean,
                "per_organ_mean_pct": Value::Array(
                    Organ::TARGETS
                        .iter()
                        .map(|o| {
                            let xs = &rep.per_organ_pct[o.label() as usize - 1];
                            if xs.is_empty() {
                                Value::Null
                            } else {
                                json!(xs.iter().sum::<f64>() / xs.len() as f64)
                            }
                        })
                        .collect()
                ),
            }));
            pool.absorb(&rep);
        }
        scenario_tbl.row(row);
        json_scenarios.push(json!({
            "scenario": sc.name(),
            "dose": sc.dose,
            "slice_thickness": sc.slice_thickness,
            "fov": sc.fov,
            "backends": Value::Array(json_backends),
        }));
    }

    // Aggregate per-organ means over the whole grid + quantization drops.
    let freq = &rdata.frequencies;
    let mut organ_tbl = Table::new(vec![
        "Organ",
        "Train freq %",
        "fp32",
        "int8-manual",
        "int8-random",
        "mixed-w4w8",
        "Drop (random)",
        "Drop (manual)",
    ]);
    // (organ, train_freq, fp32, drop_manual, drop_random) for eligible organs.
    let mut eligible: Vec<(Organ, f64, f64, f64, f64)> = Vec::new();
    let mut json_organs: Vec<Value> = Vec::new();
    for &o in &Organ::TARGETS {
        let f = freq.of(o);
        let means: Vec<Option<f64>> = pooled.iter().map(|p| p.mean(o)).collect();
        let fmt = |m: &Option<f64>| m.map_or("-".to_string(), |v| format!("{v:.1}"));
        let (drop_manual, drop_random) = match (means[0], means[1], means[2]) {
            (Some(fp), Some(man), Some(rnd)) => (Some(fp - man), Some(fp - rnd)),
            _ => (None, None),
        };
        organ_tbl.row(vec![
            o.to_string(),
            format!("{f:.2}"),
            fmt(&means[0]),
            fmt(&means[1]),
            fmt(&means[2]),
            fmt(&means[3]),
            fmt(&drop_random),
            fmt(&drop_manual),
        ]);
        if let (Some(fp), Some(dm), Some(dr)) = (means[0], drop_manual, drop_random) {
            if fp >= ELIGIBILITY_FLOOR_PCT {
                eligible.push((o, f, fp, dm, dr));
            }
        }
        let opt = |m: Option<f64>| m.map_or(Value::Null, |v| json!(v));
        json_organs.push(json!({
            "organ": o.to_string(),
            "train_freq_pct": f,
            "fp32": opt(means[0]),
            "int8_manual": opt(means[1]),
            "int8_random": opt(means[2]),
            "mixed_w4w8": opt(means[3]),
            "drop_manual": opt(drop_manual),
            "drop_random": opt(drop_random),
        }));
    }

    // Split the eligible organs (sorted by training frequency) into a rare
    // half and a common half and compare pooled shift magnitudes. Pooling
    // halves instead of comparing the single extremes keeps the claim
    // check robust to one organ's noise at smoke scale. All assertions run
    // AFTER the artifacts are written so a failed claim still leaves the
    // full tables on disk for diagnosis.
    eligible.sort_by(|a, b| a.1.total_cmp(&b.1)); // ascending train frequency
    struct Halves {
        rare_organs: String,
        common_organs: String,
        rare_random_pp: f64,
        rare_manual_pp: f64,
        common_random_pp: f64,
    }
    let halves = (eligible.len() >= 2).then(|| {
        let k = eligible.len() / 2;
        let (rare, common) = (&eligible[..k], &eligible[eligible.len() - k..]);
        let names = |xs: &[(Organ, f64, f64, f64, f64)]| {
            xs.iter().map(|e| e.0.to_string()).collect::<Vec<_>>().join("+")
        };
        let mean_abs = |xs: &[(Organ, f64, f64, f64, f64)],
                        pick: fn(&(Organ, f64, f64, f64, f64)) -> f64| {
            xs.iter().map(|e| pick(e).abs()).sum::<f64>() / xs.len() as f64
        };
        Halves {
            rare_organs: names(rare),
            common_organs: names(common),
            rare_random_pp: mean_abs(rare, |e| e.4),
            rare_manual_pp: mean_abs(rare, |e| e.3),
            common_random_pp: mean_abs(common, |e| e.4),
        }
    });

    let claims_text = match &halves {
        Some(h) => format!(
            "Asserted (and re-checked by the CI smoke run), comparing the rarer half of the \
             eligible organs ({}) against the commoner half ({}):\n\n\
             * **(a)** random-calibration INT8 perturbs the rare structures at least as much \
             as the common ones: |{:.2}| pp vs |{:.2}| pp mean shift;\n\
             * **(b)** Table III calibration leveling never perturbs the rare structures \
             more than random calibration does: |{:.2}| pp (manual) <= |{:.2}| pp (random).",
            h.rare_organs,
            h.common_organs,
            h.rare_random_pp,
            h.common_random_pp,
            h.rare_manual_pp,
            h.rare_random_pp,
        ),
        None => format!(
            "**Claim check skipped**: only {} organ(s) cleared the {ELIGIBILITY_FLOOR_PCT}% \
             FP32 eligibility floor (the run will fail after writing this report).",
            eligible.len()
        ),
    };
    let body = format!(
        "### Scenario grid: global Dice (%) per backend, {} test patients with lesions\n\n{}\n\
         Dose scales HU noise `1/sqrt(dose)`, thickness merges axial slices, FOV zooms the \
         reconstruction. All backends see identical inputs per scenario.\n\n\
         ### Per-organ Dice pooled over the grid ({} scenarios)\n\n{}\n\
         Drops are FP32 minus the INT8 variant, in percentage points, pooled over every \
         (scenario, patient) sample. At small scales the sign of the shift is noise (a weak \
         model can even be helped by quantization noise), so the asserted invariant is the \
         *magnitude* of the quantization-induced Dice shift. {}\n\n\
         The mixed W4/W8 plan ({} layers at W4) rides the same grid as a third \
         deployment variant.\n",
        rdata.test_by_patient.len(),
        scenario_tbl.markdown(),
        scenarios.len(),
        organ_tbl.markdown(),
        claims_text,
        n_w4,
    );
    emit(&ctx.out_dir(), "robustness", &body);

    let doc = json!({
        "experiment": "robustness",
        "scale": ctx.scale.name(),
        "model": format!("{SIZE}"),
        "grid": {
            "doses": grid.doses.clone(),
            "thicknesses": grid.thicknesses.clone(),
            "fovs": grid.fovs.clone(),
        },
        "pathology": {
            "min_lesions": pathology.min_lesions,
            "max_lesions": pathology.max_lesions,
            "hosts": Value::Array(
                pathology.hosts.iter().map(|o| json!(o.to_string())).collect()
            ),
        },
        "eligibility_floor_pct": ELIGIBILITY_FLOOR_PCT,
        "mixed_w4_layers": n_w4,
        "scenarios": Value::Array(json_scenarios),
        "organs": Value::Array(json_organs),
        "claims": match &halves {
            Some(h) => json!({
                "rare_organs": h.rare_organs.clone(),
                "common_organs": h.common_organs.clone(),
                "rare_shift_random_pp": h.rare_random_pp,
                "rare_shift_manual_pp": h.rare_manual_pp,
                "common_shift_random_pp": h.common_random_pp,
            }),
            None => Value::Null,
        },
    });
    let path = ctx.out_dir().join("BENCH_robustness.json");
    match serde_json::to_string(&doc) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                eprintln!("[robustness] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize BENCH_robustness.json: {e}"),
    }

    let h = halves.unwrap_or_else(|| {
        panic!(
            "robustness: need >= 2 eligible organs (FP32 Dice >= \
             {ELIGIBILITY_FLOOR_PCT}%), got {} — see the emitted robustness.md",
            eligible.len()
        )
    });
    // Headline claim (a): under the weak (random) calibration, quantization
    // perturbs the rare structures at least as much as the common ones.
    // The |.| is deliberate: at fast scale the *sign* of the shift is noise
    // (quantization can nudge a weak model either way), but the magnitude
    // ordering — rare/small structures are the most quantization-sensitive —
    // is the scale-stable invariant; at paper scale it manifests as a drop.
    assert!(
        h.rare_random_pp + ORDERING_SLACK_PP >= h.common_random_pp,
        "claim (a) failed: random-calibration INT8 shifts rare organs {} by \
         |{:.2}| pp mean, less than common organs {} (|{:.2}| pp)",
        h.rare_organs,
        h.rare_random_pp,
        h.common_organs,
        h.common_random_pp
    );
    // Headline claim (b): leveling the calibration set recovers part of the
    // rare-structure damage (manual never perturbs it more than random,
    // within slack).
    assert!(
        h.rare_manual_pp <= h.rare_random_pp + ORDERING_SLACK_PP,
        "claim (b) failed: manual-calibration shift for rare organs {} \
         (|{:.2}| pp mean) exceeds random-calibration shift (|{:.2}| pp)",
        h.rare_organs,
        h.rare_manual_pp,
        h.rare_random_pp
    );
    eprintln!(
        "[robustness] claims hold: rare organs {} shift |{:.2}| pp mean (random) vs \
         |{:.2}| pp for common organs {}; manual calibration shift |{:.2}| pp",
        h.rare_organs, h.rare_random_pp, h.common_random_pp, h.common_organs, h.rare_manual_pp
    );
}
