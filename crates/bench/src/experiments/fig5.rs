//! Fig. 5: qualitative rows — CT slice | ground truth | INT8 SENECA |
//! FP32 SENECA, written as PPM images with the paper's organ colours.

use crate::ctx::ExperimentCtx;
use crate::fmt::emit;
use seneca::render::{hstack, render_ct, render_overlay, write_ppm};
use seneca_nn::unet::ModelSize;

/// Renders up to four sample rows picked to show different organ mixes.
pub fn run(ctx: &mut ExperimentCtx) {
    let dep = ctx.deployment(ModelSize::M1);
    let out_dir = ctx.out_dir();
    let mut written = Vec::new();

    // Pick slices with the most distinct organs from different patients.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new(); // (patient idx, slice idx, organ count)
    for (pi, patient) in ctx.data.test_by_patient.iter().enumerate() {
        for (si, labels) in patient.labels.iter().enumerate() {
            let mut organs = [false; 6];
            for &l in labels {
                if l > 0 {
                    organs[(l as usize).min(5)] = true;
                }
            }
            let count = organs.iter().filter(|b| **b).count();
            if count >= 2 {
                candidates.push((pi, si, count));
            }
        }
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.2));
    candidates.truncate(4);

    for (row, (pi, si, organs)) in candidates.iter().enumerate() {
        let patient = &ctx.data.test_by_patient[*pi];
        let (image, labels) = (&patient.images[*si], &patient.labels[*si]);
        let int8 = dep.qgraph.predict(image);
        let fp32 = dep.gpu_runner.predict(image);
        let panels = vec![
            render_ct(image),
            render_overlay(image, labels),
            render_overlay(image, &int8),
            render_overlay(image, &fp32),
        ];
        let (w, h, rgb) = hstack(&panels);
        let path = out_dir.join(format!("fig5-row{row}.ppm"));
        match write_ppm(&path, w, h, &rgb) {
            Ok(()) => written.push(format!(
                "- `{}` (patient {}, slice {}, {} organs): CT | GT | INT8 | FP32",
                path.display(),
                ctx.data.test_by_patient[*pi].id,
                si,
                organs
            )),
            Err(e) => eprintln!("[fig5] write failed: {e}"),
        }
    }

    let body = format!(
        "Colour code (paper): liver red, bladder green, lungs blue, kidneys yellow, bones white.\n\n{}\n",
        written.join("\n")
    );
    emit(&out_dir, "fig5-qualitative", &body);
}
