//! Boundary-quality experiment (beyond the paper's tables).
//!
//! §IV-D: "the proposed network shows a more conservative behavior when
//! detecting the organs' edges since the minimization of the number of
//! FPs." We quantify edge behaviour with symmetric Hausdorff distance and
//! average symmetric surface distance (ASSD) per organ on the test split,
//! comparing INT8 against FP32.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca_data::volume::Organ;
use seneca_metrics::boundary::hausdorff;
use seneca_nn::unet::ModelSize;

/// Runs the boundary-metric comparison on the 1M model.
pub fn run(ctx: &mut ExperimentCtx) {
    let dep = ctx.deployment(ModelSize::M1);
    let size = ctx.wf.config.input_size;

    // Collect per-organ distances over all test slices for both precisions.
    let mut hd = [
        [Vec::new(), Vec::new()],
        [Vec::new(), Vec::new()],
        [Vec::new(), Vec::new()],
        [Vec::new(), Vec::new()],
        [Vec::new(), Vec::new()],
    ];
    let mut assd = hd.clone();
    for patient in &ctx.data.test_by_patient {
        for (image, labels) in patient.images.iter().zip(&patient.labels) {
            let int8 = dep.qgraph.predict(image);
            let fp32 = dep.gpu_runner.predict(image);
            for (k, organ) in Organ::TARGETS.iter().enumerate() {
                for (which, pred) in [&int8, &fp32].into_iter().enumerate() {
                    if let Some((h, a)) = hausdorff(pred, labels, size, size, organ.label()) {
                        hd[k][which].push(h as f64);
                        assd[k][which].push(a as f64);
                    }
                }
            }
        }
    }

    let mean = |v: &Vec<f64>| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let cell = |v: &Vec<f64>| {
        if v.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}", mean(v))
        }
    };

    let mut t = Table::new(vec![
        "Organ",
        "HD int8 [px]",
        "HD fp32 [px]",
        "ASSD int8 [px]",
        "ASSD fp32 [px]",
        "slices",
    ]);
    for (k, organ) in Organ::TARGETS.iter().enumerate() {
        t.row(vec![
            organ.name().to_string(),
            cell(&hd[k][0]),
            cell(&hd[k][1]),
            cell(&assd[k][0]),
            cell(&assd[k][1]),
            hd[k][0].len().to_string(),
        ]);
    }
    let body = format!(
        "{}\nSymmetric Hausdorff distance (worst-case edge error) and average symmetric \
         surface distance, pixels at {size}x{size}. Quantisation should leave edges nearly \
         untouched (INT8 ≈ FP32), matching the paper's conservative-edges observation.\n",
        t.markdown()
    );
    emit(&ctx.out_dir(), "boundary-metrics", &body);
}
