//! Ablations beyond the paper's tables:
//!
//! * **quantization-mode** (§III-D claim): PTQ vs FFQ vs QAT — the paper
//!   "decided to test both the remaining FFQ and QAT, but without achieving
//!   improvements over PTQ";
//! * **pruning** (§V future work): magnitude channel pruning vs throughput
//!   and accuracy.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca::eval::evaluate_accuracy;
use seneca_dpu::arch::DpuArch;
use seneca_dpu::perf::{frame_cost, frame_cost_pruned};
use seneca_nn::graph::Graph;
use seneca_nn::loss::FocalTverskyLoss;
use seneca_nn::optim::Adam;
use seneca_nn::prune::{effective_macs, prune_channels};
use seneca_nn::unet::ModelSize;
use seneca_quant::finetune::fast_finetune;
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::Shape4;

/// Quantization-mode ablation on the 1M model.
pub fn run_quant(ctx: &mut ExperimentCtx) {
    let size = ModelSize::M1;
    let dep = ctx.deployment(size);
    let fg = fuse(&dep.graph);
    let calib = ctx.data.calibration.clone();
    let max_images = calib.len().min(64); // FFQ re-executes per layer: cap it

    eprintln!("[ablation-quant] PTQ ...");
    let (qg_ptq, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
    eprintln!("[ablation-quant] FFQ ...");
    let mut qg_ffq = qg_ptq.clone();
    let ffq_report = fast_finetune(&mut qg_ffq, &fg, &calib[..max_images.min(8)], 8);
    eprintln!("[ablation-quant] QAT ...");
    // QAT: short fine-tune of the trained model with weight projection.
    let mut qat_net = dep.unet.clone();
    let loss = FocalTverskyLoss::paper_defaults(ctx.data.class_weights.clone());
    let mut opt = Adam::new(2e-4);
    let mut qat_cfg = ctx.wf.config.train.clone();
    qat_cfg.epochs = (qat_cfg.epochs / 2).max(1);
    let _ = seneca_quant::qat::train_qat(&mut qat_net, &ctx.data.train, &loss, &mut opt, &qat_cfg);
    let qat_fg = fuse(&Graph::from_unet(&qat_net, "1M-qat"));
    let (qg_qat, _) = quantize_post_training(&qat_fg, &calib, &PtqConfig::default());

    let mut t = Table::new(vec!["Method", "Global DSC [%]", "Logit MSE vs FP32", "Notes"]);
    let data = &ctx.data;
    let eval_dsc = |qg: &seneca_quant::QuantizedGraph| -> f64 {
        let predict = |img: &seneca_tensor::Tensor| qg.predict(img);
        evaluate_accuracy(&predict, data).global().mean
    };
    let sample = &calib[..calib.len().min(4)];
    let mse = |qg: &seneca_quant::QuantizedGraph, fg: &seneca_quant::FusedGraph| {
        seneca_quant::ptq::quantization_mse(fg, qg, sample)
    };

    t.row(vec![
        "PTQ (paper's choice)".to_string(),
        format!("{:.2}", eval_dsc(&qg_ptq)),
        format!("{:.5}", mse(&qg_ptq, &fg)),
        "500-image calibration".to_string(),
    ]);
    t.row(vec![
        "FFQ (AdaQuant-style)".to_string(),
        format!("{:.2}", eval_dsc(&qg_ffq)),
        format!("{:.5}", mse(&qg_ffq, &fg)),
        format!(
            "{} scales changed, {} biases corrected",
            ffq_report.scales_changed, ffq_report.biases_corrected
        ),
    ]);
    t.row(vec![
        "QAT (projected training)".to_string(),
        format!("{:.2}", eval_dsc(&qg_qat)),
        format!("{:.5}", mse(&qg_qat, &qat_fg)),
        "half-length fine-tune".to_string(),
    ]);

    let body = format!(
        "{}\nPaper §III-D: PTQ already matches FP32; FFQ and QAT were tested \
         \"without achieving improvements over PTQ\".\n",
        t.markdown()
    );
    emit(&ctx.out_dir(), "ablation-quant-modes", &body);
}

/// Pruning ablation (future work of the paper) on the 1M model.
pub fn run_prune(ctx: &mut ExperimentCtx) {
    let size = ModelSize::M1;
    let dep = ctx.deployment(size);
    let arch = DpuArch::b4096_zcu104();
    let input = Shape4::new(1, 1, 256, 256);
    let acc_input = Shape4::new(1, 1, ctx.wf.config.input_size, ctx.wf.config.input_size);

    let mut t = Table::new(vec![
        "Prune ratio",
        "Weight sparsity",
        "Frame time (ms)",
        "Est. FPS (2 cores)",
        "Global DSC [%]",
    ]);

    for ratio in [0.0f64, 0.125, 0.25, 0.5] {
        eprintln!("[ablation-prune] ratio {ratio} ...");
        let mut graph = dep.graph.clone();
        let report = prune_channels(&mut graph, ratio);
        let fg = fuse(&graph);
        let (qg, _) = quantize_post_training(&fg, &ctx.data.calibration, &PtqConfig::default());
        let xm = seneca_dpu::compile(&qg, input, arch.clone());
        // Cycle credit from pruned channels.
        let base_macs: u64 = graph.macs(acc_input).iter().sum();
        let live_macs: u64 = effective_macs(&graph, acc_input).iter().sum();
        let live_ratio = live_macs as f64 / base_macs.max(1) as f64;
        let cost = if ratio == 0.0 {
            frame_cost(&xm, &arch)
        } else {
            frame_cost_pruned(&xm, &arch, live_ratio)
        };
        let fps = 2.0 / (cost.serial_ns as f64 * 1e-9);
        let predict = |img: &seneca_tensor::Tensor| qg.predict(img);
        let dsc = evaluate_accuracy(&predict, &ctx.data).global().mean;
        t.row(vec![
            format!("{:.1}%", ratio * 100.0),
            format!("{:.1}%", report.weight_sparsity * 100.0),
            format!("{:.2}", cost.serial_ns as f64 * 1e-6),
            format!("{fps:.1}"),
            format!("{dsc:.2}"),
        ]);
    }

    let body = format!(
        "{}\nPaper §V lists pruning as future work to \"additionally improve throughput and \
         energy efficiency\"; moderate ratios buy FPS at modest DSC cost.\n",
        t.markdown()
    );
    emit(&ctx.out_dir(), "ablation-pruning", &body);
}

/// DPU-configuration ablation: the same SENECA xmodel on the B4096 (the
/// paper's target) vs the smaller B1152 soft-DSA — quantifying how much of
/// the result is the DPU configuration rather than the network.
pub fn run_arch(ctx: &mut ExperimentCtx) {
    use seneca_dpu::runtime::{DpuRunner, RuntimeConfig};
    use std::sync::Arc;

    let dep = ctx.deployment(ModelSize::M1);
    let input = Shape4::new(1, 1, 256, 256);
    let mut t = Table::new(vec!["DPU config", "peak TOPS", "FPS (4 thr)", "Watt", "EE"]);
    for arch in [DpuArch::b4096_zcu104(), DpuArch::b1152()] {
        let xm = Arc::new(seneca_dpu::compile(&dep.qgraph, input, arch.clone()));
        let rep = DpuRunner::new(xm, RuntimeConfig::default())
            .run_throughput(ctx.wf.config.throughput_frames, 0xA2C4);
        t.row(vec![
            arch.name.clone(),
            format!("{:.2}", arch.peak_tops()),
            format!("{:.1}", rep.fps),
            format!("{:.2}", rep.watt),
            format!("{:.2}", rep.energy_efficiency()),
        ]);
    }
    let body = format!(
        "{}\nThe B4096 is the default ZCU104 configuration the paper deploys on; smaller \
         configurations trade peak ops for fabric resources.\n",
        t.markdown()
    );
    emit(&ctx.out_dir(), "ablation-dpu-config", &body);
}
