//! Fig. 4: DSC x Energy-Efficiency product per model (4-thread ZCU104).

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca_nn::unet::ModelSize;

/// Regenerates Fig. 4 (Eq. 7: `DSC_i * EE_i`).
pub fn run(ctx: &mut ExperimentCtx) {
    let frames = ctx.wf.config.throughput_frames;
    let mut t = Table::new(vec!["Model", "DSC (int8)", "EE (4-thr)", "DSC x EE", "Paper DSC x EE"]);
    let paper = [
        ("1M", 0.9304 * 11.81),
        ("2M", 0.9301 * 10.27),
        ("4M", 0.9349 * 9.57),
        ("8M", 0.9365 * 4.57),
        ("16M", 0.9384 * 3.17),
    ];
    let mut ours = Vec::new();
    for (i, size) in ModelSize::ALL.into_iter().enumerate() {
        eprintln!("[fig4] {size} ...");
        let rep = ctx.dpu_runner_256(size, 4).run_throughput(frames, 0xF164);
        let dsc = ctx.accuracy_int8(size).global().mean / 100.0;
        let prod = dsc * rep.energy_efficiency();
        ours.push(prod);
        t.row(vec![
            size.label().to_string(),
            format!("{:.4}", dsc),
            format!("{:.2}", rep.energy_efficiency()),
            format!("{prod:.2}"),
            format!("{:.2}", paper[i].1),
        ]);
    }
    let improvement_1m_16m = ours[0] / ours[4];
    let improvement_1m_2m = ours[0] / ours[1];
    let body = format!(
        "{}\n1M vs 16M: {improvement_1m_16m:.2}x (paper: 3.7x); 1M vs 2M: \
         {improvement_1m_2m:.2}x (paper: 1.15x).\n",
        t.markdown()
    );
    emit(&ctx.out_dir(), "fig4-dsc-times-ee", &body);
}
