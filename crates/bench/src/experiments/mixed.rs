//! Mixed-precision deployment study: per-layer W4/W8 bitwidth assignment
//! on the Table II models.
//!
//! Two phases per model, both off one calibration pass:
//!
//! 1. **Sensitivity sweep** — each conv/tconv is quantized to W4 alone and
//!    scored against the FP32 reference (argmax agreement + per-class Dice
//!    on the FP32 argmax labels), tabulating which layers tolerate the
//!    nibble grid and which collapse;
//! 2. **Greedy cost-aware search** — layers are flipped to W4 in order of
//!    modeled DPU frame-cycle saving (W4 doubles the array's
//!    output-channel parallelism and halves weight DMA), reverting any flip
//!    that drags cumulative agreement below the floor.
//!
//! The CI smoke property (asserted for the 16M model): the found mixed plan
//! must cut modeled DPU frame cycles AND total weight bytes against uniform
//! INT8 while holding argmax agreement at or above the floor.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca_dpu::arch::DpuArch;
use seneca_nn::unet::ModelSize;
use seneca_quant::ptq::calibrate;
use seneca_quant::{
    fuse, quantize_from_calibration, search_mixed_plan, sensitivity_sweep, Bitwidth, PtqConfig,
    QuantizedGraph,
};
use serde_json::{json, Value};

/// Model sizes studied: the SENECA model and the largest Table II family
/// member (the 16M model carries the CI assertion — it has the wide layers
/// where W4's doubled output parallelism actually pays).
const SIZES: [ModelSize; 2] = [ModelSize::M1, ModelSize::M16];

/// CT-ORG class count (background + 5 organs).
const NUM_CLASSES: usize = 6;

/// Agreement the mixed plan may give up relative to uniform INT8 (absolute
/// percentage points of argmax agreement vs the FP32 reference).
const AGREEMENT_MARGIN: f64 = 0.02;

/// Regenerates the mixed-precision study (`mixed-precision.md` +
/// `BENCH_mixed.json`).
pub fn run(ctx: &mut ExperimentCtx) {
    let arch = DpuArch::b4096_zcu104();
    let mut body = String::new();
    let mut json_models: Vec<Value> = Vec::new();

    for size in SIZES {
        let dep = ctx.deployment(size);
        let shape = dep.gpu_runner.input_shape;
        let fg = fuse(&dep.graph);
        let cfg = PtqConfig { max_images: ctx.wf.config.calibration_images, ..Default::default() };
        eprintln!("[mixed] {size}: calibrating once for the bitwidth study ...");
        let report = calibrate(&fg, &ctx.data.calibration, &cfg);
        let n_eval = ctx.data.calibration.len().min(4);
        let eval = &ctx.data.calibration[..n_eval];

        // Phase 1: per-layer sensitivity.
        eprintln!("[mixed] {size}: sensitivity sweep over {} layers ...", fg.nodes.len());
        let entries = sensitivity_sweep(&fg, &report, eval, NUM_CLASSES);
        let mut sweep_tbl =
            Table::new(vec!["Node", "Op", "Agreement %", "Mean Dice", "Min Dice", "Bytes saved"]);
        for e in &entries {
            sweep_tbl.row(vec![
                format!("n{}", e.node),
                e.mnemonic.clone(),
                format!("{:.2}", 100.0 * e.agreement),
                format!("{:.4}", e.mean_dice),
                format!("{:.4}", e.min_dice),
                format!("{}", e.bytes_saved),
            ]);
        }

        // Phase 2: greedy search under the modeled-cycles objective.
        let cycles = |qg: &QuantizedGraph| -> f64 {
            seneca_dpu::compile(qg, shape, arch.clone()).stats.compute_cycles as f64
        };
        let floor_probe =
            quantize_from_calibration(&fg, &report, &vec![Bitwidth::W8; fg.nodes.len()]);
        let base_agreement = seneca_quant::ptq::argmax_agreement(&fg, &floor_probe, eval);
        let floor = base_agreement - AGREEMENT_MARGIN;
        eprintln!("[mixed] {size}: greedy search, agreement floor {:.2}% ...", 100.0 * floor);
        let res = search_mixed_plan(&fg, &report, eval, floor, &cycles);

        let uniform = floor_probe;
        let mixed = quantize_from_calibration(&fg, &report, &res.plan.wbits);
        let xm_u = seneca_dpu::compile(&uniform, shape, arch.clone());
        let xm_m = seneca_dpu::compile(&mixed, shape, arch.clone());
        let n_layers = seneca_quant::mixed::quantizable_nodes(&fg).len();

        let mut tbl =
            Table::new(vec!["Plan", "W4 layers", "Weight KB", "Compute Mcycles", "Agreement %"]);
        tbl.row(vec![
            "uniform INT8".to_string(),
            format!("0/{n_layers}"),
            format!("{:.1}", xm_u.stats.weight_bytes as f64 / 1024.0),
            format!("{:.3}", xm_u.stats.compute_cycles as f64 / 1e6),
            format!("{:.2}", 100.0 * res.baseline_agreement),
        ]);
        tbl.row(vec![
            "mixed W4A8".to_string(),
            format!("{}/{n_layers}", res.plan.n_w4()),
            format!("{:.1}", xm_m.stats.weight_bytes as f64 / 1024.0),
            format!("{:.3}", xm_m.stats.compute_cycles as f64 / 1e6),
            format!("{:.2}", 100.0 * res.agreement),
        ]);

        if size == ModelSize::M16 {
            // The CI smoke property for the tentpole: the search must find a
            // mixed plan that wins on BOTH modeled axes without giving up
            // more agreement than the floor allows.
            assert!(res.plan.n_w4() > 0, "16M: no layer tolerated W4 at floor {floor:.3}");
            assert!(
                xm_m.stats.compute_cycles < xm_u.stats.compute_cycles,
                "16M mixed plan must cut modeled frame cycles: {} !< {}",
                xm_m.stats.compute_cycles,
                xm_u.stats.compute_cycles
            );
            assert!(
                xm_m.stats.weight_bytes < xm_u.stats.weight_bytes,
                "16M mixed plan must cut weight bytes: {} !< {}",
                xm_m.stats.weight_bytes,
                xm_u.stats.weight_bytes
            );
            assert!(
                res.agreement >= floor,
                "16M mixed plan broke the agreement floor: {} < {floor}",
                res.agreement
            );
        }

        body.push_str(&format!(
            "### {size} at {}x{}: per-layer W4 sensitivity ({} eval images)\n\n{}\n",
            shape.h,
            shape.w,
            n_eval,
            sweep_tbl.markdown()
        ));
        body.push_str(&format!(
            "### {size}: greedy cost-aware plan (floor = uniform INT8 agreement − {:.0} pp)\n\n\
             {}\nCycles use the bitwidth-aware B4096 model (W4 doubles output-channel \
             parallelism where layers are wide enough); weight bytes count nibble-packed \
             W4 panels at half a byte per element. Agreement is argmax match vs the FP32 \
             reference on the evaluation images.\n\n",
            100.0 * AGREEMENT_MARGIN,
            tbl.markdown()
        ));
        json_models.push(json!({
            "model": format!("{size}"),
            "input": [shape.n, shape.c, shape.h, shape.w],
            "eval_images": n_eval,
            "sensitivity": Value::Array(
                entries
                    .iter()
                    .map(|e| json!({
                        "node": e.node,
                        "op": e.mnemonic.clone(),
                        "agreement": e.agreement,
                        "mean_dice": e.mean_dice,
                        "min_dice": e.min_dice,
                        "bytes_saved": e.bytes_saved,
                    }))
                    .collect()
            ),
            "search": json!({
                "agreement_floor": floor,
                "baseline_agreement": res.baseline_agreement,
                "agreement": res.agreement,
                "w4_layers": res.plan.n_w4(),
                "total_layers": n_layers,
                "uniform_weight_bytes": xm_u.stats.weight_bytes,
                "mixed_weight_bytes": xm_m.stats.weight_bytes,
                "uniform_compute_cycles": xm_u.stats.compute_cycles,
                "mixed_compute_cycles": xm_m.stats.compute_cycles,
                "steps": Value::Array(
                    res.steps
                        .iter()
                        .map(|s| json!({
                            "node": s.node,
                            "accepted": s.accepted,
                            "agreement": s.agreement,
                            "cost": s.cost,
                        }))
                        .collect()
                ),
            }),
        }));
    }

    body.push_str(
        "One calibration pass feeds every candidate plan: activation fix positions do not \
         depend on the weight bitwidth, so only weights are re-quantized per plan. The \
         16M rows are asserted in CI: the mixed plan must beat uniform INT8 on both \
         modeled cycles and weight bytes at or above the agreement floor.\n",
    );
    emit(&ctx.out_dir(), "mixed-precision", &body);

    let doc = json!({
        "experiment": "mixed",
        "scale": ctx.scale.name(),
        "num_classes": NUM_CLASSES,
        "agreement_margin": AGREEMENT_MARGIN,
        "models": Value::Array(json_models),
    });
    let path = ctx.out_dir().join("BENCH_mixed.json");
    match serde_json::to_string(&doc) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                eprintln!("[mixed] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize BENCH_mixed.json: {e}"),
    }
}
