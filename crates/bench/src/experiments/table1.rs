//! Table I: organ frequencies in the (synthetic) CT-ORG dataset.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca_data::stats::cohort_frequencies;
use seneca_data::volume::Organ;

/// Regenerates Table I from the synthetic cohort.
pub fn run(ctx: &mut ExperimentCtx) {
    let ds = ctx.wf.cohort();
    eprintln!("[table1] streaming {} volumes ...", ds.config.n_patients);
    let f = cohort_frequencies(&ds);

    let mut t =
        Table::new(vec!["Source", "Liver", "Bladder", "Lungs", "Kidneys", "Bones", "Brain"]);
    t.row(
        std::iter::once("Paper (CT-ORG)".to_string())
            .chain(Organ::ALL.iter().map(|o| format!("{:.2}%", o.paper_frequency_pct())))
            .collect(),
    );
    t.row(
        std::iter::once("Ours (synthetic)".to_string())
            .chain(Organ::ALL.iter().map(|o| format!("{:.2}%", f.of(*o))))
            .collect(),
    );
    let body = format!(
        "{}\nLabeled voxels counted: {} of {} total ({} patients).\n",
        t.markdown(),
        f.labeled,
        f.total,
        ds.config.n_patients
    );
    emit(&ctx.out_dir(), "table1-organ-frequencies", &body);
}
