//! Fig. 3: average energy efficiency per model — GPU baseline vs ZCU104
//! with 1, 2, 4 (and 8, for the §IV-B claim) threads.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca_nn::unet::ModelSize;

/// Regenerates Fig. 3 as a table plus an ASCII bar chart.
pub fn run(ctx: &mut ExperimentCtx) {
    let frames = ctx.wf.config.throughput_frames;
    let threads_list = [1usize, 2, 4, 8];

    let mut t = Table::new(vec![
        "Model",
        "GPU EE",
        "ZCU104 1-thr",
        "ZCU104 2-thr",
        "ZCU104 4-thr",
        "ZCU104 8-thr",
        "4-thr FPS",
        "8-thr FPS",
    ]);
    let mut chart = String::new();
    let mut max_ee: f64 = 0.0;
    let mut rows = Vec::new();

    for size in ModelSize::ALL {
        eprintln!("[fig3] {size}: thread sweep ...");
        // Backends in list order: [gpu, dpu@1thr, dpu@2thr, dpu@4thr, dpu@8thr].
        let backends = ctx.backends_256(size, &threads_list);
        let reps: Vec<_> = backends.iter().map(|b| b.throughput(frames, 0xF163)).collect();
        let gee = reps[0].energy_efficiency();
        let ees: Vec<f64> = reps[1..].iter().map(|r| r.energy_efficiency()).collect();
        let fps: Vec<f64> = reps[1..].iter().map(|r| r.fps).collect();
        max_ee = max_ee.max(ees.iter().cloned().fold(gee, f64::max));
        rows.push((size, gee, ees.clone(), fps.clone()));
        t.row(vec![
            size.label().to_string(),
            format!("{gee:.2}"),
            format!("{:.2}", ees[0]),
            format!("{:.2}", ees[1]),
            format!("{:.2}", ees[2]),
            format!("{:.2}", ees[3]),
            format!("{:.1}", fps[2]),
            format!("{:.1}", fps[3]),
        ]);
    }

    // ASCII grouped bars.
    for (size, gee, ees, _) in &rows {
        chart.push_str(&format!("{:>4}\n", size.label()));
        let bar = |label: &str, v: f64| -> String {
            let width = ((v / max_ee) * 50.0).round() as usize;
            format!("  {label:<10} {} {v:.2}\n", "#".repeat(width.max(1)))
        };
        chart.push_str(&bar("GPU", *gee));
        for (i, thr) in [1, 2, 4, 8].iter().enumerate() {
            chart.push_str(&bar(&format!("FPGA {thr}t"), ees[i]));
        }
    }

    let body = format!(
        "{}\nEnergy efficiency in FPS/Watt; the paper sweeps 1/2/4 threads and reports that \
         8+ threads draw more power with no FPS gain (visible in the 8-thr column: FPS flat \
         vs 4-thr, EE lower).\n\n```text\n{chart}```\n",
        t.markdown()
    );
    emit(&ctx.out_dir(), "fig3-energy-efficiency", &body);
}
