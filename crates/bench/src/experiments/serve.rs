//! Serving saturation experiment: offered load × batch window per backend.
//!
//! For every inference path of the M1 deployment, the experiment first
//! measures the saturation throughput with a closed-loop load (always-busy
//! clients, admission blocking), then sweeps an open-loop Poisson arrival
//! process at 0.5×/1×/2× that rate across three micro-batching windows with
//! `RejectWhenFull` admission and a deadline on every request. The output is
//! the saturation table (served FPS, loss rate, interactive p99) and a
//! machine-readable `BENCH_serve.json`.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca_nn::unet::ModelSize;
use seneca_serve::{run_load, AdmissionPolicy, LoadSpec, ServeConfig, Server};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Duration;

/// Replicas in the pool — the ZCU104 runs two DPU cores.
const REPLICAS: usize = 2;
/// Batch-window sweep (ms).
const WINDOWS_MS: [u64; 3] = [0, 2, 8];
/// Offered-load multipliers over the measured saturation rate.
const LOAD_X: [f64; 3] = [0.5, 1.0, 2.0];

fn serve_config(window_ms: u64, admission: AdmissionPolicy) -> ServeConfig {
    ServeConfig {
        replicas: REPLICAS,
        max_batch: 4,
        max_delay: Duration::from_millis(window_ms),
        queue_capacity: 8,
        admission,
    }
}

/// Deadline scaled to the measured service rate: enough slack for a full
/// queue plus in-flight batches, with a floor for fast backends where the
/// bound would dip under scheduler jitter.
fn deadline_for(sat_fps: f64) -> Duration {
    let cfg = serve_config(0, AdmissionPolicy::Block);
    let backlog = (cfg.queue_capacity + cfg.replicas * cfg.max_batch) as f64;
    Duration::from_secs_f64((4.0 * backlog / sat_fps.max(1.0)).max(0.05))
}

/// Regenerates the serving saturation table.
pub fn run(ctx: &mut ExperimentCtx) {
    // Modest request counts: every request is a real inference on the host.
    let n_sat = ctx.wf.config.throughput_frames.clamp(16, 48);
    let n_cell = ctx.wf.config.throughput_frames.clamp(16, 32);
    let dep = ctx.deployment(ModelSize::M1);
    let frame = {
        let shape = dep.gpu_runner.input_shape;
        let data = (0..shape.len()).map(|i| ((i * 37) % 255) as f32 / 127.0 - 1.0).collect();
        seneca_tensor::Tensor::from_vec(shape, data)
    };

    let mut t = Table::new(vec![
        "Backend",
        "Sat FPS",
        "Window",
        "Offered",
        "Served FPS",
        "Loss %",
        "Mean batch",
        "Intact p50 ms",
        "Intact p99 ms",
        "Deadline ms",
    ]);
    let mut json_backends: Vec<Value> = Vec::new();

    let mut backends = dep.backends();
    for b in &mut backends {
        b.prepare();
    }
    for backend in backends {
        let name = backend.name();
        let backend: Arc<dyn seneca::backend::Backend> = Arc::from(backend);
        eprintln!("[serve] {name}: measuring saturation ...");

        // Closed loop with more always-busy clients than replicas: the
        // served rate is the service capacity at max_batch batching.
        let server = Server::start(backend.clone(), serve_config(2, AdmissionPolicy::Block));
        run_load(&server.handle(), &frame, &LoadSpec::closed(n_sat, 2 * REPLICAS, 0xE5));
        let sat_stats = server.shutdown();
        let sat_fps = sat_stats.served_fps.max(1.0);
        let deadline = deadline_for(sat_fps);

        let mut json_cells: Vec<Value> = Vec::new();
        for window_ms in WINDOWS_MS {
            for mult in LOAD_X {
                let offered = mult * sat_fps;
                let server = Server::start(
                    backend.clone(),
                    serve_config(window_ms, AdmissionPolicy::RejectWhenFull),
                );
                let spec = LoadSpec {
                    deadline: Some(deadline),
                    interactive_fraction: 0.5,
                    ..LoadSpec::open(n_cell, offered, 0xE5 + window_ms)
                };
                let rep2 = run_load(&server.handle(), &frame, &spec);
                let stats = server.shutdown();
                t.row(vec![
                    name.clone(),
                    format!("{sat_fps:.1}"),
                    format!("{window_ms} ms"),
                    format!("{mult:.1}x"),
                    format!("{:.1}", stats.served_fps),
                    format!("{:.1}", 100.0 * stats.loss_rate()),
                    format!("{:.2}", stats.mean_batch),
                    format!("{:.1}", stats.total_interactive.p50_us as f64 / 1000.0),
                    format!("{:.1}", stats.total_interactive.p99_us as f64 / 1000.0),
                    format!("{:.0}", deadline.as_secs_f64() * 1000.0),
                ]);
                json_cells.push(json!({
                    "window_ms": window_ms,
                    "load_multiplier": mult,
                    "offered_fps": rep2.offered_fps,
                    "served_fps": stats.served_fps,
                    "served": stats.served,
                    "served_interactive": stats.served_interactive,
                    "served_batch": stats.served_batch,
                    "rejected": stats.rejected,
                    "shed_expired": stats.shed_expired,
                    "shed_interactive": stats.shed_interactive,
                    "shed_batch": stats.shed_batch,
                    "deadline_misses": stats.deadline_misses,
                    "loss_rate": stats.loss_rate(),
                    "mean_batch": stats.mean_batch,
                    "p50_us": stats.total_interactive.p50_us,
                    "p95_us": stats.total_interactive.p95_us,
                    "p99_us": stats.total_interactive.p99_us,
                    "deadline_ms": deadline.as_secs_f64() * 1000.0
                }));
            }
        }
        json_backends.push(json!({
            "backend": name.clone(),
            "saturation_fps": sat_fps,
            "cells": Value::Array(json_cells)
        }));
    }

    let body = format!(
        "{}\nSaturation measured closed-loop ({n_sat} requests, {} clients, admission \
         blocking); each cell is an open-loop Poisson run of {n_cell} requests with \
         `RejectWhenFull` admission, 50% interactive traffic, and the listed deadline. \
         At 2x offered load the service keeps running: excess arrivals are rejected at \
         admission (loss %), and the interactive p99 stays under the deadline.\n",
        t.markdown(),
        2 * REPLICAS,
    );
    emit(&ctx.out_dir(), "serve-saturation", &body);

    let doc = json!({
        "experiment": "serve-saturation",
        "model": "M1",
        "replicas": REPLICAS,
        "backends": Value::Array(json_backends)
    });
    let path = ctx.out_dir().join("BENCH_serve.json");
    match serde_json::to_string(&doc) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                eprintln!("[serve] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize BENCH_serve.json: {e}"),
    }
}
