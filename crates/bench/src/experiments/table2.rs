//! Table II: layers / filters / parameters of the five configurations.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use rand::SeedableRng;
use seneca_nn::unet::{ModelSize, UNet};

/// Regenerates Table II from the model builder.
pub fn run(ctx: &mut ExperimentCtx) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut t = Table::new(vec![
        "Configuration",
        "Layers",
        "Filters",
        "Params (ours)",
        "Params (paper)",
        "Error",
    ]);
    for size in ModelSize::ALL {
        let cfg = size.config();
        let net = UNet::new(cfg, &mut rng);
        let ours = net.param_count() as f64 / 1e6;
        let paper = size.paper_params_m();
        t.row(vec![
            size.label().to_string(),
            cfg.layers().to_string(),
            cfg.base_filters.to_string(),
            format!("{ours:.3}M"),
            format!("{paper:.3}M"),
            format!("{:+.1}%", (ours / paper - 1.0) * 100.0),
        ]);
    }
    emit(&ctx.out_dir(), "table2-model-configurations", &t.markdown());
}
