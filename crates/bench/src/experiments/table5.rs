//! Table V: SENECA (1M INT8, 4 threads) vs its GPU counterpart vs the
//! CT-ORG 3D U-Net [17] — FPS, EE, global and per-organ DSC, plus the
//! global TPR/TNR discussed in §IV-D.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, pm, Table};
use seneca_data::volume::Organ;
use seneca_metrics::literature::{ct_org_unet3d, seneca_fpga};
use seneca_nn::unet::ModelSize;

/// Regenerates Table V.
pub fn run(ctx: &mut ExperimentCtx) {
    let size = ModelSize::M1; // "from now on, this model will be referred to as SENECA"
    let frames = ctx.wf.config.throughput_frames;
    let runs = ctx.wf.config.throughput_runs;

    eprintln!("[table5] throughput ...");
    // Backends in list order: [gpu, dpu@4thr]; seeds follow the same order.
    let backends = ctx.backends_256(size, &[4]);
    let stats: Vec<_> = backends
        .iter()
        .zip([0x7AB6u64, 0x7AB5])
        .map(|(b, seed)| b.throughput_repeated(frames, runs, seed))
        .collect();
    let (gstats, dstats) = (&stats[0], &stats[1]);
    let int8 = ctx.accuracy_int8(size);
    let fp32 = ctx.accuracy_fp32(size);

    let mut t =
        Table::new(vec!["Metric", "FPGA (ours)", "GPU (ours)", "FPGA (paper)", "CT-ORG [17]"]);
    t.row(vec![
        "FPS".to_string(),
        pm(dstats.fps_mean, dstats.fps_std, 1),
        pm(gstats.fps_mean, gstats.fps_std, 2),
        "335.4 ± 0.34".to_string(),
        format!("[{:.0}-{:.0}]", ct_org_unet3d::FPS_RANGE.0, ct_org_unet3d::FPS_RANGE.1),
    ]);
    t.row(vec![
        "Energy Efficiency".to_string(),
        pm(dstats.ee_mean, dstats.ee_std, 2),
        pm(gstats.ee_mean, gstats.ee_std, 2),
        "11.81 ± 0.02".to_string(),
        "n/a".to_string(),
    ]);
    let g8 = int8.global();
    let g32 = fp32.global();
    t.row(vec![
        "Global DSC".to_string(),
        pm(g8.mean, g8.std, 2),
        pm(g32.mean, g32.std, 2),
        pm(seneca_fpga::GLOBAL.mean, seneca_fpga::GLOBAL.std, 2),
        pm(ct_org_unet3d::GLOBAL.mean, ct_org_unet3d::GLOBAL.std, 2),
    ]);
    let lit = [
        (Organ::Liver, seneca_fpga::LIVER, ct_org_unet3d::LIVER),
        (Organ::Bladder, seneca_fpga::BLADDER, ct_org_unet3d::BLADDER),
        (Organ::Lungs, seneca_fpga::LUNGS, ct_org_unet3d::LUNGS),
        (Organ::Kidneys, seneca_fpga::KIDNEYS, ct_org_unet3d::KIDNEYS),
        (Organ::Bones, seneca_fpga::BONES, ct_org_unet3d::BONES),
    ];
    for (organ, paper_fpga, paper_ctorg) in lit {
        let o8 = int8.organ(organ);
        let o32 = fp32.organ(organ);
        t.row(vec![
            format!("{organ} DSC"),
            pm(o8.mean, o8.std, 2),
            pm(o32.mean, o32.std, 2),
            pm(paper_fpga.mean, paper_fpga.std, 2),
            pm(paper_ctorg.mean, paper_ctorg.std, 2),
        ]);
    }
    let tpr = int8.global_tpr();
    let tnr = int8.global_tnr();
    t.row(vec![
        "Global TPR".to_string(),
        pm(tpr.mean, tpr.std, 2),
        "-".to_string(),
        pm(seneca_fpga::GLOBAL_TPR.mean, seneca_fpga::GLOBAL_TPR.std, 2),
        "n/a".to_string(),
    ]);
    t.row(vec![
        "Global TNR".to_string(),
        pm(tnr.mean, tnr.std, 2),
        "-".to_string(),
        pm(seneca_fpga::GLOBAL_TNR.mean, seneca_fpga::GLOBAL_TNR.std, 2),
        "n/a".to_string(),
    ]);

    emit(&ctx.out_dir(), "table5-seneca-vs-baselines", &t.markdown());
}
