//! Fleet saturation experiment: tenant isolation across the Table II zoo.
//!
//! All five U-Net sizes run concurrently as one fleet — each behind its own
//! replica pool on every shard, with the INT8 DPU runtime as the backend
//! and the paper's Table IV Dice/FPS as the routing metadata. Three tenants
//! exercise the SLO machinery: an interactive tenant on the cheap end of
//! the Pareto, a second interactive tenant with a Dice floor below its
//! target (downgrade allowed), and a batch tenant whose offered load sweeps
//! 0.5×/1×/2× of the measured saturation rate. The output is the isolation
//! table (per-tenant served/shed/p99 per overload level), a live
//! `seneca-trace` export taken from the running fleet, and a
//! machine-readable `BENCH_fleet.json`.
//!
//! The 2× column doubles as the CI smoke gate: the run *asserts* that the
//! fleet stays up, that the batch excess is turned away explicitly, and
//! that no interactive tenant misses a deadline or sees its p99 pushed past
//! the SLO by the overload.

use crate::ctx::ExperimentCtx;
use crate::fmt::{emit, Table};
use seneca::backend::Backend;
use seneca_fleet::{
    run_mixed_load, FleetBuilder, FleetConfig, FleetStats, ModelSpec, TenantLoad, TenantSpec,
};
use seneca_metrics::literature::TABLE4;
use seneca_nn::unet::ModelSize;
use seneca_serve::{AdmissionPolicy, ServeConfig};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Duration;

/// Shards in the fleet (each model gets one replica pool per shard).
const SHARDS: usize = 2;
/// Replicas per (shard, model) cell — the ZCU104 runs two DPU cores.
const REPLICAS: usize = 2;
/// Batch-tenant offered load as a multiple of measured saturation.
const BATCH_X: [f64; 3] = [0.5, 1.0, 2.0];
/// Interactive offered loads (fractions of saturation) for surgery/clinic.
const INTERACTIVE_X: [f64; 2] = [0.2, 0.1];

fn fleet_config() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        serve: ServeConfig {
            replicas: REPLICAS,
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 16,
            admission: AdmissionPolicy::RejectWhenFull,
        },
        batch_inflight_cap: 8,
    }
}

/// Builds a fresh fleet over all five Table II models: INT8 DPU runtime as
/// the backend, Table IV INT8 Dice/FPS as the routing metadata.
fn build_fleet(ctx: &mut ExperimentCtx) -> FleetBuilder {
    let sizes = [ModelSize::M1, ModelSize::M2, ModelSize::M4, ModelSize::M8, ModelSize::M16];
    let mut b = FleetBuilder::new(fleet_config());
    for (size, row) in sizes.into_iter().zip(TABLE4) {
        let dep = ctx.deployment(size);
        let mut runner = dep.dpu_runner.clone();
        runner.prepare();
        b.model(ModelSpec::from_fps(
            row.model,
            row.dsc_int8.mean,
            row.fps_int8.mean,
            Arc::new(runner),
        ));
    }
    b
}

/// Deadline scaled to the measured per-cell service rate: enough slack for
/// a full queue plus in-flight batches, floored against scheduler jitter.
fn deadline_for(cell_fps: f64) -> Duration {
    let cfg = fleet_config();
    let backlog = (cfg.serve.queue_capacity + cfg.serve.replicas * cfg.serve.max_batch) as f64;
    Duration::from_secs_f64((4.0 * backlog / cell_fps.max(1.0)).max(0.05))
}

fn tenant_json(stats: &FleetStats, name: &str) -> Value {
    let t = stats.tenant(name).expect("tenant registered");
    json!({
        "tenant": t.name.clone(),
        "tier": t.tier.clone(),
        "deadline_ms": t.deadline_ms.unwrap_or(0.0),
        "dice_target": t.dice_target,
        "dice_floor": t.dice_floor,
        "submitted": t.submitted,
        "served": t.served,
        "shed": t.shed,
        "rejected": t.rejected,
        "failed": t.failed,
        "downgraded": t.downgraded,
        "deadline_misses": t.deadline_misses,
        "min_routed_dice": t.min_routed_dice().unwrap_or(0.0),
        "p50_us": t.latency.p50_us,
        "p95_us": t.latency.p95_us,
        "p99_us": t.latency.p99_us
    })
}

/// Regenerates the fleet saturation/isolation table.
pub fn run(ctx: &mut ExperimentCtx) {
    // Modest request counts: every request is a real INT8 inference.
    let n_cell = ctx.wf.config.throughput_frames.clamp(24, 48);
    let frame = {
        let shape = ctx.deployment(ModelSize::M1).gpu_runner.input_shape;
        let data = (0..shape.len()).map(|i| ((i * 37) % 255) as f32 / 127.0 - 1.0).collect();
        seneca_tensor::Tensor::from_vec(shape, data)
    };

    // Saturation: a closed-loop batch tenant with more always-busy clients
    // than the fleet has replicas for its primary model (the cheapest one
    // meeting 93.0%, i.e. 1M on the Table IV data).
    eprintln!("[fleet] measuring saturation of the batch tenant's primary model ...");
    let mut b = build_fleet(ctx);
    let probe = b.tenant(TenantSpec::batch("probe", 93.0));
    let fleet = b.start();
    let rep = run_mixed_load(
        &fleet.handle(),
        &frame,
        &[TenantLoad::closed(probe, 2 * n_cell, 2 * SHARDS * REPLICAS, 0xF1EE)],
    );
    fleet.shutdown();
    let sat_fps = (rep[0].ok as f64 / rep[0].wall_s.max(1e-9)).max(1.0);
    let deadline = deadline_for(sat_fps / SHARDS as f64);
    eprintln!(
        "[fleet] saturation {:.1} FPS across {SHARDS} shards; interactive deadline {:.0} ms",
        sat_fps,
        deadline.as_secs_f64() * 1000.0
    );

    let mut t = Table::new(vec![
        "Batch load",
        "Tenant",
        "Tier",
        "Served",
        "Shed",
        "Rejected",
        "Downgraded",
        "Misses",
        "p99 ms",
        "Min dice",
    ]);
    let mut json_cells: Vec<Value> = Vec::new();
    let mut trace_batches = 0u64;

    let trace_was_enabled = seneca_trace::enabled();
    seneca_trace::set_enabled(true);
    seneca_trace::report(); // drain leftovers so the live export is fleet-only

    for mult in BATCH_X {
        let mut b = build_fleet(ctx);
        let bulk = b.tenant(TenantSpec::batch("bulk", 93.0));
        let surgery = b.tenant(TenantSpec::interactive("surgery", deadline, 93.0));
        let clinic = b.tenant(TenantSpec::interactive("clinic", deadline, 93.4).with_floor(93.0));
        let fleet = b.start();
        let h = fleet.handle();

        let n_bulk = ((mult * n_cell as f64) as usize).max(8);
        let n_inter = (n_cell / 2).max(8);
        let reports = run_mixed_load(
            &h,
            &frame,
            &[
                TenantLoad { patients: 64, ..TenantLoad::open(bulk, n_bulk, mult * sat_fps, 0xB0) },
                TenantLoad {
                    patients: 32,
                    ..TenantLoad::open(surgery, n_inter, INTERACTIVE_X[0] * sat_fps, 0x51)
                },
                TenantLoad {
                    patients: 32,
                    ..TenantLoad::open(clinic, n_inter, INTERACTIVE_X[1] * sat_fps, 0xC1)
                },
            ],
        );

        // The admin surface at work: a profiler view of the *running*
        // fleet, exported without stopping or restarting anything.
        let live = h.trace_report();
        if let Some(row) = live.get("serve", "replica_exec") {
            trace_batches += row.count;
        }

        let stats = fleet.shutdown();
        let resolved: u64 = reports.iter().map(|r| r.ok + r.errored).sum();
        assert_eq!(
            resolved,
            (n_bulk + 2 * n_inter) as u64,
            "fleet must stay up: every request resolves at {mult}x batch load"
        );

        for name in ["bulk", "surgery", "clinic"] {
            let ts = stats.tenant(name).unwrap();
            t.row(vec![
                format!("{mult:.1}x"),
                ts.name.clone(),
                ts.tier.clone(),
                format!("{}", ts.served),
                format!("{}", ts.shed),
                format!("{}", ts.rejected),
                format!("{}", ts.downgraded),
                format!("{}", ts.deadline_misses),
                format!("{:.1}", ts.latency.p99_us as f64 / 1000.0),
                ts.min_routed_dice().map_or("-".into(), |d| format!("{d:.2}")),
            ]);
        }
        json_cells.push(json!({
            "batch_multiplier": mult,
            "offered_batch_fps": reports[0].offered_fps,
            "tenants": Value::Array(
                ["bulk", "surgery", "clinic"].iter().map(|n| tenant_json(&stats, n)).collect()
            )
        }));

        // The CI smoke gate rides on the overload column.
        if mult >= 2.0 {
            let bulk_stats = stats.tenant("bulk").unwrap();
            assert!(
                bulk_stats.shed + bulk_stats.rejected > 0,
                "2x batch overload must shed or reject explicitly: {bulk_stats:?}"
            );
        }
        for name in ["surgery", "clinic"] {
            let ts = stats.tenant(name).unwrap();
            assert_eq!(
                ts.deadline_misses, 0,
                "batch load at {mult}x moved {name}'s deadline: {ts:?}"
            );
            assert!(
                ts.latency.p99_us < deadline.as_micros() as u64,
                "{name} p99 {}us exceeds the {deadline:?} SLO at {mult}x batch load",
                ts.latency.p99_us
            );
        }
        for ts in &stats.tenants {
            if let Some(min) = ts.min_routed_dice() {
                assert!(
                    min >= ts.dice_floor,
                    "tenant {} routed to dice {min:.2} below its floor {:.2}",
                    ts.name,
                    ts.dice_floor
                );
            }
        }
    }
    seneca_trace::set_enabled(trace_was_enabled);

    let body = format!(
        "{}\nFive models (Table IV Dice/FPS metadata, INT8 DPU backends) on {SHARDS} shards x \
         {REPLICAS} replicas. Saturation {sat_fps:.1} FPS measured closed-loop on the batch \
         tenant's primary model; interactive deadline {:.0} ms. At 2x batch load the excess is \
         shed or rejected while both interactive tenants keep zero deadline misses and a p99 \
         under the SLO, and no tenant is ever routed below its Dice floor ({trace_batches} \
         replica batches observed via the live trace export).\n",
        t.markdown(),
        deadline.as_secs_f64() * 1000.0,
    );
    emit(&ctx.out_dir(), "fleet-saturation", &body);

    let doc = json!({
        "experiment": "fleet-saturation",
        "scale": ctx.scale.name(),
        "shards": SHARDS,
        "replicas": REPLICAS,
        "batch_inflight_cap": fleet_config().batch_inflight_cap,
        "saturation_fps": sat_fps,
        "deadline_ms": deadline.as_secs_f64() * 1000.0,
        "trace_replica_batches": trace_batches,
        "models": Value::Array(
            TABLE4
                .iter()
                .map(|r| json!({
                    "model": r.model,
                    "dice_int8": r.dsc_int8.mean,
                    "cost_ms": 1000.0 / r.fps_int8.mean
                }))
                .collect()
        ),
        "cells": Value::Array(json_cells)
    });
    let path = ctx.out_dir().join("BENCH_fleet.json");
    match serde_json::to_string(&doc) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                eprintln!("[fleet] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize BENCH_fleet.json: {e}"),
    }
}
