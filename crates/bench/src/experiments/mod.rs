//! One module per paper table/figure, plus the ablations.

pub mod ablations;
pub mod boundary;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fleet;
pub mod mixed;
pub mod profile;
pub mod robustness;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::ctx::ExperimentCtx;

/// All experiment names in run order.
pub const ALL: [&str; 18] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablation-quant",
    "ablation-prune",
    "ablation-arch",
    "boundary",
    "serve",
    "fleet",
    "profile",
    "mixed",
    "robustness",
];

/// Dispatches one experiment by name. Returns false for unknown names.
pub fn run(name: &str, ctx: &mut ExperimentCtx) -> bool {
    match name {
        "table1" => table1::run(ctx),
        "table2" => table2::run(ctx),
        "table3" => table3::run(ctx),
        "table4" => table4::run(ctx),
        "table5" => table5::run(ctx),
        "fig3" => fig3::run(ctx),
        "fig4" => fig4::run(ctx),
        "fig5" => fig5::run(ctx),
        "fig6" => fig6::run(ctx),
        "ablation-quant" => ablations::run_quant(ctx),
        "ablation-prune" => ablations::run_prune(ctx),
        "ablation-arch" => ablations::run_arch(ctx),
        "boundary" => boundary::run(ctx),
        "serve" => serve::run(ctx),
        "fleet" => fleet::run(ctx),
        "profile" => profile::run(ctx),
        "mixed" => mixed::run(ctx),
        "robustness" => robustness::run(ctx),
        _ => return false,
    }
    true
}
