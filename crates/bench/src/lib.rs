//! # seneca-bench
//!
//! The experiment harness regenerating every table and figure of the paper,
//! plus criterion micro-benchmarks of the hot kernels. The `reproduce`
//! binary dispatches to [`experiments`]; [`ctx`] owns the shared state
//! (cohort, trained models, deployments) so a full `reproduce all` trains
//! each model exactly once.

pub mod ctx;
pub mod experiments;
pub mod fmt;

pub use ctx::{ExperimentCtx, Scale};
