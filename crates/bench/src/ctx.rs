//! Shared experiment context: one cohort, one training run per model size,
//! lazily-built deployments, memoised accuracy reports.

use seneca::backend::Backend;
use seneca::eval::{evaluate_backend, AccuracyReport};
use seneca::workflow::{Deployment, PreparedData, Workflow};
use seneca::{zoo, SenecaConfig};
use seneca_dpu::arch::DpuArch;
use seneca_dpu::runtime::{DpuRunner, RuntimeConfig};
use seneca_nn::unet::ModelSize;
use seneca_tensor::Shape4;
use std::collections::HashMap;
use std::sync::Arc;

/// Experiment scale selector (`--scale` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke runs.
    Fast,
    /// Minutes-scale, the default for recorded experiments.
    Reduced,
    /// Paper-faithful 256 px / 140 patients (hours on CPU).
    Paper,
}

impl Scale {
    /// Parses the CLI value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "fast" => Some(Scale::Fast),
            "reduced" => Some(Scale::Reduced),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The CLI spelling (used in machine-readable artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Fast => "fast",
            Scale::Reduced => "reduced",
            Scale::Paper => "paper",
        }
    }

    /// The matching workflow configuration.
    pub fn config(self) -> SenecaConfig {
        match self {
            Scale::Fast => SenecaConfig::fast(),
            Scale::Reduced => SenecaConfig::reduced(),
            Scale::Paper => SenecaConfig::paper(),
        }
    }
}

/// Shared state across experiments.
pub struct ExperimentCtx {
    /// The workflow (config + cohort access).
    pub wf: Workflow,
    /// Stage-A data (built once).
    pub data: PreparedData,
    /// The scale this context was built at (recorded in artifacts).
    pub scale: Scale,
    deployments: HashMap<ModelSize, Arc<Deployment>>,
    accuracy_fp32: HashMap<ModelSize, Arc<AccuracyReport>>,
    accuracy_int8: HashMap<ModelSize, Arc<AccuracyReport>>,
}

impl ExperimentCtx {
    /// Builds the context (generates + preprocesses the cohort).
    pub fn new(scale: Scale) -> Self {
        let wf = Workflow::new(scale.config());
        eprintln!("[ctx] preparing synthetic CT-ORG cohort ...");
        let data = wf.prepare_data();
        eprintln!(
            "[ctx] {} training slices, {} calibration images, {} test patients",
            data.train.len(),
            data.calibration.len(),
            data.test_by_patient.len()
        );
        Self {
            wf,
            data,
            scale,
            deployments: HashMap::new(),
            accuracy_fp32: HashMap::new(),
            accuracy_int8: HashMap::new(),
        }
    }

    /// Trains (or loads) + quantises + compiles one model size.
    pub fn deployment(&mut self, size: ModelSize) -> Arc<Deployment> {
        if let Some(d) = self.deployments.get(&size) {
            return Arc::clone(d);
        }
        eprintln!("[ctx] building deployment for {size} ...");
        let net = zoo::get_or_train(&self.wf, size, &self.data);
        let qg = self.wf.quantize(&net, size, &self.data);
        let dep = Arc::new(self.wf.compile_and_deploy(net, qg, size));
        self.deployments.insert(size, Arc::clone(&dep));
        dep
    }

    /// A DPU runner compiled for the *paper's* 256x256 input geometry (used
    /// by throughput experiments regardless of the accuracy resolution).
    pub fn dpu_runner_256(&mut self, size: ModelSize, threads: usize) -> DpuRunner {
        let dep = self.deployment(size);
        let xm =
            seneca_dpu::compile(&dep.qgraph, Shape4::new(1, 1, 256, 256), DpuArch::b4096_zcu104());
        DpuRunner::new(Arc::new(xm), RuntimeConfig { threads, ..Default::default() })
    }

    /// A GPU runner at the paper's 256x256 geometry.
    pub fn gpu_runner_256(&mut self, size: ModelSize) -> seneca_gpu::GpuRunner {
        let dep = self.deployment(size);
        seneca_gpu::GpuRunner::new(
            dep.graph.clone(),
            seneca_gpu::GpuModel::rtx2060_mobile(),
            Shape4::new(1, 1, 256, 256),
        )
    }

    /// The throughput-experiment backends at the paper's 256x256 geometry:
    /// the GPU baseline first, then one DPU runtime per requested thread
    /// count. All are [`Backend`]s, so experiments iterate the list instead
    /// of hard-coding the two devices.
    pub fn backends_256(
        &mut self,
        size: ModelSize,
        dpu_threads: &[usize],
    ) -> Vec<Box<dyn Backend>> {
        let mut backends: Vec<Box<dyn Backend>> = vec![Box::new(self.gpu_runner_256(size))];
        for &threads in dpu_threads {
            backends.push(Box::new(self.dpu_runner_256(size, threads)));
        }
        for b in &mut backends {
            b.prepare();
        }
        backends
    }

    /// FP32 (GPU baseline) accuracy on the test split, memoised.
    pub fn accuracy_fp32(&mut self, size: ModelSize) -> Arc<AccuracyReport> {
        if let Some(r) = self.accuracy_fp32.get(&size) {
            return Arc::clone(r);
        }
        let dep = self.deployment(size);
        eprintln!("[ctx] evaluating FP32 accuracy for {size} ...");
        let rep = Arc::new(evaluate_backend(&dep.gpu_runner, &self.data));
        self.accuracy_fp32.insert(size, Arc::clone(&rep));
        rep
    }

    /// INT8 (DPU functional) accuracy on the test split, memoised.
    pub fn accuracy_int8(&mut self, size: ModelSize) -> Arc<AccuracyReport> {
        if let Some(r) = self.accuracy_int8.get(&size) {
            return Arc::clone(r);
        }
        let dep = self.deployment(size);
        eprintln!("[ctx] evaluating INT8 accuracy for {size} ...");
        let rep = Arc::new(evaluate_backend(&dep.dpu_runner, &self.data));
        self.accuracy_int8.insert(size, Arc::clone(&rep));
        rep
    }

    /// Output directory for rendered artifacts.
    pub fn out_dir(&self) -> std::path::PathBuf {
        let dir = zoo::artifacts_dir().join("experiments");
        let _ = std::fs::create_dir_all(&dir);
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("fast"), Some(Scale::Fast));
        assert_eq!(Scale::parse("reduced"), Some(Scale::Reduced));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("warp"), None);
    }

    #[test]
    fn context_builds_and_memoises() {
        let dir = std::env::temp_dir().join(format!("seneca-ctx-{}", std::process::id()));
        std::env::set_var("SENECA_ARTIFACTS", &dir);
        let mut ctx = ExperimentCtx::new(Scale::Fast);
        let a = ctx.deployment(ModelSize::M1);
        let b = ctx.deployment(ModelSize::M1);
        assert!(Arc::ptr_eq(&a, &b), "deployment must be memoised");
        let r1 = ctx.accuracy_fp32(ModelSize::M1);
        let r2 = ctx.accuracy_fp32(ModelSize::M1);
        assert!(Arc::ptr_eq(&r1, &r2));
        std::env::remove_var("SENECA_ARTIFACTS");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
