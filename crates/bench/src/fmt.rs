//! Markdown table formatting for experiment output.

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: vec![] }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let body: Vec<String> =
                cells.iter().enumerate().map(|(i, c)| format!("{:<w$}", c, w = width[i])).collect();
            format!("| {} |", body.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// "μ ± σ" cell.
pub fn pm(mean: f64, std: f64, prec: usize) -> String {
    format!("{:.p$} ± {:.p$}", mean, std, p = prec)
}

/// Ratio cell like "4.65x".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// Writes a named experiment section to disk and stdout.
pub fn emit(out_dir: &std::path::Path, name: &str, body: &str) {
    println!("\n## {name}\n\n{body}");
    let path = out_dir.join(format!("{name}.md"));
    if let Err(e) = std::fs::write(&path, format!("## {name}\n\n{body}")) {
        eprintln!("could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_layout() {
        let mut t = Table::new(vec!["Model", "FPS"]);
        t.row(vec!["1M", "335.4"]);
        t.row(vec!["16M", "98.1"]);
        let md = t.markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Model"));
        assert!(lines[1].starts_with("|-"));
        assert!(lines[2].contains("335.4"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn pm_and_ratio_format() {
        assert_eq!(pm(335.4, 0.34, 2), "335.40 ± 0.34");
        assert_eq!(ratio(335.4, 72.2), "4.65x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
    }
}
