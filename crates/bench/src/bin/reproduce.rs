//! `reproduce` — regenerates every table and figure of the SENECA paper.
//!
//! ```text
//! reproduce <experiment>... [--scale fast|reduced|paper]
//! reproduce all [--scale reduced]
//! reproduce list
//! ```
//!
//! Experiments: table1 table2 table3 table4 table5 fig3 fig4 fig5 fig6
//! ablation-quant ablation-prune ablation-arch boundary serve fleet profile
//! mixed robustness.
//! Markdown output lands in `$SENECA_ARTIFACTS/experiments/` (default
//! `target/seneca-artifacts`); `serve` also writes `BENCH_serve.json`,
//! `fleet` writes `BENCH_fleet.json` (multi-tenant isolation sweep),
//! `profile` writes `BENCH_profile.json` (measured per-op trace tables),
//! `mixed` writes `BENCH_mixed.json` (per-layer W4/W8 sensitivity + greedy
//! cost-aware bitwidth search), and `robustness` writes
//! `BENCH_robustness.json` (pathology + dose/thickness/FOV scenario grid,
//! FP32 vs INT8 vs mixed W4/W8).

use seneca_bench::experiments;
use seneca_bench::{ExperimentCtx, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: reproduce <experiment>... [--scale fast|reduced|paper]\n\
         experiments: {} | all | list",
        experiments::ALL.join(" ")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    let mut scale = Scale::Reduced;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale::parse(&v).unwrap_or_else(|| usage());
            }
            "list" => {
                for e in experiments::ALL {
                    println!("{e}");
                }
                return;
            }
            "all" => wanted.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    for w in &wanted {
        if !experiments::ALL.contains(&w.as_str()) {
            eprintln!("unknown experiment: {w}");
            usage();
        }
    }

    eprintln!("[reproduce] scale: {scale:?}; experiments: {}", wanted.join(", "));
    let t0 = std::time::Instant::now();
    let mut ctx = ExperimentCtx::new(scale);
    for w in &wanted {
        let te = std::time::Instant::now();
        assert!(experiments::run(w, &mut ctx), "dispatch checked above");
        eprintln!("[reproduce] {w} done in {:.1}s", te.elapsed().as_secs_f64());
    }
    eprintln!(
        "[reproduce] all done in {:.1}s; artifacts in {}",
        t0.elapsed().as_secs_f64(),
        ctx.out_dir().display()
    );
}
