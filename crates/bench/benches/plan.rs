//! Criterion benchmarks of the IR-lowered executors against the naive
//! allocate-per-node paths: same graph, same frame, the differences are the
//! liveness-planned scratch arena (zero steady-state allocation) and the
//! pack-once weight panels (per-frame GEMMs pack activations only).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use seneca_ir::{lower, LowerOptions};
use seneca_nn::graph::Graph;
use seneca_nn::unet::{UNet, UNetConfig};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::{Shape4, Tensor};

fn setup(depth: usize, base_filters: usize) -> (Graph, Tensor) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let cfg = UNetConfig { depth, base_filters, in_channels: 1, num_classes: 6, dropout: 0.0 };
    let net = UNet::new(cfg, &mut rng);
    let graph = Graph::from_unet(&net, format!("d{depth}f{base_filters}"));
    let img = Tensor::he_normal(Shape4::new(1, 1, 64, 64), &mut rng);
    (graph, img)
}

fn bench_fp32_naive_vs_lowered(c: &mut Criterion) {
    let (graph, img) = setup(3, 8);
    c.bench_function("fp32/naive/d3f8@64", |b| b.iter(|| graph.execute(&img)));
    let lowered = lower(graph.to_ir(), img.shape(), &LowerOptions::reference());
    let mut scratch = lowered.make_scratch_f32();
    c.bench_function("fp32/lowered/d3f8@64", |b| {
        b.iter(|| lowered.execute_f32_into(&img, &mut scratch).to_tensor())
    });
}

fn bench_int8_naive_vs_lowered(c: &mut Criterion) {
    let (graph, img) = setup(3, 8);
    let fg = fuse(&graph);
    let (qg, _) = quantize_post_training(&fg, std::slice::from_ref(&img), &PtqConfig::default());
    let q = qg.quantize_input(&img);
    c.bench_function("int8/naive/d3f8@64", |b| b.iter(|| qg.execute(&q)));
    let lowered = lower(qg.to_ir(), img.shape(), &LowerOptions::reference());
    let mut scratch = lowered.make_scratch_i8();
    c.bench_function("int8/lowered/d3f8@64", |b| {
        b.iter(|| lowered.execute_i8_into(&q, &mut scratch).to_qtensor())
    });
    // The pack-share baseline arm: same lowering minus pack-slot caching,
    // so every GEMM re-packs its weight panels per call.
    let unpacked = lower(qg.to_ir(), img.shape(), &LowerOptions::reference_unpacked());
    let mut scratch_u = unpacked.make_scratch_i8();
    c.bench_function("int8/lowered-unpacked/d3f8@64", |b| {
        b.iter(|| unpacked.execute_i8_into(&q, &mut scratch_u).to_qtensor())
    });
}

criterion_group!(benches, bench_fp32_naive_vs_lowered, bench_int8_naive_vs_lowered);
criterion_main!(benches);
