//! Criterion micro-benchmarks of the compute kernels underlying both
//! execution targets (the training path and the INT8 DPU path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use seneca_tensor::activation::softmax_channels;
use seneca_tensor::conv::{conv2d, conv2d_backward, Conv2dParams};
use seneca_tensor::gemm::{igemm, sgemm};
use seneca_tensor::im2col::{im2col, ConvGeom};
use seneca_tensor::pool::maxpool2x2;
use seneca_tensor::{Shape4, Tensor};

fn rand_tensor(shape: Shape4, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &(m, k, n) in &[(64usize, 576usize, 4096usize), (128, 1152, 1024), (256, 2304, 256)] {
        let a = rand_tensor(Shape4::new(1, 1, m, k), 1).into_vec();
        let b = rand_tensor(Shape4::new(1, 1, k, n), 2).into_vec();
        let mut out = vec![0.0f32; m * n];
        g.throughput(Throughput::Elements((2 * m * k * n) as u64));
        g.bench_with_input(BenchmarkId::new("sgemm", format!("{m}x{k}x{n}")), &(), |bch, _| {
            bch.iter(|| sgemm(m, k, n, &a, &b, &mut out));
        });
        let ai: Vec<i8> = a.iter().map(|v| (v * 100.0) as i8).collect();
        let bi: Vec<i8> = b.iter().map(|v| (v * 100.0) as i8).collect();
        let mut oi = vec![0i32; m * n];
        g.bench_with_input(BenchmarkId::new("igemm", format!("{m}x{k}x{n}")), &(), |bch, _| {
            bch.iter(|| igemm(m, k, n, &ai, &bi, &mut oi));
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    g.sample_size(20);
    for &(ch, hw) in &[(16usize, 128usize), (32, 64), (64, 32)] {
        let x = rand_tensor(Shape4::new(1, ch, hw, hw), 3);
        let w = rand_tensor(Shape4::new(ch, ch, 3, 3), 4);
        let b = vec![0.0f32; ch];
        let macs = (hw * hw * ch * ch * 9) as u64;
        g.throughput(Throughput::Elements(macs));
        g.bench_with_input(BenchmarkId::new("forward", format!("c{ch}@{hw}")), &(), |bch, _| {
            bch.iter(|| conv2d(&x, &w, &b, Conv2dParams::SAME_3X3));
        });
        let dy = rand_tensor(Shape4::new(1, ch, hw, hw), 5);
        g.bench_with_input(BenchmarkId::new("backward", format!("c{ch}@{hw}")), &(), |bch, _| {
            bch.iter(|| conv2d_backward(&x, &w, &dy, Conv2dParams::SAME_3X3));
        });
    }
    g.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geom = ConvGeom { c_in: 32, h: 128, w: 128, k: 3, pad: 1, stride: 1 };
    let x = rand_tensor(Shape4::new(1, 32, 128, 128), 6).into_vec();
    let mut col = vec![0.0f32; geom.col_rows() * geom.col_cols()];
    c.bench_function("im2col/c32@128", |b| b.iter(|| im2col(&geom, &x, &mut col)));
}

fn bench_misc(c: &mut Criterion) {
    let x = rand_tensor(Shape4::new(1, 32, 128, 128), 7);
    c.bench_function("maxpool2x2/c32@128", |b| b.iter(|| maxpool2x2(&x)));
    let logits = rand_tensor(Shape4::new(1, 6, 256, 256), 8);
    c.bench_function("softmax/c6@256", |b| b.iter(|| softmax_channels(&logits)));
}

criterion_group!(benches, bench_gemm, bench_conv, bench_im2col, bench_misc);
criterion_main!(benches);
