//! Criterion benchmarks of the end-to-end workflow stages: phantom
//! generation, preprocessing, training step, PTQ, and FP32-vs-INT8
//! inference on the same network (via the unified [`Backend`] list).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use seneca::backend::{Backend, Fp32RefBackend, QuantRefBackend};
use seneca_data::anatomy::Anatomy;
use seneca_data::phantom::{rasterize, RasterConfig};
use seneca_data::preprocess::preprocess;
use seneca_nn::graph::Graph;
use seneca_nn::loss::FocalTverskyLoss;
use seneca_nn::optim::{Adam, Optimizer};
use seneca_nn::unet::{UNet, UNetConfig};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::{Shape4, Tensor};

fn bench_phantom(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let anatomy = Anatomy::sample(&mut rng);
    let cfg = RasterConfig { size: 256, z_range: (0.0, 1.0), slices: 8, ..RasterConfig::default() };
    c.bench_function("phantom/8slices@256", |b| b.iter(|| rasterize(&anatomy, &cfg, 1, 0)));
}

fn bench_preprocess(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let anatomy = Anatomy::sample(&mut rng);
    let cfg =
        RasterConfig { size: 512, z_range: (0.3, 0.35), slices: 1, ..RasterConfig::default() };
    let vol = rasterize(&anatomy, &cfg, 2, 0);
    let slice = vol.slice(0);
    c.bench_function("preprocess/512to256", |b| b.iter(|| preprocess(&slice, 2)));
}

fn bench_training_step(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let cfg =
        UNetConfig { depth: 2, base_filters: 8, in_channels: 1, num_classes: 6, dropout: 0.1 };
    let mut net = UNet::new(cfg, &mut rng);
    let x = Tensor::he_normal(Shape4::new(2, 1, 64, 64), &mut rng);
    let labels: Vec<u8> = (0..2 * 64 * 64).map(|i| (i % 6) as u8).collect();
    let loss = FocalTverskyLoss::paper_defaults(vec![1.0; 6]);
    let mut opt = Adam::new(1e-3);
    c.bench_function("train_step/d2f8@64x2", |b| {
        b.iter(|| {
            let (probs, cache) = net.forward(&x, &mut rng);
            let (_, dprobs) = loss.forward_backward(&probs, &labels);
            net.zero_grad();
            net.backward(&cache, &dprobs);
            opt.step(&mut net);
        })
    });
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let cfg =
        UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
    let net = UNet::new(cfg, &mut rng);
    let fg = fuse(&Graph::from_unet(&net, "t"));
    let calib: Vec<Tensor> =
        (0..16).map(|_| Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)).collect();
    c.bench_function("ptq/16imgs@32", |b| {
        b.iter(|| quantize_post_training(&fg, &calib, &PtqConfig::default()))
    });
}

fn bench_fp32_vs_int8_inference(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let cfg =
        UNetConfig { depth: 2, base_filters: 8, in_channels: 1, num_classes: 6, dropout: 0.0 };
    let net = UNet::new(cfg, &mut rng);
    let graph = Graph::from_unet(&net, "d2f8");
    let fg = fuse(&graph);
    let shape = Shape4::new(1, 1, 64, 64);
    let img = Tensor::he_normal(shape, &mut rng);
    let (qg, _) = quantize_post_training(&fg, std::slice::from_ref(&img), &PtqConfig::default());
    // One bench per backend, same image — the FP32-vs-INT8 comparison falls
    // out of the list instead of two hand-written cases.
    let mut backends: Vec<Box<dyn Backend>> = vec![
        Box::new(Fp32RefBackend::new(graph, shape)),
        Box::new(QuantRefBackend::new(qg, shape)),
    ];
    let batch = [img];
    for b in &mut backends {
        b.prepare();
        c.bench_function(&format!("infer/{}@64", b.name()), |bch| {
            bch.iter(|| b.infer_batch(&batch))
        });
    }
}

criterion_group!(
    benches,
    bench_phantom,
    bench_preprocess,
    bench_training_step,
    bench_quantization,
    bench_fp32_vs_int8_inference
);
criterion_main!(benches);
