//! Criterion benchmarks of the DPU toolchain: compilation, the cost model,
//! functional INT8 execution, and the DES throughput simulation — one
//! throughput bench per Table II model (the Table IV regeneration path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use seneca_dpu::arch::DpuArch;
use seneca_dpu::executor::{DpuCore, ExecMode};
use seneca_dpu::perf::frame_cost;
use seneca_dpu::runtime::{DpuRunner, RuntimeConfig};
use seneca_dpu::XModel;
use seneca_nn::graph::Graph;
use seneca_nn::unet::{ModelSize, UNet, UNetConfig};
use seneca_quant::{fuse, quantize_post_training, PtqConfig, QuantizedGraph};
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;

fn quantized_model(size: ModelSize) -> QuantizedGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let net = UNet::from_size(size, &mut rng);
    let fg = fuse(&Graph::from_unet(&net, size.label()));
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
    quantize_post_training(&fg, &calib, &PtqConfig::default()).0
}

fn tiny_xmodel() -> XModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let cfg =
        UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
    let net = UNet::new(cfg, &mut rng);
    let fg = fuse(&Graph::from_unet(&net, "tiny"));
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
    let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
    seneca_dpu::compile(&qg, Shape4::new(1, 1, 32, 32), DpuArch::b4096_zcu104())
}

fn bench_compiler(c: &mut Criterion) {
    let qg = quantized_model(ModelSize::M1);
    let input = Shape4::new(1, 1, 256, 256);
    c.bench_function("vai_c/compile-1M@256", |b| {
        b.iter(|| seneca_dpu::compile(&qg, input, DpuArch::b4096_zcu104()))
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_cost");
    for size in ModelSize::ALL {
        let qg = quantized_model(size);
        let xm = seneca_dpu::compile(&qg, Shape4::new(1, 1, 256, 256), DpuArch::b4096_zcu104());
        g.bench_with_input(BenchmarkId::from_parameter(size.label()), &xm, |b, xm| {
            b.iter(|| frame_cost(xm, &xm.arch))
        });
    }
    g.finish();
}

fn bench_functional(c: &mut Criterion) {
    let xm = tiny_xmodel();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let img = Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng);
    let input = xm.quantize_input(&img);
    let core = DpuCore::new(ExecMode::Functional);
    c.bench_function("dpu_core/functional-tiny@32", |b| b.iter(|| core.run(&xm, &input)));
}

/// The Table IV / Fig. 3 regeneration path: simulated 2000-frame runs.
fn bench_throughput_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput_sim_2000f");
    g.sample_size(10);
    for size in ModelSize::ALL {
        let qg = quantized_model(size);
        let xm = Arc::new(seneca_dpu::compile(
            &qg,
            Shape4::new(1, 1, 256, 256),
            DpuArch::b4096_zcu104(),
        ));
        let runner =
            DpuRunner::new(Arc::clone(&xm), RuntimeConfig { threads: 4, ..Default::default() });
        g.bench_with_input(BenchmarkId::from_parameter(size.label()), &runner, |b, r| {
            b.iter(|| r.run_throughput(2000, 1))
        });
    }
    g.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    let qg = quantized_model(ModelSize::M1);
    let xm =
        Arc::new(seneca_dpu::compile(&qg, Shape4::new(1, 1, 256, 256), DpuArch::b4096_zcu104()));
    let mut g = c.benchmark_group("thread_sweep_1M");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let runner =
            DpuRunner::new(Arc::clone(&xm), RuntimeConfig { threads, ..Default::default() });
        g.bench_with_input(BenchmarkId::from_parameter(threads), &runner, |b, r| {
            b.iter(|| r.run_throughput(2000, 1))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_compiler,
    bench_cost_model,
    bench_functional,
    bench_throughput_sim,
    bench_thread_sweep
);
criterion_main!(benches);
