//! Internal calibration probe: FPS/W per model size at 256x256, 4 threads.
use rand::SeedableRng;
use seneca_dpu::arch::DpuArch;
use seneca_dpu::perf::frame_cost;
use seneca_dpu::runtime::{DpuRunner, RuntimeConfig};
use seneca_gpu::{GpuModel, GpuRunner};
use seneca_nn::graph::Graph;
use seneca_nn::unet::{ModelSize, UNet};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let input = Shape4::new(1, 1, 256, 256);
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
    println!(
        "{:>4} {:>9} {:>7} {:>7} {:>7} | {:>8} {:>7} | compute/mem/ovh ms",
        "cfg", "fps_int8", "watt", "ee", "util", "fps_fp32", "ee_fp32"
    );
    for size in ModelSize::ALL {
        let net = UNet::from_size(size, &mut rng);
        let g = Graph::from_unet(&net, size.label());
        let fg = fuse(&g);
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let xm = seneca_dpu::compile(&qg, input, DpuArch::b4096_zcu104());
        let cost = frame_cost(&xm, &xm.arch);
        let runner =
            DpuRunner::new(Arc::new(xm), RuntimeConfig { threads: 4, ..Default::default() });
        let rep = runner.run_throughput(2000, 1);
        let gpu = GpuRunner::new(g, GpuModel::rtx2060_mobile(), input);
        let grep = gpu.run_throughput(500, 1);
        println!(
            "{:>4} {:>9.1} {:>7.2} {:>7.2} {:>7.2} | {:>8.2} {:>7.2} | {:.2}/{:.2}/{:.2}",
            size.label(),
            rep.fps,
            rep.watt,
            rep.energy_efficiency(),
            rep.util,
            grep.fps,
            grep.energy_efficiency(),
            cost.compute_ns as f64 * 1e-6,
            cost.mem_ns as f64 * 1e-6,
            cost.overhead_ns as f64 * 1e-6,
        );
    }
    println!("paper int8: 1M 335.4/28.4/11.81  2M 254.9/24.8/10.27  4M 273.2/28.5/9.57  8M 127.9/28.0/4.57  16M 98.1/31.0/3.17");
    println!("paper fp32: 1M 72.2/0.93  2M 77.5/1.00  4M 65.9/0.85  8M 52.2/0.67  16M 37.2/0.48");
}
