//! GEMM micro-kernel throughput on the conv shapes of the five Table II
//! models at 256x256, packed engine vs the pre-PR baseline and the naive
//! reference. Emits `BENCH_kernels.json` and doubles as a CI smoke gate.
//!
//! Modes (first CLI argument):
//!
//! * `smoke` — CI gate: igemm bit-exactness against the naive kernel on a
//!   fixed seed, and packed-beats-reference on the largest shape, both
//!   dtypes. Fast; no JSON.
//! * `baseline <out.txt>` — measure ONLY the pre-PR kernels and write their
//!   throughputs to a text file. `scripts/bench_kernels.sh` runs this mode
//!   with `RUSTFLAGS=""` so the pre-PR kernels are compiled exactly as the
//!   pre-PR tree built them (no `.cargo/config.toml` existed, so the default
//!   x86-64 target, not `target-cpu=native`).
//! * `full <baseline.txt>` — measure the packed engine (and, for reference,
//!   the pre-PR kernels under the current flags), merge the pre-PR-build
//!   numbers from `baseline.txt`, assert the PR's >= 2x acceptance bar on
//!   the largest shape, and write `BENCH_kernels.json`.
//!
//! The `baseline_*` kernels below are verbatim copies of the repo's GEMMs
//! before the packed rewrite (blocked ikj loops with the `aik == 0`
//! zero-skip), so the committed JSON records an honest same-machine
//! pre-PR/post-PR comparison rather than numbers imported from an older
//! checkout. Two baseline columns are recorded: `baseline` (pre-PR kernel,
//! pre-PR build flags — what the repo actually shipped) and
//! `baseline_sameflags` (pre-PR kernel under this PR's build flags —
//! isolating the algorithmic gain from the `-C target-cpu=native` gain).

use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use seneca_nn::graph::{Graph, Op};
use seneca_nn::unet::{ModelSize, UNet};
use seneca_tensor::gemm::{
    igemm, igemm4_fused_packed, igemm_fused, igemm_fused_packed, igemm_reference, sgemm,
    sgemm_fused, sgemm_reference, GemmEpilogue, PackedA, PackedA4,
};
use seneca_tensor::igemm::{igemm_conv, sgemm_conv};
use seneca_tensor::im2col::{im2col, im2col_i8, ConvGeom};
use seneca_tensor::Shape4;
use serde_json::{json, Value};
use std::time::Instant;

const ROW_BLOCK: usize = 64;
const K_BLOCK: usize = 256;

/// The pre-PR `sgemm` (blocked ikj, zero-skip, no packing).
fn baseline_sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    c.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    c.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_blk)| {
        let row0 = blk * ROW_BLOCK;
        let rows = c_blk.len() / n;
        for k0 in (0..k).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(k);
            for i in 0..rows {
                let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
                let c_row = &mut c_blk[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * *bv;
                    }
                }
            }
        }
    });
}

/// The pre-PR `igemm` (row-blocked, zero-skip, no packing).
fn baseline_igemm(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    c.fill(0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    c.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_blk)| {
        let row0 = blk * ROW_BLOCK;
        let rows = c_blk.len() / n;
        for i in 0..rows {
            let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
            let c_row = &mut c_blk[i * n..(i + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0 {
                    continue;
                }
                let aik = aik as i32;
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv as i32;
                }
            }
        }
    });
}

/// Seconds per call: one warmup, then timed iterations until `min_time`
/// elapses (at least `min_iters`).
fn time_per_call(min_time: f64, min_iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u32;
    while iters < min_iters || start.elapsed().as_secs_f64() < min_time {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() / iters as f64
}

#[derive(Clone, Copy)]
struct ConvShape {
    model: &'static str,
    m: usize,
    k: usize,
    n: usize,
    /// Conv geometry behind the GEMM shape (3x3 same conv): `k = c_in * 9`,
    /// `n = h * w`. Used by the conv-level implicit-vs-materialized rows.
    c_in: usize,
    h: usize,
    w: usize,
}

impl ConvShape {
    fn macs(&self) -> u64 {
        (self.m * self.k * self.n) as u64
    }

    fn geom(&self) -> ConvGeom {
        ConvGeom { c_in: self.c_in, h: self.h, w: self.w, k: 3, pad: 1, stride: 1 }
    }
}

/// The highest-MAC 3x3-conv GEMM shape of each Table II model at 256x256.
/// Ties in total MACs (the deep decoder GEMM of a large model vs the wide
/// early-layer GEMM of a small one) resolve to the larger model, whose deep
/// shape is the end-to-end bottleneck.
fn table2_conv_shapes() -> Vec<ConvShape> {
    let input = Shape4::new(1, 1, 256, 256);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    ModelSize::ALL
        .iter()
        .map(|&size| {
            let net = UNet::from_size(size, &mut rng);
            let g = Graph::from_unet(&net, size.label());
            let shapes = g.shapes(input);
            let mut best = ConvShape { model: size.label(), m: 0, k: 0, n: 0, c_in: 0, h: 0, w: 0 };
            for node in &g.nodes {
                if let Op::Conv { w, .. } = &node.op {
                    let s = shapes[node.inputs[0]];
                    let cand = ConvShape {
                        model: size.label(),
                        m: w.shape().n,
                        k: w.shape().c * 9,
                        n: s.h * s.w,
                        c_in: w.shape().c,
                        h: s.h,
                        w: s.w,
                    };
                    if cand.macs() > best.macs() {
                        best = cand;
                    }
                }
            }
            assert!(best.macs() > 0, "{}: no conv nodes found", size.label());
            best
        })
        .collect()
}

fn make_f32(shape: ConvShape) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (m, k, n) = (shape.m, shape.k, shape.n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(shape.macs());
    let a = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    (a, b, vec![0.0; m * n])
}

fn make_i8(shape: ConvShape) -> (Vec<i8>, Vec<i8>, Vec<i32>) {
    let (m, k, n) = (shape.m, shape.k, shape.n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(shape.macs() ^ 0xF00D);
    let a = (0..m * k).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    let b = (0..k * n).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    (a, b, vec![0; m * n])
}

/// igemm bit-exactness gate on a fixed seed, independent of timing noise.
fn check_igemm_bit_exact(largest: ConvShape) {
    let (m, k, n) = (largest.m, largest.k, largest.n.min(4096));
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let a: Vec<i8> = (0..m * k).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    let mut c = vec![0i32; m * n];
    let mut c_ref = vec![0i32; m * n];
    igemm(m, k, n, &a, &b, &mut c);
    igemm_reference(m, k, n, &a, &b, &mut c_ref);
    assert_eq!(c, c_ref, "igemm packed != naive on fixed seed ({m}x{k}x{n})");
    println!("igemm bit-exactness: packed == naive on {m}x{k}x{n} (seed 99)");
}

/// Implicit-GEMM conv gate on the largest Table II conv: the implicit pack
/// (panel gather straight from the feature map) must be bit-exact against
/// the materialized im2col route on a fixed seed, and must not be slower —
/// it does strictly less memory traffic, so a regression here means the
/// pack closures stopped vectorizing.
fn check_implicit_conv(largest: ConvShape, min_time: f64, min_iters: u32) {
    let geom = largest.geom();
    let (m, k, n) = (largest.m, largest.k, largest.n);
    let gmac = largest.macs() as f64 / 1e9;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);

    // INT8: fused requantising conv, bias + relu on.
    let wt: Vec<i8> = (0..m * k).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    let x: Vec<i8> =
        (0..geom.c_in * geom.h * geom.w).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    let bias: Vec<i32> = (0..m as i32).map(|i| i * 91 - 777).collect();
    let mut y_imp = vec![0i8; m * n];
    igemm_conv(m, &wt, &geom, &x, &bias, 6, true, &mut y_imp);
    let mut col = vec![0i8; k * n];
    let mut y_mat = vec![0i8; m * n];
    im2col_i8(&geom, &x, &mut col);
    igemm_fused(m, k, n, &wt, &col, &bias, 6, true, &mut y_mat);
    assert_eq!(y_imp, y_mat, "implicit i8 conv != materialized im2col route (seed 4242)");
    let t_imp = time_per_call(min_time, min_iters, || {
        igemm_conv(m, &wt, &geom, &x, &bias, 6, true, &mut y_imp)
    });
    let t_mat = time_per_call(min_time, min_iters, || {
        im2col_i8(&geom, &x, &mut col);
        igemm_fused(m, k, n, &wt, &col, &bias, 6, true, &mut y_mat);
    });
    println!(
        "implicit i8 conv: {:.2} GMAC/s vs materialized {:.2} GMAC/s (bit-exact)",
        gmac / t_imp,
        gmac / t_mat
    );
    assert!(
        t_imp <= t_mat * 1.05,
        "implicit i8 conv ({:.2} GMAC/s) slower than materialized ({:.2} GMAC/s)",
        gmac / t_imp,
        gmac / t_mat
    );

    // FP32: bit-exact (the packs produce byte-identical panels, so the
    // float op sequence is identical) and not slower.
    let wf: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let xf: Vec<f32> = (0..geom.c_in * geom.h * geom.w).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let bf: Vec<f32> = (0..m).map(|_| rng.gen_range(-0.2..0.2)).collect();
    let mut yf_imp = vec![0.0f32; m * n];
    sgemm_conv(m, &wf, &geom, &xf, &mut yf_imp, GemmEpilogue::BiasRelu(&bf));
    let mut colf = vec![0.0f32; k * n];
    let mut yf_mat = vec![0.0f32; m * n];
    im2col(&geom, &xf, &mut colf);
    sgemm_fused(m, k, n, &wf, &colf, &mut yf_mat, GemmEpilogue::BiasRelu(&bf));
    assert!(
        yf_imp.iter().zip(&yf_mat).all(|(a, b)| a.to_bits() == b.to_bits()),
        "implicit f32 conv != materialized im2col route bit-for-bit (seed 4242)"
    );
    let gflop = 2.0 * gmac;
    let t_imp = time_per_call(min_time, min_iters, || {
        sgemm_conv(m, &wf, &geom, &xf, &mut yf_imp, GemmEpilogue::BiasRelu(&bf))
    });
    let t_mat = time_per_call(min_time, min_iters, || {
        im2col(&geom, &xf, &mut colf);
        sgemm_fused(m, k, n, &wf, &colf, &mut yf_mat, GemmEpilogue::BiasRelu(&bf));
    });
    println!(
        "implicit f32 conv: {:.2} GFLOP/s vs materialized {:.2} GFLOP/s (bit-exact)",
        gflop / t_imp,
        gflop / t_mat
    );
    assert!(
        t_imp <= t_mat * 1.05,
        "implicit f32 conv ({:.2} GFLOP/s) slower than materialized ({:.2} GFLOP/s)",
        gflop / t_imp,
        gflop / t_mat
    );
}

/// Conv-level throughputs (not raw GEMM): implicit-GEMM route vs the
/// materialized im2col route, both dtypes, fused bias+relu epilogues.
/// Returns (f32_implicit, f32_materialized, i8_implicit, i8_materialized)
/// in GFLOP/s / GMAC/s.
fn conv_level_row(s: &ConvShape, min_time: f64, min_iters: u32) -> (f64, f64, f64, f64) {
    let geom = s.geom();
    let (m, k, n) = (s.m, s.k, s.n);
    let gmac = s.macs() as f64 / 1e9;
    let gflop = 2.0 * gmac;
    let mut rng = rand::rngs::StdRng::seed_from_u64(s.macs() ^ 0xC0117);

    let wf: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let xf: Vec<f32> = (0..geom.c_in * geom.h * geom.w).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let bf: Vec<f32> = (0..m).map(|_| rng.gen_range(-0.2..0.2)).collect();
    let mut yf = vec![0.0f32; m * n];
    let mut colf = vec![0.0f32; k * n];
    let f_imp = gflop
        / time_per_call(min_time, min_iters, || {
            sgemm_conv(m, &wf, &geom, &xf, &mut yf, GemmEpilogue::BiasRelu(&bf))
        });
    let f_mat = gflop
        / time_per_call(min_time, min_iters, || {
            im2col(&geom, &xf, &mut colf);
            sgemm_fused(m, k, n, &wf, &colf, &mut yf, GemmEpilogue::BiasRelu(&bf));
        });

    let wt: Vec<i8> = (0..m * k).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    let x: Vec<i8> =
        (0..geom.c_in * geom.h * geom.w).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    let bias: Vec<i32> = (0..m as i32).map(|i| i * 91 - 777).collect();
    let mut y = vec![0i8; m * n];
    let mut col = vec![0i8; k * n];
    let i_imp = gmac
        / time_per_call(min_time, min_iters, || {
            igemm_conv(m, &wt, &geom, &x, &bias, 6, true, &mut y)
        });
    let i_mat = gmac
        / time_per_call(min_time, min_iters, || {
            im2col_i8(&geom, &x, &mut col);
            igemm_fused(m, k, n, &wt, &col, &bias, 6, true, &mut y);
        });
    (f_imp, f_mat, i_imp, i_mat)
}

/// W4-vs-W8 host throughput race on the largest Table II shape: the same
/// `[-8, 7]` weights through the i8 panels (`igemm_fused_packed`) and the
/// nibble panels (`igemm4_fused_packed`). Returns (w8, w4) GMAC/s.
fn race_w4(largest: ConvShape, min_time: f64, min_iters: u32) -> (f64, f64) {
    let (m, k, n) = (largest.m, largest.k, largest.n);
    let gmac = largest.macs() as f64 / 1e9;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x4444);
    let wt: Vec<i8> = (0..m * k).map(|_| rng.gen_range(-8i32..8) as i8).collect();
    let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(-128i32..128) as i8).collect();
    let bias: Vec<i32> = (0..m as i32).map(|i| i * 57 - 333).collect();
    let pa8 = PackedA::pack(m, k, &wt);
    let pa4 = PackedA4::pack(m, k, &wt);
    let mut c8 = vec![0i8; m * n];
    let mut c4 = vec![0i8; m * n];
    igemm_fused_packed(&pa8, n, &b, &bias, 6, true, &mut c8);
    igemm4_fused_packed(&pa4, n, &b, &bias, 6, true, &mut c4);
    assert_eq!(c8, c4, "W4 nibble kernel != W8 kernel on the same [-8,7] weights");
    let t8 = time_per_call(min_time, min_iters, || {
        igemm_fused_packed(&pa8, n, &b, &bias, 6, true, &mut c8)
    });
    let t4 = time_per_call(min_time, min_iters, || {
        igemm4_fused_packed(&pa4, n, &b, &bias, 6, true, &mut c4)
    });
    (gmac / t8, gmac / t4)
}

/// Pre-PR throughputs loaded from the `baseline` mode's output file, keyed
/// by `(m, k, n)`.
fn load_baseline(path: &str) -> Vec<(usize, usize, usize, f64, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read pre-PR baseline file {path}: {e}\n\
             (run scripts/bench_kernels.sh, which generates it with the \
             pre-PR build flags first)"
        )
    });
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            assert!(f.len() == 6, "malformed baseline line: {l}");
            (
                f[1].parse().expect("m"),
                f[2].parse().expect("k"),
                f[3].parse().expect("n"),
                f[4].parse().expect("sgemm"),
                f[5].parse().expect("igemm"),
            )
        })
        .collect()
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".to_string());
    let path_arg = std::env::args().nth(2);
    let (min_time, min_iters) = if mode == "smoke" { (0.05, 1) } else { (0.4, 3) };

    let mut shapes = table2_conv_shapes();
    shapes.sort_by_key(|s| s.macs());
    let largest = *shapes.last().expect("five models");

    match mode.as_str() {
        "baseline" => {
            // Pre-PR kernels only; meant to be compiled with the pre-PR
            // build flags (RUSTFLAGS="" — see scripts/bench_kernels.sh).
            let path = path_arg.expect("usage: kernel_stats baseline <out.txt>");
            let mut out = String::from("# model m k n sgemm_gflops igemm_gmacs (pre-PR build)\n");
            for s in &shapes {
                let (af, bf, mut cf) = make_f32(*s);
                let gflop = 2.0 * s.macs() as f64 / 1e9;
                let sg = gflop
                    / time_per_call(min_time, min_iters, || {
                        baseline_sgemm(s.m, s.k, s.n, &af, &bf, &mut cf)
                    });
                let (ai, bi, mut ci) = make_i8(*s);
                let gmac = s.macs() as f64 / 1e9;
                let ig = gmac
                    / time_per_call(min_time, min_iters, || {
                        baseline_igemm(s.m, s.k, s.n, &ai, &bi, &mut ci)
                    });
                println!(
                    "{:>4} {:>5}x{:>5}x{:>6}: sgemm {:6.2} GFLOP/s  igemm {:6.2} GMAC/s",
                    s.model, s.m, s.k, s.n, sg, ig
                );
                out.push_str(&format!("{} {} {} {} {:.4} {:.4}\n", s.model, s.m, s.k, s.n, sg, ig));
            }
            std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
            return;
        }
        "smoke" => {
            check_igemm_bit_exact(largest);
            check_implicit_conv(largest, min_time, min_iters);
            let (af, bf, mut cf) = make_f32(largest);
            let gflop = 2.0 * largest.macs() as f64 / 1e9;
            let (m, k, n) = (largest.m, largest.k, largest.n);
            let packed_f =
                gflop / time_per_call(min_time, min_iters, || sgemm(m, k, n, &af, &bf, &mut cf));
            let ref_f = gflop
                / time_per_call(min_time, min_iters, || {
                    sgemm_reference(m, k, n, &af, &bf, &mut cf)
                });
            let (ai, bi, mut ci) = make_i8(largest);
            let gmac = largest.macs() as f64 / 1e9;
            let packed_i =
                gmac / time_per_call(min_time, min_iters, || igemm(m, k, n, &ai, &bi, &mut ci));
            let ref_i = gmac
                / time_per_call(min_time, min_iters, || {
                    igemm_reference(m, k, n, &ai, &bi, &mut ci)
                });
            println!(
                "largest {m}x{k}x{n}: sgemm packed {packed_f:.2} ref {ref_f:.2} GFLOP/s | \
                 igemm packed {packed_i:.2} ref {ref_i:.2} GMAC/s"
            );
            assert!(
                packed_f > ref_f,
                "packed sgemm ({packed_f:.2}) must beat reference ({ref_f:.2}) GFLOP/s"
            );
            assert!(
                packed_i > ref_i,
                "packed igemm ({packed_i:.2}) must beat reference ({ref_i:.2}) GMAC/s"
            );
            println!("kernel_stats smoke OK");
            return;
        }
        "full" => {}
        other => panic!("unknown mode {other}; expected smoke | baseline <out> | full <baseline>"),
    }

    // Full mode: packed + reference + same-flags baseline, merged with the
    // pre-PR-build baseline file.
    let prepr =
        load_baseline(path_arg.as_deref().expect("usage: kernel_stats full <baseline.txt>"));
    check_igemm_bit_exact(largest);
    check_implicit_conv(largest, min_time, min_iters);

    println!(
        "{:>4} {:>22} | {:>8} {:>8} {:>8} {:>8} {:>7} | {:>8} {:>8} {:>8} {:>8} {:>7}",
        "cfg",
        "m x k x n",
        "sgemm",
        "base",
        "basefl",
        "ref",
        "vs base",
        "igemm",
        "base",
        "basefl",
        "ref",
        "vs base"
    );

    let mut json_shapes: Vec<Value> = Vec::new();
    let mut largest_speedups: Option<(f64, f64)> = None;
    for s in &shapes {
        let (m, k, n) = (s.m, s.k, s.n);
        let &(_, _, _, pre_sg, pre_ig) = prepr
            .iter()
            .find(|&&(bm, bk, bn, _, _)| (bm, bk, bn) == (m, k, n))
            .unwrap_or_else(|| panic!("no pre-PR baseline entry for {m}x{k}x{n}"));

        let (af, bf, mut cf) = make_f32(*s);
        let gflop = 2.0 * s.macs() as f64 / 1e9;
        let f_packed =
            gflop / time_per_call(min_time, min_iters, || sgemm(m, k, n, &af, &bf, &mut cf));
        let f_basefl = gflop
            / time_per_call(min_time, min_iters, || baseline_sgemm(m, k, n, &af, &bf, &mut cf));
        let f_ref = gflop
            / time_per_call(min_time, min_iters, || sgemm_reference(m, k, n, &af, &bf, &mut cf));

        let (ai, bi, mut ci) = make_i8(*s);
        let gmac = s.macs() as f64 / 1e9;
        let i_packed =
            gmac / time_per_call(min_time, min_iters, || igemm(m, k, n, &ai, &bi, &mut ci));
        let i_basefl = gmac
            / time_per_call(min_time, min_iters, || baseline_igemm(m, k, n, &ai, &bi, &mut ci));
        let i_ref = gmac
            / time_per_call(min_time, min_iters, || igemm_reference(m, k, n, &ai, &bi, &mut ci));

        println!(
            "{:>4} {:>9}x{:>5}x{:>6} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>6.2}x | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>6.2}x",
            s.model,
            m,
            k,
            n,
            f_packed,
            pre_sg,
            f_basefl,
            f_ref,
            f_packed / pre_sg,
            i_packed,
            pre_ig,
            i_basefl,
            i_ref,
            i_packed / pre_ig,
        );

        // Conv-level (not raw GEMM) rows: implicit-GEMM vs materialized
        // im2col, both dtypes.
        let (cf_imp, cf_mat, ci_imp, ci_mat) = conv_level_row(s, min_time, min_iters);
        println!(
            "     conv-level {:>9}x{:>5}x{:>6} | f32 implicit {:>7.2} mat {:>7.2} ({:>4.2}x) | i8 implicit {:>7.2} mat {:>7.2} ({:>4.2}x)",
            m, k, n, cf_imp, cf_mat, cf_imp / cf_mat, ci_imp, ci_mat, ci_imp / ci_mat,
        );

        json_shapes.push(json!({
            "model": s.model,
            "kind": "conv3x3 im2col GEMM",
            "m": m,
            "k": k,
            "n": n,
            "conv_c_in": s.c_in,
            "conv_hw": [s.h, s.w],
            "gmacs": gmac,
            "conv_f32_gflops": {
                "implicit": cf_imp,
                "materialized": cf_mat,
                "speedup": cf_imp / cf_mat
            },
            "conv_i8_gmacs": {
                "implicit": ci_imp,
                "materialized": ci_mat,
                "speedup": ci_imp / ci_mat
            },
            "sgemm_gflops": {
                "packed": f_packed,
                "baseline": pre_sg,
                "baseline_sameflags": f_basefl,
                "reference": f_ref,
                "speedup_vs_baseline": f_packed / pre_sg,
                "speedup_vs_baseline_sameflags": f_packed / f_basefl,
                "speedup_vs_reference": f_packed / f_ref
            },
            "igemm_gmacs": {
                "packed": i_packed,
                "baseline": pre_ig,
                "baseline_sameflags": i_basefl,
                "reference": i_ref,
                "speedup_vs_baseline": i_packed / pre_ig,
                "speedup_vs_baseline_sameflags": i_packed / i_basefl,
                "speedup_vs_reference": i_packed / i_ref
            }
        }));

        if s.macs() == largest.macs() && (m, k, n) == (largest.m, largest.k, largest.n) {
            assert!(
                f_packed > f_ref,
                "packed sgemm ({f_packed:.2}) must beat reference ({f_ref:.2}) GFLOP/s"
            );
            assert!(
                i_packed > i_ref,
                "packed igemm ({i_packed:.2}) must beat reference ({i_ref:.2}) GMAC/s"
            );
            largest_speedups = Some((f_packed / pre_sg, i_packed / pre_ig));
        }
    }

    let (sg_speedup, ig_speedup) = largest_speedups.expect("largest shape benchmarked");
    println!(
        "largest shape ({} {}x{}x{}): sgemm {:.2}x vs pre-PR, igemm {:.2}x vs pre-PR",
        largest.model, largest.m, largest.k, largest.n, sg_speedup, ig_speedup,
    );
    // The PR's acceptance bar, enforced whenever the JSON is regenerated.
    assert!(sg_speedup >= 2.0, "sgemm speedup {sg_speedup:.2}x < 2x on largest shape");
    assert!(ig_speedup >= 2.0, "igemm speedup {ig_speedup:.2}x < 2x on largest shape");

    // W4 vs W8 host throughput on the largest shape (same [-8,7] weights,
    // nibble vs i8 panels — half the A-panel bandwidth).
    let (w8_gmacs, w4_gmacs) = race_w4(largest, min_time, min_iters);
    println!(
        "W4 race on largest shape: igemm4_fused_packed {:.2} GMAC/s vs igemm_fused_packed {:.2} GMAC/s ({:.2}x)",
        w4_gmacs,
        w8_gmacs,
        w4_gmacs / w8_gmacs,
    );

    let doc = json!({
        "bench": "kernel_stats",
        "input": "1x1x256x256",
        "note": "highest-MAC conv GEMM shape per Table II model; baseline = pre-PR blocked ikj kernels with zero-skip, compiled with the pre-PR build flags (no .cargo/config.toml) and measured on the same machine in the same bench run; baseline_sameflags = the same pre-PR kernels compiled with this PR's target-cpu=native flags",
        "tile": { "mr": seneca_tensor::gemm::MR, "nr": seneca_tensor::gemm::NR },
        "threads": rayon::current_num_threads(),
        "shapes": Value::Array(json_shapes),
        "largest": {
            "model": largest.model,
            "m": largest.m,
            "k": largest.k,
            "n": largest.n,
            "sgemm_speedup_vs_baseline": sg_speedup,
            "igemm_speedup_vs_baseline": ig_speedup,
            "w4_host_gmacs": {
                "igemm_fused_packed_w8": w8_gmacs,
                "igemm4_fused_packed_w4": w4_gmacs,
                "w4_vs_w8": w4_gmacs / w8_gmacs
            }
        }
    });
    std::fs::write("BENCH_kernels.json", serde_json::to_string(&doc).expect("serialize"))
        .unwrap_or_else(|e| panic!("could not write BENCH_kernels.json: {e}"));
    println!("wrote BENCH_kernels.json");
    println!("kernel_stats OK");
}
