//! IR pass-pipeline and activation-memory smoke check over the five
//! Table II model sizes at 256x256. Used as a CI gate: on every model the
//! frontend pipeline must fold all BN nodes, fuse all standalone ReLUs,
//! strip all inference identities, give every conv/tconv weight a pack
//! slot — the planned arena must beat the naive sum-of-all-activations
//! pool on both the FP32 and INT8 lowerings — and the implicit-GEMM
//! route's reported peak (slots + pack panels) must beat the materialized
//! route's footprint (slots + im2col column / pre-scatter buffer + the
//! same panels).

use rand::SeedableRng;
use seneca_ir::{lower, IrOp, LowerOptions, Module};
use seneca_nn::graph::Graph;
use seneca_nn::unet::{ModelSize, UNet};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::gemm::packed_b_len;
use seneca_tensor::{Shape4, Tensor};

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Peak per-frame auxiliary bytes of the *materialized* lowering route the
/// implicit-GEMM rewrite removed: the `[C*9, H*W]` im2col column matrix
/// (conv) or the `[4*C_out, H*W]` pre-scatter buffer (tconv), which
/// coexisted with the GEMM pack panels per node; max over nodes, per image
/// (the executors reuse one buffer across the per-image loop).
fn materialized_aux_bytes(m: &Module, input: Shape4, bytes_per_elem: usize) -> u64 {
    let shapes = m.shapes(input);
    let mut peak = 0u64;
    for node in &m.nodes {
        let s = shapes[node.inputs.first().copied().unwrap_or(0)];
        let elems = match &node.op {
            IrOp::Conv(_) => {
                let k = s.c * 9;
                k * s.hw() + packed_b_len(k, s.hw())
            }
            IrOp::TConv(a) => {
                let c_out = a.kernel.c_out(true);
                4 * c_out * s.hw() + packed_b_len(s.c, s.hw())
            }
            _ => continue,
        };
        peak = peak.max((elems * bytes_per_elem) as u64);
    }
    peak
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let input = Shape4::new(1, 1, 256, 256);
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
    println!(
        "{:>4} {:>5} {:>5} | {:>3} {:>4} {:>3} {:>4} | {:>11} {:>11} {:>6} | {:>11} {:>6} | {:>6} {:>6}",
        "cfg",
        "nodes",
        "low",
        "bn",
        "relu",
        "id",
        "pack",
        "fp32_peak",
        "fp32_total",
        "ratio",
        "int8_peak",
        "ratio",
        "fpdrop",
        "i8drop"
    );
    for size in ModelSize::ALL {
        let net = UNet::from_size(size, &mut rng);
        let g = Graph::from_unet(&net, size.label());
        let hist = g.op_histogram();
        let count = |op: &str| hist.get(op).copied().unwrap_or(0);
        let n_conv = count("conv3x3") + count("tconv2x2");

        // Frontend pipeline: every BN folds, every ReLU fuses, every
        // inference identity (dropout + softmax) strips, every weight
        // tensor gets exactly one pack slot.
        let fp = lower(g.to_ir(), input, &LowerOptions::frontend());
        let stats = fp.stats();
        assert_eq!(stats.bn_folded, count("batchnorm"), "{}: unfolded BN", size.label());
        assert_eq!(stats.relu_fused, count("relu"), "{}: unfused ReLU", size.label());
        assert_eq!(
            stats.identities_removed,
            count("dropout") + count("softmax"),
            "{}: identity left in the program",
            size.label()
        );
        assert_eq!(stats.pack_slots, n_conv, "{}: pack slot per weight tensor", size.label());
        fp.plan().assert_valid();

        // Arena accounting on the reference lowerings (what the host
        // executors actually run): the liveness plan must beat the naive
        // per-node activation pool.
        let fp_ref = lower(g.to_ir(), input, &LowerOptions::reference());
        let plan = fp_ref.plan();
        let (qg, _) = quantize_post_training(&fuse(&g), &calib, &PtqConfig::default());
        let q_ref = lower(qg.to_ir(), input, &LowerOptions::reference());
        assert_eq!(
            q_ref.stats().pack_slots,
            n_conv,
            "{}: INT8 pack slot per weight tensor",
            size.label()
        );
        let qplan = q_ref.plan();
        // Slot arena vs naive pool: an activations-only comparison, so it
        // uses the slot bytes, not the full footprint with GEMM panels.
        let (fp_slots, fp_total) =
            ((plan.peak_arena_elems() * 4) as u64, plan.total_activation_bytes(4));
        let (q_slots, q_total) = (qplan.peak_arena_elems() as u64, qplan.total_activation_bytes(1));
        assert!(
            fp_slots < fp_total && q_slots < q_total,
            "{}: liveness plan must beat the naive activation pool",
            size.label()
        );

        // Full reported footprint (slots + implicit-GEMM pack panels) vs the
        // materialized route, which carried the im2col column / pre-scatter
        // buffer alongside the same slots and panels. The peak must drop.
        let (fp_peak, q_peak) = (plan.peak_arena_bytes(4), qplan.peak_arena_bytes(1));
        let fp_mat = fp_slots + materialized_aux_bytes(fp_ref.module(), input, 4);
        let q_mat = q_slots + materialized_aux_bytes(q_ref.module(), input, 1);
        assert!(
            fp_peak < fp_mat && q_peak < q_mat,
            "{}: implicit-GEMM peak must beat the materialized route \
             (fp32 {fp_peak} vs {fp_mat}; int8 {q_peak} vs {q_mat})",
            size.label()
        );
        println!(
            "{:>4} {:>5} {:>5} | {:>3} {:>4} {:>3} {:>4} | {:>10.2}M {:>10.2}M {:>5.2}x | {:>10.2}M {:>5.2}x | {:>5.1}% {:>5.1}%",
            size.label(),
            g.nodes.len(),
            fp.module().nodes.len(),
            stats.bn_folded,
            stats.relu_fused,
            stats.identities_removed,
            stats.pack_slots,
            mib(fp_slots),
            mib(fp_total),
            fp_total as f64 / fp_slots as f64,
            mib(q_slots),
            q_total as f64 / q_slots as f64,
            100.0 * (1.0 - fp_peak as f64 / fp_mat as f64),
            100.0 * (1.0 - q_peak as f64 / q_mat as f64),
        );
    }
    println!(
        "ok: pass pipeline clean, peak arena < total activations, and implicit-GEMM \
         peak < materialized-route peak for all model sizes"
    );
}
