//! IR pass-pipeline and activation-memory smoke check over the five
//! Table II model sizes at 256x256. Used as a CI gate: on every model the
//! frontend pipeline must fold all BN nodes, fuse all standalone ReLUs,
//! strip all inference identities, give every conv/tconv weight a pack
//! slot — and the planned arena must beat the naive sum-of-all-activations
//! pool on both the FP32 and INT8 lowerings.

use rand::SeedableRng;
use seneca_ir::{lower, LowerOptions};
use seneca_nn::graph::Graph;
use seneca_nn::unet::{ModelSize, UNet};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::{Shape4, Tensor};

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let input = Shape4::new(1, 1, 256, 256);
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
    println!(
        "{:>4} {:>5} {:>5} | {:>3} {:>4} {:>3} {:>4} | {:>11} {:>11} {:>6} | {:>11} {:>6}",
        "cfg",
        "nodes",
        "low",
        "bn",
        "relu",
        "id",
        "pack",
        "fp32_peak",
        "fp32_total",
        "ratio",
        "int8_peak",
        "ratio"
    );
    for size in ModelSize::ALL {
        let net = UNet::from_size(size, &mut rng);
        let g = Graph::from_unet(&net, size.label());
        let hist = g.op_histogram();
        let count = |op: &str| hist.get(op).copied().unwrap_or(0);
        let n_conv = count("conv3x3") + count("tconv2x2");

        // Frontend pipeline: every BN folds, every ReLU fuses, every
        // inference identity (dropout + softmax) strips, every weight
        // tensor gets exactly one pack slot.
        let fp = lower(g.to_ir(), input, &LowerOptions::frontend());
        let stats = fp.stats();
        assert_eq!(stats.bn_folded, count("batchnorm"), "{}: unfolded BN", size.label());
        assert_eq!(stats.relu_fused, count("relu"), "{}: unfused ReLU", size.label());
        assert_eq!(
            stats.identities_removed,
            count("dropout") + count("softmax"),
            "{}: identity left in the program",
            size.label()
        );
        assert_eq!(stats.pack_slots, n_conv, "{}: pack slot per weight tensor", size.label());
        fp.plan().assert_valid();

        // Arena accounting on the reference lowerings (what the host
        // executors actually run): the liveness plan must beat the naive
        // per-node activation pool.
        let fp_ref = lower(g.to_ir(), input, &LowerOptions::reference());
        let plan = fp_ref.plan();
        let (qg, _) = quantize_post_training(&fuse(&g), &calib, &PtqConfig::default());
        let q_ref = lower(qg.to_ir(), input, &LowerOptions::reference());
        assert_eq!(
            q_ref.stats().pack_slots,
            n_conv,
            "{}: INT8 pack slot per weight tensor",
            size.label()
        );
        let qplan = q_ref.plan();
        let (fp_peak, fp_total) = (plan.peak_arena_bytes(4), plan.total_activation_bytes(4));
        let (q_peak, q_total) = (qplan.peak_arena_bytes(1), qplan.total_activation_bytes(1));
        assert!(
            fp_peak < fp_total && q_peak < q_total,
            "{}: liveness plan must beat the naive activation pool",
            size.label()
        );
        println!(
            "{:>4} {:>5} {:>5} | {:>3} {:>4} {:>3} {:>4} | {:>10.2}M {:>10.2}M {:>5.2}x | {:>10.2}M {:>5.2}x",
            size.label(),
            g.nodes.len(),
            fp.module().nodes.len(),
            stats.bn_folded,
            stats.relu_fused,
            stats.identities_removed,
            stats.pack_slots,
            mib(fp_peak),
            mib(fp_total),
            fp_total as f64 / fp_peak as f64,
            mib(q_peak),
            q_total as f64 / q_peak as f64,
        );
    }
    println!("ok: pass pipeline clean and peak arena < total activations for all model sizes");
}
