//! Activation-memory accounting per model size at 256x256: per-worker arena
//! bytes under the liveness plan vs the naive sum-of-all-activations pool.
//! Used as a CI smoke check: the plan must beat the naive pool.

use rand::SeedableRng;
use seneca_nn::graph::Graph;
use seneca_nn::unet::{ModelSize, UNet};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::{Shape4, Tensor};

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let input = Shape4::new(1, 1, 256, 256);
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
    println!(
        "{:>4} {:>6} | {:>11} {:>11} {:>6} | {:>11} {:>11} {:>6}",
        "cfg", "slots", "fp32_peak", "fp32_total", "ratio", "int8_peak", "int8_total", "ratio"
    );
    for size in ModelSize::ALL {
        let net = UNet::from_size(size, &mut rng);
        let g = Graph::from_unet(&net, size.label());
        let plan = g.plan(input);
        let (qg, _) = quantize_post_training(&fuse(&g), &calib, &PtqConfig::default());
        let qplan = qg.plan(input);
        let (fp_peak, fp_total) = (plan.peak_arena_bytes(4), plan.total_activation_bytes(4));
        let (q_peak, q_total) = (qplan.peak_arena_bytes(1), qplan.total_activation_bytes(1));
        assert!(
            fp_peak < fp_total && q_peak < q_total,
            "{}: liveness plan must beat the naive activation pool",
            size.label()
        );
        println!(
            "{:>4} {:>6} | {:>10.2}M {:>10.2}M {:>5.2}x | {:>10.2}M {:>10.2}M {:>5.2}x",
            size.label(),
            plan.n_slots(),
            mib(fp_peak),
            mib(fp_total),
            fp_total as f64 / fp_peak as f64,
            mib(q_peak),
            mib(q_total),
            q_total as f64 / q_peak as f64,
        );
    }
    println!("ok: peak_arena_bytes < total_activation_bytes for all model sizes");
}
