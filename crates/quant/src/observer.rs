//! Activation-range observers for calibration.
//!
//! During calibration each fused-graph node gets one observer; the observer
//! sees every activation tensor produced for the calibration images and, at
//! the end, proposes an INT8 fix position.

use seneca_tensor::quantized::choose_fix_pos;
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Range-estimation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObserverKind {
    /// Global min/max over all calibration activations (Vitis AI default).
    MinMax,
    /// Mean of per-image maxima — more robust to single-image outliers.
    AveragedMax,
    /// Percentile of sampled absolute values (e.g. 99.9).
    Percentile(u16),
}

/// One node's range observer.
#[derive(Debug, Clone)]
pub struct RangeObserver {
    kind: ObserverKind,
    global_max: f32,
    per_image_max: Vec<f32>,
    samples: Vec<f32>,
    sample_stride: usize,
}

impl RangeObserver {
    /// New observer of the given kind.
    pub fn new(kind: ObserverKind) -> Self {
        Self {
            kind,
            global_max: 0.0,
            per_image_max: Vec::new(),
            samples: Vec::new(),
            sample_stride: 97,
        }
    }

    /// Records one activation tensor (one calibration image's output at this
    /// node).
    pub fn observe(&mut self, t: &Tensor) {
        let m = t.abs_max();
        self.global_max = self.global_max.max(m);
        self.per_image_max.push(m);
        if matches!(self.kind, ObserverKind::Percentile(_)) {
            // Strided subsample keeps memory bounded on big calibration sets.
            for v in t.data().iter().step_by(self.sample_stride) {
                self.samples.push(v.abs());
            }
        }
    }

    /// Number of images observed.
    pub fn count(&self) -> usize {
        self.per_image_max.len()
    }

    /// The estimated range (absolute max to represent).
    pub fn range(&self) -> f32 {
        match self.kind {
            ObserverKind::MinMax => self.global_max,
            ObserverKind::AveragedMax => {
                if self.per_image_max.is_empty() {
                    0.0
                } else {
                    self.per_image_max.iter().sum::<f32>() / self.per_image_max.len() as f32
                }
            }
            ObserverKind::Percentile(p) => {
                if self.samples.is_empty() {
                    return self.global_max;
                }
                let mut s = self.samples.clone();
                s.sort_by(|a, b| a.total_cmp(b));
                let rank = ((p as f64 / 1000.0).min(1.0) * (s.len() - 1) as f64).round() as usize;
                s[rank]
            }
        }
    }

    /// The proposed fix position.
    pub fn fix_pos(&self) -> i32 {
        choose_fix_pos(self.range())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seneca_tensor::Shape4;

    fn t(vals: Vec<f32>) -> Tensor {
        let n = vals.len();
        Tensor::from_vec(Shape4::new(1, 1, 1, n), vals)
    }

    #[test]
    fn minmax_tracks_global_extreme() {
        let mut o = RangeObserver::new(ObserverKind::MinMax);
        o.observe(&t(vec![0.5, -0.2]));
        o.observe(&t(vec![-3.0, 1.0]));
        assert_eq!(o.range(), 3.0);
        assert_eq!(o.count(), 2);
    }

    #[test]
    fn averaged_max_smooths_outliers() {
        let mut o = RangeObserver::new(ObserverKind::AveragedMax);
        for _ in 0..9 {
            o.observe(&t(vec![1.0]));
        }
        o.observe(&t(vec![11.0]));
        assert!((o.range() - 2.0).abs() < 1e-5); // (9*1 + 11)/10
                                                 // MinMax would say 11: averaged-max yields a larger fix position
                                                 // (finer quantum) than min-max here.
        let mut mm = RangeObserver::new(ObserverKind::MinMax);
        for _ in 0..9 {
            mm.observe(&t(vec![1.0]));
        }
        mm.observe(&t(vec![11.0]));
        assert!(o.fix_pos() > mm.fix_pos());
    }

    #[test]
    fn percentile_clips_tail() {
        let mut o = RangeObserver::new(ObserverKind::Percentile(990));
        // 1000 samples: 999 small, one huge. With stride the huge one may be
        // skipped; feed as separate observations of size 1 to defeat stride.
        for i in 0..1000 {
            o.observe(&t(vec![if i == 500 { 100.0 } else { 1.0 }]));
        }
        let r = o.range();
        assert!(r < 100.0, "99th percentile must clip the outlier, got {r}");
    }

    #[test]
    fn empty_observer_defaults_sanely() {
        let o = RangeObserver::new(ObserverKind::MinMax);
        assert_eq!(o.range(), 0.0);
        assert_eq!(o.fix_pos(), 15); // choose_fix_pos(0) = max
    }
}
