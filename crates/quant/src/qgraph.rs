//! The quantized graph and its bit-exact INT8 functional executor.
//!
//! All arithmetic follows the DPU model: INT8 operands, INT32 accumulators,
//! power-of-two rescaling by arithmetic shift (round half away from zero,
//! saturating). The bias is pre-scaled to the accumulator's fix position
//! `fp_in + fp_w`, and each op's output is requantised to its calibrated
//! activation fix position.

use seneca_ir::shape::{infer_shapes_ops, ShapeOp};
use seneca_ir::{ConcatQ, ConvAttrs, ConvKernel, DType, IrOp, Module};
use seneca_tensor::igemm::igemm_conv;
use seneca_tensor::im2col::ConvGeom;
use seneca_tensor::quantized::{concat_requant_i8, maxpool2x2_i8, Bitwidth, QTensor};
use seneca_tensor::tconv::qtconv2x2_i8_into;
use seneca_tensor::{Shape4, Tensor};
use serde::{Deserialize, Serialize};

/// Parameters of a quantized (t)conv.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QConvParams {
    /// INT8 weights with their fix position.
    pub w: QTensor,
    /// Bias at accumulator scale (`fp_in + fp_w`).
    pub bias: Vec<i32>,
    /// Fused ReLU.
    pub relu: bool,
    /// Input activation fix position this node was calibrated for.
    pub in_fp: i32,
    /// Output activation fix position.
    pub out_fp: i32,
    /// Weight bitwidth. W4 weights are stored as i8 values in `[-8, 7]`, so
    /// every unpacked execution path runs them unchanged; only the packed
    /// GEMM panels and the deployment byte accounting differ.
    pub wbits: Bitwidth,
}

impl QConvParams {
    /// The requantisation shift (`fp_in + fp_w - fp_out`).
    pub fn shift(&self) -> i32 {
        self.in_fp + self.w.fix_pos() - self.out_fp
    }

    /// Deployed parameter bytes of this node: nibble-packed weights for W4,
    /// one byte per weight for W8, plus the INT32 bias words.
    pub fn weight_bytes(&self) -> u64 {
        let elems = self.w.shape().len();
        let w_bytes = match self.wbits {
            Bitwidth::W8 => elems,
            Bitwidth::W4 => elems.div_ceil(2),
        };
        (w_bytes + 4 * self.bias.len()) as u64
    }
}

/// Quantized operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QOp {
    /// Input placeholder.
    Input,
    /// Quantized 3x3 conv (+ReLU).
    Conv(QConvParams),
    /// Quantized 2x2 stride-2 transpose conv.
    TConv(QConvParams),
    /// Max pool (fix position unchanged).
    MaxPool2x2,
    /// Concat with per-input alignment shifts (right shifts to the smaller
    /// fix position).
    Concat {
        /// Right shift applied to the first input.
        shift_a: i32,
        /// Right shift applied to the second input.
        shift_b: i32,
        /// Resulting fix position.
        out_fp: i32,
    },
}

impl QOp {
    /// Mnemonic for compiler listings.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            QOp::Input => "input",
            QOp::Conv(_) => "qconv",
            QOp::TConv(_) => "qtconv",
            QOp::MaxPool2x2 => "qmaxpool",
            QOp::Concat { .. } => "qconcat",
        }
    }
}

/// Quantized node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QNode {
    /// Operation.
    pub op: QOp,
    /// Input node ids.
    pub inputs: Vec<usize>,
}

/// A fully quantized inference graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedGraph {
    /// Nodes, topological order, node 0 = input.
    pub nodes: Vec<QNode>,
    /// Output node id.
    pub output: usize,
    /// Fix position expected for the INT8 input image.
    pub input_fp: i32,
    /// Fix position of the INT8 output logits.
    pub output_fp: i32,
    /// Model name.
    pub name: String,
}

impl QuantizedGraph {
    /// Quantises an FP32 input image (`[-1, 1]` after preprocessing) into the
    /// graph's expected INT8 representation — this is the "scale input slices
    /// with a factor stored in the xmodel" step of §III-E.
    pub fn quantize_input(&self, x: &Tensor) -> QTensor {
        QTensor::quantize(x, self.input_fp)
    }

    /// Output shapes per node (delegates to the IR shape-inference pass —
    /// one walk for every graph type). Panics on structurally corrupt graphs
    /// (mismatched conv `C_in`, unequal concat geometries) rather than
    /// mis-executing — mirroring `Graph::shapes` on the FP32 side.
    pub fn shapes(&self, input: Shape4) -> Vec<Shape4> {
        let ops: Vec<(ShapeOp, &[usize])> = self
            .nodes
            .iter()
            .map(|node| {
                let op = match &node.op {
                    QOp::Input => ShapeOp::Input,
                    QOp::Conv(p) => ShapeOp::Conv { c_in: p.w.shape().c, c_out: p.w.shape().n },
                    QOp::TConv(p) => ShapeOp::TConv { c_in: p.w.shape().n, c_out: p.w.shape().c },
                    QOp::MaxPool2x2 => ShapeOp::MaxPool2x2,
                    QOp::Concat { .. } => ShapeOp::Concat,
                };
                (op, node.inputs.as_slice())
            })
            .collect();
        infer_shapes_ops(&ops, DType::I8, input)
    }

    /// Converts the quantized graph into the typed IR. Node ids are
    /// preserved one-to-one; the INT8 host executor and the DPU compiler
    /// both lower from the returned [`Module`].
    pub fn to_ir(&self) -> Module {
        let mut m = Module::new(self.name.clone(), DType::I8);
        m.input_fp = self.input_fp;
        m.output_fp = self.output_fp;
        for node in self.nodes.iter().skip(1) {
            let op = match &node.op {
                QOp::Input => unreachable!("input is always node 0"),
                QOp::Conv(p) => IrOp::Conv(ConvAttrs {
                    kernel: ConvKernel::I8 {
                        w: p.w.clone(),
                        bias: p.bias.clone(),
                        in_fp: p.in_fp,
                        out_fp: p.out_fp,
                        wbits: p.wbits,
                    },
                    relu: p.relu,
                    pack: None,
                }),
                QOp::TConv(p) => IrOp::TConv(ConvAttrs {
                    kernel: ConvKernel::I8 {
                        w: p.w.clone(),
                        bias: p.bias.clone(),
                        in_fp: p.in_fp,
                        out_fp: p.out_fp,
                        wbits: p.wbits,
                    },
                    relu: p.relu,
                    pack: None,
                }),
                QOp::MaxPool2x2 => IrOp::MaxPool2x2,
                QOp::Concat { shift_a, shift_b, out_fp } => IrOp::Concat {
                    requant: Some(ConcatQ {
                        shift_a: *shift_a,
                        shift_b: *shift_b,
                        out_fp: *out_fp,
                    }),
                },
            };
            m.push(op, node.inputs.clone());
        }
        m.output = self.output;
        m
    }

    /// Executes the graph on an INT8 input, returning the INT8 logits.
    pub fn execute(&self, input: &QTensor) -> QTensor {
        let mut vals = self.execute_all(input);
        vals.swap_remove(self.output)
    }

    /// Executes the graph and returns every node's INT8 output (used by the
    /// fast-finetuning pass to compare against FP32 references).
    pub fn execute_all(&self, input: &QTensor) -> Vec<QTensor> {
        assert_eq!(input.fix_pos(), self.input_fp, "input fix position");
        let mut vals: Vec<QTensor> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out = match &node.op {
                QOp::Input => input.clone(),
                QOp::Conv(p) => qconv3x3(&vals[node.inputs[0]], p),
                QOp::TConv(p) => qtconv2x2(&vals[node.inputs[0]], p),
                QOp::MaxPool2x2 => qmaxpool(&vals[node.inputs[0]]),
                QOp::Concat { shift_a, shift_b, out_fp } => qconcat(
                    &vals[node.inputs[0]],
                    &vals[node.inputs[1]],
                    *shift_a,
                    *shift_b,
                    *out_fp,
                ),
            };
            vals.push(out);
        }
        vals
    }

    /// Convenience: FP32 image in, per-pixel argmax labels out (like VART +
    /// host argmax).
    pub fn predict(&self, x: &Tensor) -> Vec<u8> {
        let q = self.execute(&self.quantize_input(x));
        seneca_tensor::activation::argmax_channels_i8(q.shape(), q.data())
    }

    /// Dequantised FP32 view of the logits (for error analysis).
    pub fn execute_dequant(&self, x: &Tensor) -> Tensor {
        self.execute(&self.quantize_input(x)).dequantize()
    }

    /// Total deployed parameter bytes across the graph (nibble-packed W4
    /// weights count half a byte per element). This is the "total weight
    /// bytes" number the mixed-precision search minimises alongside cycles.
    pub fn weight_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                QOp::Conv(p) | QOp::TConv(p) => p.weight_bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Output fix position per node (propagated through fix-transparent ops).
    pub fn fix_positions(&self) -> Vec<i32> {
        let mut fps: Vec<i32> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let fp = match &node.op {
                QOp::Input => self.input_fp,
                QOp::Conv(p) | QOp::TConv(p) => p.out_fp,
                QOp::MaxPool2x2 => fps[node.inputs[0]],
                QOp::Concat { out_fp, .. } => *out_fp,
            };
            fps.push(fp);
        }
        fps
    }
}

/// Quantized 3x3 same conv (allocating convenience wrapper; only the output
/// is allocated — the implicit-GEMM path has no column buffer).
pub fn qconv3x3(x: &QTensor, p: &QConvParams) -> QTensor {
    let xs = x.shape();
    let geom = ConvGeom { c_in: xs.c, h: xs.h, w: xs.w, k: 3, pad: 1, stride: 1 };
    let mut out =
        QTensor::zeros(Shape4::new(xs.n, p.w.shape().n, geom.h_out(), geom.w_out()), p.out_fp);
    qconv3x3_into(x, p, &mut out);
    out
}

/// Quantized 3x3 same conv into a pre-allocated output, which must have the
/// conv's output geometry and fix position.
pub fn qconv3x3_into(x: &QTensor, p: &QConvParams, out: &mut QTensor) {
    assert_eq!(x.fix_pos(), p.in_fp, "qconv input fix position");
    assert_eq!(out.fix_pos(), p.out_fp, "qconv output fix position");
    let xs = x.shape();
    let geom = ConvGeom { c_in: xs.c, h: xs.h, w: xs.w, k: 3, pad: 1, stride: 1 };
    let out_shape = Shape4::new(xs.n, p.w.shape().n, geom.h_out(), geom.w_out());
    assert_eq!(out.shape(), out_shape, "qconv output geometry");
    qconv3x3_core(xs, x.data(), p, out.data_mut());
}

/// Quantized 3x3 same conv on raw arena slices — the planned executor's
/// entry point. The activation panels pack directly from the feature map
/// (implicit GEMM — no materialized column matrix), and the bias add,
/// requantisation, and ReLU clamp all run in the GEMM's fused epilogue, so
/// there is no INT32 accumulator buffer and no second pass over the output.
/// Returns the output shape.
pub fn qconv3x3_core(xs: Shape4, x: &[i8], p: &QConvParams, out: &mut [i8]) -> Shape4 {
    let ws = p.w.shape();
    assert_eq!(x.len(), xs.len(), "qconv input buffer/shape mismatch");
    assert_eq!(ws.c, xs.c, "qconv C_in");
    let geom = ConvGeom { c_in: xs.c, h: xs.h, w: xs.w, k: 3, pad: 1, stride: 1 };
    let out_shape = Shape4::new(xs.n, ws.n, geom.h_out(), geom.w_out());
    assert_eq!(out.len(), out_shape.len(), "qconv output buffer size");
    let shift = p.shift();

    for n in 0..xs.n {
        let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
        let y_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
        igemm_conv(ws.n, p.w.data(), &geom, x_n, &p.bias, shift, p.relu, y_n);
    }
    out_shape
}

/// Quantized 2x2 stride-2 transpose conv (allocating convenience wrapper;
/// the direct-loop kernel needs no work buffers, so the returned output is
/// the only allocation).
pub fn qtconv2x2(x: &QTensor, p: &QConvParams) -> QTensor {
    let xs = x.shape();
    let mut out = QTensor::zeros(Shape4::new(xs.n, p.w.shape().c, xs.h * 2, xs.w * 2), p.out_fp);
    qtconv2x2_into(x, p, &mut out);
    out
}

/// Quantized 2x2 stride-2 transpose conv into a pre-allocated output.
pub fn qtconv2x2_into(x: &QTensor, p: &QConvParams, out: &mut QTensor) {
    assert_eq!(x.fix_pos(), p.in_fp, "qtconv input fix position");
    assert_eq!(out.fix_pos(), p.out_fp, "qtconv output fix position");
    let xs = x.shape();
    let out_shape = Shape4::new(xs.n, p.w.shape().c, xs.h * 2, xs.w * 2);
    assert_eq!(out.shape(), out_shape, "qtconv output geometry");
    qtconv2x2_core(xs, x.data(), p, out.data_mut());
}

/// Quantized transpose conv on raw arena slices — the planned executor's
/// entry point. Every output element is written by the scatter-fused GEMM
/// store, so stale slot contents are harmless.
///
/// With kernel size = stride there is no output overlap, so the op is four
/// independent 1x1 convolutions: one `[4*C_out, C_in] x [C_in, H*W]` GEMM
/// per image (the input plane is already the column matrix) with the bias,
/// requantise-clamp, and stride-2 scatter all fused into the tile store —
/// no pre-scatter buffer. Bit-identical to the former direct loops because
/// i32 addition is associative — the bias joining the sum at the end
/// instead of seeding the accumulator cannot change the value. Returns the
/// output shape.
pub fn qtconv2x2_core(xs: Shape4, x: &[i8], p: &QConvParams, out: &mut [i8]) -> Shape4 {
    let ws = p.w.shape(); // [C_in, C_out, 2, 2]
    assert_eq!(ws.n, xs.c, "qtconv C_in");
    qtconv2x2_i8_into(xs, x, p.w.data(), ws.c, &p.bias, p.shift(), p.relu, out)
}

/// INT8 max pool (fix position preserved; allocating convenience wrapper).
pub fn qmaxpool(x: &QTensor) -> QTensor {
    let mut out = QTensor::zeros(x.shape().pooled2x2(), x.fix_pos());
    qmaxpool_into(x, &mut out);
    out
}

/// INT8 max pool into a pre-allocated output.
pub fn qmaxpool_into(x: &QTensor, out: &mut QTensor) {
    assert_eq!(out.shape(), x.shape().pooled2x2(), "qmaxpool output geometry");
    assert_eq!(out.fix_pos(), x.fix_pos(), "qmaxpool fix position");
    qmaxpool_core(x.shape(), x.data(), out.data_mut());
}

/// INT8 max pool on raw arena slices (delegates to the shared tensor-crate
/// kernel the IR executor also uses). Returns the output shape.
pub fn qmaxpool_core(xs: Shape4, x: &[i8], out: &mut [i8]) -> Shape4 {
    maxpool2x2_i8(xs, x, out)
}

/// INT8 concat with alignment shifts (allocating convenience wrapper).
pub fn qconcat(a: &QTensor, b: &QTensor, shift_a: i32, shift_b: i32, out_fp: i32) -> QTensor {
    let (sa, sb) = (a.shape(), b.shape());
    let mut out = QTensor::zeros(Shape4::new(sa.n, sa.c + sb.c, sa.h, sa.w), out_fp);
    qconcat_into(a, b, shift_a, shift_b, out_fp, &mut out);
    out
}

/// INT8 concat with alignment shifts into a pre-allocated output.
pub fn qconcat_into(
    a: &QTensor,
    b: &QTensor,
    shift_a: i32,
    shift_b: i32,
    out_fp: i32,
    out: &mut QTensor,
) {
    let (sa, sb) = (a.shape(), b.shape());
    assert_eq!(out.shape(), Shape4::new(sa.n, sa.c + sb.c, sa.h, sa.w), "qconcat output geometry");
    assert_eq!(out.fix_pos(), out_fp, "qconcat fix position");
    qconcat_core(sa, a.data(), sb, b.data(), shift_a, shift_b, out.data_mut());
}

/// INT8 concat on raw arena slices (delegates to the shared tensor-crate
/// kernel the IR executor also uses). Returns the output shape.
pub fn qconcat_core(
    sa: Shape4,
    a: &[i8],
    sb: Shape4,
    b: &[i8],
    shift_a: i32,
    shift_b: i32,
    out: &mut [i8],
) -> Shape4 {
    concat_requant_i8(sa, a, sb, b, shift_a, shift_b, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seneca_tensor::quantized::choose_fix_pos;

    fn qp(w: Tensor, bias_f: &[f32], relu: bool, in_fp: i32, out_fp: i32) -> QConvParams {
        let w_fp = choose_fix_pos(w.abs_max());
        let wq = QTensor::quantize(&w, w_fp);
        let acc_fp = in_fp + w_fp;
        let bias = bias_f.iter().map(|&b| (b * (acc_fp as f32).exp2()).round() as i32).collect();
        QConvParams { w: wq, bias, relu, in_fp, out_fp, wbits: Bitwidth::W8 }
    }

    #[test]
    fn qconv_matches_fp32_within_quantum() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let xs = Shape4::new(1, 3, 8, 8);
        let x = Tensor::from_vec(xs, (0..xs.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let w = Tensor::he_normal(Shape4::new(4, 3, 3, 3), &mut rng);
        let b = vec![0.05, -0.02, 0.0, 0.11];

        let y_ref =
            seneca_tensor::conv::conv2d(&x, &w, &b, seneca_tensor::conv::Conv2dParams::SAME_3X3);
        let in_fp = choose_fix_pos(1.0);
        let out_fp = choose_fix_pos(y_ref.abs_max());
        let p = qp(w, &b, false, in_fp, out_fp);
        let xq = QTensor::quantize(&x, in_fp);
        let yq = qconv3x3(&xq, &p);
        let y = yq.dequantize();
        let quantum = (-out_fp as f32).exp2();
        let mut max_err = 0.0f32;
        for (a, bb) in y.data().iter().zip(y_ref.data()) {
            max_err = max_err.max((a - bb).abs());
        }
        assert!(max_err < 12.0 * quantum, "max err {max_err} vs quantum {quantum}");
    }

    #[test]
    fn qconv_relu_clamps_negatives() {
        let x = QTensor::from_vec(Shape4::new(1, 1, 2, 2), vec![-50, -50, -50, -50], 6);
        let mut w = Tensor::zeros(Shape4::new(1, 1, 3, 3));
        *w.at_mut(0, 0, 1, 1) = 1.0;
        let p = qp(w, &[0.0], true, 6, 6);
        let y = qconv3x3(&x, &p);
        assert!(y.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn qtconv_matches_fp32_within_quantum() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let xs = Shape4::new(1, 2, 4, 4);
        let x = Tensor::from_vec(xs, (0..xs.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let w = Tensor::he_normal(Shape4::new(2, 3, 2, 2), &mut rng);
        let b = vec![0.01, -0.03, 0.02];
        let y_ref = seneca_tensor::tconv::tconv2x2(&x, &w, &b);
        let in_fp = choose_fix_pos(1.0);
        let out_fp = choose_fix_pos(y_ref.abs_max());
        let p = qp(w, &b, false, in_fp, out_fp);
        let y = qtconv2x2(&QTensor::quantize(&x, in_fp), &p).dequantize();
        let quantum = (-out_fp as f32).exp2();
        for (a, bb) in y.data().iter().zip(y_ref.data()) {
            assert!((a - bb).abs() < 10.0 * quantum, "{a} vs {bb}");
        }
    }

    #[test]
    fn qmaxpool_preserves_fix_pos_and_picks_max() {
        let x = QTensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1, 9, -4, 5], 3);
        let y = qmaxpool(&x);
        assert_eq!(y.fix_pos(), 3);
        assert_eq!(y.data(), &[9]);
    }

    #[test]
    fn ir_lowered_execution_matches_execute_bit_exactly_across_frames() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let in_fp = choose_fix_pos(1.0);
        // Input -> Conv(+ReLU) -> MaxPool -> TConv, then Concat(Conv, TConv):
        // exercises every op kind and a skip connection.
        let conv = qp(
            Tensor::he_normal(Shape4::new(3, 2, 3, 3), &mut rng),
            &[0.02, -0.01, 0.05],
            true,
            in_fp,
            5,
        );
        let tconv =
            qp(Tensor::he_normal(Shape4::new(3, 2, 2, 2), &mut rng), &[0.01, 0.0], false, 5, 4);
        let g = QuantizedGraph {
            nodes: vec![
                QNode { op: QOp::Input, inputs: vec![] },
                QNode { op: QOp::Conv(conv), inputs: vec![0] },
                QNode { op: QOp::MaxPool2x2, inputs: vec![1] },
                QNode { op: QOp::TConv(tconv), inputs: vec![2] },
                QNode { op: QOp::Concat { shift_a: 1, shift_b: 0, out_fp: 4 }, inputs: vec![1, 3] },
            ],
            output: 4,
            input_fp: in_fp,
            output_fp: 4,
            name: "scratch-test".into(),
        };
        let shape = Shape4::new(1, 2, 8, 8);
        let lowered = seneca_ir::lower(g.to_ir(), shape, &seneca_ir::LowerOptions::reference());
        let mut scratch = lowered.make_scratch_i8();
        for _frame in 0..3 {
            let x = Tensor::from_vec(
                shape,
                (0..shape.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            );
            let xq = g.quantize_input(&x);
            let y_alloc = g.execute(&xq);
            let y_pooled = lowered.execute_i8_into(&xq, &mut scratch);
            assert_eq!(y_pooled.data(), y_alloc.data(), "scratch reuse must not change bits");
            assert_eq!(y_pooled.fix_pos(), y_alloc.fix_pos());
        }
    }

    #[test]
    #[should_panic(expected = "qconv C_in mismatch")]
    fn corrupted_conv_c_in_panics_in_shapes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        // Weights expect 5 input channels but the upstream value has 2.
        let conv =
            qp(Tensor::he_normal(Shape4::new(3, 5, 3, 3), &mut rng), &[0.0, 0.0, 0.0], false, 6, 5);
        let g = QuantizedGraph {
            nodes: vec![
                QNode { op: QOp::Input, inputs: vec![] },
                QNode { op: QOp::Conv(conv), inputs: vec![0] },
            ],
            output: 1,
            input_fp: 6,
            output_fp: 5,
            name: "corrupt".into(),
        };
        let _ = g.shapes(Shape4::new(1, 2, 8, 8));
    }

    #[test]
    #[should_panic(expected = "qconcat geometry mismatch")]
    fn corrupted_concat_geometry_panics_in_shapes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let conv =
            qp(Tensor::he_normal(Shape4::new(2, 2, 3, 3), &mut rng), &[0.0, 0.0], false, 6, 5);
        // Concat of a full-res value with its pooled half-res sibling.
        let g = QuantizedGraph {
            nodes: vec![
                QNode { op: QOp::Input, inputs: vec![] },
                QNode { op: QOp::Conv(conv), inputs: vec![0] },
                QNode { op: QOp::MaxPool2x2, inputs: vec![1] },
                QNode { op: QOp::Concat { shift_a: 0, shift_b: 0, out_fp: 5 }, inputs: vec![1, 2] },
            ],
            output: 3,
            input_fp: 6,
            output_fp: 5,
            name: "corrupt".into(),
        };
        let _ = g.shapes(Shape4::new(1, 2, 8, 8));
    }

    #[test]
    fn scratch_arena_is_smaller_than_per_node_pool() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let in_fp = choose_fix_pos(1.0);
        let conv1 =
            qp(Tensor::he_normal(Shape4::new(4, 2, 3, 3), &mut rng), &[0.0; 4], true, in_fp, 5);
        let conv2 = qp(Tensor::he_normal(Shape4::new(4, 4, 3, 3), &mut rng), &[0.0; 4], true, 5, 5);
        let conv3 = qp(Tensor::he_normal(Shape4::new(4, 4, 3, 3), &mut rng), &[0.0; 4], true, 5, 4);
        let g = QuantizedGraph {
            nodes: vec![
                QNode { op: QOp::Input, inputs: vec![] },
                QNode { op: QOp::Conv(conv1), inputs: vec![0] },
                QNode { op: QOp::Conv(conv2), inputs: vec![1] },
                QNode { op: QOp::Conv(conv3), inputs: vec![2] },
            ],
            output: 3,
            input_fp: in_fp,
            output_fp: 4,
            name: "chain".into(),
        };
        let plan = g.to_ir().plan(Shape4::new(1, 2, 16, 16));
        // A 3-conv chain ping-pongs: peak-live well below the per-node sum.
        assert!(plan.n_slots() < plan.n_nodes());
        assert!(plan.peak_arena_elems() < plan.total_activation_elems());
    }

    #[test]
    fn qconcat_aligns_scales() {
        // a at fp 4 (scale 1/16), b at fp 2 (scale 1/4): out at fp 2 requires
        // a >> 2.
        let a = QTensor::from_vec(Shape4::new(1, 1, 1, 2), vec![16, 33], 4);
        let b = QTensor::from_vec(Shape4::new(1, 1, 1, 2), vec![4, -8], 2);
        let y = qconcat(&a, &b, 2, 0, 2);
        assert_eq!(y.fix_pos(), 2);
        // 16/16 = 1.0 -> at fp2: 4 ; 33>>2 rounds to 8 (8.25).
        assert_eq!(y.data(), &[4, 8, 4, -8]);
    }
}
