//! Quantization-aware training hooks (§III-D's third option).
//!
//! The Vitis AI QAT path "rewrites the floating graph and converts it to a
//! quantized model before network training". We reproduce the essential
//! mechanism — weights are projected onto the INT8 grid during training so
//! the optimizer learns around the quantisation error (straight-through
//! estimator semantics: forward on the projected weights, gradients applied
//! to the latent FP32 weights, projection re-applied after each step).
//!
//! As the paper found, QAT buys nothing over PTQ here while costing full
//! training time; `reproduce ablation-quant` quantifies that.

use seneca_nn::loss::FocalTverskyLoss;
use seneca_nn::optim::Optimizer;
use seneca_nn::train::{Sample, TrainConfig};
use seneca_nn::unet::UNet;
use seneca_tensor::quantized::{choose_fix_pos_bits, Bitwidth, QTensor};
use seneca_tensor::Tensor;

/// Projects all conv / tconv weights of the network onto the INT8 grid.
/// Thin wrapper over [`project_weights`] kept for the existing QAT loop.
pub fn project_weights_int8(net: &mut UNet) {
    project_weights(net, Bitwidth::W8);
}

/// Projects all conv / tconv weights of the network onto the integer grid
/// of the given bitwidth (quantize–dequantize with per-tensor fix
/// positions). Biases and BN parameters stay FP32, matching DPU deployment
/// where biases live in INT32. With [`Bitwidth::W4`] this is the QAT hook
/// for mixed-precision deployments: train against the 4-bit grid the
/// nibble-packed panels will hold.
pub fn project_weights(net: &mut UNet, bits: Bitwidth) {
    let project = |w: &mut Tensor| {
        let fp = choose_fix_pos_bits(w.abs_max(), bits);
        *w = QTensor::quantize_bits(w, fp, bits).dequantize();
    };
    for e in &mut net.encoders {
        project(&mut e.conv1.w);
        project(&mut e.conv2.w);
    }
    project(&mut net.bneck1.w);
    project(&mut net.bneck2.w);
    for d in &mut net.decoders {
        project(&mut d.up.w);
        project(&mut d.conv1.w);
        project(&mut d.conv2.w);
    }
    project(&mut net.head.w);
}

/// Quantization-aware training: standard training loop with an INT8 weight
/// projection after every optimizer step.
pub fn train_qat(
    net: &mut UNet,
    samples: &[Sample],
    loss: &FocalTverskyLoss,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
) -> Vec<seneca_nn::train::EpochStats> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    assert!(!samples.is_empty(), "empty training set");
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut history = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let images: Vec<Tensor> = chunk.iter().map(|&i| samples[i].image.clone()).collect();
            let batch = Tensor::stack_batch(&images);
            let mut labels = Vec::new();
            for &i in chunk {
                labels.extend_from_slice(&samples[i].labels);
            }
            // Forward runs on projected (quantized) weights.
            project_weights_int8(net);
            let (probs, cache) = net.forward(&batch, &mut rng);
            let (lval, dprobs) = loss.forward_backward(&probs, &labels);
            net.zero_grad();
            net.backward(&cache, &dprobs);
            opt.step(net);
            loss_sum += lval as f64;
            batches += 1;
        }
        history.push(seneca_nn::train::EpochStats {
            epoch,
            mean_loss: loss_sum / batches.max(1) as f64,
            lr: opt.lr(),
        });
        opt.set_lr(opt.lr() * cfg.lr_decay);
    }
    // Leave the network on the INT8 grid, ready for export.
    project_weights_int8(net);
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seneca_nn::optim::Adam;
    use seneca_nn::train::toy_quadrant_dataset;
    use seneca_nn::unet::UNetConfig;
    use seneca_tensor::quantized::choose_fix_pos;

    #[test]
    fn projection_is_idempotent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg =
            UNetConfig { depth: 1, base_filters: 4, in_channels: 1, num_classes: 4, dropout: 0.0 };
        let mut net = UNet::new(cfg, &mut rng);
        project_weights_int8(&mut net);
        let w1 = net.encoders[0].conv1.w.clone();
        project_weights_int8(&mut net);
        assert_eq!(net.encoders[0].conv1.w, w1);
    }

    #[test]
    fn projected_weights_live_on_int8_grid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg =
            UNetConfig { depth: 1, base_filters: 4, in_channels: 1, num_classes: 4, dropout: 0.0 };
        let mut net = UNet::new(cfg, &mut rng);
        project_weights_int8(&mut net);
        let w = &net.encoders[0].conv1.w;
        let fp = choose_fix_pos(w.abs_max());
        let scale = (fp as f32).exp2();
        for &v in w.data() {
            let g = v * scale;
            assert!((g - g.round()).abs() < 1e-3, "weight {v} off grid");
        }
    }

    #[test]
    fn w4_projection_lands_on_nibble_grid_and_is_idempotent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg =
            UNetConfig { depth: 1, base_filters: 4, in_channels: 1, num_classes: 4, dropout: 0.0 };
        let mut net = UNet::new(cfg, &mut rng);
        project_weights(&mut net, Bitwidth::W4);
        let w = net.encoders[0].conv1.w.clone();
        let fp = choose_fix_pos_bits(w.abs_max(), Bitwidth::W4);
        let scale = (fp as f32).exp2();
        for &v in w.data() {
            let g = v * scale;
            assert!((g - g.round()).abs() < 1e-3, "weight {v} off grid");
            assert!((-8.0..=7.0).contains(&g.round()), "weight {v} outside the nibble range");
        }
        project_weights(&mut net, Bitwidth::W4);
        assert_eq!(net.encoders[0].conv1.w, w);
    }

    #[test]
    fn qat_training_reduces_loss() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let samples = toy_quadrant_dataset(6, 16, 4, &mut rng);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 4, dropout: 0.0 };
        let mut net = UNet::new(cfg, &mut rng);
        let loss = FocalTverskyLoss::paper_defaults(vec![1.0; 4]);
        let mut opt = Adam::new(2e-3);
        let history = train_qat(
            &mut net,
            &samples,
            &loss,
            &mut opt,
            &TrainConfig {
                epochs: 10,
                batch_size: 3,
                seed: 5,
                lr_decay: 0.95,
                ..Default::default()
            },
        );
        let first = history.first().unwrap().mean_loss;
        let last = history.last().unwrap().mean_loss;
        assert!(last < first, "QAT loss {first} -> {last}");
    }
}
