//! Inference-graph fusion: the front-end clean-up both the Vitis AI
//! quantizer and VAI_C perform before touching numbers.
//!
//! * BatchNorm folds into the preceding convolution (running statistics);
//! * Dropout nodes are deleted ("nodes not required for inference");
//! * standalone ReLU fuses into the preceding conv;
//! * the trailing softmax is stripped — per §III-E the compiled model
//!   "returns INT8 masks", the argmax runs on the host.
//!
//! The rewrites themselves live in `seneca-ir`'s pass pipeline
//! ([`seneca_ir::fold_batchnorm`], [`seneca_ir::fuse_relu`],
//! [`seneca_ir::strip_identities`]); [`fuse`] runs them on the export
//! graph's IR form and projects the result into the quantizer's
//! [`FusedGraph`] hand-off type.

use seneca_ir::shape::{infer_shapes_ops, ShapeOp};
use seneca_ir::{ConvKernel, DType, IrOp};
use seneca_nn::graph::Graph;
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Fused operation set (what the DPU actually executes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FusedOp {
    /// Graph input.
    Input,
    /// 3x3 conv with folded BN and optional fused ReLU.
    Conv {
        /// Weights `[C_out, C_in, 3, 3]`.
        w: Tensor,
        /// Bias.
        b: Vec<f32>,
        /// Fused ReLU.
        relu: bool,
    },
    /// 2x2 stride-2 transpose conv.
    TConv {
        /// Weights `[C_in, C_out, 2, 2]`.
        w: Tensor,
        /// Bias.
        b: Vec<f32>,
    },
    /// 2x2 stride-2 max pool.
    MaxPool2x2,
    /// Channel concat of two inputs.
    Concat,
}

impl FusedOp {
    /// Mnemonic for listings.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            FusedOp::Input => "input",
            FusedOp::Conv { relu: true, .. } => "conv+relu",
            FusedOp::Conv { relu: false, .. } => "conv",
            FusedOp::TConv { .. } => "tconv",
            FusedOp::MaxPool2x2 => "maxpool",
            FusedOp::Concat => "concat",
        }
    }
}

/// Fused node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusedNode {
    /// Operation.
    pub op: FusedOp,
    /// Input node ids.
    pub inputs: Vec<usize>,
}

/// The fused graph (same topology conventions as [`Graph`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusedGraph {
    /// Nodes in topological order; node 0 is the input.
    pub nodes: Vec<FusedNode>,
    /// Output node id.
    pub output: usize,
    /// Model name carried over.
    pub name: String,
}

impl FusedGraph {
    /// Output shapes per node (delegates to the IR shape-inference pass).
    pub fn shapes(&self, input: seneca_tensor::Shape4) -> Vec<seneca_tensor::Shape4> {
        let ops: Vec<(ShapeOp, &[usize])> = self
            .nodes
            .iter()
            .map(|node| {
                let op = match &node.op {
                    FusedOp::Input => ShapeOp::Input,
                    FusedOp::Conv { w, .. } => {
                        ShapeOp::Conv { c_in: w.shape().c, c_out: w.shape().n }
                    }
                    FusedOp::TConv { w, .. } => {
                        ShapeOp::TConv { c_in: w.shape().n, c_out: w.shape().c }
                    }
                    FusedOp::MaxPool2x2 => ShapeOp::MaxPool2x2,
                    FusedOp::Concat => ShapeOp::Concat,
                };
                (op, node.inputs.as_slice())
            })
            .collect();
        infer_shapes_ops(&ops, DType::F32, input)
    }

    /// FP32 reference execution of the fused graph (used for calibration and
    /// for quantisation-error measurements). Returns all node outputs.
    pub fn execute_all(&self, input: &Tensor) -> Vec<Tensor> {
        use seneca_tensor::prelude::*;
        let mut vals: Vec<Tensor> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out = match &node.op {
                FusedOp::Input => input.clone(),
                FusedOp::Conv { w, b, relu: r } => {
                    let y = conv2d(&vals[node.inputs[0]], w, b, Conv2dParams::SAME_3X3);
                    if *r {
                        relu(&y)
                    } else {
                        y
                    }
                }
                FusedOp::TConv { w, b } => tconv2x2(&vals[node.inputs[0]], w, b),
                FusedOp::MaxPool2x2 => maxpool2x2(&vals[node.inputs[0]]).y,
                FusedOp::Concat => {
                    Tensor::concat_channels(&vals[node.inputs[0]], &vals[node.inputs[1]])
                }
            };
            vals.push(out);
        }
        vals
    }

    /// FP32 execution returning only the output (pre-softmax logits).
    pub fn execute(&self, input: &Tensor) -> Tensor {
        self.execute_all(input).swap_remove(self.output)
    }
}

/// Fuses a training-time graph into the DPU-executable form by running the
/// shared IR rewrite passes and projecting the result.
pub fn fuse(graph: &Graph) -> FusedGraph {
    let mut m = graph.to_ir();
    seneca_ir::fold_batchnorm(&mut m);
    seneca_ir::fuse_relu(&mut m);
    seneca_ir::strip_identities(&mut m, /* strip_softmax = */ true);

    let nodes = m
        .nodes
        .iter()
        .map(|node| {
            let op = match &node.op {
                IrOp::Input => FusedOp::Input,
                IrOp::Conv(a) => match &a.kernel {
                    ConvKernel::F32 { w, b } => {
                        FusedOp::Conv { w: w.clone(), b: b.clone(), relu: a.relu }
                    }
                    ConvKernel::I8 { .. } => unreachable!("export graphs are FP32"),
                },
                IrOp::TConv(a) => match &a.kernel {
                    ConvKernel::F32 { w, b } => FusedOp::TConv { w: w.clone(), b: b.clone() },
                    ConvKernel::I8 { .. } => unreachable!("export graphs are FP32"),
                },
                IrOp::MaxPool2x2 => FusedOp::MaxPool2x2,
                IrOp::Concat { .. } => FusedOp::Concat,
                other => panic!(
                    "{} survived fusion (unsupported placement in export graph)",
                    other.mnemonic(DType::F32)
                ),
            };
            FusedNode { op, inputs: node.inputs.clone() }
        })
        .collect();
    FusedGraph { nodes, output: m.output, name: m.name }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_tensor::activation::softmax_channels;
    use seneca_tensor::Shape4;

    fn tiny_graph(seed: u64) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.1 };
        Graph::from_unet(&UNet::new(cfg, &mut rng), "tiny")
    }

    #[test]
    fn fused_graph_has_no_bn_dropout_softmax() {
        let g = tiny_graph(1);
        let f = fuse(&g);
        for node in &f.nodes {
            assert!(
                !matches!(node.op, FusedOp::Input) || node.inputs.is_empty(),
                "input with inputs"
            );
        }
        let mnems: Vec<&str> = f.nodes.iter().map(|n| n.op.mnemonic()).collect();
        assert!(!mnems.iter().any(|m| m.contains("batchnorm") || m.contains("dropout")));
        // All non-head convs have fused relu.
        let convs: Vec<bool> = f
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                FusedOp::Conv { relu, .. } => Some(*relu),
                _ => None,
            })
            .collect();
        assert_eq!(convs.len(), 11);
        assert_eq!(convs.iter().filter(|r| **r).count(), 10, "head conv must stay linear");
    }

    #[test]
    fn fusion_preserves_inference_up_to_softmax() {
        let g = tiny_graph(2);
        let f = fuse(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
        let probs_ref = g.execute(&x);
        let logits = f.execute(&x);
        let probs = softmax_channels(&logits);
        for (a, b) in probs_ref.data().iter().zip(probs.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_shapes_match_source_graph() {
        let g = tiny_graph(4);
        let f = fuse(&g);
        let input = Shape4::new(1, 1, 32, 32);
        let fused_out = f.shapes(input)[f.output];
        let src_out = g.shapes(input)[g.output];
        assert_eq!(fused_out, src_out);
    }

    #[test]
    fn node_count_shrinks() {
        let g = tiny_graph(5);
        let f = fuse(&g);
        assert!(
            f.nodes.len() < g.nodes.len() - 10,
            "{} fused vs {} source",
            f.nodes.len(),
            g.nodes.len()
        );
    }
}
