//! # seneca-quant
//!
//! A Vitis-AI-style INT8 quantization stack (stage D of the SENECA
//! workflow). The DPU consumes INT8 tensors with power-of-two scales
//! ("fix positions"); this crate turns a trained FP32 [`seneca_nn::Graph`]
//! into a [`QuantizedGraph`] executable with pure integer arithmetic:
//!
//! 1. [`fuse`] — graph clean-up that mirrors the quantizer/VAI_C front end:
//!    BatchNorm folded into the preceding conv, dropout removed, ReLU fused
//!    into conv, softmax stripped (argmax runs on the CPU, paper §III-E);
//! 2. [`observer`] — activation-range observers run over the calibration set
//!    (min-max, averaged-max, percentile);
//! 3. [`ptq`] — post-training quantization: per-tensor symmetric weights,
//!    calibrated activations, bias at accumulator scale;
//! 4. [`finetune`] — "fast finetuning" (AdaQuant-flavoured): per-layer scale
//!    search plus bias correction against FP32 references;
//! 5. [`qat`] — quantization-aware training hooks (weight fake-quant).
//!
//! The functional executor in [`qgraph`] is bit-exact with the DPU simulator
//! in `seneca-dpu` — both reduce to the same `i8 x i8 -> i32 -> shift`
//! arithmetic from `seneca-tensor`.

pub mod finetune;
pub mod fuse;
pub mod observer;
pub mod ptq;
pub mod qat;
pub mod qgraph;

pub use fuse::{fuse, FusedGraph, FusedNode, FusedOp};
pub use observer::{ObserverKind, RangeObserver};
pub use ptq::{quantize_post_training, PtqConfig};
pub use qgraph::{QConvParams, QNode, QOp, QuantizedGraph};
