//! # seneca-quant
//!
//! A Vitis-AI-style INT8 quantization stack (stage D of the SENECA
//! workflow). The DPU consumes INT8 tensors with power-of-two scales
//! ("fix positions"); this crate turns a trained FP32 [`seneca_nn::Graph`]
//! into a [`QuantizedGraph`] executable with pure integer arithmetic:
//!
//! 1. [`fuse`] — graph clean-up that mirrors the quantizer/VAI_C front end:
//!    BatchNorm folded into the preceding conv, dropout removed, ReLU fused
//!    into conv, softmax stripped (argmax runs on the CPU, paper §III-E);
//! 2. [`observer`] — activation-range observers run over the calibration set
//!    (min-max, averaged-max, percentile);
//! 3. [`ptq`] — post-training quantization: per-tensor symmetric weights,
//!    calibrated activations, bias at accumulator scale;
//! 4. [`mixed`] — per-layer W4/W8 bitwidth assignment: sensitivity sweep
//!    plus a greedy DPU-cost-aware search (W4 weights live on a nibble
//!    grid, halving weight bytes where the layer tolerates it);
//! 5. [`finetune`] — "fast finetuning" (AdaQuant-flavoured): per-layer scale
//!    search plus bias correction against FP32 references;
//! 6. [`qat`] — quantization-aware training hooks (weight fake-quant at
//!    either bitwidth).
//!
//! The functional executor in [`qgraph`] is bit-exact with the DPU simulator
//! in `seneca-dpu` — both reduce to the same `i8 x i8 -> i32 -> shift`
//! arithmetic from `seneca-tensor`.

pub mod finetune;
pub mod fuse;
pub mod mixed;
pub mod observer;
pub mod ptq;
pub mod qat;
pub mod qgraph;

pub use fuse::{fuse, FusedGraph, FusedNode, FusedOp};
pub use mixed::{
    quantize_post_training_mixed, search_mixed_plan, sensitivity_sweep, BitwidthPlan,
    MixedSearchResult, SensitivityEntry,
};
pub use observer::{ObserverKind, RangeObserver};
pub use ptq::{calibrate, quantize_from_calibration, quantize_post_training, PtqConfig};
pub use qgraph::{QConvParams, QNode, QOp, QuantizedGraph};
pub use seneca_tensor::quantized::Bitwidth;
