//! Fast finetuning quantization (FFQ, §III-D).
//!
//! The paper describes FFQ as "based on the AdaQuant algorithm, adjusting
//! weights and quantize parameters layer-by-layer using a calibration
//! dataset". This module implements the two cheap, high-leverage pieces of
//! that recipe:
//!
//! 1. **per-layer scale search** — for each (t)conv, try neighbouring weight
//!    fix positions and keep the one minimising the node's output MSE against
//!    the FP32 reference;
//! 2. **bias correction** — absorb the systematic per-channel quantisation
//!    bias into the integer bias term.
//!
//! Consistent with the paper's finding, FFQ rarely beats plain PTQ on this
//! workload — the ablation bench (`reproduce ablation-quant`) shows that.

use crate::fuse::FusedGraph;
use crate::qgraph::{QOp, QuantizedGraph};
use seneca_tensor::quantized::QTensor;
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Summary of a fast-finetune run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FinetuneReport {
    /// Output-logit MSE before finetuning.
    pub mse_before: f64,
    /// Output-logit MSE after finetuning.
    pub mse_after: f64,
    /// Number of layers whose weight scale changed.
    pub scales_changed: usize,
    /// Number of layers whose bias was corrected.
    pub biases_corrected: usize,
}

/// Runs fast finetuning in place. `calib` are FP32 preprocessed images.
pub fn fast_finetune(
    qg: &mut QuantizedGraph,
    fg: &FusedGraph,
    calib: &[Tensor],
    max_images: usize,
) -> FinetuneReport {
    assert!(!calib.is_empty(), "FFQ needs calibration images");
    let imgs = &calib[..calib.len().min(max_images.max(1))];
    let mse_before = crate::ptq::quantization_mse(fg, qg, imgs);

    // FP32 reference activations per node, per image.
    let refs: Vec<Vec<Tensor>> = imgs.iter().map(|img| fg.execute_all(img)).collect();

    let mut scales_changed = 0usize;
    let mut biases_corrected = 0usize;

    let node_ids: Vec<usize> = (0..qg.nodes.len())
        .filter(|&i| matches!(qg.nodes[i].op, QOp::Conv(_) | QOp::TConv(_)))
        .collect();

    for &i in &node_ids {
        // --- scale search: try w_fp - 1 and w_fp + 1 ---
        let base_mse = node_mse(qg, &refs, imgs, i);
        let orig = get_conv(qg, i).clone();
        let mut best_mse = base_mse;
        let mut best: Option<crate::qgraph::QConvParams> = None;
        for delta in [-1i32, 1] {
            let mut cand = orig.clone();
            let new_fp = orig.w.fix_pos() + delta;
            if !(-12..=14).contains(&new_fp) {
                continue;
            }
            // Requantise the original FP32 weights at the new position. We
            // only have the INT8 weights here, so dequantise first — for a
            // +1 shift this is exact, for -1 it merely coarsens.
            let w_f = orig.w.dequantize();
            cand.w = QTensor::quantize(&w_f, new_fp);
            // Re-scale bias to the new accumulator fix position.
            let shift = new_fp - orig.w.fix_pos();
            cand.bias = orig
                .bias
                .iter()
                .map(|&b| if shift >= 0 { b << shift } else { b >> (-shift) })
                .collect();
            *get_conv_mut(qg, i) = cand.clone();
            let mse = node_mse(qg, &refs, imgs, i);
            if mse < best_mse * 0.999 {
                best_mse = mse;
                best = Some(cand);
            }
        }
        match best {
            Some(b) => {
                *get_conv_mut(qg, i) = b;
                scales_changed += 1;
            }
            None => *get_conv_mut(qg, i) = orig,
        }

        // --- bias correction: remove the mean per-channel output error ---
        let (mean_err, hw_count) = channel_mean_error(qg, &refs, imgs, i);
        if hw_count > 0 {
            let p = get_conv_mut(qg, i);
            let acc_fp = p.in_fp + p.w.fix_pos();
            let acc_scale = (acc_fp as f32).exp2();
            let mut corrected = false;
            for (b, &e) in p.bias.iter_mut().zip(&mean_err) {
                let delta = (e * acc_scale).round() as i32;
                if delta != 0 {
                    *b += delta;
                    corrected = true;
                }
            }
            biases_corrected += corrected as usize;
        }
    }

    let mse_after = crate::ptq::quantization_mse(fg, qg, imgs);
    FinetuneReport { mse_before, mse_after, scales_changed, biases_corrected }
}

fn get_conv(qg: &QuantizedGraph, i: usize) -> &crate::qgraph::QConvParams {
    match &qg.nodes[i].op {
        QOp::Conv(p) | QOp::TConv(p) => p,
        _ => unreachable!("filtered to conv nodes"),
    }
}

fn get_conv_mut(qg: &mut QuantizedGraph, i: usize) -> &mut crate::qgraph::QConvParams {
    match &mut qg.nodes[i].op {
        QOp::Conv(p) | QOp::TConv(p) => p,
        _ => unreachable!("filtered to conv nodes"),
    }
}

/// MSE of node `i`'s dequantised output against the FP32 reference.
fn node_mse(qg: &QuantizedGraph, refs: &[Vec<Tensor>], imgs: &[Tensor], i: usize) -> f64 {
    let mut acc = 0.0f64;
    let mut n = 0usize;
    for (img, r) in imgs.iter().zip(refs) {
        let vals = qg.execute_all(&qg.quantize_input(img));
        let y = vals[i].dequantize();
        for (a, b) in y.data().iter().zip(r[i].data()) {
            acc += ((a - b) as f64).powi(2);
            n += 1;
        }
    }
    acc / n.max(1) as f64
}

/// Per-output-channel mean error (FP32 − INT8) of node `i`.
fn channel_mean_error(
    qg: &QuantizedGraph,
    refs: &[Vec<Tensor>],
    imgs: &[Tensor],
    i: usize,
) -> (Vec<f32>, usize) {
    let mut sums: Vec<f64> = Vec::new();
    let mut count = 0usize;
    for (img, r) in imgs.iter().zip(refs) {
        let vals = qg.execute_all(&qg.quantize_input(img));
        let y = vals[i].dequantize();
        let s = y.shape();
        if sums.is_empty() {
            sums = vec![0.0; s.c];
        }
        for nidx in 0..s.n {
            for (c, sum) in sums.iter_mut().enumerate() {
                let base = s.idx(nidx, c, 0, 0);
                for pix in 0..s.hw() {
                    *sum += (r[i].data()[base + pix] - y.data()[base + pix]) as f64;
                }
            }
        }
        count += s.n * s.hw();
    }
    (sums.iter().map(|&v| (v / count.max(1) as f64) as f32).collect(), count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse;
    use crate::ptq::{quantize_post_training, PtqConfig};
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_tensor::Shape4;

    fn setup(seed: u64) -> (FusedGraph, QuantizedGraph, Vec<Tensor>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 1, base_filters: 4, in_channels: 1, num_classes: 4, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "t"));
        let calib: Vec<Tensor> = (0..4)
            .map(|_| {
                let mut t = Tensor::he_normal(Shape4::new(1, 1, 8, 8), &mut rng);
                for v in t.data_mut() {
                    *v = v.clamp(-1.0, 1.0);
                }
                t
            })
            .collect();
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        (fg, qg, calib)
    }

    #[test]
    fn ffq_never_increases_output_mse_substantially() {
        let (fg, mut qg, calib) = setup(1);
        let report = fast_finetune(&mut qg, &fg, &calib, 4);
        assert!(
            report.mse_after <= report.mse_before * 1.2,
            "FFQ degraded MSE: {} -> {}",
            report.mse_before,
            report.mse_after
        );
    }

    #[test]
    fn ffq_reports_activity() {
        let (fg, mut qg, calib) = setup(2);
        let report = fast_finetune(&mut qg, &fg, &calib, 4);
        // On an untrained tiny net at least some biases get corrected.
        assert!(report.biases_corrected + report.scales_changed > 0, "{report:?}");
    }

    #[test]
    #[should_panic(expected = "needs calibration")]
    fn empty_calibration_rejected() {
        let (fg, mut qg, _) = setup(3);
        let _ = fast_finetune(&mut qg, &fg, &[], 4);
    }
}
