//! Mixed-precision (W4A8 / W8A8) bitwidth assignment.
//!
//! The DPU's INT8 datapath leaves weight bandwidth on the table for layers
//! whose weight distribution survives a 4-bit grid: nibble-packed panels
//! halve the weight bytes a conv streams per frame, and a W4-aware
//! convolution engine doubles its output-channel parallelism. Not every
//! layer tolerates W4 — the per-layer damage is empirical. This module
//! provides the two tools the deployment flow needs:
//!
//! 1. [`sensitivity_sweep`] — quantize one conv/tconv at a time to W4 (all
//!    others stay W8) and measure the damage against the FP32 reference:
//!    argmax agreement plus per-class Dice against the FP32 argmax labels.
//! 2. [`search_mixed_plan`] — a greedy cost-aware search: candidates are
//!    ordered by modeled cost saving (the cost model is injected as a
//!    closure, typically DPU frame cycles from `seneca-dpu`), flipped to W4
//!    one at a time, and reverted whenever cumulative argmax agreement
//!    falls below the floor.
//!
//! Both work on a single calibration pass: activation fix positions do not
//! depend on the weight bitwidth, so [`crate::ptq::calibrate`] runs once
//! and each candidate plan only re-quantizes weights.

use crate::fuse::{FusedGraph, FusedOp};
use crate::ptq::{calibrate, quantize_from_calibration, PtqConfig, PtqReport};
use crate::qgraph::QuantizedGraph;
use seneca_tensor::quantized::Bitwidth;
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Per-node weight bitwidth assignment for a fused graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitwidthPlan {
    /// One entry per fused node; entries on non-conv nodes are ignored.
    pub wbits: Vec<Bitwidth>,
}

impl BitwidthPlan {
    /// The uniform plan (every layer at `bits`).
    pub fn uniform(n_nodes: usize, bits: Bitwidth) -> Self {
        Self { wbits: vec![bits; n_nodes] }
    }

    /// Number of nodes assigned W4.
    pub fn n_w4(&self) -> usize {
        self.wbits.iter().filter(|b| **b == Bitwidth::W4).count()
    }
}

/// Node ids of the bitwidth-assignable layers (conv/tconv), in topological
/// order.
pub fn quantizable_nodes(fg: &FusedGraph) -> Vec<usize> {
    fg.nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.op, FusedOp::Conv { .. } | FusedOp::TConv { .. }))
        .map(|(i, _)| i)
        .collect()
}

/// Quantises a fused graph with an explicit per-node bitwidth plan
/// (calibrate + build in one call; the mixed analogue of
/// [`crate::ptq::quantize_post_training`]).
pub fn quantize_post_training_mixed(
    fg: &FusedGraph,
    calib: &[Tensor],
    cfg: &PtqConfig,
    plan: &BitwidthPlan,
) -> (QuantizedGraph, PtqReport) {
    let report = calibrate(fg, calib, cfg);
    let qg = quantize_from_calibration(fg, &report, &plan.wbits);
    (qg, report)
}

/// Per-pixel argmax labels of the FP32 reference for each image — the
/// ground truth the sweep and the search score against. (On deployment
/// hardware there are no labels next to the calibration slices; the FP32
/// model's own predictions are the available reference, exactly like
/// `argmax_agreement`.)
fn fp32_labels(fg: &FusedGraph, images: &[Tensor]) -> Vec<Vec<u8>> {
    images.iter().map(|img| seneca_tensor::activation::argmax_channels(&fg.execute(img))).collect()
}

/// Fraction of pixels where the quantized argmax matches the reference
/// labels.
fn agreement_vs(qg: &QuantizedGraph, images: &[Tensor], labels: &[Vec<u8>]) -> f64 {
    let mut agree = 0u64;
    let mut total = 0u64;
    for (img, lab) in images.iter().zip(labels) {
        let pred = qg.predict(img);
        for (a, b) in pred.iter().zip(lab) {
            agree += (a == b) as u64;
            total += 1;
        }
    }
    agree as f64 / total.max(1) as f64
}

/// Per-class Dice of the quantized predictions against the reference
/// labels. Classes absent from both prediction and reference score 1.0
/// (nothing to miss).
pub fn dice_per_class(pred: &[u8], reference: &[u8], num_classes: usize) -> Vec<f64> {
    let mut inter = vec![0u64; num_classes];
    let mut p_count = vec![0u64; num_classes];
    let mut r_count = vec![0u64; num_classes];
    for (&p, &r) in pred.iter().zip(reference) {
        p_count[p as usize] += 1;
        r_count[r as usize] += 1;
        if p == r {
            inter[p as usize] += 1;
        }
    }
    (0..num_classes)
        .map(|c| {
            let denom = p_count[c] + r_count[c];
            if denom == 0 {
                1.0
            } else {
                2.0 * inter[c] as f64 / denom as f64
            }
        })
        .collect()
}

/// Sensitivity of one layer: what quantizing it (alone) to W4 does to the
/// model's fidelity against the FP32 reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityEntry {
    /// Fused-graph node id.
    pub node: usize,
    /// Op mnemonic (listing convenience).
    pub mnemonic: String,
    /// Argmax agreement with the FP32 reference when only this layer is W4.
    pub agreement: f64,
    /// Mean per-class Dice against the FP32 argmax labels.
    pub mean_dice: f64,
    /// Worst per-class Dice (the organ that suffers most).
    pub min_dice: f64,
    /// Weight bytes saved by nibble-packing this layer.
    pub bytes_saved: u64,
}

/// Quantizes one conv/tconv at a time to W4 (everything else W8) and
/// measures the per-layer damage on `eval` images. Entries come back in
/// node order; `num_classes` sizes the Dice tally.
pub fn sensitivity_sweep(
    fg: &FusedGraph,
    report: &PtqReport,
    eval: &[Tensor],
    num_classes: usize,
) -> Vec<SensitivityEntry> {
    assert!(!eval.is_empty(), "sensitivity sweep needs evaluation images");
    let labels = fp32_labels(fg, eval);
    let base = quantize_from_calibration(fg, report, &vec![Bitwidth::W8; fg.nodes.len()]);
    let base_bytes = base.weight_bytes();

    quantizable_nodes(fg)
        .into_iter()
        .map(|node| {
            let mut wbits = vec![Bitwidth::W8; fg.nodes.len()];
            wbits[node] = Bitwidth::W4;
            let qg = quantize_from_calibration(fg, report, &wbits);
            let agreement = agreement_vs(&qg, eval, &labels);
            let mut dice_sum = vec![0.0f64; num_classes];
            for (img, lab) in eval.iter().zip(&labels) {
                let pred = qg.predict(img);
                for (c, d) in dice_per_class(&pred, lab, num_classes).iter().enumerate() {
                    dice_sum[c] += d;
                }
            }
            let dice: Vec<f64> = dice_sum.iter().map(|s| s / eval.len() as f64).collect();
            SensitivityEntry {
                node,
                mnemonic: fg.nodes[node].op.mnemonic().to_string(),
                agreement,
                mean_dice: dice.iter().sum::<f64>() / num_classes.max(1) as f64,
                min_dice: dice.iter().copied().fold(f64::INFINITY, f64::min),
                bytes_saved: base_bytes - qg.weight_bytes(),
            }
        })
        .collect()
}

/// One accepted/rejected flip of the greedy search trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchStep {
    /// Node the search tried to flip to W4.
    pub node: usize,
    /// Whether the flip survived the agreement floor.
    pub accepted: bool,
    /// Cumulative argmax agreement after the trial.
    pub agreement: f64,
    /// Modeled cost after the trial (accepted flips only move this).
    pub cost: f64,
}

/// Result of [`search_mixed_plan`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixedSearchResult {
    /// The chosen per-node bitwidth assignment.
    pub plan: BitwidthPlan,
    /// Argmax agreement of the chosen plan against the FP32 reference.
    pub agreement: f64,
    /// Modeled cost of the uniform-W8 baseline.
    pub baseline_cost: f64,
    /// Modeled cost of the chosen plan.
    pub cost: f64,
    /// Agreement of the uniform-W8 baseline (the floor is usually set
    /// relative to this).
    pub baseline_agreement: f64,
    /// Full greedy trace.
    pub steps: Vec<SearchStep>,
}

/// Greedy DPU-cost-aware bitwidth search.
///
/// Starting from uniform W8, candidate layers are ordered by the modeled
/// cost each would save alone (descending — most profitable first), then
/// flipped to W4 one at a time; a flip is reverted when the cumulative
/// argmax agreement against the FP32 reference drops below
/// `agreement_floor`. `cost` is the injected model — typically modeled DPU
/// frame cycles — and must be monotone under weight shrinking for the
/// greedy order to make sense (weight bytes or cycles both qualify).
pub fn search_mixed_plan(
    fg: &FusedGraph,
    report: &PtqReport,
    eval: &[Tensor],
    agreement_floor: f64,
    cost: &dyn Fn(&QuantizedGraph) -> f64,
) -> MixedSearchResult {
    assert!(!eval.is_empty(), "mixed search needs evaluation images");
    let labels = fp32_labels(fg, eval);
    let n = fg.nodes.len();

    let base = quantize_from_calibration(fg, report, &vec![Bitwidth::W8; n]);
    let baseline_cost = cost(&base);
    let baseline_agreement = agreement_vs(&base, eval, &labels);

    // Rank candidates by the cost each saves alone.
    let mut candidates: Vec<(usize, f64)> = quantizable_nodes(fg)
        .into_iter()
        .map(|node| {
            let mut wbits = vec![Bitwidth::W8; n];
            wbits[node] = Bitwidth::W4;
            let solo = quantize_from_calibration(fg, report, &wbits);
            (node, baseline_cost - cost(&solo))
        })
        .collect();
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut plan = BitwidthPlan::uniform(n, Bitwidth::W8);
    let mut current_cost = baseline_cost;
    let mut current_agreement = baseline_agreement;
    let mut steps = Vec::with_capacity(candidates.len());
    for (node, saving) in candidates {
        if saving <= 0.0 {
            // The cost model says this flip buys nothing; skip the eval.
            continue;
        }
        plan.wbits[node] = Bitwidth::W4;
        let qg = quantize_from_calibration(fg, report, &plan.wbits);
        let agreement = agreement_vs(&qg, eval, &labels);
        let trial_cost = cost(&qg);
        let accepted = agreement >= agreement_floor;
        if accepted {
            current_cost = trial_cost;
            current_agreement = agreement;
        } else {
            plan.wbits[node] = Bitwidth::W8; // revert
        }
        steps.push(SearchStep { node, accepted, agreement, cost: trial_cost });
    }

    MixedSearchResult {
        plan,
        agreement: current_agreement,
        baseline_cost,
        cost: current_cost,
        baseline_agreement,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_tensor::Shape4;

    fn setup(seed: u64) -> (FusedGraph, Vec<Tensor>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.1 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "tiny"));
        let calib: Vec<Tensor> = (0..4)
            .map(|_| {
                let mut t = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
                for v in t.data_mut() {
                    *v = v.clamp(-1.0, 1.0);
                }
                t
            })
            .collect();
        (fg, calib)
    }

    #[test]
    fn dice_handles_absent_classes_and_perfect_overlap() {
        let pred = vec![0u8, 0, 1, 1];
        let same = pred.clone();
        let d = dice_per_class(&pred, &same, 4);
        assert_eq!(d, vec![1.0, 1.0, 1.0, 1.0]);
        let other = vec![0u8, 1, 1, 1];
        let d = dice_per_class(&pred, &other, 3);
        // class 0: inter 1, counts 2+1 -> 2/3; class 1: inter 2, counts 2+3
        // -> 4/5; class 2 absent from both -> 1.
        assert!((d[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[1] - 0.8).abs() < 1e-12);
        assert_eq!(d[2], 1.0);
    }

    #[test]
    fn sweep_covers_every_conv_and_saves_bytes() {
        let (fg, calib) = setup(11);
        let report = calibrate(&fg, &calib, &PtqConfig::default());
        let entries = sensitivity_sweep(&fg, &report, &calib[..2], 6);
        assert_eq!(entries.len(), quantizable_nodes(&fg).len());
        // depth-2 tiny U-Net: 11 convs + 2 tconvs.
        assert_eq!(entries.len(), 13);
        for e in &entries {
            assert!(e.bytes_saved > 0, "W4 must shrink node {}", e.node);
            assert!((0.0..=1.0).contains(&e.agreement));
            assert!((0.0..=1.0).contains(&e.mean_dice) && e.min_dice <= e.mean_dice);
        }
    }

    #[test]
    fn greedy_search_cuts_cost_and_holds_floor() {
        let (fg, calib) = setup(12);
        let report = calibrate(&fg, &calib, &PtqConfig::default());
        let cost = |qg: &QuantizedGraph| qg.weight_bytes() as f64;
        let res = search_mixed_plan(&fg, &report, &calib[..2], 0.80, &cost);
        assert!(res.agreement >= 0.80, "agreement {}", res.agreement);
        assert!(res.plan.n_w4() > 0, "no layer tolerated W4 on an untrained tiny net");
        assert!(res.cost < res.baseline_cost, "{} !< {}", res.cost, res.baseline_cost);
        // The result's qg must round-trip from the plan.
        let qg = quantize_from_calibration(&fg, &report, &res.plan.wbits);
        assert!((cost(&qg) - res.cost).abs() < 1e-9);
    }

    #[test]
    fn impossible_floor_keeps_uniform_w8() {
        let (fg, calib) = setup(13);
        let report = calibrate(&fg, &calib, &PtqConfig::default());
        let cost = |qg: &QuantizedGraph| qg.weight_bytes() as f64;
        let res = search_mixed_plan(&fg, &report, &calib[..1], 1.01, &cost);
        assert_eq!(res.plan.n_w4(), 0);
        assert_eq!(res.cost, res.baseline_cost);
        assert!(res.steps.iter().all(|s| !s.accepted));
    }

    #[test]
    fn mixed_ptq_wrapper_matches_manual_plan() {
        let (fg, calib) = setup(14);
        let mut plan = BitwidthPlan::uniform(fg.nodes.len(), Bitwidth::W8);
        let node = quantizable_nodes(&fg)[0];
        plan.wbits[node] = Bitwidth::W4;
        let (qg, report) = quantize_post_training_mixed(&fg, &calib, &PtqConfig::default(), &plan);
        let manual = quantize_from_calibration(&fg, &report, &plan.wbits);
        let y_a = qg.execute(&qg.quantize_input(&calib[0]));
        let y_b = manual.execute(&manual.quantize_input(&calib[0]));
        assert_eq!(y_a.data(), y_b.data());
        assert!(qg.name.ends_with("-w4a8"));
        assert!(qg.weight_bytes() < manual_bytes_uniform(&fg, &report));
    }

    fn manual_bytes_uniform(fg: &FusedGraph, report: &PtqReport) -> u64 {
        quantize_from_calibration(fg, report, &vec![Bitwidth::W8; fg.nodes.len()]).weight_bytes()
    }
}
