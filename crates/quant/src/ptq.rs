//! Post-training quantization (the method SENECA ships with, §III-D).
//!
//! PTQ needs only a small unlabeled calibration set (the paper uses 500
//! slices): activations are observed through the FP32 fused graph, each node
//! gets a power-of-two fix position, weights are quantised per-tensor, and
//! biases are pre-scaled to the accumulator fix position.

use crate::fuse::{FusedGraph, FusedOp};
use crate::observer::{ObserverKind, RangeObserver};
use crate::qgraph::{QConvParams, QNode, QOp, QuantizedGraph};
use seneca_tensor::quantized::{choose_fix_pos_bits, Bitwidth, QTensor};
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// PTQ settings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PtqConfig {
    /// Activation-range observer.
    pub observer: ObserverKind,
    /// Cap on calibration images actually used.
    pub max_images: usize,
    /// Default weight bitwidth applied to every conv/tconv. Per-node
    /// assignments go through [`quantize_from_calibration`] (see
    /// `crate::mixed` for the sensitivity sweep and the cost-aware search).
    pub wbits: Bitwidth,
}

impl Default for PtqConfig {
    fn default() -> Self {
        Self { observer: ObserverKind::MinMax, max_images: 500, wbits: Bitwidth::W8 }
    }
}

/// Per-node diagnostics from PTQ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PtqReport {
    /// Fix position per fused node.
    pub fix_pos: Vec<i32>,
    /// Activation range per fused node.
    pub range: Vec<f32>,
    /// Images used for calibration.
    pub images_used: usize,
}

/// Quantises a fused FP32 graph using `calib` images at the config's uniform
/// weight bitwidth.
///
/// Returns the quantized graph plus a calibration report.
pub fn quantize_post_training(
    fg: &FusedGraph,
    calib: &[Tensor],
    cfg: &PtqConfig,
) -> (QuantizedGraph, PtqReport) {
    let report = calibrate(fg, calib, cfg);
    let wbits = vec![cfg.wbits; fg.nodes.len()];
    let qg = quantize_from_calibration(fg, &report, &wbits);
    (qg, report)
}

/// Runs the calibration phases of PTQ only: observes activation ranges
/// through the FP32 fused graph and assigns the structurally-constrained fix
/// positions. Activation scales do not depend on the weight bitwidth, so a
/// mixed-precision sweep calibrates once and rebuilds graphs per plan via
/// [`quantize_from_calibration`].
pub fn calibrate(fg: &FusedGraph, calib: &[Tensor], cfg: &PtqConfig) -> PtqReport {
    assert!(!calib.is_empty(), "PTQ needs a non-empty calibration set");
    let used = calib.len().min(cfg.max_images.max(1));

    // 1. Observe activation ranges through the FP32 fused graph.
    let mut observers: Vec<RangeObserver> =
        (0..fg.nodes.len()).map(|_| RangeObserver::new(cfg.observer)).collect();
    for img in &calib[..used] {
        let vals = fg.execute_all(img);
        for (obs, val) in observers.iter_mut().zip(&vals) {
            obs.observe(val);
        }
    }

    // 2. Assign fix positions with structural constraints.
    let mut fp: Vec<i32> = observers.iter().map(|o| o.fix_pos()).collect();
    for (i, node) in fg.nodes.iter().enumerate() {
        match &node.op {
            FusedOp::MaxPool2x2 => fp[i] = fp[node.inputs[0]], // pool can't rescale
            FusedOp::Concat => {
                fp[i] = fp[node.inputs[0]].min(fp[node.inputs[1]]).min(fp[i]);
            }
            _ => {}
        }
    }

    PtqReport {
        fix_pos: fp,
        range: observers.iter().map(|o| o.range()).collect(),
        images_used: used,
    }
}

/// Builds the quantized graph from an existing calibration, with a per-node
/// weight bitwidth (`wbits[i]` applies to node `i`; entries on non-conv
/// nodes are ignored). Activation fix positions come from the report;
/// weights get their own per-tensor fix position chosen for the assigned
/// bitwidth's grid.
pub fn quantize_from_calibration(
    fg: &FusedGraph,
    report: &PtqReport,
    wbits: &[Bitwidth],
) -> QuantizedGraph {
    assert_eq!(wbits.len(), fg.nodes.len(), "one bitwidth per fused node");
    let fp = &report.fix_pos;
    assert_eq!(fp.len(), fg.nodes.len(), "calibration report is for another graph");

    let mut nodes = Vec::with_capacity(fg.nodes.len());
    for (i, node) in fg.nodes.iter().enumerate() {
        let op = match &node.op {
            FusedOp::Input => QOp::Input,
            FusedOp::Conv { w, b, relu } => {
                QOp::Conv(make_qconv(w, b, *relu, fp[node.inputs[0]], fp[i], wbits[i]))
            }
            FusedOp::TConv { w, b } => {
                QOp::TConv(make_qconv(w, b, false, fp[node.inputs[0]], fp[i], wbits[i]))
            }
            FusedOp::MaxPool2x2 => QOp::MaxPool2x2,
            FusedOp::Concat => QOp::Concat {
                shift_a: fp[node.inputs[0]] - fp[i],
                shift_b: fp[node.inputs[1]] - fp[i],
                out_fp: fp[i],
            },
        };
        nodes.push(QNode { op, inputs: node.inputs.clone() });
    }

    let mixed = fg.nodes.iter().enumerate().any(|(i, n)| {
        matches!(n.op, FusedOp::Conv { .. } | FusedOp::TConv { .. }) && wbits[i] == Bitwidth::W4
    });
    QuantizedGraph {
        nodes,
        output: fg.output,
        input_fp: fp[0],
        output_fp: fp[fg.output],
        name: format!("{}-{}", fg.name, if mixed { "w4a8" } else { "int8" }),
    }
}

fn make_qconv(
    w: &Tensor,
    b: &[f32],
    relu: bool,
    in_fp: i32,
    out_fp: i32,
    wbits: Bitwidth,
) -> QConvParams {
    let w_fp = choose_fix_pos_bits(w.abs_max(), wbits);
    let acc_scale = ((in_fp + w_fp) as f32).exp2();
    QConvParams {
        w: QTensor::quantize_bits(w, w_fp, wbits),
        bias: b.iter().map(|&v| (v * acc_scale).round() as i32).collect(),
        relu,
        in_fp,
        out_fp,
        wbits,
    }
}

/// Mean squared error between the dequantised INT8 logits and the FP32
/// logits over a set of images — the headline quantisation-quality metric.
pub fn quantization_mse(fg: &FusedGraph, qg: &QuantizedGraph, images: &[Tensor]) -> f64 {
    let mut acc = 0.0f64;
    let mut count = 0usize;
    for img in images {
        let y_ref = fg.execute(img);
        let y_q = qg.execute_dequant(img);
        for (a, b) in y_ref.data().iter().zip(y_q.data()) {
            acc += ((a - b) as f64).powi(2);
            count += 1;
        }
    }
    acc / count.max(1) as f64
}

/// Fraction of pixels where the INT8 argmax agrees with the FP32 argmax.
pub fn argmax_agreement(fg: &FusedGraph, qg: &QuantizedGraph, images: &[Tensor]) -> f64 {
    let mut agree = 0u64;
    let mut total = 0u64;
    for img in images {
        let ref_labels = seneca_tensor::activation::argmax_channels(&fg.execute(img));
        let q_labels = qg.predict(img);
        for (a, b) in ref_labels.iter().zip(&q_labels) {
            agree += (a == b) as u64;
            total += 1;
        }
    }
    agree as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_tensor::Shape4;

    fn setup(seed: u64) -> (FusedGraph, Vec<Tensor>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.1 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "tiny"));
        let calib: Vec<Tensor> = (0..6)
            .map(|_| {
                let mut t = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
                // Clamp to [-1, 1] like preprocessed CT slices.
                for v in t.data_mut() {
                    *v = v.clamp(-1.0, 1.0);
                }
                t
            })
            .collect();
        (fg, calib)
    }

    #[test]
    fn ptq_produces_consistent_fix_positions() {
        let (fg, calib) = setup(1);
        let (qg, report) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        assert_eq!(report.fix_pos.len(), fg.nodes.len());
        assert_eq!(report.images_used, 6);
        // Structural constraints honoured.
        for (i, node) in qg.nodes.iter().enumerate() {
            match &node.op {
                QOp::MaxPool2x2 => {
                    assert_eq!(report.fix_pos[i], report.fix_pos[node.inputs[0]]);
                }
                QOp::Concat { shift_a, shift_b, .. } => {
                    assert!(*shift_a >= 0 && *shift_b >= 0, "concat shifts must be right shifts");
                }
                QOp::Conv(p) | QOp::TConv(p) => {
                    assert_eq!(p.in_fp, report.fix_pos[node.inputs[0]]);
                    assert_eq!(p.out_fp, report.fix_pos[i]);
                }
                QOp::Input => {}
            }
        }
    }

    #[test]
    fn int8_output_tracks_fp32_logits() {
        let (fg, calib) = setup(2);
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let mse = quantization_mse(&fg, &qg, &calib[..2]);
        // Logits of an untrained net are O(1); MSE must be far below that.
        assert!(mse < 0.05, "mse {mse}");
        let agree = argmax_agreement(&fg, &qg, &calib[..2]);
        assert!(agree > 0.85, "argmax agreement {agree}");
    }

    #[test]
    fn more_calibration_images_never_shrink_ranges() {
        let (fg, calib) = setup(3);
        let (_, r1) = quantize_post_training(&fg, &calib[..1], &PtqConfig::default());
        let (_, r6) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        for (a, b) in r1.range.iter().zip(&r6.range) {
            assert!(b >= a, "range shrank with more data: {a} -> {b}");
        }
    }

    #[test]
    fn max_images_caps_calibration() {
        let (fg, calib) = setup(4);
        let (_, r) = quantize_post_training(
            &fg,
            &calib,
            &PtqConfig { observer: ObserverKind::MinMax, max_images: 3, wbits: Bitwidth::W8 },
        );
        assert_eq!(r.images_used, 3);
    }

    #[test]
    #[should_panic(expected = "non-empty calibration")]
    fn empty_calibration_rejected() {
        let (fg, _) = setup(5);
        let _ = quantize_post_training(&fg, &[], &PtqConfig::default());
    }

    /// Hand-computed W4A8 regression for the requant path, checked through
    /// the mixed-graph metric entry points.
    ///
    /// One 3x3 conv, only centre taps non-zero: `w = [0.5, -0.25]`,
    /// `b = [205/2048, 0]`, input `x = [0.5, -0.75]`.
    ///
    /// FP32: ch0 = 0.5*x + 205/2048 = [0.35009765625, -0.27490234375],
    ///       ch1 = -0.25*x          = [-0.125, 0.1875].
    /// Calibration (MinMax): input abs 0.75 -> fp 7; output abs 0.35009...
    /// -> fp 8. W4 weights: abs 0.5 -> fp 3 (grid max 7), q = [4, -2].
    /// Bias at fp 10: 205/2048 * 1024 = 102.5 -> rounds half away to 103.
    /// Shift = 7 + 3 - 8 = 2. Accumulators ch0: 64*4+103 = 359 -> 89.75
    /// -> 90; -96*4+103 = -281 -> -70.25 -> -70. ch1: -128 -> -32; 192 -> 48.
    /// Dequant errors: ch0 |3/2048| per pixel, ch1 exact, so
    /// MSE = 2*(3/2048)^2 / 4 and every argmax agrees.
    #[test]
    fn w4a8_requant_path_matches_hand_computation() {
        let mut w = Tensor::zeros(Shape4::new(2, 1, 3, 3));
        *w.at_mut(0, 0, 1, 1) = 0.5;
        *w.at_mut(1, 0, 1, 1) = -0.25;
        let b = vec![205.0 / 2048.0, 0.0];
        let fg = FusedGraph {
            nodes: vec![
                crate::fuse::FusedNode { op: FusedOp::Input, inputs: vec![] },
                crate::fuse::FusedNode { op: FusedOp::Conv { w, b, relu: false }, inputs: vec![0] },
            ],
            output: 1,
            name: "hand".into(),
        };
        let img = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.5, -0.75]);

        let report = calibrate(&fg, std::slice::from_ref(&img), &PtqConfig::default());
        assert_eq!(report.fix_pos, vec![7, 8]);
        let qg = quantize_from_calibration(&fg, &report, &[Bitwidth::W8, Bitwidth::W4]);
        assert_eq!(qg.name, "hand-w4a8");

        let QOp::Conv(p) = &qg.nodes[1].op else { panic!("node 1 must be a conv") };
        assert_eq!(p.wbits, Bitwidth::W4);
        assert_eq!(p.w.fix_pos(), 3);
        assert_eq!(p.w.data()[4], 4, "centre tap of ch0");
        assert_eq!(p.w.data()[13], -2, "centre tap of ch1");
        assert_eq!(p.bias, vec![103, 0]);
        assert_eq!(p.shift(), 2);
        // 2 weight nibbles round up to 9 bytes for 18 elems, plus 2 i32 bias.
        assert_eq!(p.weight_bytes(), 9 + 8);

        let y = qg.execute(&qg.quantize_input(&img));
        assert_eq!(y.data(), &[90, -70, -32, 48]);

        let mse = quantization_mse(&fg, &qg, std::slice::from_ref(&img));
        let e = 3.0f64 / 2048.0;
        assert!((mse - 2.0 * e * e / 4.0).abs() < 1e-15, "mse {mse}");
        let agree = argmax_agreement(&fg, &qg, std::slice::from_ref(&img));
        assert_eq!(agree, 1.0);
    }

    #[test]
    fn uniform_w8_plan_reproduces_quantize_post_training() {
        let (fg, calib) = setup(7);
        let (qg_direct, report) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let qg_planned =
            quantize_from_calibration(&fg, &report, &vec![Bitwidth::W8; fg.nodes.len()]);
        assert_eq!(qg_direct.name, qg_planned.name);
        let y_a = qg_direct.execute(&qg_direct.quantize_input(&calib[0]));
        let y_b = qg_planned.execute(&qg_planned.quantize_input(&calib[0]));
        assert_eq!(y_a.data(), y_b.data());
    }

    #[test]
    fn predict_labels_match_shapes() {
        let (fg, calib) = setup(6);
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let labels = qg.predict(&calib[0]);
        assert_eq!(labels.len(), 16 * 16);
        assert!(labels.iter().all(|&l| l < 6));
    }
}
