//! Post-training quantization (the method SENECA ships with, §III-D).
//!
//! PTQ needs only a small unlabeled calibration set (the paper uses 500
//! slices): activations are observed through the FP32 fused graph, each node
//! gets a power-of-two fix position, weights are quantised per-tensor, and
//! biases are pre-scaled to the accumulator fix position.

use crate::fuse::{FusedGraph, FusedOp};
use crate::observer::{ObserverKind, RangeObserver};
use crate::qgraph::{QConvParams, QNode, QOp, QuantizedGraph};
use seneca_tensor::quantized::{choose_fix_pos, QTensor};
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// PTQ settings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PtqConfig {
    /// Activation-range observer.
    pub observer: ObserverKind,
    /// Cap on calibration images actually used.
    pub max_images: usize,
}

impl Default for PtqConfig {
    fn default() -> Self {
        Self { observer: ObserverKind::MinMax, max_images: 500 }
    }
}

/// Per-node diagnostics from PTQ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PtqReport {
    /// Fix position per fused node.
    pub fix_pos: Vec<i32>,
    /// Activation range per fused node.
    pub range: Vec<f32>,
    /// Images used for calibration.
    pub images_used: usize,
}

/// Quantises a fused FP32 graph using `calib` images.
///
/// Returns the quantized graph plus a calibration report.
pub fn quantize_post_training(
    fg: &FusedGraph,
    calib: &[Tensor],
    cfg: &PtqConfig,
) -> (QuantizedGraph, PtqReport) {
    assert!(!calib.is_empty(), "PTQ needs a non-empty calibration set");
    let used = calib.len().min(cfg.max_images.max(1));

    // 1. Observe activation ranges through the FP32 fused graph.
    let mut observers: Vec<RangeObserver> =
        (0..fg.nodes.len()).map(|_| RangeObserver::new(cfg.observer)).collect();
    for img in &calib[..used] {
        let vals = fg.execute_all(img);
        for (obs, val) in observers.iter_mut().zip(&vals) {
            obs.observe(val);
        }
    }

    // 2. Assign fix positions with structural constraints.
    let mut fp: Vec<i32> = observers.iter().map(|o| o.fix_pos()).collect();
    for (i, node) in fg.nodes.iter().enumerate() {
        match &node.op {
            FusedOp::MaxPool2x2 => fp[i] = fp[node.inputs[0]], // pool can't rescale
            FusedOp::Concat => {
                fp[i] = fp[node.inputs[0]].min(fp[node.inputs[1]]).min(fp[i]);
            }
            _ => {}
        }
    }

    // 3. Build the quantized nodes.
    let mut nodes = Vec::with_capacity(fg.nodes.len());
    for (i, node) in fg.nodes.iter().enumerate() {
        let op = match &node.op {
            FusedOp::Input => QOp::Input,
            FusedOp::Conv { w, b, relu } => {
                QOp::Conv(make_qconv(w, b, *relu, fp[node.inputs[0]], fp[i]))
            }
            FusedOp::TConv { w, b } => {
                QOp::TConv(make_qconv(w, b, false, fp[node.inputs[0]], fp[i]))
            }
            FusedOp::MaxPool2x2 => QOp::MaxPool2x2,
            FusedOp::Concat => QOp::Concat {
                shift_a: fp[node.inputs[0]] - fp[i],
                shift_b: fp[node.inputs[1]] - fp[i],
                out_fp: fp[i],
            },
        };
        nodes.push(QNode { op, inputs: node.inputs.clone() });
    }

    let qg = QuantizedGraph {
        nodes,
        output: fg.output,
        input_fp: fp[0],
        output_fp: fp[fg.output],
        name: format!("{}-int8", fg.name),
    };
    let report = PtqReport {
        fix_pos: fp,
        range: observers.iter().map(|o| o.range()).collect(),
        images_used: used,
    };
    (qg, report)
}

fn make_qconv(w: &Tensor, b: &[f32], relu: bool, in_fp: i32, out_fp: i32) -> QConvParams {
    let w_fp = choose_fix_pos(w.abs_max());
    let acc_scale = ((in_fp + w_fp) as f32).exp2();
    QConvParams {
        w: QTensor::quantize(w, w_fp),
        bias: b.iter().map(|&v| (v * acc_scale).round() as i32).collect(),
        relu,
        in_fp,
        out_fp,
    }
}

/// Mean squared error between the dequantised INT8 logits and the FP32
/// logits over a set of images — the headline quantisation-quality metric.
pub fn quantization_mse(fg: &FusedGraph, qg: &QuantizedGraph, images: &[Tensor]) -> f64 {
    let mut acc = 0.0f64;
    let mut count = 0usize;
    for img in images {
        let y_ref = fg.execute(img);
        let y_q = qg.execute_dequant(img);
        for (a, b) in y_ref.data().iter().zip(y_q.data()) {
            acc += ((a - b) as f64).powi(2);
            count += 1;
        }
    }
    acc / count.max(1) as f64
}

/// Fraction of pixels where the INT8 argmax agrees with the FP32 argmax.
pub fn argmax_agreement(fg: &FusedGraph, qg: &QuantizedGraph, images: &[Tensor]) -> f64 {
    let mut agree = 0u64;
    let mut total = 0u64;
    for img in images {
        let ref_labels = seneca_tensor::activation::argmax_channels(&fg.execute(img));
        let q_labels = qg.predict(img);
        for (a, b) in ref_labels.iter().zip(&q_labels) {
            agree += (a == b) as u64;
            total += 1;
        }
    }
    agree as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_tensor::Shape4;

    fn setup(seed: u64) -> (FusedGraph, Vec<Tensor>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.1 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "tiny"));
        let calib: Vec<Tensor> = (0..6)
            .map(|_| {
                let mut t = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
                // Clamp to [-1, 1] like preprocessed CT slices.
                for v in t.data_mut() {
                    *v = v.clamp(-1.0, 1.0);
                }
                t
            })
            .collect();
        (fg, calib)
    }

    #[test]
    fn ptq_produces_consistent_fix_positions() {
        let (fg, calib) = setup(1);
        let (qg, report) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        assert_eq!(report.fix_pos.len(), fg.nodes.len());
        assert_eq!(report.images_used, 6);
        // Structural constraints honoured.
        for (i, node) in qg.nodes.iter().enumerate() {
            match &node.op {
                QOp::MaxPool2x2 => {
                    assert_eq!(report.fix_pos[i], report.fix_pos[node.inputs[0]]);
                }
                QOp::Concat { shift_a, shift_b, .. } => {
                    assert!(*shift_a >= 0 && *shift_b >= 0, "concat shifts must be right shifts");
                }
                QOp::Conv(p) | QOp::TConv(p) => {
                    assert_eq!(p.in_fp, report.fix_pos[node.inputs[0]]);
                    assert_eq!(p.out_fp, report.fix_pos[i]);
                }
                QOp::Input => {}
            }
        }
    }

    #[test]
    fn int8_output_tracks_fp32_logits() {
        let (fg, calib) = setup(2);
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let mse = quantization_mse(&fg, &qg, &calib[..2]);
        // Logits of an untrained net are O(1); MSE must be far below that.
        assert!(mse < 0.05, "mse {mse}");
        let agree = argmax_agreement(&fg, &qg, &calib[..2]);
        assert!(agree > 0.85, "argmax agreement {agree}");
    }

    #[test]
    fn more_calibration_images_never_shrink_ranges() {
        let (fg, calib) = setup(3);
        let (_, r1) = quantize_post_training(&fg, &calib[..1], &PtqConfig::default());
        let (_, r6) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        for (a, b) in r1.range.iter().zip(&r6.range) {
            assert!(b >= a, "range shrank with more data: {a} -> {b}");
        }
    }

    #[test]
    fn max_images_caps_calibration() {
        let (fg, calib) = setup(4);
        let (_, r) = quantize_post_training(
            &fg,
            &calib,
            &PtqConfig { observer: ObserverKind::MinMax, max_images: 3 },
        );
        assert_eq!(r.images_used, 3);
    }

    #[test]
    #[should_panic(expected = "non-empty calibration")]
    fn empty_calibration_rejected() {
        let (fg, _) = setup(5);
        let _ = quantize_post_training(&fg, &[], &PtqConfig::default());
    }

    #[test]
    fn predict_labels_match_shapes() {
        let (fg, calib) = setup(6);
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let labels = qg.predict(&calib[0]);
        assert_eq!(labels.len(), 16 * 16);
        assert!(labels.iter().all(|&l| l < 6));
    }
}
