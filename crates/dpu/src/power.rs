//! ZCU104 board power model.
//!
//! The paper measures DC wall power with a Voltcraft 4000 logger: 24.8–31 W
//! across models at 4 threads. We decompose that into: a static platform
//! draw (regulators, fans, DRAM refresh, PS idle), per-DPU-core power that
//! scales with *compute intensity* (array toggling dominates; memory-stalled
//! layers burn less), ARM core activity for pre/post-processing, DDR
//! interface power proportional to achieved bandwidth, and a small
//! per-runner-thread scheduling overhead (the reason ≥8 threads costs power
//! without FPS, §IV-B).

use serde::{Deserialize, Serialize};

/// Power model parameters (Watts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zcu104Power {
    /// Constant platform draw.
    pub static_w: f64,
    /// Per busy DPU core, load-independent part.
    pub dpu_base_w: f64,
    /// Per busy DPU core, multiplied by compute intensity.
    pub dpu_compute_w: f64,
    /// Per busy ARM core.
    pub arm_active_w: f64,
    /// Per idle ARM core.
    pub arm_idle_w: f64,
    /// DDR interface power per GB/s of achieved traffic.
    pub ddr_w_per_gbps: f64,
    /// Per runner thread (scheduler/polling overhead).
    pub thread_w: f64,
}

impl Default for Zcu104Power {
    fn default() -> Self {
        Self {
            static_w: 15.9,
            dpu_base_w: 1.1,
            dpu_compute_w: 4.0,
            arm_active_w: 0.55,
            arm_idle_w: 0.15,
            ddr_w_per_gbps: 0.25,
            thread_w: 0.16,
        }
    }
}

/// Inputs to the board-power computation, all averaged over a run.
#[derive(Debug, Clone, Copy)]
pub struct PowerInputs {
    /// Mean number of busy DPU cores (0..=cores).
    pub dpu_busy_cores: f64,
    /// Compute intensity of the running model (0..=1).
    pub compute_intensity: f64,
    /// Mean number of busy ARM cores (0..=arm_cores).
    pub arm_busy_cores: f64,
    /// Total ARM cores.
    pub arm_cores: usize,
    /// Achieved DDR traffic (GB/s).
    pub ddr_gbps: f64,
    /// Runner threads.
    pub threads: usize,
}

impl Zcu104Power {
    /// Average board power for the given activity profile.
    pub fn board_power_w(&self, i: &PowerInputs) -> f64 {
        let dpu = i.dpu_busy_cores * (self.dpu_base_w + self.dpu_compute_w * i.compute_intensity);
        let arm_idle = (i.arm_cores as f64 - i.arm_busy_cores).max(0.0) * self.arm_idle_w;
        let arm = i.arm_busy_cores * self.arm_active_w + arm_idle;
        self.static_w
            + dpu
            + arm
            + self.ddr_w_per_gbps * i.ddr_gbps
            + self.thread_w * i.threads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> PowerInputs {
        PowerInputs {
            dpu_busy_cores: 2.0,
            compute_intensity: 0.6,
            arm_busy_cores: 1.2,
            arm_cores: 4,
            ddr_gbps: 6.0,
            threads: 4,
        }
    }

    #[test]
    fn full_load_lands_in_papers_range() {
        let p = Zcu104Power::default();
        let w = p.board_power_w(&inputs());
        assert!((24.0..32.0).contains(&w), "board power {w} W outside Table IV range");
    }

    #[test]
    fn idle_board_draws_static_floor() {
        let p = Zcu104Power::default();
        let w = p.board_power_w(&PowerInputs {
            dpu_busy_cores: 0.0,
            compute_intensity: 0.0,
            arm_busy_cores: 0.0,
            arm_cores: 4,
            ddr_gbps: 0.0,
            threads: 0,
        });
        assert!((w - (p.static_w + 4.0 * p.arm_idle_w)).abs() < 1e-9);
    }

    #[test]
    fn more_threads_cost_power() {
        let p = Zcu104Power::default();
        let mut i = inputs();
        let w4 = p.board_power_w(&i);
        i.threads = 8;
        let w8 = p.board_power_w(&i);
        assert!(w8 > w4);
    }

    #[test]
    fn higher_intensity_costs_power() {
        let p = Zcu104Power::default();
        let mut i = inputs();
        i.compute_intensity = 0.2;
        let low = p.board_power_w(&i);
        i.compute_intensity = 0.9;
        let high = p.board_power_w(&i);
        assert!(high > low + 1.0);
    }
}
