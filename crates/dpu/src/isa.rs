//! The DPU instruction set.
//!
//! Mirrors the public structure of DPUCZDX8G microcode: LOAD/SAVE move
//! feature maps and weights between DDR and the on-chip memory pool; CONV
//! drives the hybrid computing array; POOL and ELEW run on the misc engine.
//! Each instruction carries the geometry the cost model needs plus the id of
//! the quantized-graph node it implements (for functional execution).

use seneca_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// One DPU instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DpuInstr {
    /// DMA feature map or weights from DDR into on-chip memory.
    Load {
        /// What is being loaded (for listings).
        what: LoadKind,
        /// Bytes moved (already channel-padded).
        bytes: u64,
        /// Channel count is misaligned w.r.t. ICP (costs extra bandwidth).
        misaligned: bool,
    },
    /// DMA a result back to DDR.
    Save {
        /// Bytes moved.
        bytes: u64,
        /// Misaligned channel count.
        misaligned: bool,
    },
    /// Convolution (3x3 stride 1 or transpose 2x2 stride 2) on the array.
    Conv {
        /// Quantized-graph node this implements.
        node: usize,
        /// Output height.
        h: usize,
        /// Output width (pre-pixel-parallel).
        w: usize,
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Kernel size.
        k: usize,
        /// Transpose convolution flag (changes the effective output grid).
        transpose: bool,
        /// ReLU fused on the write-back path (free).
        relu: bool,
        /// Weight bitwidth: W4 layers stream nibble-packed weights and run
        /// with doubled output-channel parallelism on the array.
        wbits: Bitwidth,
    },
    /// 2x2 max pool on the misc engine.
    Pool {
        /// Quantized-graph node.
        node: usize,
        /// Output height.
        h: usize,
        /// Output width.
        w: usize,
        /// Channels.
        c: usize,
    },
    /// Element-wise engine: channel concat with alignment shifts.
    Elew {
        /// Quantized-graph node.
        node: usize,
        /// Total elements moved.
        elems: u64,
    },
    /// End of kernel.
    End,
}

/// What a LOAD moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadKind {
    /// Input feature map of a layer.
    FeatureMap,
    /// Layer weights + bias.
    Weights,
    /// The network input image.
    Image,
}

impl DpuInstr {
    /// Disassembly mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DpuInstr::Load { .. } => "LOAD",
            DpuInstr::Save { .. } => "SAVE",
            DpuInstr::Conv { transpose: false, .. } => "CONV",
            DpuInstr::Conv { transpose: true, .. } => "DCONV",
            DpuInstr::Pool { .. } => "POOL",
            DpuInstr::Elew { .. } => "ELEW",
            DpuInstr::End => "END",
        }
    }

    /// Full one-line disassembly.
    pub fn disassemble(&self) -> String {
        match self {
            DpuInstr::Load { what, bytes, misaligned } => format!(
                "LOAD  {:11} {:>9} B{}",
                format!("{what:?}"),
                bytes,
                if *misaligned { "  [misaligned]" } else { "" }
            ),
            DpuInstr::Save { bytes, misaligned } => format!(
                "SAVE  {:11} {:>9} B{}",
                "FeatureMap",
                bytes,
                if *misaligned { "  [misaligned]" } else { "" }
            ),
            DpuInstr::Conv { node, h, w, c_in, c_out, k, transpose, relu, wbits } => format!(
                "{:5} n{node:<3} {h}x{w} {c_in}->{c_out} k{k}{}{}",
                if *transpose { "DCONV" } else { "CONV" },
                if *relu { " +relu" } else { "" },
                if *wbits == Bitwidth::W4 { " w4" } else { "" }
            ),
            DpuInstr::Pool { node, h, w, c } => format!("POOL  n{node:<3} {h}x{w} c{c}"),
            DpuInstr::Elew { node, elems } => format!("ELEW  n{node:<3} {elems} elems"),
            DpuInstr::End => "END".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics() {
        assert_eq!(
            DpuInstr::Conv {
                node: 1,
                h: 4,
                w: 4,
                c_in: 3,
                c_out: 8,
                k: 3,
                transpose: false,
                relu: true,
                wbits: Bitwidth::W8,
            }
            .mnemonic(),
            "CONV"
        );
        assert_eq!(
            DpuInstr::Conv {
                node: 1,
                h: 4,
                w: 4,
                c_in: 3,
                c_out: 8,
                k: 2,
                transpose: true,
                relu: false,
                wbits: Bitwidth::W8,
            }
            .mnemonic(),
            "DCONV"
        );
        assert_eq!(DpuInstr::End.mnemonic(), "END");
    }

    #[test]
    fn disassembly_contains_geometry() {
        let i = DpuInstr::Conv {
            node: 7,
            h: 64,
            w: 64,
            c_in: 16,
            c_out: 32,
            k: 3,
            transpose: false,
            relu: true,
            wbits: Bitwidth::W8,
        };
        let d = i.disassemble();
        assert!(d.contains("n7"));
        assert!(d.contains("16->32"));
        assert!(d.contains("+relu"));
    }

    #[test]
    fn serde_roundtrip() {
        let i = DpuInstr::Load { what: LoadKind::Weights, bytes: 4096, misaligned: true };
        let j = serde_json::to_string(&i).unwrap();
        let i2: DpuInstr = serde_json::from_str(&j).unwrap();
        assert_eq!(i, i2);
    }
}
