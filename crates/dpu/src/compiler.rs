//! The VAI_C-style compiler: quantized graph → xmodel.
//!
//! VAI_C "parses the topology of the quantized input model and constructs an
//! internal computation graph", fuses what it can and emits scheduled
//! microcode (§III-E). Our pipeline:
//!
//! 1. walk the quantized graph in topological order;
//! 2. per layer, emit `LOAD weights` / `LOAD fm` / `CONV|POOL|ELEW` /
//!    `SAVE fm` with channel-padded DDR byte counts (the B4096's on-chip
//!    pool cannot hold 256x256 feature maps, so maps stream through DDR
//!    every layer);
//! 3. accumulate compile statistics (cycles, traffic, misaligned layers).
//!
//! ReLU is already fused into conv nodes by the quantizer front-end; BN and
//! dropout no longer exist at this stage.

use crate::arch::DpuArch;
use crate::isa::{DpuInstr, LoadKind};
use crate::perf;
use crate::xmodel::{CompileStats, XModel};
use seneca_quant::{QOp, QuantizedGraph};
use seneca_tensor::Shape4;

/// Compiles a quantized graph for the given input geometry and architecture.
pub fn compile(qg: &QuantizedGraph, input_shape: Shape4, arch: DpuArch) -> XModel {
    assert_eq!(input_shape.n, 1, "xmodels are compiled for batch 1");
    let shapes = qg.shapes(input_shape);
    let mut instrs = Vec::new();
    let mut stats = CompileStats::default();

    let fm_bytes = |s: &Shape4| -> u64 { (s.hw() * arch.pad_channels(s.c)) as u64 };

    // Input image DMA.
    instrs.push(DpuInstr::Load {
        what: LoadKind::Image,
        bytes: fm_bytes(&shapes[0]),
        misaligned: arch.is_misaligned(shapes[0].c),
    });
    stats.fm_traffic_bytes += fm_bytes(&shapes[0]);

    for (i, node) in qg.nodes.iter().enumerate().skip(1) {
        let out_s = shapes[i];
        match &node.op {
            QOp::Input => unreachable!("input is node 0"),
            QOp::Conv(p) | QOp::TConv(p) => {
                let transpose = matches!(node.op, QOp::TConv(_));
                let in_s = shapes[node.inputs[0]];
                // Nibble-packed W4 layers stream half the weight bytes.
                let w_bytes = p.weight_bytes();
                instrs.push(DpuInstr::Load {
                    what: LoadKind::Weights,
                    bytes: w_bytes,
                    misaligned: false,
                });
                instrs.push(DpuInstr::Load {
                    what: LoadKind::FeatureMap,
                    bytes: fm_bytes(&in_s),
                    misaligned: arch.is_misaligned(in_s.c),
                });
                let (c_in, c_out, k) = if transpose {
                    (p.w.shape().n, p.w.shape().c, 2)
                } else {
                    (p.w.shape().c, p.w.shape().n, 3)
                };
                instrs.push(DpuInstr::Conv {
                    node: i,
                    h: if transpose { in_s.h } else { out_s.h },
                    w: if transpose { in_s.w } else { out_s.w },
                    c_in,
                    c_out,
                    k,
                    transpose,
                    relu: p.relu,
                    wbits: p.wbits,
                });
                instrs.push(DpuInstr::Save {
                    bytes: fm_bytes(&out_s),
                    misaligned: arch.is_misaligned(out_s.c),
                });
                stats.n_conv += 1;
                stats.weight_bytes += w_bytes;
                stats.fm_traffic_bytes += fm_bytes(&in_s) + fm_bytes(&out_s) + w_bytes;
                stats.misaligned_layers +=
                    (arch.is_misaligned(in_s.c) || arch.is_misaligned(out_s.c)) as usize;
            }
            QOp::MaxPool2x2 => {
                let in_s = shapes[node.inputs[0]];
                instrs.push(DpuInstr::Load {
                    what: LoadKind::FeatureMap,
                    bytes: fm_bytes(&in_s),
                    misaligned: arch.is_misaligned(in_s.c),
                });
                instrs.push(DpuInstr::Pool { node: i, h: out_s.h, w: out_s.w, c: out_s.c });
                instrs.push(DpuInstr::Save {
                    bytes: fm_bytes(&out_s),
                    misaligned: arch.is_misaligned(out_s.c),
                });
                stats.fm_traffic_bytes += fm_bytes(&in_s) + fm_bytes(&out_s);
            }
            QOp::Concat { .. } => {
                // The elementwise engine rewrites both inputs at the shared
                // fix position into the concatenated layout.
                let elems = out_s.len() as u64;
                instrs.push(DpuInstr::Elew { node: i, elems });
                stats.fm_traffic_bytes += 2 * fm_bytes(&out_s);
            }
        }
    }

    // Final result DMA + end-of-kernel.
    let out_s = shapes[qg.output];
    instrs
        .push(DpuInstr::Save { bytes: fm_bytes(&out_s), misaligned: arch.is_misaligned(out_s.c) });
    instrs.push(DpuInstr::End);
    stats.fm_traffic_bytes += fm_bytes(&out_s);

    stats.n_instrs = instrs.len();
    stats.compute_cycles = instrs.iter().map(|i| perf::compute_cycles(i, &arch)).sum();

    // DDR feature-map arena accounting: the same liveness plan the host
    // executors use, over channel-padded element counts (1 byte each) via
    // the IR's single ICP-padding hook.
    let plan = qg.to_ir().plan_padded(input_shape, |c| arch.pad_channels(c));
    stats.peak_arena_bytes = plan.peak_arena_bytes(1);
    stats.total_activation_bytes = plan.total_activation_bytes(1);

    XModel {
        name: qg.name.clone(),
        arch,
        input_shape,
        instrs,
        qgraph: qg.clone(),
        stats,
        lowered: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{ModelSize, UNet, UNetConfig};
    use seneca_quant::{fuse, quantize_post_training, PtqConfig};
    use seneca_tensor::Tensor;

    fn quantized(depth: usize, f: usize, seed: u64, size: usize) -> QuantizedGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth, base_filters: f, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, format!("d{depth}f{f}")));
        let calib = vec![Tensor::he_normal(Shape4::new(1, 1, size, size), &mut rng)];
        quantize_post_training(&fg, &calib, &PtqConfig::default()).0
    }

    #[test]
    fn compiles_all_conv_nodes() {
        let qg = quantized(2, 4, 1, 16);
        let xm = compile(&qg, Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());
        // depth 2: 11 convs + 2 tconvs = 13 conv-family instructions.
        assert_eq!(xm.stats.n_conv, 13);
        assert!(xm.stats.n_instrs > 13 * 4);
        assert!(matches!(xm.instrs.last(), Some(DpuInstr::End)));
        assert!(matches!(xm.instrs.first(), Some(DpuInstr::Load { what: LoadKind::Image, .. })));
    }

    #[test]
    fn weight_bytes_track_parameter_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let net = UNet::from_size(ModelSize::M1, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "1M"));
        let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let xm = compile(&qg, Shape4::new(1, 1, 32, 32), DpuArch::b4096_zcu104());
        // INT8 weights ≈ conv+tconv weight element count (biases are 4B each,
        // BN params are folded away). Must be within 10% of 1.0M elements.
        let approx_m = xm.stats.weight_bytes as f64 / 1e6;
        assert!((0.85..1.25).contains(&approx_m), "weights {approx_m}M bytes");
    }

    #[test]
    fn mixed_w4_model_compiles_with_fewer_weight_bytes_and_cycles() {
        use seneca_quant::{calibrate, quantize_from_calibration, Bitwidth};
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let cfg =
            UNetConfig { depth: 2, base_filters: 16, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "mixed"));
        let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng)];
        let report = calibrate(&fg, &calib, &PtqConfig::default());

        let uniform = quantize_from_calibration(&fg, &report, &vec![Bitwidth::W8; fg.nodes.len()]);
        // Flip every conv-family layer to W4.
        let wbits: Vec<Bitwidth> = fg
            .nodes
            .iter()
            .map(|n| match n.op {
                seneca_quant::FusedOp::Conv { .. } | seneca_quant::FusedOp::TConv { .. } => {
                    Bitwidth::W4
                }
                _ => Bitwidth::W8,
            })
            .collect();
        let mixed = quantize_from_calibration(&fg, &report, &wbits);

        let shape = Shape4::new(1, 1, 16, 16);
        let xm_u = compile(&uniform, shape, DpuArch::b4096_zcu104());
        let xm_m = compile(&mixed, shape, DpuArch::b4096_zcu104());
        assert!(
            xm_m.stats.weight_bytes < xm_u.stats.weight_bytes,
            "{} !< {}",
            xm_m.stats.weight_bytes,
            xm_u.stats.weight_bytes
        );
        assert!(xm_m.stats.compute_cycles < xm_u.stats.compute_cycles);
        assert!(xm_m.instrs.iter().any(|i| i.disassemble().ends_with(" w4")));
        assert!(xm_u.instrs.iter().all(|i| !i.disassemble().contains(" w4")));
    }

    #[test]
    fn misaligned_layers_detected_for_f6_model() {
        // f=6 (the 2M family): channel counts 6, 12, 24 are ICP-misaligned.
        let qg6 = quantized(2, 6, 3, 16);
        let xm6 = compile(&qg6, Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());
        let qg16 = quantized(2, 16, 3, 16);
        let xm16 = compile(&qg16, Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());
        assert!(
            xm6.stats.misaligned_layers > xm16.stats.misaligned_layers,
            "{} vs {}",
            xm6.stats.misaligned_layers,
            xm16.stats.misaligned_layers
        );
    }

    #[test]
    fn traffic_scales_with_resolution() {
        let qg = quantized(2, 4, 4, 32);
        let xm32 = compile(&qg, Shape4::new(1, 1, 32, 32), DpuArch::b4096_zcu104());
        let xm16 =
            compile(&quantized(2, 4, 4, 16), Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());
        assert!(xm32.stats.fm_traffic_bytes > 3 * xm16.stats.fm_traffic_bytes);
    }

    #[test]
    #[should_panic(expected = "batch 1")]
    fn batch_must_be_one() {
        let qg = quantized(1, 4, 5, 8);
        let _ = compile(&qg, Shape4::new(2, 1, 8, 8), DpuArch::b4096_zcu104());
    }
}
