//! The DPU cost model.
//!
//! Three mechanisms drive the paper-visible performance shape:
//!
//! * **lane quantisation** — the array processes `ceil(C_in/ICP)` x
//!   `ceil(C_out/OCP)` channel-group pairs and `ceil(W/PP)` pixel groups, so
//!   models with few channels (f=6 vs f=8) often cost the *same* cycles
//!   while the GPU sees proportional FLOPs. This is why the 1M model out-runs
//!   the 2M model on the DPU but not on the GPU (Table IV);
//! * **double-buffered DMA** — per layer, compute overlaps with the DMA of
//!   its operands: `layer time = max(compute, mem) + fixed overhead`;
//! * **channel padding + misalignment** — feature maps are stored in
//!   ICP-channel groups; non-multiple-of-16 channel counts pay a
//!   read-modify-write bandwidth penalty, which hits the f=6 (2M) model at
//!   its largest layers and explains 4M ≥ 2M FPS.

use crate::arch::DpuArch;
use crate::isa::DpuInstr;
use crate::xmodel::XModel;
use seneca_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// Cost breakdown of one frame on one DPU core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameCost {
    /// Pure array compute time (ns).
    pub compute_ns: u64,
    /// Pure DMA time (ns).
    pub mem_ns: u64,
    /// Fixed instruction overheads (ns).
    pub overhead_ns: u64,
    /// Frame latency after compute/DMA overlap (ns).
    pub serial_ns: u64,
}

impl FrameCost {
    /// Fraction of the frame the array is computing (drives dynamic power).
    pub fn compute_intensity(&self) -> f64 {
        if self.serial_ns == 0 {
            return 0.0;
        }
        (self.compute_ns as f64 / self.serial_ns as f64).min(1.0)
    }
}

/// Array compute cycles of one instruction (0 for pure-DMA instructions).
pub fn compute_cycles(instr: &DpuInstr, arch: &DpuArch) -> u64 {
    match instr {
        DpuInstr::Conv { h, w, c_in, c_out, k, wbits, .. } => {
            let cg_in = c_in.div_ceil(arch.icp) as u64;
            // W4 layers feed two weight nibbles per byte into the array, so
            // the same weight-buffer port drives twice the output-channel
            // lanes per pass.
            let ocp_eff = match wbits {
                Bitwidth::W8 => arch.ocp,
                Bitwidth::W4 => arch.ocp * 2,
            };
            let cg_out = c_out.div_ceil(ocp_eff) as u64;
            let pg = w.div_ceil(arch.pixel_parallel) as u64;
            let kk = (*k * *k) as u64;
            // Transpose conv walks the input grid; each visit fills a 2x2
            // output block, one cycle per kernel tap like direct conv.
            let rows = *h as u64;
            let base = cg_in * cg_out * pg * rows * kk;
            // Img-buffer bank conflicts on partially filled channel groups.
            if c_in % arch.icp != 0 || c_out % arch.ocp != 0 {
                (base as f64 * arch.compute_misalign_penalty) as u64
            } else {
                base
            }
        }
        DpuInstr::Pool { h, w, c, .. } => {
            // Misc engine: one 2x2 window per channel-group per pixel-group.
            let cg = c.div_ceil(arch.icp) as u64;
            let pg = w.div_ceil(arch.pixel_parallel) as u64;
            cg * pg * *h as u64 * 4
        }
        DpuInstr::Elew { elems, .. } => elems / (arch.icp * arch.pixel_parallel) as u64,
        DpuInstr::Load { .. } | DpuInstr::Save { .. } | DpuInstr::End => 0,
    }
}

/// DMA time of one instruction in ns (0 for compute instructions).
pub fn mem_ns(instr: &DpuInstr, arch: &DpuArch) -> u64 {
    let (bytes, misaligned) = match instr {
        DpuInstr::Load { bytes, misaligned, .. } | DpuInstr::Save { bytes, misaligned } => {
            (*bytes, *misaligned)
        }
        _ => return 0,
    };
    let base = bytes as f64 / arch.ddr_gbps; // ns (bytes / (GB/s) = ns)
    let factor = if misaligned { arch.misalign_penalty } else { 1.0 };
    (base * factor) as u64
}

/// Frame cost on one core: the DPU's load/compute/store engines run deeply
/// pipelined with double-buffered on-chip memory, so over a whole frame the
/// DMA stream overlaps the array almost completely — the frame latency is
/// `max(total compute, total DMA) + per-dispatch overheads`.
pub fn frame_cost(xm: &XModel, arch: &DpuArch) -> FrameCost {
    let ns_per_cycle = arch.ns_per_cycle();
    let mut compute_total = 0u64;
    let mut mem_total = 0u64;
    let mut overhead_total = 0u64;

    for instr in &xm.instrs {
        match instr {
            DpuInstr::Load { .. } | DpuInstr::Save { .. } | DpuInstr::End => {
                mem_total += mem_ns(instr, arch);
            }
            _ => {
                compute_total += (compute_cycles(instr, arch) as f64 * ns_per_cycle) as u64;
                overhead_total += arch.instr_overhead_ns;
            }
        }
    }
    let overhead_total = overhead_total + arch.frame_overhead_ns;
    let serial = compute_total.max(mem_total) + overhead_total;
    FrameCost {
        compute_ns: compute_total,
        mem_ns: mem_total,
        overhead_ns: overhead_total,
        serial_ns: serial,
    }
}

/// Frame cost with pruning credit: zeroed output channels (see
/// `seneca_nn::prune`) skip their channel-group work. `live_ratio` in
/// `[0, 1]` scales conv compute cycles.
pub fn frame_cost_pruned(xm: &XModel, arch: &DpuArch, live_ratio: f64) -> FrameCost {
    let base = frame_cost(xm, arch);
    let compute = (base.compute_ns as f64 * live_ratio.clamp(0.0, 1.0)) as u64;
    // Memory and overheads do not shrink (maps keep their padded layout).
    let serial = base.serial_ns - (base.compute_ns - compute).min(base.serial_ns / 2);
    FrameCost { compute_ns: compute, serial_ns: serial, ..base }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::LoadKind;

    fn arch() -> DpuArch {
        DpuArch::b4096_zcu104()
    }

    #[test]
    fn conv_cycles_use_lane_quantisation() {
        let a = arch();
        let mk = |c_in: usize, c_out: usize| DpuInstr::Conv {
            node: 0,
            h: 64,
            w: 64,
            c_in,
            c_out,
            k: 3,
            transpose: false,
            relu: false,
            wbits: Bitwidth::W8,
        };
        // 6 and 8 input channels cost identical cycles (both one ICP group,
        // both misaligned).
        assert_eq!(compute_cycles(&mk(6, 8), &a), compute_cycles(&mk(8, 8), &a));
        // 9 vs 16 input channels: same group count, but 9 pays the
        // bank-conflict penalty on top.
        let aligned = compute_cycles(&mk(16, 16), &a);
        let misaligned = compute_cycles(&mk(9, 16), &a);
        assert_eq!(misaligned, (aligned as f64 * a.compute_misalign_penalty) as u64);
        // 17 channels spill into a second group: 2x the groups, plus the
        // misalignment penalty.
        assert_eq!(
            compute_cycles(&mk(17, 16), &a),
            (2.0 * aligned as f64 * a.compute_misalign_penalty) as u64
        );
    }

    #[test]
    fn conv_cycles_formula() {
        let a = arch();
        let i = DpuInstr::Conv {
            node: 0,
            h: 32,
            w: 32,
            c_in: 32,
            c_out: 64,
            k: 3,
            transpose: false,
            relu: true,
            wbits: Bitwidth::W8,
        };
        // 2 ICP groups * 4 OCP groups * 4 pixel groups * 32 rows * 9 taps.
        assert_eq!(compute_cycles(&i, &a), 2 * 4 * 4 * 32 * 9);
    }

    #[test]
    fn w4_doubles_output_channel_parallelism() {
        let a = arch();
        let mk = |wbits: Bitwidth| DpuInstr::Conv {
            node: 0,
            h: 32,
            w: 32,
            c_in: 32,
            c_out: 64,
            k: 3,
            transpose: false,
            relu: false,
            wbits,
        };
        // 64 output channels: 4 OCP groups at W8, 2 at W4 — exactly half the
        // cycles when everything stays aligned.
        assert_eq!(
            compute_cycles(&mk(Bitwidth::W4), &a) * 2,
            compute_cycles(&mk(Bitwidth::W8), &a)
        );
        // A single-group layer cannot shrink below one group.
        let small = |wbits: Bitwidth| DpuInstr::Conv {
            node: 0,
            h: 32,
            w: 32,
            c_in: 16,
            c_out: 16,
            k: 3,
            transpose: false,
            relu: false,
            wbits,
        };
        assert_eq!(
            compute_cycles(&small(Bitwidth::W4), &a),
            compute_cycles(&small(Bitwidth::W8), &a)
        );
    }

    #[test]
    fn misaligned_dma_costs_more() {
        let a = arch();
        let ok = DpuInstr::Load { what: LoadKind::FeatureMap, bytes: 1 << 20, misaligned: false };
        let bad = DpuInstr::Load { what: LoadKind::FeatureMap, bytes: 1 << 20, misaligned: true };
        assert!(mem_ns(&bad, &a) > mem_ns(&ok, &a));
        let ratio = mem_ns(&bad, &a) as f64 / mem_ns(&ok, &a) as f64;
        assert!((ratio - a.misalign_penalty).abs() < 0.01);
    }

    #[test]
    fn pool_and_elew_are_cheap_relative_to_conv() {
        let a = arch();
        let conv = DpuInstr::Conv {
            node: 0,
            h: 64,
            w: 64,
            c_in: 32,
            c_out: 32,
            k: 3,
            transpose: false,
            relu: false,
            wbits: Bitwidth::W8,
        };
        let pool = DpuInstr::Pool { node: 0, h: 32, w: 32, c: 32 };
        assert!(compute_cycles(&pool, &a) * 10 < compute_cycles(&conv, &a));
    }

    #[test]
    fn intensity_bounded_by_one() {
        let c = FrameCost { compute_ns: 500, mem_ns: 100, overhead_ns: 10, serial_ns: 400 };
        assert_eq!(c.compute_intensity(), 1.0);
        let c2 = FrameCost { compute_ns: 100, mem_ns: 100, overhead_ns: 10, serial_ns: 400 };
        assert!((c2.compute_intensity() - 0.25).abs() < 1e-12);
    }
}
