//! DPU microarchitecture parameters.
//!
//! The DPUCZDX8G family is parameterised by three parallelism degrees —
//! pixel parallelism (PP), input-channel parallelism (ICP) and
//! output-channel parallelism (OCP). Peak INT8 operations per cycle is
//! `2 * PP * ICP * OCP` (multiply + add). The B4096 used by SENECA has
//! PP=8, ICP=16, OCP=16 → 4096 ops/cycle, and the default ZCU104 image
//! instantiates two cores.

use serde::{Deserialize, Serialize};

/// Architecture description of one DPU configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpuArch {
    /// Configuration name (e.g. "DPUCZDX8G-B4096").
    pub name: String,
    /// Pixel parallelism (output pixels per cycle).
    pub pixel_parallel: usize,
    /// Input-channel parallelism.
    pub icp: usize,
    /// Output-channel parallelism.
    pub ocp: usize,
    /// Number of DPU cores on the fabric.
    pub cores: usize,
    /// Core clock in MHz (the ZCU104 reference design runs 300 MHz general
    /// logic / 600 MHz DSP double-pumped).
    pub clock_mhz: f64,
    /// Effective DDR bandwidth available to one core (GB/s). The ZCU104 has
    /// a single 64-bit DDR4-2400 channel (~19 GB/s peak) shared with the
    /// ARM host; sustained per-core DMA achieves a fraction of that.
    pub ddr_gbps: f64,
    /// Fixed per-instruction overhead (fetch, decode, DMA descriptor setup,
    /// pipeline fill/drain) in nanoseconds.
    pub instr_overhead_ns: u64,
    /// Fixed per-frame overhead (VART job dispatch, interrupt latency,
    /// input/output cache maintenance on the host side) in nanoseconds.
    pub frame_overhead_ns: u64,
    /// Multiplier on DDR traffic for feature maps whose channel count is not
    /// a multiple of ICP (read-modify-write on partially filled channel
    /// groups).
    pub misalign_penalty: f64,
    /// Multiplier on conv compute cycles when a channel count is misaligned
    /// (img-buffer bank conflicts partially stall the array).
    pub compute_misalign_penalty: f64,
    /// On-chip feature-map memory per core in KiB (B4096: weights + img
    /// buffers; feature maps above this spill to DDR every layer).
    pub onchip_kib: usize,
}

impl DpuArch {
    /// The dual-core B4096 on the ZCU104 (SENECA's target).
    pub fn b4096_zcu104() -> Self {
        Self {
            name: "DPUCZDX8G-B4096".into(),
            pixel_parallel: 8,
            icp: 16,
            ocp: 16,
            cores: 2,
            clock_mhz: 300.0,
            ddr_gbps: 9.5,
            instr_overhead_ns: 22_000,
            frame_overhead_ns: 1_100_000,
            misalign_penalty: 2.6,
            compute_misalign_penalty: 1.35,
            onchip_kib: 1024,
        }
    }

    /// A smaller configuration (B1152: 4x12x12) used by ablations.
    pub fn b1152() -> Self {
        Self {
            name: "DPUCZDX8G-B1152".into(),
            pixel_parallel: 4,
            icp: 12,
            ocp: 12,
            cores: 2,
            clock_mhz: 300.0,
            ddr_gbps: 9.5,
            instr_overhead_ns: 22_000,
            frame_overhead_ns: 1_100_000,
            misalign_penalty: 2.6,
            compute_misalign_penalty: 1.35,
            onchip_kib: 768,
        }
    }

    /// Peak INT8 ops per cycle (`2 * PP * ICP * OCP`).
    pub fn peak_ops_per_cycle(&self) -> usize {
        2 * self.pixel_parallel * self.icp * self.ocp
    }

    /// Peak INT8 TOPS of the whole fabric.
    pub fn peak_tops(&self) -> f64 {
        self.peak_ops_per_cycle() as f64 * self.clock_mhz * 1e6 * self.cores as f64 / 1e12
    }

    /// Nanoseconds per core clock cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1e3 / self.clock_mhz
    }

    /// Channel count padded up to the ICP boundary (feature-map storage
    /// granularity in DDR and on-chip RAM).
    pub fn pad_channels(&self, c: usize) -> usize {
        c.div_ceil(self.icp) * self.icp
    }

    /// True if a channel count needs read-modify-write handling.
    pub fn is_misaligned(&self, c: usize) -> bool {
        !c.is_multiple_of(self.icp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b4096_peaks_at_4096_ops() {
        let a = DpuArch::b4096_zcu104();
        assert_eq!(a.peak_ops_per_cycle(), 4096);
        // 4096 ops * 300 MHz * 2 cores ≈ 2.46 TOPS.
        assert!((a.peak_tops() - 2.4576).abs() < 1e-3);
    }

    #[test]
    fn channel_padding() {
        let a = DpuArch::b4096_zcu104();
        assert_eq!(a.pad_channels(1), 16);
        assert_eq!(a.pad_channels(16), 16);
        assert_eq!(a.pad_channels(17), 32);
        assert_eq!(a.pad_channels(48), 48);
        assert!(a.is_misaligned(6));
        assert!(!a.is_misaligned(32));
    }

    #[test]
    fn b1152_is_smaller() {
        assert!(
            DpuArch::b1152().peak_ops_per_cycle() < DpuArch::b4096_zcu104().peak_ops_per_cycle()
        );
    }
}
