//! # seneca-dpu
//!
//! A simulator for the Xilinx **DPUCZDX8G-B4096** soft-DSA that SENECA
//! deploys on (dual-core configuration on the ZCU104), together with the
//! VAI_C-style compiler and VART-style runtime around it:
//!
//! * [`arch`] — microarchitecture parameters: the hybrid computing array's
//!   three parallelism degrees (pixel x input-channel x output-channel =
//!   8x16x16 → 4096 ops/cycle), clocks, DDR bandwidth, instruction overheads;
//! * [`isa`] — the instruction set (LOAD / SAVE / CONV / POOL / ELEW / END)
//!   with a disassembler;
//! * [`compiler`] — compiles a [`seneca_quant::QuantizedGraph`] into an
//!   [`xmodel::XModel`]: tensor-arena allocation, per-instruction cycle and
//!   DDR-traffic estimates, fusion statistics;
//! * [`perf`] — the cycle/bandwidth cost model (lane quantisation via
//!   `ceil(C/16)`, channel-padding DDR traffic, misalignment penalties —
//!   the mechanisms behind the paper's model ordering on the DPU);
//! * [`executor`] — functional execution of an xmodel (bit-exact INT8, same
//!   kernels as `seneca-quant`) and timing-only execution;
//! * [`runtime`] — the VART-style asynchronous multi-threaded runner: real
//!   worker threads for functional jobs, a `seneca-hwsim` closed-network
//!   model for throughput/energy experiments (1/2/4/8 threads, Fig. 3);
//! * [`power`] — the ZCU104 board power model (static + per-core dynamic +
//!   DDR traffic), calibrated against Table IV's 24–31 W range;
//! * [`profile`] — vaitrace-style per-layer profiling of a compiled xmodel.

pub mod arch;
pub mod compiler;
pub mod executor;
pub mod isa;
pub mod perf;
pub mod power;
pub mod profile;
pub mod runtime;
pub mod xmodel;

pub use arch::DpuArch;
pub use compiler::compile;
pub use executor::{DpuCore, ExecMode};
pub use runtime::{DpuRunner, ThroughputReport};
pub use xmodel::XModel;
