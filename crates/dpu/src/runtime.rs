//! The VART-style asynchronous runtime.
//!
//! VART lets host threads "asynchronously submit and collect jobs to/from
//! the accelerator" (§III-E). Two execution paths are provided:
//!
//! * [`DpuRunner::run_functional`] — real worker threads (crossbeam channel
//!   fan-out) running the bit-exact INT8 executor; used by every accuracy
//!   experiment;
//! * [`DpuRunner::run_throughput`] — a `seneca-hwsim` closed-network
//!   simulation of the same pipeline (ARM pre-process → DPU core → ARM
//!   post-process) with the cost model supplying DPU service times; used by
//!   the FPS / Watt / EE sweeps (Table IV, Fig. 3).

use crate::executor::{DpuCore, ExecMode};
use crate::perf::frame_cost;
use crate::power::{PowerInputs, Zcu104Power};
use crate::xmodel::XModel;
use rand::{Rng, SeedableRng};
use seneca_hwsim::{simulate_closed_pipeline, Resource, StageSpec};
use seneca_tensor::{QTensor, Tensor};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Runtime configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Runner threads (the paper sweeps 1, 2, 4 and discusses 8).
    pub threads: usize,
    /// ARM host cores (the ZCU104's Cortex-A53 has 4).
    pub arm_cores: usize,
    /// Pre-processing time per input pixel on one ARM core (ns): rescale to
    /// the xmodel's input scale + INT8 quantisation.
    pub pre_ns_per_pixel: f64,
    /// Post-processing time per output pixel (ns): 6-channel argmax.
    pub post_ns_per_pixel: f64,
    /// Relative service-time jitter (DDR contention, scheduler noise).
    pub jitter_sigma: f64,
    /// Board power model.
    pub power: Zcu104Power,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            arm_cores: 4,
            pre_ns_per_pixel: 14.0,
            post_ns_per_pixel: 26.0,
            jitter_sigma: 0.004,
            power: Zcu104Power::default(),
        }
    }
}

/// Result of one throughput run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Frames per second.
    pub fps: f64,
    /// Average board power (W).
    pub watt: f64,
    /// Frames processed.
    pub frames: usize,
    /// Runner threads used.
    pub threads: usize,
    /// Mean busy DPU cores.
    pub dpu_busy_cores: f64,
    /// DPU utilisation in `[0, 1]`.
    pub dpu_util: f64,
    /// Simulated wall-clock (s).
    pub makespan_s: f64,
}

impl ThroughputReport {
    /// Energy efficiency, Eq. (3): FPS / Watt = frames / Joule.
    pub fn energy_efficiency(&self) -> f64 {
        if self.watt <= 0.0 {
            return 0.0;
        }
        self.fps / self.watt
    }
}

/// The runner: owns a compiled xmodel and a runtime configuration.
#[derive(Clone)]
pub struct DpuRunner {
    /// Compiled model.
    pub xmodel: Arc<XModel>,
    /// Runtime configuration.
    pub config: RuntimeConfig,
}

impl DpuRunner {
    /// Creates a runner.
    pub fn new(xmodel: Arc<XModel>, config: RuntimeConfig) -> Self {
        assert!(config.threads >= 1, "need at least one runner thread");
        assert!(config.arm_cores >= 1);
        Self { xmodel, config }
    }

    /// Simulated throughput run over `n_frames` frames.
    ///
    /// The seed drives the per-job jitter; the paper's μ±σ over 10 runs maps
    /// to 10 different seeds.
    pub fn run_throughput(&self, n_frames: usize, seed: u64) -> ThroughputReport {
        let xm = &self.xmodel;
        let cost = frame_cost(xm, &xm.arch);
        let hw = xm.input_shape.hw() as f64;
        let pre_ns = hw * self.config.pre_ns_per_pixel;
        let post_ns = hw * self.config.post_ns_per_pixel;

        // Per-job multiplicative jitter, one factor per (job, stage).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sigma = self.config.jitter_sigma;
        let jitter: Vec<f64> = (0..n_frames * 3)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (1.0 + sigma * g).max(0.5)
            })
            .collect();

        let resources =
            [Resource::new("arm", self.config.arm_cores), Resource::new("dpu", xm.arch.cores)];
        let stages =
            [StageSpec { resource: 0 }, StageSpec { resource: 1 }, StageSpec { resource: 0 }];
        let base = [pre_ns, cost.serial_ns as f64, post_ns];
        let rep = simulate_closed_pipeline(
            &resources,
            &stages,
            self.config.threads,
            n_frames,
            |job, stage| (base[stage] * jitter[(job * 3 + stage) % jitter.len()]) as u64,
        );

        let makespan_s = rep.makespan_ns as f64 * 1e-9;
        let fps = rep.throughput_per_s();
        let dpu_util = rep.utilisation(1, xm.arch.cores);
        let dpu_busy_cores = dpu_util * xm.arch.cores as f64;
        let arm_busy_cores = rep.utilisation(0, self.config.arm_cores) * self.config.arm_cores as f64;
        let ddr_gbps = xm.stats.fm_traffic_bytes as f64 * fps / 1e9;
        let watt = self.config.power.board_power_w(&PowerInputs {
            dpu_busy_cores,
            compute_intensity: cost.compute_intensity(),
            arm_busy_cores,
            arm_cores: self.config.arm_cores,
            ddr_gbps,
            threads: self.config.threads,
        });

        ThroughputReport {
            fps,
            watt,
            frames: rep.completed,
            threads: self.config.threads,
            dpu_busy_cores,
            dpu_util,
            makespan_s,
        }
    }

    /// Runs `n_runs` seeded throughput runs and returns (mean, std) of
    /// (fps, watt, ee) — the μ±σ of Table IV.
    pub fn run_throughput_repeated(
        &self,
        n_frames: usize,
        n_runs: usize,
        seed0: u64,
    ) -> ThroughputStats {
        assert!(n_runs >= 1);
        let runs: Vec<ThroughputReport> =
            (0..n_runs).map(|r| self.run_throughput(n_frames, seed0 + r as u64)).collect();
        let mean_std = |xs: Vec<f64>| -> (f64, f64) {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
            (m, v.sqrt())
        };
        let (fps_m, fps_s) = mean_std(runs.iter().map(|r| r.fps).collect());
        let (w_m, w_s) = mean_std(runs.iter().map(|r| r.watt).collect());
        let (ee_m, ee_s) = mean_std(runs.iter().map(|r| r.energy_efficiency()).collect());
        ThroughputStats {
            fps_mean: fps_m,
            fps_std: fps_s,
            watt_mean: w_m,
            watt_std: w_s,
            ee_mean: ee_m,
            ee_std: ee_s,
            runs,
        }
    }

    /// Functional execution of a batch of preprocessed FP32 images using
    /// real worker threads. Outputs are returned in input order.
    pub fn run_functional(&self, images: &[Tensor]) -> Vec<QTensor> {
        let n = images.len();
        let mut results: Vec<Option<QTensor>> = vec![None; n];
        if n == 0 {
            return vec![];
        }
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, QTensor)>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, QTensor)>();
        for (i, img) in images.iter().enumerate() {
            job_tx.send((i, self.xmodel.quantize_input(img))).expect("queue open");
        }
        drop(job_tx);

        std::thread::scope(|scope| {
            for _ in 0..self.config.threads.min(n) {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                let xm = Arc::clone(&self.xmodel);
                scope.spawn(move || {
                    let core = DpuCore::new(ExecMode::Functional);
                    while let Ok((i, input)) = job_rx.recv() {
                        let out = core.run(&xm, &input).output.expect("functional mode");
                        res_tx.send((i, out)).expect("result queue open");
                    }
                });
            }
            drop(res_tx);
            while let Ok((i, out)) = res_rx.recv() {
                results[i] = Some(out);
            }
        });
        results.into_iter().map(|r| r.expect("all jobs completed")).collect()
    }

    /// Per-pixel argmax labels for a batch (functional path + host argmax).
    pub fn predict(&self, images: &[Tensor]) -> Vec<Vec<u8>> {
        self.run_functional(images)
            .into_iter()
            .map(|q| seneca_tensor::activation::argmax_channels_i8(q.shape(), q.data()))
            .collect()
    }
}

/// Aggregated throughput statistics over seeded runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputStats {
    /// Mean FPS.
    pub fps_mean: f64,
    /// FPS standard deviation.
    pub fps_std: f64,
    /// Mean board power (W).
    pub watt_mean: f64,
    /// Power standard deviation.
    pub watt_std: f64,
    /// Mean energy efficiency (FPS/W).
    pub ee_mean: f64,
    /// EE standard deviation.
    pub ee_std: f64,
    /// The individual runs.
    pub runs: Vec<ThroughputReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::DpuArch;
    use crate::compiler::compile;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_quant::{fuse, quantize_post_training, PtqConfig};
    use seneca_tensor::Shape4;

    fn runner(threads: usize) -> (DpuRunner, Vec<Tensor>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "t"));
        let images: Vec<Tensor> = (0..6)
            .map(|_| {
                let mut t = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
                for v in t.data_mut() {
                    *v = v.clamp(-1.0, 1.0);
                }
                t
            })
            .collect();
        let (qg, _) = quantize_post_training(&fg, &images, &PtqConfig::default());
        let xm = compile(&qg, Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());
        let config = RuntimeConfig { threads, ..Default::default() };
        (DpuRunner::new(Arc::new(xm), config), images)
    }

    #[test]
    fn throughput_improves_with_threads_then_saturates() {
        let mut fps = vec![];
        for threads in [1usize, 2, 4, 8] {
            let (r, _) = runner(threads);
            fps.push(r.run_throughput(300, 1).fps);
        }
        assert!(fps[1] > fps[0] * 1.2, "2 threads should beat 1: {fps:?}");
        assert!(fps[2] >= fps[1], "{fps:?}");
        // Saturation: 8 threads buys < 3%.
        assert!(fps[3] < fps[2] * 1.03, "{fps:?}");
    }

    #[test]
    fn more_threads_past_saturation_cost_power() {
        let (r4, _) = runner(4);
        let (r8, _) = runner(8);
        let t4 = r4.run_throughput(300, 1);
        let t8 = r8.run_throughput(300, 1);
        assert!(t8.watt > t4.watt, "8 threads must draw more power");
        assert!(t8.energy_efficiency() < t4.energy_efficiency());
    }

    #[test]
    fn repeated_runs_have_small_std() {
        let (r, _) = runner(4);
        let stats = r.run_throughput_repeated(200, 5, 42);
        assert!(stats.fps_std / stats.fps_mean < 0.02, "σ/μ = {}", stats.fps_std / stats.fps_mean);
        assert_eq!(stats.runs.len(), 5);
    }

    #[test]
    fn functional_run_matches_single_threaded_reference() {
        let (r, images) = runner(3);
        let outs = r.run_functional(&images);
        assert_eq!(outs.len(), images.len());
        for (img, out) in images.iter().zip(&outs) {
            let reference = r.xmodel.qgraph.execute(&r.xmodel.quantize_input(img));
            assert_eq!(out.data(), reference.data(), "thread pool must not change results");
        }
    }

    #[test]
    fn predict_returns_labels_in_range() {
        let (r, images) = runner(2);
        let labels = r.predict(&images[..2]);
        assert_eq!(labels.len(), 2);
        for l in &labels {
            assert_eq!(l.len(), 256);
            assert!(l.iter().all(|&v| v < 6));
        }
    }

    #[test]
    fn throughput_is_deterministic_per_seed() {
        let (r, _) = runner(4);
        let a = r.run_throughput(100, 7);
        let b = r.run_throughput(100, 7);
        assert_eq!(a.fps, b.fps);
        assert_eq!(a.watt, b.watt);
        let c = r.run_throughput(100, 8);
        assert_ne!(a.fps, c.fps);
    }
}
