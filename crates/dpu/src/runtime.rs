//! The VART-style asynchronous runtime.
//!
//! VART lets host threads "asynchronously submit and collect jobs to/from
//! the accelerator" (§III-E). Two execution paths are provided:
//!
//! * [`DpuRunner::run_functional`] — the streaming
//!   [`seneca_backend::InferenceSession`] (bounded job queue, worker-side
//!   INT8 quantisation, per-worker scratch pools) running the bit-exact
//!   INT8 executor; used by every accuracy experiment;
//! * [`DpuRunner::run_throughput`] — a `seneca-hwsim` closed-network
//!   simulation of the same pipeline (ARM pre-process → DPU core → ARM
//!   post-process) with the cost model supplying DPU service times; used by
//!   the FPS / Watt / EE sweeps (Table IV, Fig. 3).
//!
//! Both paths resolve their worker-thread count through the same
//! [`RuntimeConfig::worker_threads`] helper, so the functional pool and the
//! simulated pipeline population can never drift apart.

use crate::executor::{DpuCore, ExecMode};
use crate::perf::frame_cost;
use crate::power::{PowerInputs, Zcu104Power};
use crate::xmodel::XModel;
use rand::{Rng, SeedableRng};
use seneca_backend::{Backend, InferenceEngine, InferenceSession, Prediction, SessionConfig};
use seneca_hwsim::{simulate_closed_pipeline, Resource, StageSpec};
use seneca_ir::QScratch;
use seneca_tensor::{QTensor, Tensor};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

// The runtime's measurement vocabulary is the workspace-wide one.
pub use seneca_backend::{ThroughputReport, ThroughputStats};

/// Runtime configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Runner threads (the paper sweeps 1, 2, 4 and discusses 8).
    pub threads: usize,
    /// ARM host cores (the ZCU104's Cortex-A53 has 4).
    pub arm_cores: usize,
    /// Pre-processing time per input pixel on one ARM core (ns): rescale to
    /// the xmodel's input scale + INT8 quantisation.
    pub pre_ns_per_pixel: f64,
    /// Post-processing time per output pixel (ns): 6-channel argmax.
    pub post_ns_per_pixel: f64,
    /// Relative service-time jitter (DDR contention, scheduler noise).
    pub jitter_sigma: f64,
    /// Board power model.
    pub power: Zcu104Power,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            arm_cores: 4,
            pre_ns_per_pixel: 14.0,
            post_ns_per_pixel: 26.0,
            jitter_sigma: 0.004,
            power: Zcu104Power::default(),
        }
    }
}

impl RuntimeConfig {
    /// Worker threads for a `jobs`-frame run — the single source of truth
    /// shared by the functional thread pool and the throughput simulation.
    pub fn worker_threads(&self, jobs: usize) -> usize {
        seneca_backend::resolve_worker_threads(self.threads, jobs)
    }
}

/// The runner: owns a compiled xmodel and a runtime configuration.
#[derive(Clone)]
pub struct DpuRunner {
    /// Compiled model.
    pub xmodel: Arc<XModel>,
    /// Runtime configuration.
    pub config: RuntimeConfig,
}

/// Per-worker state of the functional path: one simulated core plus its
/// scratch pool (per-node activations, im2col columns, GEMM accumulators).
pub struct DpuWorker {
    core: DpuCore,
    scratch: QScratch,
}

impl DpuRunner {
    /// Creates a runner.
    pub fn new(xmodel: Arc<XModel>, config: RuntimeConfig) -> Self {
        assert!(config.threads >= 1, "need at least one runner thread");
        assert!(config.arm_cores >= 1);
        Self { xmodel, config }
    }

    /// Simulated throughput run over `n_frames` frames.
    ///
    /// The seed drives the per-job jitter; the paper's μ±σ over 10 runs maps
    /// to 10 different seeds.
    pub fn run_throughput(&self, n_frames: usize, seed: u64) -> ThroughputReport {
        let xm = &self.xmodel;
        let threads = self.config.worker_threads(n_frames);
        let cost = frame_cost(xm, &xm.arch);
        let hw = xm.input_shape.hw() as f64;
        let pre_ns = hw * self.config.pre_ns_per_pixel;
        let post_ns = hw * self.config.post_ns_per_pixel;

        // Per-job multiplicative jitter, one factor per (job, stage).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sigma = self.config.jitter_sigma;
        let jitter: Vec<f64> = (0..n_frames * 3)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (1.0 + sigma * g).max(0.5)
            })
            .collect();

        let resources =
            [Resource::new("arm", self.config.arm_cores), Resource::new("dpu", xm.arch.cores)];
        let stages =
            [StageSpec { resource: 0 }, StageSpec { resource: 1 }, StageSpec { resource: 0 }];
        let base = [pre_ns, cost.serial_ns as f64, post_ns];
        let rep = simulate_closed_pipeline(&resources, &stages, threads, n_frames, |job, stage| {
            (base[stage] * jitter[(job * 3 + stage) % jitter.len()]) as u64
        });

        let makespan_s = rep.makespan_ns as f64 * 1e-9;
        let fps = rep.throughput_per_s();
        let util = rep.utilisation(1, xm.arch.cores);
        let busy_cores = util * xm.arch.cores as f64;
        let arm_busy_cores =
            rep.utilisation(0, self.config.arm_cores) * self.config.arm_cores as f64;
        let ddr_gbps = xm.stats.fm_traffic_bytes as f64 * fps / 1e9;
        let watt = self.config.power.board_power_w(&PowerInputs {
            dpu_busy_cores: busy_cores,
            compute_intensity: cost.compute_intensity(),
            arm_busy_cores,
            arm_cores: self.config.arm_cores,
            ddr_gbps,
            threads,
        });

        ThroughputReport {
            fps,
            watt,
            frames: rep.completed,
            threads,
            busy_cores,
            util,
            makespan_s,
            peak_arena_bytes: xm.stats.peak_arena_bytes,
            total_activation_bytes: xm.stats.total_activation_bytes,
        }
    }

    /// Functional execution of a batch of preprocessed FP32 images through
    /// the streaming session. Outputs are returned in input order.
    pub fn run_functional(&self, images: &[Tensor]) -> Vec<QTensor> {
        self.session().run(images).into_iter().map(Prediction::into_i8).collect()
    }

    /// Per-pixel argmax labels for a batch (functional path + host argmax).
    pub fn predict(&self, images: &[Tensor]) -> Vec<Vec<u8>> {
        self.session().run(images).into_iter().map(|p| p.labels).collect()
    }

    /// The streaming session over this runner's worker pool.
    fn session(&self) -> InferenceSession<'_, Self> {
        InferenceSession::new(self, SessionConfig::new(self.config.threads))
    }
}

impl InferenceEngine for DpuRunner {
    type Worker = DpuWorker;

    fn new_worker(&self) -> DpuWorker {
        DpuWorker {
            core: DpuCore::new(ExecMode::Functional),
            scratch: DpuCore::make_scratch(&self.xmodel),
        }
    }

    fn infer(&self, worker: &mut DpuWorker, image: &Tensor) -> Prediction {
        // Worker-side quantisation: the FP32 frame crosses the queue, the
        // INT8 copy is created on the thread that consumes it.
        let input = {
            let _sp =
                seneca_trace::span_bytes("session", "quantize", image.data().len() as u64 * 4);
            self.xmodel.quantize_input(image)
        };
        let out = worker
            .core
            .run_with_scratch(&self.xmodel, &input, &mut worker.scratch)
            .output
            .expect("functional mode");
        Prediction::from_i8(out)
    }
}

impl Backend for DpuRunner {
    fn name(&self) -> String {
        format!("dpu/{}", self.xmodel.name)
    }

    fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction> {
        self.session().run(images)
    }

    fn throughput(&self, n_frames: usize, seed: u64) -> ThroughputReport {
        self.run_throughput(n_frames, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::DpuArch;
    use crate::compiler::compile;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_quant::{fuse, quantize_post_training, PtqConfig};
    use seneca_tensor::Shape4;

    fn runner(threads: usize) -> (DpuRunner, Vec<Tensor>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "t"));
        let images: Vec<Tensor> = (0..6)
            .map(|_| {
                let mut t = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
                for v in t.data_mut() {
                    *v = v.clamp(-1.0, 1.0);
                }
                t
            })
            .collect();
        let (qg, _) = quantize_post_training(&fg, &images, &PtqConfig::default());
        let xm = compile(&qg, Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());
        let config = RuntimeConfig { threads, ..Default::default() };
        (DpuRunner::new(Arc::new(xm), config), images)
    }

    #[test]
    fn throughput_improves_with_threads_then_saturates() {
        let mut fps = vec![];
        for threads in [1usize, 2, 4, 8] {
            let (r, _) = runner(threads);
            fps.push(r.run_throughput(300, 1).fps);
        }
        assert!(fps[1] > fps[0] * 1.2, "2 threads should beat 1: {fps:?}");
        assert!(fps[2] >= fps[1], "{fps:?}");
        // Saturation: 8 threads buys < 3%.
        assert!(fps[3] < fps[2] * 1.03, "{fps:?}");
    }

    #[test]
    fn more_threads_past_saturation_cost_power() {
        let (r4, _) = runner(4);
        let (r8, _) = runner(8);
        let t4 = r4.run_throughput(300, 1);
        let t8 = r8.run_throughput(300, 1);
        assert!(t8.watt > t4.watt, "8 threads must draw more power");
        assert!(t8.energy_efficiency() < t4.energy_efficiency());
    }

    #[test]
    fn repeated_runs_have_small_std() {
        let (r, _) = runner(4);
        let stats = r.throughput_repeated(200, 5, 42);
        assert!(stats.fps_std / stats.fps_mean < 0.02, "σ/μ = {}", stats.fps_std / stats.fps_mean);
        assert_eq!(stats.runs.len(), 5);
    }

    #[test]
    fn functional_run_matches_single_threaded_reference() {
        let (r, images) = runner(3);
        let outs = r.run_functional(&images);
        assert_eq!(outs.len(), images.len());
        for (img, out) in images.iter().zip(&outs) {
            let reference = r.xmodel.qgraph.execute(&r.xmodel.quantize_input(img));
            assert_eq!(out.data(), reference.data(), "thread pool must not change results");
        }
    }

    #[test]
    fn predict_returns_labels_in_range() {
        let (r, images) = runner(2);
        let labels = r.predict(&images[..2]);
        assert_eq!(labels.len(), 2);
        for l in &labels {
            assert_eq!(l.len(), 256);
            assert!(l.iter().all(|&v| v < 6));
        }
    }

    #[test]
    fn throughput_is_deterministic_per_seed() {
        let (r, _) = runner(4);
        let a = r.run_throughput(100, 7);
        let b = r.run_throughput(100, 7);
        assert_eq!(a.fps, b.fps);
        assert_eq!(a.watt, b.watt);
        let c = r.run_throughput(100, 8);
        assert_ne!(a.fps, c.fps);
    }

    #[test]
    fn backend_trait_object_runs_both_paths() {
        let (r, images) = runner(2);
        let b: Box<dyn Backend> = Box::new(r.clone());
        assert!(b.name().starts_with("dpu/"));
        let preds = b.infer_batch(&images[..2]);
        assert_eq!(preds.len(), 2);
        let direct = r.xmodel.qgraph.execute(&r.xmodel.quantize_input(&images[0]));
        assert_eq!(preds[0].as_i8().unwrap().data(), direct.data());
        let rep = b.throughput(50, 3);
        assert!(rep.fps > 0.0 && rep.util > 0.0 && rep.threads == 2);
    }

    #[test]
    fn worker_threads_single_source_of_truth() {
        let (r, _) = runner(4);
        assert_eq!(r.config.worker_threads(2), 2);
        assert_eq!(r.config.worker_threads(100), 4);
        // The throughput report carries the resolved count.
        assert_eq!(r.run_throughput(2, 1).threads, 2);
    }
}
