//! Per-layer performance profiling of a compiled xmodel — the moral
//! equivalent of Xilinx's `vaitrace`: where do the cycles, bytes and
//! microseconds of a frame go, and which engine bounds each layer?

use crate::arch::DpuArch;
use crate::isa::DpuInstr;
use crate::perf::{compute_cycles, mem_ns};
use crate::xmodel::XModel;
use serde::{Deserialize, Serialize};

/// What limits a layer's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// The MAC array is the bottleneck.
    Compute,
    /// The DDR interface is the bottleneck.
    Memory,
    /// Fixed overheads dominate (tiny layer).
    Overhead,
}

/// One profiled layer (a compute instruction plus its attributed DMA).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Index of the compute instruction in the stream.
    pub instr_index: usize,
    /// Disassembly of the instruction.
    pub disasm: String,
    /// Array time (ns).
    pub compute_ns: u64,
    /// DMA time attributed to this layer (ns).
    pub mem_ns: u64,
    /// Dispatch overhead (ns).
    pub overhead_ns: u64,
    /// Bounding engine.
    pub bound: Bound,
}

/// A whole-frame profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameProfile {
    /// Per-layer rows, in execution order.
    pub layers: Vec<LayerProfile>,
    /// Per-frame fixed overhead (ns).
    pub frame_overhead_ns: u64,
    /// Totals (ns): compute, memory, overhead.
    pub totals: (u64, u64, u64),
}

impl FrameProfile {
    /// Number of memory-bound layers.
    pub fn memory_bound_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.bound == Bound::Memory).count()
    }

    /// The top-`n` layers by `max(compute, mem)` time.
    pub fn hottest(&self, n: usize) -> Vec<&LayerProfile> {
        let mut sorted: Vec<&LayerProfile> = self.layers.iter().collect();
        sorted.sort_by_key(|l| std::cmp::Reverse(l.compute_ns.max(l.mem_ns)));
        sorted.truncate(n);
        sorted
    }

    /// Human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4} {:>10} {:>10} {:>9} {:>9}  instruction\n",
            "idx", "compute us", "mem us", "ovh us", "bound"
        ));
        for l in &self.layers {
            out.push_str(&format!(
                "{:>4} {:>10.1} {:>10.1} {:>9.1} {:>9}  {}\n",
                l.instr_index,
                l.compute_ns as f64 / 1000.0,
                l.mem_ns as f64 / 1000.0,
                l.overhead_ns as f64 / 1000.0,
                format!("{:?}", l.bound),
                l.disasm.trim_end(),
            ));
        }
        let (c, m, o) = self.totals;
        out.push_str(&format!(
            "totals: compute {:.2} ms, memory {:.2} ms, overhead {:.2} ms ({} layers, {} memory-bound)\n",
            c as f64 / 1e6,
            m as f64 / 1e6,
            (o + self.frame_overhead_ns) as f64 / 1e6,
            self.layers.len(),
            self.memory_bound_layers()
        ));
        out
    }
}

/// Profiles one frame of an xmodel on the given architecture.
///
/// DMA instructions are attributed to the next compute instruction (the
/// layer they feed); trailing DMA (final SAVE) is attributed to the last
/// layer.
pub fn profile(xm: &XModel, arch: &DpuArch) -> FrameProfile {
    let ns_per_cycle = arch.ns_per_cycle();
    let mut layers: Vec<LayerProfile> = Vec::new();
    let mut pending_mem = 0u64;
    for (i, instr) in xm.instrs.iter().enumerate() {
        match instr {
            DpuInstr::Load { .. } | DpuInstr::Save { .. } => pending_mem += mem_ns(instr, arch),
            DpuInstr::End => {
                if let Some(last) = layers.last_mut() {
                    last.mem_ns += pending_mem;
                }
                pending_mem = 0;
            }
            _ => {
                let c_ns = (compute_cycles(instr, arch) as f64 * ns_per_cycle) as u64;
                let ovh = arch.instr_overhead_ns;
                let bound = if c_ns >= pending_mem && c_ns >= ovh {
                    Bound::Compute
                } else if pending_mem >= ovh {
                    Bound::Memory
                } else {
                    Bound::Overhead
                };
                layers.push(LayerProfile {
                    instr_index: i,
                    disasm: instr.disassemble(),
                    compute_ns: c_ns,
                    mem_ns: pending_mem,
                    overhead_ns: ovh,
                    bound,
                });
                pending_mem = 0;
            }
        }
    }
    if pending_mem > 0 {
        if let Some(last) = layers.last_mut() {
            last.mem_ns += pending_mem;
        }
    }
    let totals = layers.iter().fold((0u64, 0u64, 0u64), |acc, l| {
        (acc.0 + l.compute_ns, acc.1 + l.mem_ns, acc.2 + l.overhead_ns)
    });
    FrameProfile { layers, frame_overhead_ns: arch.frame_overhead_ns, totals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_quant::{fuse, quantize_post_training, PtqConfig};
    use seneca_tensor::{Shape4, Tensor};

    fn xmodel(f: usize) -> XModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let net = UNet::new(
            UNetConfig { depth: 2, base_filters: f, in_channels: 1, num_classes: 6, dropout: 0.0 },
            &mut rng,
        );
        let fg = fuse(&Graph::from_unet(&net, "p"));
        let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        compile(&qg, Shape4::new(1, 1, 64, 64), DpuArch::b4096_zcu104())
    }

    #[test]
    fn profile_covers_every_compute_instruction() {
        let xm = xmodel(4);
        let p = profile(&xm, &xm.arch);
        let n_compute = xm
            .instrs
            .iter()
            .filter(|i| {
                matches!(i, DpuInstr::Conv { .. } | DpuInstr::Pool { .. } | DpuInstr::Elew { .. })
            })
            .count();
        assert_eq!(p.layers.len(), n_compute);
    }

    #[test]
    fn totals_match_frame_cost() {
        let xm = xmodel(4);
        let p = profile(&xm, &xm.arch);
        let fc = crate::perf::frame_cost(&xm, &xm.arch);
        assert_eq!(p.totals.0, fc.compute_ns);
        assert_eq!(p.totals.1, fc.mem_ns);
        assert_eq!(p.totals.2 + p.frame_overhead_ns, fc.overhead_ns);
    }

    #[test]
    fn report_and_hottest_are_consistent() {
        let xm = xmodel(8);
        let p = profile(&xm, &xm.arch);
        let hottest = p.hottest(3);
        assert_eq!(hottest.len(), 3);
        assert!(
            hottest[0].compute_ns.max(hottest[0].mem_ns)
                >= hottest[2].compute_ns.max(hottest[2].mem_ns)
        );
        let report = p.report();
        assert!(report.contains("totals:"));
        assert!(report.lines().count() >= p.layers.len() + 2);
    }

    #[test]
    fn small_channel_layers_are_memory_or_overhead_bound() {
        // At 64x64 with f=4 channels the first conv moves a padded 16-channel
        // map but computes almost nothing: not compute bound.
        let xm = xmodel(4);
        let p = profile(&xm, &xm.arch);
        assert_ne!(p.layers[0].bound, Bound::Compute, "{:?}", p.layers[0]);
    }
}
