//! The compiled model artifact ("xmodel").
//!
//! VAI_C's output is a binary xmodel holding DPU microcode, weights and the
//! input scale factor. Ours holds the instruction stream, the quantized
//! graph (weights + fix positions — the functional payload), the target
//! architecture and compile-time statistics. §III-E: "we scaled input slices
//! with a specific factor generated during compilation and stored into the
//! xmodel" — that factor is [`XModel::input_scale`].

use crate::arch::DpuArch;
use crate::isa::DpuInstr;
use seneca_ir::{lower, LowerOptions, Lowered};
use seneca_quant::QuantizedGraph;
use seneca_tensor::{Shape4, Tensor};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Compile-time statistics embedded in the artifact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Total instructions emitted.
    pub n_instrs: usize,
    /// CONV/DCONV instructions.
    pub n_conv: usize,
    /// Weight bytes (INT8, unpadded).
    pub weight_bytes: u64,
    /// Feature-map DDR traffic per frame (bytes, channel-padded).
    pub fm_traffic_bytes: u64,
    /// Estimated compute cycles per frame on one core.
    pub compute_cycles: u64,
    /// Number of layers with ICP-misaligned channel counts.
    pub misaligned_layers: usize,
    /// DDR feature-map arena bytes under the shared liveness plan
    /// (channel-padded, slots reused once a map's last consumer retires).
    pub peak_arena_bytes: u64,
    /// Sum of every feature map's channel-padded bytes — what keeping all
    /// maps resident in DDR simultaneously would cost.
    pub total_activation_bytes: u64,
}

/// A compiled DPU model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XModel {
    /// Model name (e.g. "1M-int8").
    pub name: String,
    /// Target architecture.
    pub arch: DpuArch,
    /// Expected input geometry (batch 1).
    pub input_shape: Shape4,
    /// Instruction stream.
    pub instrs: Vec<DpuInstr>,
    /// Functional payload: the quantized graph (weights, fix positions).
    pub qgraph: QuantizedGraph,
    /// Compile statistics.
    pub stats: CompileStats,
    /// Lazily lowered IR program (pre-packed weight panels, liveness plan);
    /// rebuilt on demand after deserialisation, shared by every worker.
    #[serde(skip, default)]
    pub(crate) lowered: Arc<OnceLock<Arc<Lowered>>>,
}

impl XModel {
    /// The IR lowering of the functional payload: packed weight panels and
    /// the liveness plan, built once per xmodel (first use) and shared by
    /// every executor worker.
    pub fn lowered(&self) -> Arc<Lowered> {
        self.lowered
            .get_or_init(|| {
                Arc::new(lower(self.qgraph.to_ir(), self.input_shape, &LowerOptions::reference()))
            })
            .clone()
    }

    /// The input scale factor `2^fix_pos` stored by the compiler: multiply
    /// preprocessed `[-1, 1]` pixels by this and round to get INT8 input.
    pub fn input_scale(&self) -> f32 {
        (self.qgraph.input_fp as f32).exp2()
    }

    /// Quantises one preprocessed FP32 image for submission.
    pub fn quantize_input(&self, img: &Tensor) -> seneca_tensor::QTensor {
        self.qgraph.quantize_input(img)
    }

    /// Full disassembly listing.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "; {} for {} ({} instrs, {} conv, {:.2} MiB weights)\n",
            self.name,
            self.arch.name,
            self.stats.n_instrs,
            self.stats.n_conv,
            self.stats.weight_bytes as f64 / (1024.0 * 1024.0)
        ));
        for (i, instr) in self.instrs.iter().enumerate() {
            out.push_str(&format!("{i:4}: {}\n", instr.disassemble()));
        }
        out
    }

    /// Serialises to JSON (the artifact format of this reproduction).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("xmodel serialisation")
    }

    /// Deserialises from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_quant::{fuse, quantize_post_training, PtqConfig};

    fn tiny_xmodel() -> XModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg =
            UNetConfig { depth: 1, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "t"));
        let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 8, 8), &mut rng)];
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        compile(&qg, Shape4::new(1, 1, 8, 8), DpuArch::b4096_zcu104())
    }

    #[test]
    fn input_scale_matches_fix_pos() {
        let xm = tiny_xmodel();
        assert_eq!(xm.input_scale(), (xm.qgraph.input_fp as f32).exp2());
    }

    #[test]
    fn disassembly_lists_all_instructions() {
        let xm = tiny_xmodel();
        let d = xm.disassemble();
        assert_eq!(d.lines().count(), xm.instrs.len() + 1);
        assert!(d.contains("CONV"));
        assert!(d.contains("END"));
    }

    #[test]
    fn json_roundtrip() {
        let xm = tiny_xmodel();
        let j = xm.to_json();
        let xm2 = XModel::from_json(&j).unwrap();
        assert_eq!(xm.instrs, xm2.instrs);
        assert_eq!(xm.stats, xm2.stats);
        assert_eq!(xm.name, xm2.name);
    }
}
