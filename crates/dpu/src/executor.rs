//! Functional and timing execution of an xmodel on one DPU core.
//!
//! Functional mode actually runs the INT8 maths (dispatching each CONV /
//! POOL / ELEW instruction to the shared quantized kernels), producing the
//! same bits as [`seneca_quant::QuantizedGraph::execute`]. Timing-only mode
//! skips the maths and just evaluates the cost model — used by the
//! throughput sweeps where 2000-frame batches would make functional
//! execution needlessly slow.

use crate::isa::DpuInstr;
use crate::perf::{frame_cost, FrameCost};
use crate::xmodel::XModel;
use seneca_ir::QScratch;
use seneca_quant::QOp;
use seneca_tensor::{QTensor, QTensorView};

/// Execution mode of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run the INT8 maths and the cost model.
    Functional,
    /// Cost model only.
    TimingOnly,
}

/// Result of one job on a core.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// INT8 output logits (None in timing-only mode).
    pub output: Option<QTensor>,
    /// Frame cost on this core.
    pub cost: FrameCost,
}

/// One simulated DPU core.
#[derive(Debug, Clone)]
pub struct DpuCore {
    /// Execution mode.
    pub mode: ExecMode,
}

impl DpuCore {
    /// Creates a core in the given mode.
    pub fn new(mode: ExecMode) -> Self {
        Self { mode }
    }

    /// Allocates a per-worker scratch pool sized for this xmodel.
    pub fn make_scratch(xm: &XModel) -> QScratch {
        xm.lowered().make_scratch_i8()
    }

    /// Runs one frame through the xmodel, allocating a one-shot scratch pool
    /// in functional mode. Streaming callers should hold a pool per worker
    /// and use [`DpuCore::run_with_scratch`] instead.
    pub fn run(&self, xm: &XModel, input: &QTensor) -> JobResult {
        match self.mode {
            ExecMode::TimingOnly => JobResult { output: None, cost: frame_cost(xm, &xm.arch) },
            ExecMode::Functional => {
                let mut scratch = Self::make_scratch(xm);
                self.run_with_scratch(xm, input, &mut scratch)
            }
        }
    }

    /// Runs one frame using a caller-owned scratch pool: zero per-frame
    /// allocation in the im2col/GEMM hot path once buffers are warm.
    pub fn run_with_scratch(
        &self,
        xm: &XModel,
        input: &QTensor,
        scratch: &mut QScratch,
    ) -> JobResult {
        let cost = frame_cost(xm, &xm.arch);
        let output = match self.mode {
            ExecMode::TimingOnly => None,
            ExecMode::Functional => Some(self.exec_instrs(xm, input, scratch).to_qtensor()),
        };
        JobResult { output, cost }
    }

    /// Instruction-driven functional execution into the scratch pool. The
    /// IR lowering preserves quantized-graph node ids one-to-one, so the
    /// compiled instruction stream indexes the lowered program directly.
    fn exec_instrs<'s>(
        &self,
        xm: &XModel,
        input: &QTensor,
        scratch: &'s mut QScratch,
    ) -> QTensorView<'s> {
        assert_eq!(input.fix_pos(), xm.qgraph.input_fp, "input fix position");
        assert_eq!(input.shape(), xm.input_shape, "input geometry");
        let lowered = xm.lowered();
        lowered.load_input_i8(input, scratch);

        for instr in &xm.instrs {
            match instr {
                DpuInstr::Load { .. } | DpuInstr::Save { .. } | DpuInstr::End => {}
                DpuInstr::Conv { node, .. } => {
                    let qnode = &xm.qgraph.nodes[*node];
                    assert!(
                        matches!(qnode.op, QOp::Conv(_) | QOp::TConv(_)),
                        "CONV instr maps to {:?}",
                        qnode.op.mnemonic()
                    );
                    lowered.execute_node_i8(*node, scratch);
                }
                DpuInstr::Pool { node, .. } => {
                    let qnode = &xm.qgraph.nodes[*node];
                    assert!(
                        matches!(qnode.op, QOp::MaxPool2x2),
                        "POOL instr maps to {:?}",
                        qnode.op.mnemonic()
                    );
                    lowered.execute_node_i8(*node, scratch);
                }
                DpuInstr::Elew { node, .. } => {
                    let qnode = &xm.qgraph.nodes[*node];
                    assert!(
                        matches!(qnode.op, QOp::Concat { .. }),
                        "ELEW instr maps to {:?}",
                        qnode.op.mnemonic()
                    );
                    lowered.execute_node_i8(*node, scratch);
                }
            }
        }
        scratch.node_output(xm.qgraph.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::DpuArch;
    use crate::compiler::compile;
    use rand::SeedableRng;
    use seneca_nn::graph::Graph;
    use seneca_nn::unet::{UNet, UNetConfig};
    use seneca_quant::{fuse, quantize_post_training, PtqConfig};
    use seneca_tensor::{Shape4, Tensor};

    fn setup(seed: u64) -> (XModel, Tensor) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        let fg = fuse(&Graph::from_unet(&net, "t"));
        let mut img = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
        for v in img.data_mut() {
            *v = v.clamp(-1.0, 1.0);
        }
        let (qg, _) = quantize_post_training(&fg, &[img.clone()], &PtqConfig::default());
        let xm = compile(&qg, Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());
        (xm, img)
    }

    #[test]
    fn functional_matches_quantized_graph_bit_exactly() {
        let (xm, img) = setup(1);
        let core = DpuCore::new(ExecMode::Functional);
        let input = xm.quantize_input(&img);
        let res = core.run(&xm, &input);
        let out_core = res.output.unwrap();
        let out_ref = xm.qgraph.execute(&input);
        assert_eq!(out_core.data(), out_ref.data(), "DPU core must bit-match the qgraph");
        assert_eq!(out_core.fix_pos(), out_ref.fix_pos());
    }

    #[test]
    fn scratch_reuse_across_frames_is_bit_exact() {
        let (xm, img) = setup(5);
        let core = DpuCore::new(ExecMode::Functional);
        let mut scratch = DpuCore::make_scratch(&xm);
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..3 {
            let mut frame = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
            for v in frame.data_mut() {
                *v = v.clamp(-1.0, 1.0);
            }
            let input = xm.quantize_input(&frame);
            let pooled = core.run_with_scratch(&xm, &input, &mut scratch).output.unwrap();
            let fresh = xm.qgraph.execute(&input);
            assert_eq!(pooled.data(), fresh.data(), "stale scratch state leaked into a frame");
        }
        let _ = img;
    }

    #[test]
    fn timing_only_skips_output() {
        let (xm, img) = setup(2);
        let core = DpuCore::new(ExecMode::TimingOnly);
        let res = core.run(&xm, &xm.quantize_input(&img));
        assert!(res.output.is_none());
        assert!(res.cost.serial_ns > 0);
        assert!(res.cost.compute_ns > 0);
    }

    #[test]
    fn cost_matches_standalone_frame_cost() {
        let (xm, img) = setup(3);
        let core = DpuCore::new(ExecMode::TimingOnly);
        let res = core.run(&xm, &xm.quantize_input(&img));
        assert_eq!(res.cost, frame_cost(&xm, &xm.arch));
    }

    #[test]
    #[should_panic(expected = "input geometry")]
    fn wrong_geometry_rejected() {
        let (xm, _) = setup(4);
        let bad = QTensor::zeros(Shape4::new(1, 1, 8, 8), xm.qgraph.input_fp);
        let _ = DpuCore::new(ExecMode::Functional).run(&xm, &bad);
    }
}
