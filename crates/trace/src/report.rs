//! Aggregated trace output: per-key statistics tables and their JSON form.
//!
//! Durations are folded into an HDR-style fixed-bucket histogram at
//! nanosecond resolution — the same bucket scheme as the serving layer's
//! `LatencyHistogram` (linear prefix of [`SUB`] exact buckets, then `SUB`
//! geometric sub-buckets per octave, 12.5% bounded relative error) — so p95
//! comes out of the aggregate without keeping raw samples around.

use serde::{Deserialize, Serialize};

/// Sub-buckets per octave (and the width of the exact linear prefix).
const SUB: u64 = 8;
/// Total buckets: linear prefix + `SUB` per octave for msb 3..=63.
const BUCKETS: usize = (SUB + (64 - SUB.trailing_zeros() as u64) * SUB) as usize;

/// Bucket index for a value in nanoseconds.
fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros() as u64; // >= 3 because ns >= SUB
    let mantissa = ns >> (msb - 3); // in [SUB, 2*SUB)
    (SUB + (msb - 3) * SUB + (mantissa - SUB)) as usize
}

/// Inclusive upper edge (ns) of a bucket — what quantiles report.
fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let octave = (idx - SUB) / SUB;
    let mantissa = SUB + (idx - SUB) % SUB;
    let edge = (u128::from(mantissa) + 1) << octave;
    u64::try_from(edge - 1).unwrap_or(u64::MAX)
}

/// Running aggregate for one `(domain, name)` key. Not thread-safe on its
/// own: the collector updates it under the aggregate lock, off the hot path.
#[derive(Clone)]
pub(crate) struct KeyAgg {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    pub bytes: u64,
    hist: Box<[u64; BUCKETS]>,
}

impl Default for KeyAgg {
    fn default() -> Self {
        Self { count: 0, total_ns: 0, max_ns: 0, bytes: 0, hist: Box::new([0; BUCKETS]) }
    }
}

impl KeyAgg {
    pub fn add(&mut self, dur_ns: u64, bytes: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
        self.bytes = self.bytes.saturating_add(bytes);
        self.hist[bucket_of(dur_ns)] += 1;
    }

    /// The `q`-quantile (ns): upper edge of the bucket holding the target
    /// sample, capped at the exact observed maximum.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, c) in self.hist.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// One aggregate row of a [`TraceReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRow {
    /// Instrumentation domain, e.g. `fp32-op`, `int8-op`, `session`, `serve`.
    pub domain: String,
    /// Probe name within the domain, e.g. the op mnemonic or stage name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of sample durations (ns).
    pub total_ns: u64,
    /// Mean duration (ns).
    pub mean_ns: f64,
    /// 95th percentile duration (ns, bucket upper edge, ≤ exact max).
    pub p95_ns: u64,
    /// Largest sample (ns, exact).
    pub max_ns: u64,
    /// Bytes attributed to the samples where known (0 when not reported).
    pub bytes: u64,
}

/// The drained, aggregated view of everything recorded since the last reset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceReport {
    /// Aggregate rows, sorted by `total_ns` descending.
    pub rows: Vec<TraceRow>,
    /// Samples lost to ring-buffer overwrites between drains.
    pub dropped: u64,
}

impl TraceReport {
    /// Rows belonging to one domain, preserving the total-descending order.
    pub fn domain_rows(&self, domain: &str) -> Vec<&TraceRow> {
        self.rows.iter().filter(|r| r.domain == domain).collect()
    }

    /// Summed `total_ns` across one domain.
    pub fn domain_total_ns(&self, domain: &str) -> u64 {
        self.rows.iter().filter(|r| r.domain == domain).map(|r| r.total_ns).sum()
    }

    /// Looks up one row by key.
    pub fn get(&self, domain: &str, name: &str) -> Option<&TraceRow> {
        self.rows.iter().find(|r| r.domain == domain && r.name == name)
    }

    /// Renders the report as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| domain | name | count | total (ms) | mean (µs) | p95 (µs) | max (µs) | MiB |\n\
             |---|---|---:|---:|---:|---:|---:|---:|\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
                r.domain,
                r.name,
                r.count,
                r.total_ns as f64 / 1e6,
                r.mean_ns / 1e3,
                r.p95_ns as f64 / 1e3,
                r.max_ns as f64 / 1e3,
                r.bytes as f64 / (1024.0 * 1024.0),
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("\n(+ {} samples dropped to ring overwrites)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_cover_u64() {
        let mut prev = 0usize;
        for ns in [0u64, 1, 7, 8, 9, 100, 1_000, 1_000_000, 1_000_000_000, u64::MAX] {
            let b = bucket_of(ns);
            assert!(b < BUCKETS);
            assert!(b >= prev);
            prev = b;
            assert!(bucket_upper(b) >= ns || b == BUCKETS - 1);
        }
        for ns in 0..8u64 {
            assert_eq!(bucket_upper(bucket_of(ns)), ns);
        }
    }

    #[test]
    fn percentile_tracks_ramp_within_bucket_error() {
        let mut agg = KeyAgg::default();
        for us in 1..=100u64 {
            agg.add(us * 1_000, 0);
        }
        let p95 = agg.percentile_ns(0.95) as f64 / 1_000.0;
        assert!((90.0..=110.0).contains(&p95), "p95 {p95}µs");
        assert_eq!(agg.percentile_ns(1.0), 100_000);
        assert_eq!(agg.count, 100);
    }
}
