//! `seneca-trace`: a low-overhead span/counter recorder for the whole stack.
//!
//! The paper's argument rests on *measured* behaviour — FPS, per-layer DPU
//! time (§IV, Tables IV–VI) — but until this crate the repo could only model
//! per-layer cost ([`seneca_dpu::profile`]-style estimates). This is the
//! measuring side, shaped like the profiling hooks vaitrace/VART expose per
//! operator:
//!
//! - **Probes** are spans (`span(domain, name)`, records on drop) or direct
//!   counters (`record_ns`) keyed by two `&'static str`s, so a probe costs
//!   two pointer copies and two clock reads — no allocation, no formatting.
//! - **Recording** goes to a thread-local ring buffer (overwrite-oldest, so
//!   a forgotten drain costs accuracy, never memory). Buffers are owned by
//!   `Arc` and registered with a process-global [`Collector`], which keeps
//!   them drainable after their threads exit — the inference session spawns
//!   transient scoped workers per batch.
//! - **Draining** folds samples into per-key aggregates (count, total, max,
//!   bytes, and an HDR-style ns histogram for p95) and prunes buffers whose
//!   threads are gone. [`report`] returns the aggregate as a serializable
//!   [`TraceReport`].
//! - **Disabled is free-ish**: tracing is off until [`set_enabled`]`(true)`;
//!   a disabled probe is one relaxed atomic load and a branch. The `noop`
//!   cargo feature removes even that, compiling every probe to nothing, for
//!   A/B-ing the cost of the tracer's mere presence.
//!
//! Timestamps are monotonic: nanoseconds since a process-global epoch taken
//! on first use, so durations are robust to wall-clock adjustments and spans
//! started on different threads are comparable.

mod report;

pub use report::{TraceReport, TraceRow};

use report::KeyAgg;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Probe identity: `(domain, name)`. Static strings keep recording
/// allocation-free; op mnemonics and stage names are all `'static`.
type Key = (&'static str, &'static str);

/// One recorded sample, as stored in the ring.
#[derive(Clone, Copy)]
struct Sample {
    key: Key,
    dur_ns: u64,
    bytes: u64,
}

/// Per-thread ring capacity. At 40 bytes a sample this is ~160 KiB per
/// recording thread; overwrite-oldest keeps memory bounded between drains.
const RING_CAP: usize = 4096;

/// Fixed-capacity overwrite-oldest ring of samples.
struct Ring {
    buf: Vec<Sample>,
    next: usize,
    dropped: u64,
}

impl Ring {
    fn new() -> Self {
        Self { buf: Vec::new(), next: 0, dropped: 0 }
    }

    fn push(&mut self, s: Sample) {
        if self.buf.len() < RING_CAP {
            self.buf.push(s);
        } else {
            self.buf[self.next] = s;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % RING_CAP;
    }
}

/// A thread's buffer: the ring behind a mutex that is uncontended except
/// during a drain (the owning thread is the only other locker).
struct ThreadBuf {
    ring: Mutex<Ring>,
}

/// Process-global collector: the registry of live thread buffers plus the
/// running aggregate that drains fold into.
struct Collector {
    enabled: AtomicBool,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    agg: Mutex<Agg>,
}

#[derive(Default)]
struct Agg {
    keys: BTreeMap<Key, KeyAgg>,
    dropped: u64,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        enabled: AtomicBool::new(false),
        threads: Mutex::new(Vec::new()),
        agg: Mutex::new(Agg::default()),
    })
}

/// Nanoseconds since the process-global monotonic epoch.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<ThreadBuf>> = const { std::cell::OnceCell::new() };
}

fn with_local(f: impl FnOnce(&ThreadBuf)) {
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(ThreadBuf { ring: Mutex::new(Ring::new()) });
            collector().threads.lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        f(buf);
    });
}

/// Turns recording on or off process-wide. Off is the default; probes in
/// code that never enables tracing cost one relaxed load each.
pub fn set_enabled(on: bool) {
    if cfg!(feature = "noop") {
        return;
    }
    collector().enabled.store(on, Ordering::Relaxed);
}

/// Whether probes currently record.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    collector().enabled.load(Ordering::Relaxed)
}

/// Records an externally measured duration (use when the interval crosses
/// threads, e.g. a request's queue wait measured at dispatch).
#[inline]
pub fn record_ns(domain: &'static str, name: &'static str, dur_ns: u64, bytes: u64) {
    if !enabled() {
        return;
    }
    with_local(|buf| buf.ring.lock().unwrap().push(Sample { key: (domain, name), dur_ns, bytes }));
}

/// An in-flight span; records its elapsed time into the ring when dropped.
/// When tracing is disabled the guard is inert and drop does nothing.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    key: Key,
    bytes: u64,
    start: u64,
}

impl Span {
    /// Attributes a byte count (e.g. the op's output size) to the sample.
    #[inline]
    pub fn set_bytes(&mut self, bytes: u64) {
        if let Some(inner) = &mut self.inner {
            inner.bytes = bytes;
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur_ns = now_ns().saturating_sub(inner.start);
            with_local(|buf| {
                buf.ring.lock().unwrap().push(Sample { key: inner.key, dur_ns, bytes: inner.bytes })
            });
        }
    }
}

/// Opens a span. The returned guard records `(domain, name, elapsed)` when
/// it drops; bind it (`let _sp = ...`) so it covers the intended scope.
#[inline]
pub fn span(domain: &'static str, name: &'static str) -> Span {
    span_bytes(domain, name, 0)
}

/// Opens a span carrying a known byte count (op output size, payload size).
#[inline]
pub fn span_bytes(domain: &'static str, name: &'static str, bytes: u64) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span { inner: Some(SpanInner { key: (domain, name), bytes, start: now_ns() }) }
}

/// Drains every registered thread buffer into the global aggregate and
/// prunes buffers whose owning threads have exited. Safe to call while
/// other threads record: their in-flight samples land in the next drain.
pub fn drain() {
    if cfg!(feature = "noop") {
        return;
    }
    let c = collector();
    let mut threads = c.threads.lock().unwrap();
    let mut agg = c.agg.lock().unwrap();
    for buf in threads.iter() {
        let mut ring = buf.ring.lock().unwrap();
        agg.dropped += ring.dropped;
        ring.dropped = 0;
        ring.next = 0;
        for s in ring.buf.drain(..) {
            agg.keys.entry(s.key).or_default().add(s.dur_ns, s.bytes);
        }
    }
    // A buffer only referenced by the registry belongs to a finished thread
    // (its thread-local Arc was dropped) and is empty after the drain above.
    threads.retain(|buf| Arc::strong_count(buf) > 1);
}

/// Drains and returns the aggregate since the last [`reset`].
pub fn report() -> TraceReport {
    drain();
    let agg = collector().agg.lock().unwrap();
    let mut rows: Vec<TraceRow> = agg
        .keys
        .iter()
        .map(|(&(domain, name), a)| TraceRow {
            domain: domain.to_string(),
            name: name.to_string(),
            count: a.count,
            total_ns: a.total_ns,
            mean_ns: if a.count == 0 { 0.0 } else { a.total_ns as f64 / a.count as f64 },
            p95_ns: a.percentile_ns(0.95),
            max_ns: a.max_ns,
            bytes: a.bytes,
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    TraceReport { rows, dropped: agg.dropped }
}

/// Discards all recorded samples and aggregates (rings and totals).
pub fn reset() {
    if cfg!(feature = "noop") {
        return;
    }
    let c = collector();
    let mut threads = c.threads.lock().unwrap();
    let mut agg = c.agg.lock().unwrap();
    for buf in threads.iter() {
        let mut ring = buf.ring.lock().unwrap();
        ring.buf.clear();
        ring.next = 0;
        ring.dropped = 0;
    }
    threads.retain(|buf| Arc::strong_count(buf) > 1);
    agg.keys.clear();
    agg.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests that toggle it serialize here.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        for _ in 0..100 {
            let _sp = span_bytes("test", "noop-path", 64);
        }
        record_ns("test", "noop-counter", 1_000, 0);
        let rep = report();
        assert!(rep.rows.is_empty(), "disabled tracer must add no samples: {:?}", rep.rows);
        assert_eq!(rep.dropped, 0);
    }

    #[test]
    fn disabled_probe_overhead_is_small() {
        let _g = guard();
        set_enabled(false);
        reset();
        // Smoke bound, deliberately loose for noisy CI: a disabled probe is
        // an atomic load + branch, which must stay well under 1µs even on a
        // contended shared runner (measured ~1–2ns on dev hardware).
        let n = 1_000_000u64;
        let t0 = Instant::now();
        for _ in 0..n {
            let _sp = span("test", "overhead");
        }
        let per_call = t0.elapsed().as_nanos() as f64 / n as f64;
        assert!(per_call < 1_000.0, "disabled span cost {per_call:.1}ns/call");
        assert!(report().rows.is_empty());
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "recording compiled out")]
    fn spans_record_and_aggregate() {
        let _g = guard();
        set_enabled(true);
        reset();
        for i in 0..10u64 {
            let mut sp = span("test", "work");
            std::hint::black_box(i);
            sp.set_bytes(100);
            drop(sp);
        }
        record_ns("test", "external", 5_000, 7);
        set_enabled(false);
        let rep = report();
        let work = rep.get("test", "work").expect("work row");
        assert_eq!(work.count, 10);
        assert_eq!(work.bytes, 1_000);
        assert!(work.total_ns > 0);
        assert!(work.p95_ns <= work.max_ns);
        let ext = rep.get("test", "external").expect("external row");
        assert_eq!((ext.count, ext.total_ns, ext.bytes), (1, 5_000, 7));
        assert_eq!(rep.get("test", "external").unwrap().mean_ns, 5_000.0);
        reset();
        assert!(report().rows.is_empty());
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "recording compiled out")]
    fn concurrent_threads_aggregate_exact_counts_and_totals() {
        let _g = guard();
        set_enabled(true);
        reset();
        // N transient threads × K samples per key; each thread also records
        // under its own per-thread key. Exactness: every sample must appear
        // exactly once — counts add up and totals are the precise sums, so
        // no sample is double-drained or lost when threads exit.
        const N: usize = 8;
        const K: u64 = 500;
        let keys: [&'static str; N] = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"];
        std::thread::scope(|s| {
            for t in 0..N {
                s.spawn(move || {
                    for i in 1..=K {
                        record_ns("mt", "shared", i, 1);
                        record_ns("mt", keys[t], 1_000, 0);
                    }
                });
            }
        });
        set_enabled(false);
        let rep = report();
        let shared = rep.get("mt", "shared").expect("shared row");
        assert_eq!(shared.count, N as u64 * K);
        // Sum over threads of (1 + 2 + ... + K).
        assert_eq!(shared.total_ns, N as u64 * K * (K + 1) / 2);
        assert_eq!(shared.bytes, N as u64 * K);
        let mut per_thread_total = 0;
        for k in keys {
            let row = rep.get("mt", k).expect("per-thread row");
            assert_eq!(row.count, K);
            assert_eq!(row.total_ns, K * 1_000);
            per_thread_total += row.total_ns;
        }
        // Per-thread keys never share samples: their totals partition.
        assert_eq!(per_thread_total, N as u64 * K * 1_000);
        assert_eq!(rep.dropped, 0, "8×1000 samples fit the rings between drains");
        reset();
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "recording compiled out")]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = guard();
        set_enabled(true);
        reset();
        let extra = 100u64;
        for _ in 0..(RING_CAP as u64 + extra) {
            record_ns("ring", "spill", 1, 0);
        }
        set_enabled(false);
        let rep = report();
        let row = rep.get("ring", "spill").expect("spill row");
        assert_eq!(row.count, RING_CAP as u64);
        assert_eq!(rep.dropped, extra);
        reset();
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "recording compiled out")]
    fn dead_thread_buffers_survive_until_drained() {
        let _g = guard();
        set_enabled(true);
        reset();
        std::thread::spawn(|| record_ns("dead", "ghost", 42, 0)).join().unwrap();
        set_enabled(false);
        let rep = report();
        let row = rep.get("dead", "ghost").expect("sample from exited thread");
        assert_eq!((row.count, row.total_ns), (1, 42));
        reset();
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "recording compiled out")]
    fn report_serializes_to_json() {
        let _g = guard();
        set_enabled(true);
        reset();
        record_ns("json", "row", 1_234, 56);
        set_enabled(false);
        let rep = report();
        let s = serde_json::to_string(&rep).expect("serialize");
        assert!(s.contains("\"domain\":\"json\""));
        assert!(s.contains("\"total_ns\":1234"));
        let md = rep.to_markdown();
        assert!(md.contains("| json | row | 1 |"));
        reset();
    }
}
