//! Property tests for the augmentation pipeline.
//!
//! Two invariants the robustness suite depends on:
//!
//! * flips move labels *with* pixels — a pixel and its label stay glued
//!   through any geometric transform (checked exactly: flipping is a
//!   permutation, so the (intensity, label) multiset is preserved pairwise);
//! * elastic deformation is approximately area-preserving — a smooth,
//!   small-amplitude warp may shuffle boundary pixels but cannot create or
//!   destroy an organ, so per-class pixel counts stay within a tolerance
//!   proportional to the class size.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use seneca_nn::augment::{elastic_deform, flip_horizontal_in_place};
use seneca_nn::train::Sample;
use seneca_tensor::{Shape4, Tensor};

/// Builds a slice-like sample with a few rectangular "organs" whose
/// intensity is correlated with the label (as after preprocessing).
fn labeled_sample(size: usize, n_blobs: usize, seed: u64) -> Sample {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut image = Tensor::full(Shape4::new(1, 1, size, size), -1.0);
    let mut labels = vec![0u8; size * size];
    for b in 0..n_blobs {
        let label = (b % 6 + 1) as u8;
        let w = rng.gen_range(2..=size / 2);
        let h = rng.gen_range(2..=size / 2);
        let x0 = rng.gen_range(0..size - w);
        let y0 = rng.gen_range(0..size - h);
        let base = -0.8 + 0.25 * label as f32;
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                labels[y * size + x] = label;
                *image.at_mut(0, 0, y, x) = base + rng.gen_range(-0.05..0.05);
            }
        }
    }
    Sample { image, labels }
}

fn class_counts(labels: &[u8]) -> [usize; 7] {
    let mut c = [0usize; 7];
    for &l in labels {
        c[l as usize] += 1;
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flipping permutes pixels: every (intensity, label) pair survives, and
    /// each pixel's label travels with its intensity to the mirrored slot.
    #[test]
    fn flip_moves_labels_with_pixels(
        size in 8usize..22,
        n_blobs in 1usize..4,
        seed in 0u64..1000,
    ) {
        let s = labeled_sample(size, n_blobs, seed);
        let mut flipped = s.clone();
        flip_horizontal_in_place(&mut flipped);
        for y in 0..size {
            for x in 0..size {
                let src = y * size + (size - 1 - x);
                prop_assert_eq!(flipped.labels[y * size + x], s.labels[src]);
                prop_assert_eq!(flipped.image.at(0, 0, y, x), s.image.at(0, 0, y, size - 1 - x));
            }
        }
        // Class histogram is exactly preserved (it is a permutation).
        prop_assert_eq!(class_counts(&flipped.labels), class_counts(&s.labels));
    }

    /// A smooth small-amplitude elastic warp keeps per-class pixel counts
    /// within a boundary-proportional tolerance: organs deform, they do not
    /// appear or vanish.
    #[test]
    fn elastic_preserves_class_areas_within_tolerance(
        size in 16usize..33,
        n_blobs in 1usize..4,
        alpha in 0.5f32..2.5,
        seed in 0u64..1000,
    ) {
        let s = labeled_sample(size, n_blobs, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE1A5);
        let warped = elastic_deform(&s, alpha, 8, &mut rng);
        let before = class_counts(&s.labels);
        let after = class_counts(&warped.labels);
        for (label, (&b, &a)) in before.iter().zip(&after).enumerate() {
            let diff = b.abs_diff(a);
            let tol = (0.35 * b as f64) as usize + 16;
            prop_assert!(
                diff <= tol,
                "class {} count moved {} -> {} (tolerance {})",
                label, b, a, tol
            );
            // A class present before stays present (no organ vanishes).
            if b > 64 {
                prop_assert!(a > 0, "class {} vanished under elastic warp", label);
            }
        }
        // Label values never leave the valid range.
        prop_assert!(warped.labels.iter().all(|&l| l <= 6));
    }
}
