//! The SENECA 2-D U-Net family.
//!
//! Reverse-engineered from Table II of the paper (see DESIGN.md): encoder
//! stack *i* is `conv(c_in→c) → conv(c→2c)` ("doubling the number of filters
//! going downward"), the bottleneck keeps its width, and decoder stack *i* is
//! `tconv2x2 → concat(skip) → conv(2s→s) → conv(s→s/2)` ("each decoder stack
//! halves the number of filters"). Every conv is 3x3 + BatchNorm + ReLU;
//! encoder stacks end with 2x2 max-pool + dropout, decoder stacks end with
//! dropout. The head is a plain 3x3 conv to `num_classes` maps + softmax.
//!
//! With `layers = 2*depth + 1`, the five Table II configurations land within
//! 1% of the paper's parameter totals (asserted by a unit test below).

use crate::layer::{ConvBlock, ConvBlockCache, Dropout, ParamVisitor, TConvLayer};
use rand::Rng;
use seneca_tensor::activation::{softmax_channels, softmax_channels_backward};
use seneca_tensor::pool::{maxpool2x2, maxpool2x2_backward, PoolOut};
use seneca_tensor::prelude::*;
use serde::{Deserialize, Serialize};

/// Structural hyper-parameters of a SENECA U-Net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UNetConfig {
    /// Number of encoder (= decoder) stacks; Table II `layers = 2*depth + 1`.
    pub depth: usize,
    /// Base filter count (Table II "Filters").
    pub base_filters: usize,
    /// Input channels (1 for CT slices).
    pub in_channels: usize,
    /// Output classes (5 organs + background = 6).
    pub num_classes: usize,
    /// Dropout rate applied at the end of each stack.
    pub dropout: f32,
}

impl UNetConfig {
    /// Table II "Layers" column: `2*depth + 1`.
    pub fn layers(&self) -> usize {
        2 * self.depth + 1
    }
}

/// The five models evaluated in the paper (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelSize {
    /// 9 layers, 8 filters, ~1.034M parameters — the model that becomes SENECA.
    M1,
    /// 11 layers, 6 filters, ~2.329M parameters.
    M2,
    /// 11 layers, 8 filters, ~4.136M parameters.
    M4,
    /// 11 layers, 11 filters, ~7.814M parameters.
    M8,
    /// 11 layers, 16 filters, ~16.522M parameters.
    M16,
}

impl ModelSize {
    /// All five sizes in Table II order.
    pub const ALL: [ModelSize; 5] = [Self::M1, Self::M2, Self::M4, Self::M8, Self::M16];

    /// The Table II configuration for this size.
    pub fn config(self) -> UNetConfig {
        let (depth, base_filters) = match self {
            Self::M1 => (4, 8),
            Self::M2 => (5, 6),
            Self::M4 => (5, 8),
            Self::M8 => (5, 11),
            Self::M16 => (5, 16),
        };
        UNetConfig { depth, base_filters, in_channels: 1, num_classes: 6, dropout: 0.10 }
    }

    /// Parameter total reported by the paper, in millions.
    pub fn paper_params_m(self) -> f64 {
        match self {
            Self::M1 => 1.034,
            Self::M2 => 2.329,
            Self::M4 => 4.136,
            Self::M8 => 7.814,
            Self::M16 => 16.522,
        }
    }

    /// Display label used across tables ("1M", "2M", …).
    pub fn label(self) -> &'static str {
        match self {
            Self::M1 => "1M",
            Self::M2 => "2M",
            Self::M4 => "4M",
            Self::M8 => "8M",
            Self::M16 => "16M",
        }
    }
}

impl std::fmt::Display for ModelSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One encoder stack: two conv blocks, then max-pool + dropout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderStack {
    /// First conv (`c_in → c`).
    pub conv1: ConvBlock,
    /// Second conv (`c → 2c`, the "doubling" conv).
    pub conv2: ConvBlock,
    /// End-of-stack dropout.
    pub dropout: Dropout,
}

/// One decoder stack: up-sample, concat skip, two conv blocks, dropout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecoderStack {
    /// 2x2 transpose conv (`cur → skip_channels`).
    pub up: TConvLayer,
    /// First conv after concat (`2s → s`).
    pub conv1: ConvBlock,
    /// Second conv (`s → s/2`, the "halving" conv).
    pub conv2: ConvBlock,
    /// End-of-stack dropout.
    pub dropout: Dropout,
}

/// The SENECA U-Net.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UNet {
    /// Construction config.
    pub config: UNetConfig,
    /// Encoder stacks, shallow to deep.
    pub encoders: Vec<EncoderStack>,
    /// Bottleneck conv 1 (width-preserving).
    pub bneck1: ConvBlock,
    /// Bottleneck conv 2.
    pub bneck2: ConvBlock,
    /// Decoder stacks, deep to shallow (forward order).
    pub decoders: Vec<DecoderStack>,
    /// Output head: 3x3 conv to `num_classes`, no BN, no ReLU.
    pub head: ConvBlock,
}

/// One encoder stack's forward-pass cache: the two conv blocks, the pool
/// output, the dropout mask, and the pre-pool shape.
type EncoderCache = (ConvBlockCache, ConvBlockCache, PoolOut, Option<Vec<bool>>, Shape4);

/// Everything the backward pass needs from one forward pass.
pub struct UNetCache {
    enc: Vec<EncoderCache>,
    skips: Vec<Tensor>,
    bn1: ConvBlockCache,
    bn2: ConvBlockCache,
    dec: Vec<(Tensor, ConvBlockCache, ConvBlockCache, Option<Vec<bool>>)>,
    head: ConvBlockCache,
    probs: Tensor,
}

impl UNet {
    /// Builds a randomly initialised U-Net.
    pub fn new<R: Rng>(config: UNetConfig, rng: &mut R) -> Self {
        let f = config.base_filters;
        let mut encoders = Vec::with_capacity(config.depth);
        let mut c_in = config.in_channels;
        let mut c = f;
        let mut skip_chans = Vec::new();
        for _ in 0..config.depth {
            let conv1 = ConvBlock::new(c_in, c, true, true, rng);
            let conv2 = ConvBlock::new(c, 2 * c, true, true, rng);
            encoders.push(EncoderStack { conv1, conv2, dropout: Dropout { rate: config.dropout } });
            skip_chans.push(2 * c);
            c_in = 2 * c;
            c *= 2;
        }
        let bneck1 = ConvBlock::new(c_in, c_in, true, true, rng);
        let bneck2 = ConvBlock::new(c_in, c_in, true, true, rng);
        let mut decoders = Vec::with_capacity(config.depth);
        let mut cur = c_in;
        for i in (0..config.depth).rev() {
            let s = skip_chans[i];
            let up = TConvLayer::new(cur, s, rng);
            let conv1 = ConvBlock::new(2 * s, s, true, true, rng);
            let conv2 = ConvBlock::new(s, s / 2, true, true, rng);
            decoders.push(DecoderStack {
                up,
                conv1,
                conv2,
                dropout: Dropout { rate: config.dropout },
            });
            cur = s / 2;
        }
        let head = ConvBlock::new(cur, config.num_classes, false, false, rng);
        Self { config, encoders, bneck1, bneck2, decoders, head }
    }

    /// Builds one of the Table II models.
    pub fn from_size<R: Rng>(size: ModelSize, rng: &mut R) -> Self {
        Self::new(size.config(), rng)
    }

    /// Total parameter count (TF-style: BN contributes 4 per channel).
    pub fn param_count(&self) -> usize {
        let mut total = 0;
        for e in &self.encoders {
            total += e.conv1.param_count() + e.conv2.param_count();
        }
        total += self.bneck1.param_count() + self.bneck2.param_count();
        for d in &self.decoders {
            total += d.up.param_count() + d.conv1.param_count() + d.conv2.param_count();
        }
        total + self.head.param_count()
    }

    /// Training forward pass: returns per-pixel class probabilities
    /// `[N, num_classes, H, W]` and the cache for [`UNet::backward`].
    ///
    /// `H` and `W` must be divisible by `2^depth`.
    pub fn forward<R: Rng>(&mut self, x: &Tensor, rng: &mut R) -> (Tensor, UNetCache) {
        let s = x.shape();
        let div = 1 << self.config.depth;
        assert!(
            s.h.is_multiple_of(div) && s.w.is_multiple_of(div),
            "input {s} not divisible by 2^depth = {div}"
        );
        let mut cur = x.clone();
        let mut enc = Vec::new();
        let mut skips = Vec::new();
        for stack in &mut self.encoders {
            let (a, c1) = stack.conv1.forward(&cur, true);
            let (b, c2) = stack.conv2.forward(&a, true);
            let pre_pool_shape = b.shape();
            let pool = maxpool2x2(&b);
            let (dropped, mask) = stack.dropout.forward(&pool.y, true, rng);
            skips.push(b);
            enc.push((c1, c2, pool, mask, pre_pool_shape));
            cur = dropped;
        }
        let (b1, bn1) = self.bneck1.forward(&cur, true);
        let (b2, bn2) = self.bneck2.forward(&b1, true);
        cur = b2;
        let mut dec = Vec::new();
        for (di, stack) in self.decoders.iter_mut().enumerate() {
            let skip = &skips[self.config.depth - 1 - di];
            let (up, up_cache) = stack.up.forward(&cur);
            let cat = Tensor::concat_channels(skip, &up);
            let (a, c1) = stack.conv1.forward(&cat, true);
            let (b, c2) = stack.conv2.forward(&a, true);
            let (dropped, mask) = stack.dropout.forward(&b, true, rng);
            dec.push((up_cache, c1, c2, mask));
            cur = dropped;
        }
        let (logits, head_cache) = self.head.forward(&cur, true);
        let probs = softmax_channels(&logits);
        (probs.clone(), UNetCache { enc, skips, bn1, bn2, dec, head: head_cache, probs })
    }

    /// Backward pass from a gradient w.r.t. the softmax *probabilities*.
    /// Accumulates parameter gradients; returns nothing (input grads unused).
    pub fn backward(&mut self, cache: &UNetCache, dprobs: &Tensor) {
        let dlogits = softmax_channels_backward(&cache.probs, dprobs);
        let mut dcur = self.head.backward(&cache.head, &dlogits);

        let depth = self.config.depth;
        let mut dskips: Vec<Option<Tensor>> = vec![None; depth];
        for (di, stack) in self.decoders.iter_mut().enumerate().rev() {
            let (up_cache, c1, c2, mask) = &cache.dec[di];
            let d_drop = stack.dropout.backward(mask, &dcur);
            let d_b = stack.conv2.backward(c2, &d_drop);
            let d_cat = stack.conv1.backward(c1, &d_b);
            let skip_idx = depth - 1 - di;
            let skip_c = cache.skips[skip_idx].shape().c;
            let (d_skip, d_up) = d_cat.split_channels(skip_c);
            dskips[skip_idx] = Some(d_skip);
            dcur = stack.up.backward(up_cache, &d_up);
        }

        let d_b1 = self.bneck2.backward(&cache.bn2, &dcur);
        dcur = self.bneck1.backward(&cache.bn1, &d_b1);

        for (ei, stack) in self.encoders.iter_mut().enumerate().rev() {
            let (c1, c2, pool, mask, pre_pool_shape) = &cache.enc[ei];
            let d_pool_out = stack.dropout.backward(mask, &dcur);
            let mut d_b = maxpool2x2_backward(*pre_pool_shape, pool, &d_pool_out);
            if let Some(ds) = &dskips[ei] {
                d_b.axpy(1.0, ds);
            }
            let d_a = stack.conv2.backward(c2, &d_b);
            dcur = stack.conv1.backward(c1, &d_a);
        }
    }

    /// Inference forward (running BN statistics, dropout off).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        let mut skips = Vec::new();
        for stack in &self.encoders {
            let a = stack.conv1.infer(&cur);
            let b = stack.conv2.infer(&a);
            cur = maxpool2x2(&b).y;
            skips.push(b);
        }
        cur = self.bneck2.infer(&self.bneck1.infer(&cur));
        for (di, stack) in self.decoders.iter().enumerate() {
            let skip = &skips[self.config.depth - 1 - di];
            let up = stack.up.infer(&cur);
            let cat = Tensor::concat_channels(skip, &up);
            cur = stack.conv2.infer(&stack.conv1.infer(&cat));
        }
        softmax_channels(&self.head.infer(&cur))
    }

    /// Predicted per-pixel labels for a batch.
    pub fn predict(&self, x: &Tensor) -> Vec<u8> {
        seneca_tensor::activation::argmax_channels(&self.infer(x))
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for e in &mut self.encoders {
            e.conv1.zero_grad();
            e.conv2.zero_grad();
        }
        self.bneck1.zero_grad();
        self.bneck2.zero_grad();
        for d in &mut self.decoders {
            d.up.zero_grad();
            d.conv1.zero_grad();
            d.conv2.zero_grad();
        }
        self.head.zero_grad();
    }

    /// Visits all parameters (used by optimizers).
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        for e in &mut self.encoders {
            e.conv1.visit_params(f);
            e.conv2.visit_params(f);
        }
        self.bneck1.visit_params(f);
        self.bneck2.visit_params(f);
        for d in &mut self.decoders {
            d.up.visit_params(f);
            d.conv1.visit_params(f);
            d.conv2.visit_params(f);
        }
        self.head.visit_params(f);
    }

    /// Multiply-accumulate operations for one forward pass at `h`x`w` input,
    /// used by the GPU/DPU performance models. Counts conv, tconv and head.
    pub fn macs_per_frame(&self, h: usize, w: usize) -> u64 {
        let mut total: u64 = 0;
        let (mut hh, mut ww) = (h as u64, w as u64);
        for e in &self.encoders {
            let ws1 = e.conv1.w.shape();
            let ws2 = e.conv2.w.shape();
            total += hh * ww * (ws1.len() as u64 + ws2.len() as u64);
            hh /= 2;
            ww /= 2;
        }
        total +=
            hh * ww * (self.bneck1.w.shape().len() as u64 + self.bneck2.w.shape().len() as u64);
        for d in &self.decoders {
            // tconv: each input pixel does C_in*C_out*4 MACs.
            total += hh * ww * d.up.w.shape().len() as u64;
            hh *= 2;
            ww *= 2;
            total += hh * ww * (d.conv1.w.shape().len() as u64 + d.conv2.w.shape().len() as u64);
        }
        total += hh * ww * self.head.w.shape().len() as u64;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn table2_layer_counts() {
        assert_eq!(ModelSize::M1.config().layers(), 9);
        for s in [ModelSize::M2, ModelSize::M4, ModelSize::M8, ModelSize::M16] {
            assert_eq!(s.config().layers(), 11);
        }
    }

    #[test]
    fn table2_param_counts_within_2_percent() {
        let mut r = rng();
        for size in ModelSize::ALL {
            let net = UNet::from_size(size, &mut r);
            let ours = net.param_count() as f64 / 1e6;
            let paper = size.paper_params_m();
            let err = (ours / paper - 1.0).abs();
            assert!(err < 0.02, "{size}: ours {ours:.3}M vs paper {paper:.3}M ({err:.3})");
        }
    }

    #[test]
    fn forward_output_shape_and_probabilities() {
        let mut r = rng();
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.1 };
        let mut net = UNet::new(cfg, &mut r);
        let x = Tensor::he_normal(Shape4::new(2, 1, 16, 16), &mut r);
        let (probs, _) = net.forward(&x, &mut r);
        assert_eq!(probs.shape(), Shape4::new(2, 6, 16, 16));
        for h in 0..16 {
            let sum: f32 = (0..6).map(|c| probs.at(0, c, h, 0)).sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn forward_rejects_indivisible_input() {
        let mut r = rng();
        let cfg =
            UNetConfig { depth: 3, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let mut net = UNet::new(cfg, &mut r);
        let x = Tensor::zeros(Shape4::new(1, 1, 12, 12));
        let _ = net.forward(&x, &mut r);
    }

    #[test]
    fn infer_matches_forward_shapes_without_dropout() {
        let mut r = rng();
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
        let net = UNet::new(cfg, &mut r);
        let x = Tensor::he_normal(Shape4::new(1, 1, 8, 8), &mut r);
        let probs = net.infer(&x);
        assert_eq!(probs.shape(), Shape4::new(1, 6, 8, 8));
        let labels = net.predict(&x);
        assert_eq!(labels.len(), 64);
        assert!(labels.iter().all(|&l| l < 6));
    }

    #[test]
    fn backward_populates_all_param_grads() {
        let mut r = rng();
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.1 };
        let mut net = UNet::new(cfg, &mut r);
        let x = Tensor::he_normal(Shape4::new(1, 1, 8, 8), &mut r);
        let (probs, cache) = net.forward(&x, &mut r);
        net.zero_grad();
        net.backward(&cache, &probs);
        let mut n_params = 0;
        let mut nonzero = 0;
        net.visit_params(&mut |_, grad, _| {
            n_params += 1;
            if grad.iter().any(|g| *g != 0.0) {
                nonzero += 1;
            }
        });
        // Every parameter tensor received a gradient buffer...
        // encoders: 2 stacks * (conv1: w,b,gamma,beta + conv2: same) = 16
        // bottleneck: 8, decoders: 2 * (up: 2 + conv1: 4 + conv2: 4) = 20, head: 2
        assert_eq!(n_params, 16 + 8 + 20 + 2);
        // ...and the overwhelming majority are non-zero.
        assert!(nonzero >= n_params - 2, "{nonzero}/{n_params}");
    }

    #[test]
    fn macs_scale_with_resolution() {
        let mut r = rng();
        let net = UNet::from_size(ModelSize::M1, &mut r);
        let m256 = net.macs_per_frame(256, 256);
        let m128 = net.macs_per_frame(128, 128);
        let ratio = m256 as f64 / m128 as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
        // 1M model at 256² is in the GMAC range (sanity check).
        assert!(m256 > 1_000_000_000 && m256 < 20_000_000_000, "{m256}");
    }

    #[test]
    fn serde_roundtrip_preserves_weights() {
        let mut r = rng();
        let cfg =
            UNetConfig { depth: 1, base_filters: 2, in_channels: 1, num_classes: 3, dropout: 0.0 };
        let net = UNet::new(cfg, &mut r);
        let json = serde_json::to_string(&net).unwrap();
        let net2: UNet = serde_json::from_str(&json).unwrap();
        let x = Tensor::he_normal(Shape4::new(1, 1, 4, 4), &mut r);
        assert_eq!(net.infer(&x), net2.infer(&x));
    }
}
