//! The trained-model export graph.
//!
//! After training, a [`crate::unet::UNet`] is exported to this small
//! single-input / single-output DAG. The IR is the hand-off format consumed
//! by the quantizer (`seneca-quant`) and the DPU compiler (`seneca-dpu`) —
//! mirroring how a TensorFlow graph flows into the Vitis AI quantizer and
//! VAI_C. It deliberately keeps BatchNorm and Dropout as *separate nodes* so
//! those tools can demonstrate folding/removal, and it ships with a naive
//! FP32 executor kept as the bit-exactness anchor for everything downstream.
//!
//! All optimised execution lowers through `seneca-ir`: [`Graph::to_ir`]
//! converts into the typed IR [`seneca_ir::Module`], whose pass pipeline and
//! planned executor replace the per-graph node walk this module used to
//! carry. Shape inference delegates to the same IR pass.

use crate::unet::UNet;
use seneca_ir::shape::{infer_shapes_ops, ShapeOp};
use seneca_ir::{ConvAttrs, ConvKernel, DType, IrOp, Module};
use seneca_tensor::prelude::*;
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Graph operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Op {
    /// Graph input placeholder (exactly one, always node 0).
    Input,
    /// 3x3 stride-1 pad-1 convolution with optional fused ReLU.
    Conv {
        /// Weights `[C_out, C_in, 3, 3]`.
        w: Tensor,
        /// Bias (may be empty).
        b: Vec<f32>,
        /// Fused ReLU flag (set by the compiler's fusion pass, not the exporter).
        relu: bool,
    },
    /// Batch normalisation (inference form, running statistics).
    BatchNorm {
        /// BN parameters.
        bn: BnState,
    },
    /// Standalone ReLU.
    Relu,
    /// 2x2 stride-2 max pool.
    MaxPool2x2,
    /// 2x2 stride-2 transpose convolution.
    TConv {
        /// Weights `[C_in, C_out, 2, 2]`.
        w: Tensor,
        /// Bias.
        b: Vec<f32>,
    },
    /// Channel concatenation of the two inputs (first, second).
    Concat,
    /// Dropout (training artifact; identity at inference, removed by VAI_C).
    Dropout {
        /// Drop rate recorded for provenance.
        rate: f32,
    },
    /// Channel-wise softmax.
    Softmax,
}

impl Op {
    /// Short mnemonic for logs and compiler listings.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input => "input",
            Op::Conv { .. } => "conv3x3",
            Op::BatchNorm { .. } => "batchnorm",
            Op::Relu => "relu",
            Op::MaxPool2x2 => "maxpool2x2",
            Op::TConv { .. } => "tconv2x2",
            Op::Concat => "concat",
            Op::Dropout { .. } => "dropout",
            Op::Softmax => "softmax",
        }
    }
}

/// A node: an operation plus the ids of its input nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Input node ids (empty for `Input`, two for `Concat`, else one).
    pub inputs: Vec<usize>,
}

/// A single-input, single-output inference DAG in topological order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    /// Nodes; `nodes[0]` is always [`Op::Input`], ids are vector indices.
    pub nodes: Vec<Node>,
    /// Id of the output node.
    pub output: usize,
    /// Human-readable name (model label).
    pub name: String,
}

impl Graph {
    /// Creates an empty graph containing only the input node.
    pub fn new(name: impl Into<String>) -> Self {
        Self { nodes: vec![Node { op: Op::Input, inputs: vec![] }], output: 0, name: name.into() }
    }

    /// Appends a node and returns its id.
    pub fn push(&mut self, op: Op, inputs: Vec<usize>) -> usize {
        for &i in &inputs {
            assert!(i < self.nodes.len(), "forward reference in graph");
        }
        self.nodes.push(Node { op, inputs });
        self.output = self.nodes.len() - 1;
        self.output
    }

    /// Exports a trained U-Net into graph form (BN and dropout kept explicit).
    pub fn from_unet(net: &UNet, name: impl Into<String>) -> Self {
        let mut g = Graph::new(name);
        let mut cur = 0usize;
        let mut skips = Vec::new();
        let push_block =
            |g: &mut Graph, cur: usize, blk: &crate::layer::ConvBlock, with_relu: bool| -> usize {
                let mut id =
                    g.push(Op::Conv { w: blk.w.clone(), b: blk.b.clone(), relu: false }, vec![cur]);
                if let Some(bn) = &blk.bn {
                    id = g.push(Op::BatchNorm { bn: bn.clone() }, vec![id]);
                }
                if with_relu && blk.relu {
                    id = g.push(Op::Relu, vec![id]);
                }
                id
            };
        for e in &net.encoders {
            cur = push_block(&mut g, cur, &e.conv1, true);
            cur = push_block(&mut g, cur, &e.conv2, true);
            skips.push(cur);
            cur = g.push(Op::MaxPool2x2, vec![cur]);
            cur = g.push(Op::Dropout { rate: e.dropout.rate }, vec![cur]);
        }
        cur = push_block(&mut g, cur, &net.bneck1, true);
        cur = push_block(&mut g, cur, &net.bneck2, true);
        for (di, d) in net.decoders.iter().enumerate() {
            let skip = skips[net.config.depth - 1 - di];
            let up = g.push(Op::TConv { w: d.up.w.clone(), b: d.up.b.clone() }, vec![cur]);
            cur = g.push(Op::Concat, vec![skip, up]);
            cur = push_block(&mut g, cur, &d.conv1, true);
            cur = push_block(&mut g, cur, &d.conv2, true);
            cur = g.push(Op::Dropout { rate: d.dropout.rate }, vec![cur]);
        }
        cur = push_block(&mut g, cur, &net.head, false);
        g.push(Op::Softmax, vec![cur]);
        g
    }

    /// Infers every node's output shape for a given input shape (delegates
    /// to the IR shape-inference pass — one walk for every graph type).
    pub fn shapes(&self, input: Shape4) -> Vec<Shape4> {
        let ops: Vec<(ShapeOp, &[usize])> = self
            .nodes
            .iter()
            .map(|node| {
                let op = match &node.op {
                    Op::Input => ShapeOp::Input,
                    Op::Conv { w, .. } => ShapeOp::Conv { c_in: w.shape().c, c_out: w.shape().n },
                    Op::TConv { w, .. } => ShapeOp::TConv { c_in: w.shape().n, c_out: w.shape().c },
                    Op::BatchNorm { .. } | Op::Relu | Op::Dropout { .. } | Op::Softmax => {
                        ShapeOp::PassThrough
                    }
                    Op::MaxPool2x2 => ShapeOp::MaxPool2x2,
                    Op::Concat => ShapeOp::Concat,
                };
                (op, node.inputs.as_slice())
            })
            .collect();
        infer_shapes_ops(&ops, DType::F32, input)
    }

    /// Converts the export graph into the typed IR. Node ids are preserved
    /// one-to-one; every downstream executor (FP32 host, GPU baseline) and
    /// the quantizer frontend lower from the returned [`Module`].
    pub fn to_ir(&self) -> Module {
        let mut m = Module::new(self.name.clone(), DType::F32);
        for node in self.nodes.iter().skip(1) {
            let op = match &node.op {
                Op::Input => unreachable!("input is always node 0"),
                Op::Conv { w, b, relu } => IrOp::Conv(ConvAttrs {
                    kernel: ConvKernel::F32 { w: w.clone(), b: b.clone() },
                    relu: *relu,
                    pack: None,
                }),
                Op::BatchNorm { bn } => IrOp::BatchNorm { bn: bn.clone() },
                Op::Relu => IrOp::Relu,
                Op::MaxPool2x2 => IrOp::MaxPool2x2,
                Op::TConv { w, b } => IrOp::TConv(ConvAttrs {
                    kernel: ConvKernel::F32 { w: w.clone(), b: b.clone() },
                    relu: false,
                    pack: None,
                }),
                Op::Concat => IrOp::Concat { requant: None },
                Op::Dropout { rate } => IrOp::Dropout { rate: *rate },
                Op::Softmax => IrOp::Softmax,
            };
            m.push(op, node.inputs.clone());
        }
        m.output = self.output;
        m
    }

    /// Multiply-accumulate count per node for a given input shape (conv,
    /// tconv only; other ops are counted as zero-MAC).
    pub fn macs(&self, input: Shape4) -> Vec<u64> {
        let shapes = self.shapes(input);
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, node)| match &node.op {
                Op::Conv { w, .. } => shapes[i].hw() as u64 * w.shape().len() as u64,
                Op::TConv { w, .. } => shapes[node.inputs[0]].hw() as u64 * w.shape().len() as u64,
                _ => 0,
            })
            .collect()
    }

    /// Executes the graph in FP32 (reference / GPU-baseline semantics).
    /// Dropout is identity; BN uses running statistics.
    pub fn execute(&self, input: &Tensor) -> Tensor {
        let mut vals: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        vals[0] = Some(input.clone());
        for (i, node) in self.nodes.iter().enumerate().skip(1) {
            let out = match &node.op {
                Op::Input => unreachable!("multiple inputs unsupported"),
                Op::Conv { w, b, relu: fused } => {
                    let x = vals[node.inputs[0]].as_ref().expect("topo order");
                    let y = conv2d(x, w, b, Conv2dParams::SAME_3X3);
                    if *fused {
                        relu(&y)
                    } else {
                        y
                    }
                }
                Op::BatchNorm { bn } => {
                    let x = vals[node.inputs[0]].as_ref().unwrap();
                    seneca_tensor::norm::batchnorm_inference(x, bn)
                }
                Op::Relu => relu(vals[node.inputs[0]].as_ref().unwrap()),
                Op::MaxPool2x2 => maxpool2x2(vals[node.inputs[0]].as_ref().unwrap()).y,
                Op::TConv { w, b } => tconv2x2(vals[node.inputs[0]].as_ref().unwrap(), w, b),
                Op::Concat => Tensor::concat_channels(
                    vals[node.inputs[0]].as_ref().unwrap(),
                    vals[node.inputs[1]].as_ref().unwrap(),
                ),
                Op::Dropout { .. } => vals[node.inputs[0]].as_ref().unwrap().clone(),
                Op::Softmax => softmax_channels(vals[node.inputs[0]].as_ref().unwrap()),
            };
            vals[i] = Some(out);
        }
        vals[self.output].take().expect("output computed")
    }

    /// Number of nodes per mnemonic (compiler statistics helper).
    pub fn op_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for n in &self.nodes {
            *h.entry(n.op.mnemonic()).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unet::{UNet, UNetConfig};
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> UNet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.1 };
        UNet::new(cfg, &mut rng)
    }

    #[test]
    fn export_matches_unet_inference() {
        let net = tiny_net(5);
        let g = Graph::from_unet(&net, "tiny");
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let x = Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng);
        let y_net = net.infer(&x);
        let y_graph = g.execute(&x);
        assert_eq!(y_net.shape(), y_graph.shape());
        for (a, b) in y_net.data().iter().zip(y_graph.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn graph_structure_counts() {
        let net = tiny_net(6);
        let g = Graph::from_unet(&net, "tiny");
        let h = g.op_histogram();
        // depth 2: enc 2*2 convs + bneck 2 + dec 2*2 convs + head = 11 convs.
        assert_eq!(h["conv3x3"], 11);
        assert_eq!(h["tconv2x2"], 2);
        assert_eq!(h["maxpool2x2"], 2);
        assert_eq!(h["concat"], 2);
        assert_eq!(h["dropout"], 4);
        assert_eq!(h["softmax"], 1);
        assert_eq!(h["batchnorm"], 10); // all convs except the head
        assert_eq!(h["input"], 1);
    }

    #[test]
    fn shapes_propagate() {
        let net = tiny_net(7);
        let g = Graph::from_unet(&net, "tiny");
        let shapes = g.shapes(Shape4::new(1, 1, 32, 32));
        assert_eq!(shapes[0], Shape4::new(1, 1, 32, 32));
        assert_eq!(shapes[g.output], Shape4::new(1, 6, 32, 32));
    }

    #[test]
    fn macs_concentrate_in_convs() {
        let net = tiny_net(8);
        let g = Graph::from_unet(&net, "tiny");
        let macs = g.macs(Shape4::new(1, 1, 32, 32));
        let total: u64 = macs.iter().sum();
        assert!(total > 0);
        for (i, node) in g.nodes.iter().enumerate() {
            match node.op {
                Op::Conv { .. } | Op::TConv { .. } => assert!(macs[i] > 0),
                _ => assert_eq!(macs[i], 0),
            }
        }
    }

    #[test]
    #[should_panic(expected = "forward reference")]
    fn push_rejects_forward_references() {
        let mut g = Graph::new("bad");
        g.push(Op::Relu, vec![7]);
    }

    #[test]
    fn ir_lowered_execution_matches_execute_bit_exactly() {
        let net = tiny_net(12);
        let g = Graph::from_unet(&net, "tiny");
        let shape = Shape4::new(1, 1, 16, 16);
        let lowered = seneca_ir::lower(g.to_ir(), shape, &seneca_ir::LowerOptions::reference());
        let mut scratch = lowered.make_scratch_f32();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        // Several frames through the same arena: results must stay bit-equal
        // to the naive executor (no stale-slot contamination).
        for frame in 0..3 {
            let x = Tensor::he_normal(shape, &mut rng);
            let naive = g.execute(&x);
            let planned = lowered.execute_f32_into(&x, &mut scratch);
            assert_eq!(planned.shape(), naive.shape());
            assert_eq!(planned.data(), naive.data(), "frame {frame} diverged");
        }
    }

    #[test]
    fn plan_reuses_slots_below_total_activations() {
        // Depth-4 / 8-filter is the paper's 1M configuration: skip-aware
        // liveness must cut the arena well below the per-node sum.
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let cfg =
            UNetConfig { depth: 4, base_filters: 8, in_channels: 1, num_classes: 6, dropout: 0.1 };
        let g = Graph::from_unet(&UNet::new(cfg, &mut rng), "m1");
        let plan = g.to_ir().plan(Shape4::new(1, 1, 64, 64));
        assert!(plan.n_slots() < plan.n_nodes());
        assert!(
            2 * plan.peak_arena_elems() < plan.total_activation_elems(),
            "peak {} vs total {}",
            plan.peak_arena_elems(),
            plan.total_activation_elems()
        );
    }

    #[test]
    fn slot_reuse_never_aliases_live_skip_connection() {
        let net = tiny_net(15);
        let g = Graph::from_unet(&net, "tiny");
        // `Module::plan` runs no rewrite passes, so ids map 1:1 onto `g`.
        let plan = g.to_ir().plan(Shape4::new(1, 1, 32, 32));
        for (i, node) in g.nodes.iter().enumerate() {
            if !matches!(node.op, Op::Concat) {
                continue;
            }
            // The skip input was produced long before the concat; every node
            // defined in between must avoid its slot.
            let skip = node.inputs[0];
            assert_eq!(plan.last_use_of(skip), i, "skip {skip} live exactly until concat {i}");
            for j in (skip + 1)..i {
                assert_ne!(
                    plan.slot_of(j),
                    plan.slot_of(skip),
                    "node {j} clobbers skip {skip} before concat {i}"
                );
            }
        }
    }

    #[test]
    fn scratch_reports_its_input_shape() {
        let net = tiny_net(16);
        let g = Graph::from_unet(&net, "tiny");
        let shape = Shape4::new(1, 1, 16, 16);
        let lowered = seneca_ir::lower(g.to_ir(), shape, &seneca_ir::LowerOptions::reference());
        let scratch = lowered.make_scratch_f32();
        assert_eq!(scratch.input_shape(), shape);
        // Reference lowering strips dropout identities, so the lowered module
        // is strictly smaller than the export graph.
        assert_eq!(scratch.plan().n_nodes(), lowered.module().nodes.len());
        assert!(lowered.module().nodes.len() < g.nodes.len());
    }

    #[test]
    fn serde_roundtrip() {
        let net = tiny_net(10);
        let g = Graph::from_unet(&net, "tiny");
        let json = serde_json::to_string(&g).unwrap();
        let g2: Graph = serde_json::from_str(&json).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let x = Tensor::he_normal(Shape4::new(1, 1, 8, 8), &mut rng);
        assert_eq!(g.execute(&x), g2.execute(&x));
    }
}
