//! Mini-batch training loop (stage C of the SENECA workflow).

use crate::augment::{AugmentConfig, Augmenter};
use crate::loss::FocalTverskyLoss;
use crate::optim::Optimizer;
use crate::unet::UNet;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One training sample: a `1xCxHxW` image and its flat `H*W` label map.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Input slice.
    pub image: Tensor,
    /// Per-pixel class labels.
    pub labels: Vec<u8>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed (shuffling, dropout).
    pub seed: u64,
    /// Multiplicative LR decay applied after each epoch.
    pub lr_decay: f32,
    /// Print progress lines to stderr.
    pub verbose: bool,
    /// On-the-fly per-sample augmentation (flips, shifts, elastic,
    /// intensity jitter). `None` trains on raw samples and keeps the RNG
    /// stream — and therefore cached trained models — byte-stable.
    pub augment: Option<AugmentConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 4,
            seed: 0xC7_0E6,
            lr_decay: 0.9,
            verbose: false,
            augment: None,
        }
    }
}

/// Per-epoch record in the training history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub mean_loss: f64,
    /// Learning rate used during the epoch.
    pub lr: f32,
}

/// Trains `net` in place; returns the loss history.
pub fn train(
    net: &mut UNet,
    samples: &[Sample],
    loss: &FocalTverskyLoss,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
) -> Vec<EpochStats> {
    assert!(!samples.is_empty(), "empty training set");
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut augmenter = cfg.augment.map(Augmenter::new);

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let mut images: Vec<Tensor> = Vec::with_capacity(chunk.len());
            let mut labels = Vec::with_capacity(chunk.len() * samples[chunk[0]].labels.len());
            for &i in chunk {
                if let Some(aug) = augmenter.as_mut() {
                    let mut s = samples[i].clone();
                    aug.apply(&mut s, &mut rng);
                    labels.extend_from_slice(&s.labels);
                    images.push(s.image);
                } else {
                    labels.extend_from_slice(&samples[i].labels);
                    images.push(samples[i].image.clone());
                }
            }
            let batch = Tensor::stack_batch(&images);

            let (probs, cache) = net.forward(&batch, &mut rng);
            let (lval, dprobs) = loss.forward_backward(&probs, &labels);
            net.zero_grad();
            net.backward(&cache, &dprobs);
            opt.step(net);
            loss_sum += lval as f64;
            batches += 1;
        }
        let stats = EpochStats { epoch, mean_loss: loss_sum / batches.max(1) as f64, lr: opt.lr() };
        if cfg.verbose {
            eprintln!(
                "epoch {:>3}: loss {:.5} (lr {:.2e})",
                stats.epoch, stats.mean_loss, stats.lr
            );
        }
        opt.set_lr(opt.lr() * cfg.lr_decay);
        history.push(stats);
    }
    history
}

/// Builds a toy training set where class = quadrant of the image, with the
/// intensity pattern correlated to the class. Used by tests and examples to
/// exercise training without the full phantom pipeline.
pub fn toy_quadrant_dataset<R: Rng>(
    n: usize,
    size: usize,
    classes: usize,
    rng: &mut R,
) -> Vec<Sample> {
    assert!(classes >= 4, "quadrant dataset needs >= 4 classes");
    (0..n)
        .map(|_| {
            let mut img = Tensor::zeros(seneca_tensor::Shape4::new(1, 1, size, size));
            let mut labels = vec![0u8; size * size];
            for y in 0..size {
                for x in 0..size {
                    let q = (y >= size / 2) as u8 * 2 + (x >= size / 2) as u8;
                    let base = match q {
                        0 => -0.75,
                        1 => -0.25,
                        2 => 0.25,
                        _ => 0.75,
                    };
                    *img.at_mut(0, 0, y, x) = base + rng.gen_range(-0.1..0.1);
                    labels[y * size + x] = q;
                }
            }
            Sample { image: img, labels }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::unet::{UNet, UNetConfig};
    use rand::SeedableRng;

    #[test]
    fn training_learns_quadrants() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let samples = toy_quadrant_dataset(8, 16, 4, &mut rng);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 4, dropout: 0.05 };
        let mut net = UNet::new(cfg, &mut rng);
        let loss = FocalTverskyLoss::paper_defaults(vec![1.0; 4]);
        let mut opt = Adam::new(2e-3);
        let history = train(
            &mut net,
            &samples,
            &loss,
            &mut opt,
            &TrainConfig {
                epochs: 18,
                batch_size: 4,
                seed: 3,
                lr_decay: 0.95,
                ..Default::default()
            },
        );
        assert_eq!(history.len(), 18);
        let first = history.first().unwrap().mean_loss;
        let last = history.last().unwrap().mean_loss;
        assert!(last < first * 0.6, "loss {first} -> {last}");

        // Pixel accuracy on a fresh sample should beat chance by a wide margin.
        let test = toy_quadrant_dataset(1, 16, 4, &mut rng);
        let pred = net.predict(&test[0].image);
        let correct =
            pred.iter().zip(&test[0].labels).filter(|(a, b)| a == b).count() as f64 / 256.0;
        assert!(correct > 0.6, "accuracy {correct}");
    }

    #[test]
    fn lr_decays_each_epoch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let samples = toy_quadrant_dataset(2, 8, 4, &mut rng);
        let cfg =
            UNetConfig { depth: 1, base_filters: 2, in_channels: 1, num_classes: 4, dropout: 0.0 };
        let mut net = UNet::new(cfg, &mut rng);
        let loss = FocalTverskyLoss::paper_defaults(vec![1.0; 4]);
        let mut opt = Adam::new(1e-3);
        let history = train(
            &mut net,
            &samples,
            &loss,
            &mut opt,
            &TrainConfig { epochs: 3, batch_size: 2, seed: 1, lr_decay: 0.5, ..Default::default() },
        );
        assert!((history[0].lr - 1e-3).abs() < 1e-9);
        assert!((history[1].lr - 5e-4).abs() < 1e-9);
        assert!((history[2].lr - 2.5e-4).abs() < 1e-9);
    }

    #[test]
    fn augmented_training_still_learns() {
        use crate::augment::AugmentConfig;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let samples = toy_quadrant_dataset(8, 16, 4, &mut rng);
        let cfg =
            UNetConfig { depth: 2, base_filters: 4, in_channels: 1, num_classes: 4, dropout: 0.05 };
        let mut net = UNet::new(cfg, &mut rng);
        let loss = FocalTverskyLoss::paper_defaults(vec![1.0; 4]);
        let mut opt = Adam::new(2e-3);
        // Quadrant labels are position-coded, so geometric augmentation is
        // kept gentle: intensity jitter + light elastic only.
        let aug = AugmentConfig {
            flip_prob: 0.0,
            max_shift: 0,
            elastic_alpha: 1.0,
            elastic_grid: 4,
            ..Default::default()
        };
        let history = train(
            &mut net,
            &samples,
            &loss,
            &mut opt,
            &TrainConfig {
                epochs: 18,
                batch_size: 4,
                seed: 3,
                lr_decay: 0.95,
                augment: Some(aug),
                ..Default::default()
            },
        );
        let first = history.first().unwrap().mean_loss;
        let last = history.last().unwrap().mean_loss;
        assert!(last < first * 0.7, "augmented loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_dataset_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let cfg =
            UNetConfig { depth: 1, base_filters: 2, in_channels: 1, num_classes: 4, dropout: 0.0 };
        let mut net = UNet::new(cfg, &mut rng);
        let loss = FocalTverskyLoss::paper_defaults(vec![1.0; 4]);
        let mut opt = Adam::new(1e-3);
        let _ = train(&mut net, &[], &loss, &mut opt, &TrainConfig::default());
    }
}
