//! Segmentation losses: weighted Focal Tversky (the SENECA training loss,
//! Eq. (1)–(2) of the paper), soft Dice, and pixel cross-entropy.
//!
//! All losses operate on softmax *probabilities* `[N, C, H, W]` and flat
//! ground-truth labels (`u8`, length `N*H*W`), and return `(value, dprobs)`
//! so they can feed [`crate::unet::UNet::backward`] directly.

use seneca_tensor::{Shape4, Tensor};
use serde::{Deserialize, Serialize};

/// The weighted Focal Tversky loss:
///
/// `FTL_w = (1 - Σ_c w_c·TI_c / Σ_c w_c)^γ` with
/// `TI_c = Σ p·g / (Σ p·g + α Σ (1-p)·g + β Σ p·(1-g))`.
///
/// The paper uses `α = 0.7`, `β = 0.3`, `γ = 4/3` and class weights
/// inversely proportional to organ pixel frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FocalTverskyLoss {
    /// False-negative regularisation weight.
    pub alpha: f32,
    /// False-positive regularisation weight.
    pub beta: f32,
    /// Focusing parameter (>1 pushes training toward hard classes).
    pub gamma: f32,
    /// Per-class weights `w_c` (length = number of classes).
    pub class_weights: Vec<f32>,
    /// Smoothing added to numerator and denominator (avoids 0/0 for classes
    /// absent from a batch).
    pub smooth: f32,
}

impl FocalTverskyLoss {
    /// Paper defaults (`α=0.7, β=0.3, γ=4/3`) with the given class weights.
    pub fn paper_defaults(class_weights: Vec<f32>) -> Self {
        Self { alpha: 0.7, beta: 0.3, gamma: 4.0 / 3.0, class_weights, smooth: 1.0 }
    }

    /// Derives class weights inversely proportional to pixel frequencies,
    /// normalised so the weights sum to the class count. `freqs` may contain
    /// zeros (clamped) and need not be normalised.
    pub fn inverse_frequency_weights(freqs: &[f64]) -> Vec<f32> {
        let total: f64 = freqs.iter().sum();
        let inv: Vec<f64> = freqs
            .iter()
            .map(|&f| {
                let rel = (f / total.max(1e-12)).max(1e-4);
                1.0 / rel
            })
            .collect();
        let s: f64 = inv.iter().sum();
        let k = freqs.len() as f64;
        inv.iter().map(|&v| (v / s * k) as f32).collect()
    }

    /// Computes the loss and its gradient w.r.t. `probs`.
    ///
    /// `labels[i] == c` means pixel `i` (NCHW order with channels removed)
    /// belongs to class `c`.
    pub fn forward_backward(&self, probs: &Tensor, labels: &[u8]) -> (f32, Tensor) {
        let s = probs.shape();
        let c = s.c;
        assert_eq!(self.class_weights.len(), c, "class weight count");
        assert_eq!(labels.len(), s.n * s.hw(), "label count");

        let (tis, partials) = self.tversky_indices(probs, labels);

        // S = Σ w·TI / Σ w ; loss = (1 - S)^γ
        let wsum: f32 = self.class_weights.iter().sum();
        let sval: f32 =
            tis.iter().zip(&self.class_weights).map(|(ti, w)| ti * w).sum::<f32>() / wsum;
        let one_minus = (1.0 - sval).max(1e-8);
        let loss = one_minus.powf(self.gamma);
        // dL/dTI_c = -γ (1-S)^(γ-1) w_c / Σw
        let outer = -self.gamma * one_minus.powf(self.gamma - 1.0) / wsum;

        let hw = s.hw();
        let mut dprobs = Tensor::zeros(s);
        for n in 0..s.n {
            for (cc, &(num, den)) in partials.iter().enumerate().take(c) {
                let dl_dti = outer * self.class_weights[cc];
                let base = s.idx(n, cc, 0, 0);
                let lbase = n * hw;
                for pix in 0..hw {
                    let g = (labels[lbase + pix] as usize == cc) as u8 as f32;
                    // d num / dp = g ; d den / dp = g - αg + β(1-g)
                    let dden = g - self.alpha * g + self.beta * (1.0 - g);
                    let dti_dp = (g * den - num * dden) / (den * den);
                    dprobs.data_mut()[base + pix] = dl_dti * dti_dp;
                }
            }
        }
        (loss, dprobs)
    }

    /// Loss value only (no gradient).
    pub fn value(&self, probs: &Tensor, labels: &[u8]) -> f32 {
        let (tis, _) = self.tversky_indices(probs, labels);
        let wsum: f32 = self.class_weights.iter().sum();
        let sval: f32 =
            tis.iter().zip(&self.class_weights).map(|(ti, w)| ti * w).sum::<f32>() / wsum;
        (1.0 - sval).max(1e-8).powf(self.gamma)
    }

    /// Per-class Tversky indices plus `(numerator, denominator)` partials.
    fn tversky_indices(&self, probs: &Tensor, labels: &[u8]) -> (Vec<f32>, Vec<(f32, f32)>) {
        let s = probs.shape();
        let hw = s.hw();
        let mut num = vec![0.0f64; s.c];
        let mut fn_sum = vec![0.0f64; s.c]; // Σ (1-p)·g
        let mut fp_sum = vec![0.0f64; s.c]; // Σ p·(1-g)
        for n in 0..s.n {
            let lbase = n * hw;
            for c in 0..s.c {
                let base = s.idx(n, c, 0, 0);
                let plane = &probs.data()[base..base + hw];
                for (pix, &p) in plane.iter().enumerate() {
                    let p = p as f64;
                    if labels[lbase + pix] as usize == c {
                        num[c] += p;
                        fn_sum[c] += 1.0 - p;
                    } else {
                        fp_sum[c] += p;
                    }
                }
            }
        }
        let mut tis = Vec::with_capacity(s.c);
        let mut partials = Vec::with_capacity(s.c);
        for c in 0..s.c {
            let n_c = num[c] as f32 + self.smooth;
            let d_c = (num[c] + self.alpha as f64 * fn_sum[c] + self.beta as f64 * fp_sum[c])
                as f32
                + self.smooth;
            tis.push(n_c / d_c);
            partials.push((n_c, d_c));
        }
        (tis, partials)
    }
}

/// Unweighted soft Dice loss `1 - mean_c( 2Σpg / (Σp + Σg) )` with gradient.
/// Used for the loss-function ablation.
pub fn dice_loss(probs: &Tensor, labels: &[u8]) -> (f32, Tensor) {
    let s = probs.shape();
    let hw = s.hw();
    let mut num = vec![0.0f64; s.c];
    let mut psum = vec![0.0f64; s.c];
    let mut gsum = vec![0.0f64; s.c];
    for n in 0..s.n {
        for c in 0..s.c {
            let base = s.idx(n, c, 0, 0);
            for pix in 0..hw {
                let p = probs.data()[base + pix] as f64;
                let g = (labels[n * hw + pix] as usize == c) as u8 as f64;
                num[c] += p * g;
                psum[c] += p;
                gsum[c] += g;
            }
        }
    }
    let smooth = 1.0f64;
    let dices: Vec<f64> =
        (0..s.c).map(|c| (2.0 * num[c] + smooth) / (psum[c] + gsum[c] + smooth)).collect();
    let loss = 1.0 - dices.iter().sum::<f64>() / s.c as f64;

    let mut dprobs = Tensor::zeros(s);
    for n in 0..s.n {
        for c in 0..s.c {
            let base = s.idx(n, c, 0, 0);
            let den = psum[c] + gsum[c] + smooth;
            for pix in 0..hw {
                let g = (labels[n * hw + pix] as usize == c) as u8 as f64;
                // d dice_c/dp = (2g·den - (2num+smooth)) / den²; loss averages -1/C.
                let dd = (2.0 * g * den - (2.0 * num[c] + smooth)) / (den * den);
                dprobs.data_mut()[base + pix] = (-dd / s.c as f64) as f32;
            }
        }
    }
    (loss as f32, dprobs)
}

/// Mean pixel cross-entropy `-log p_true` with gradient w.r.t. probabilities.
pub fn cross_entropy_loss(probs: &Tensor, labels: &[u8]) -> (f32, Tensor) {
    let s = probs.shape();
    let hw = s.hw();
    let count = (s.n * hw) as f32;
    let mut loss = 0.0f64;
    let mut dprobs = Tensor::zeros(s);
    for n in 0..s.n {
        for pix in 0..hw {
            let c = labels[n * hw + pix] as usize;
            let idx = s.idx(n, c, 0, 0) + pix;
            let p = probs.data()[idx].max(1e-8);
            loss += -(p as f64).ln();
            dprobs.data_mut()[idx] = -1.0 / (p * count);
        }
    }
    ((loss / count as f64) as f32, dprobs)
}

/// One-hot ground truth as a probability tensor (test/diagnostic helper).
pub fn one_hot(labels: &[u8], shape: Shape4) -> Tensor {
    let hw = shape.hw();
    assert_eq!(labels.len(), shape.n * hw);
    let mut t = Tensor::zeros(shape);
    for n in 0..shape.n {
        for pix in 0..hw {
            let c = labels[n * hw + pix] as usize;
            t.data_mut()[shape.idx(n, c, 0, 0) + pix] = 1.0;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use seneca_tensor::activation::softmax_channels;

    fn random_case(seed: u64, shape: Shape4) -> (Tensor, Vec<u8>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let logits = Tensor::from_vec(
            shape,
            (0..shape.len()).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
        );
        let probs = softmax_channels(&logits);
        let labels: Vec<u8> =
            (0..shape.n * shape.hw()).map(|_| rng.gen_range(0..shape.c as u8)).collect();
        (probs, labels)
    }

    #[test]
    fn perfect_prediction_gives_near_zero_ftl() {
        let shape = Shape4::new(1, 3, 4, 4);
        let labels: Vec<u8> = (0..16).map(|i| (i % 3) as u8).collect();
        let probs = one_hot(&labels, shape);
        let loss = FocalTverskyLoss::paper_defaults(vec![1.0; 3]);
        let (v, _) = loss.forward_backward(&probs, &labels);
        assert!(v < 0.01, "loss {v}");
    }

    #[test]
    fn worst_prediction_gives_high_ftl() {
        let shape = Shape4::new(1, 2, 4, 4);
        let labels = vec![0u8; 16];
        let wrong = one_hot(&[1u8; 16], shape);
        let loss = FocalTverskyLoss::paper_defaults(vec![1.0; 2]);
        let (v, _) = loss.forward_backward(&wrong, &labels);
        assert!(v > 0.5, "loss {v}");
    }

    #[test]
    fn ftl_gradient_matches_numerical() {
        let shape = Shape4::new(1, 3, 3, 3);
        let (probs, labels) = random_case(1, shape);
        let loss = FocalTverskyLoss::paper_defaults(vec![1.0, 2.0, 0.5]);
        let (_, grad) = loss.forward_backward(&probs, &labels);
        let eps = 1e-3;
        for &i in &[0usize, 5, 13, 22, 26] {
            let mut pp = probs.clone();
            pp.data_mut()[i] += eps;
            let mut pm = probs.clone();
            pm.data_mut()[i] -= eps;
            let num = (loss.value(&pp, &labels) - loss.value(&pm, &labels)) / (2.0 * eps);
            let ana = grad.data()[i];
            assert!((num - ana).abs() < 1e-3, "i={i}: {num} vs {ana}");
        }
    }

    #[test]
    fn gamma_focuses_on_hard_examples() {
        // Lower S (harder case) must yield disproportionally higher loss as
        // gamma grows: check loss ratio ordering.
        let shape = Shape4::new(1, 2, 4, 4);
        let labels = vec![0u8; 16];
        let mut probs_easy = one_hot(&labels, shape);
        // Slightly imperfect.
        for v in probs_easy.data_mut().iter_mut() {
            *v = if *v == 1.0 { 0.9 } else { 0.1 };
        }
        let mut probs_hard = one_hot(&labels, shape);
        for v in probs_hard.data_mut().iter_mut() {
            *v = if *v == 1.0 { 0.6 } else { 0.4 };
        }
        let mk = |gamma: f32| FocalTverskyLoss {
            gamma,
            ..FocalTverskyLoss::paper_defaults(vec![1.0; 2])
        };
        let r1 = mk(1.0).value(&probs_hard, &labels) / mk(1.0).value(&probs_easy, &labels);
        let r2 =
            mk(4.0 / 3.0).value(&probs_hard, &labels) / mk(4.0 / 3.0).value(&probs_easy, &labels);
        assert!(r2 > r1, "γ focusing: {r2} !> {r1}");
    }

    #[test]
    fn inverse_frequency_weights_order_and_normalisation() {
        // Table I frequencies: liver, bladder, lungs, kidneys, bones.
        let freqs = [22.18, 2.51, 34.17, 4.70, 36.26];
        let w = FocalTverskyLoss::inverse_frequency_weights(&freqs);
        // Bladder (least frequent) gets the largest weight; bones the smallest.
        let max_i = w.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let min_i = w.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(max_i, 1);
        assert_eq!(min_i, 4);
        let sum: f32 = w.iter().sum();
        assert!((sum - 5.0).abs() < 1e-3);
    }

    #[test]
    fn dice_loss_gradient_matches_numerical() {
        let shape = Shape4::new(1, 3, 3, 3);
        let (probs, labels) = random_case(2, shape);
        let (_, grad) = dice_loss(&probs, &labels);
        let eps = 1e-3;
        for &i in &[0usize, 7, 16, 25] {
            let mut pp = probs.clone();
            pp.data_mut()[i] += eps;
            let mut pm = probs.clone();
            pm.data_mut()[i] -= eps;
            let num = (dice_loss(&pp, &labels).0 - dice_loss(&pm, &labels).0) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical() {
        let shape = Shape4::new(1, 3, 2, 2);
        let (probs, labels) = random_case(3, shape);
        let (_, grad) = cross_entropy_loss(&probs, &labels);
        let eps = 1e-4;
        for i in 0..shape.len() {
            let mut pp = probs.clone();
            pp.data_mut()[i] += eps;
            let mut pm = probs.clone();
            pm.data_mut()[i] -= eps;
            let num = (cross_entropy_loss(&pp, &labels).0 - cross_entropy_loss(&pm, &labels).0)
                / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    fn weighting_shifts_gradient_mass_to_rare_class() {
        // Class 1 is rare; with inverse-frequency weights its gradient share
        // must exceed its share under uniform weights.
        let shape = Shape4::new(1, 2, 4, 4);
        let mut labels = vec![0u8; 16];
        labels[3] = 1;
        let (probs, _) = random_case(4, shape);
        let uni = FocalTverskyLoss::paper_defaults(vec![1.0, 1.0]);
        let wts = FocalTverskyLoss::paper_defaults(vec![0.2, 1.8]);
        let share = |l: &FocalTverskyLoss| {
            let (_, g) = l.forward_backward(&probs, &labels);
            let s = shape;
            let c1: f32 = (0..s.hw()).map(|p| g.data()[s.idx(0, 1, 0, 0) + p].abs()).sum();
            let all: f32 = g.data().iter().map(|v| v.abs()).sum();
            c1 / all
        };
        assert!(share(&wts) > share(&uni));
    }
}
