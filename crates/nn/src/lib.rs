//! # seneca-nn
//!
//! Neural-network building blocks for the SENECA reproduction:
//!
//! * [`layer`] — trainable layers (conv+BN+ReLU blocks, transpose-conv,
//!   dropout) with explicit forward caches and backward passes;
//! * [`unet`] — the SENECA 2-D U-Net family (Table II configurations) with a
//!   parameter-count calculator reproducing the paper's 1M…16M totals;
//! * [`loss`] — the weighted Focal Tversky loss of Eq. (1)–(2), plus Dice and
//!   cross-entropy for ablations;
//! * [`optim`] — SGD-with-momentum and Adam;
//! * [`train`] — a mini-batch training loop with seeded shuffling;
//! * [`graph`] — a small inference IR (the hand-off format to the quantizer
//!   and the DPU compiler) and an FP32 executor for it;
//! * [`plan`] — the shared execution-plan layer: liveness analysis and
//!   buffer-slot assignment used by the FP32 and INT8 executors and the DPU
//!   compiler's memory accounting;
//! * [`prune`] — magnitude-based channel pruning (the paper's future-work
//!   ablation);
//! * [`augment`] — flip/translate/intensity-jitter training augmentation.

pub mod augment;
pub mod graph;
pub mod layer;
pub mod loss;
pub mod optim;
pub mod plan;
pub mod prune;
pub mod train;
pub mod unet;

pub use graph::{FpScratch, Graph, Node, Op};
pub use loss::FocalTverskyLoss;
pub use optim::{Adam, Optimizer, Sgd};
pub use plan::ExecPlan;
pub use unet::{ModelSize, UNet, UNetConfig};
