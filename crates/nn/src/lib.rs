//! # seneca-nn
//!
//! Neural-network building blocks for the SENECA reproduction:
//!
//! * [`layer`] — trainable layers (conv+BN+ReLU blocks, transpose-conv,
//!   dropout) with explicit forward caches and backward passes;
//! * [`unet`] — the SENECA 2-D U-Net family (Table II configurations) with a
//!   parameter-count calculator reproducing the paper's 1M…16M totals;
//! * [`loss`] — the weighted Focal Tversky loss of Eq. (1)–(2), plus Dice and
//!   cross-entropy for ablations;
//! * [`optim`] — SGD-with-momentum and Adam;
//! * [`train`] — a mini-batch training loop with seeded shuffling;
//! * [`graph`] — the trained-model export graph (the hand-off format to the
//!   quantizer and the DPU compiler) with a naive FP32 reference executor;
//!   optimised execution converts to `seneca-ir` via [`Graph::to_ir`] and
//!   lowers through the shared pass pipeline and liveness planner;
//! * [`prune`] — magnitude-based channel pruning (the paper's future-work
//!   ablation);
//! * [`augment`] — flip/translate/intensity-jitter training augmentation.

pub mod augment;
pub mod graph;
pub mod layer;
pub mod loss;
pub mod optim;
pub mod prune;
pub mod train;
pub mod unet;

/// Liveness planning now lives in `seneca-ir`; re-exported so historical
/// `seneca_nn::plan::ExecPlan` paths keep resolving.
pub use seneca_ir::plan;

pub use graph::{Graph, Node, Op};
pub use loss::FocalTverskyLoss;
pub use optim::{Adam, Optimizer, Sgd};
pub use seneca_ir::ExecPlan;
pub use unet::{ModelSize, UNet, UNetConfig};
