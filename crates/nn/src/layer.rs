//! Trainable layers with explicit caches.
//!
//! Every layer exposes `forward` (returning the activation plus whatever the
//! backward pass needs) and `backward` (consuming the cache, filling the
//! layer's gradient buffers and returning `dx`). Optimizers visit parameters
//! through [`ParamVisitor`].

use rand::Rng;
use seneca_tensor::norm::{batchnorm_backward, batchnorm_forward, BnCache, BnState};
use seneca_tensor::prelude::*;
use serde::{Deserialize, Serialize};

/// Callback used by optimizers to visit `(value, grad, opt_slot)` triples.
///
/// The `opt_slot` is per-parameter optimizer scratch (e.g. momentum and
/// second-moment buffers); it is lazily sized by the optimizer.
pub type ParamVisitor<'a> = &'a mut dyn FnMut(&mut [f32], &[f32], &mut OptSlot);

/// Optimizer scratch attached to each parameter tensor.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OptSlot {
    /// First-moment / momentum buffer.
    pub m: Vec<f32>,
    /// Second-moment buffer (Adam only).
    pub v: Vec<f32>,
    /// Step counter (Adam bias correction).
    pub t: u64,
}

/// A convolution block: `conv 3x3 -> [BatchNorm] -> [ReLU]`.
///
/// This is the unit the SENECA encoder/decoder stacks are made of. BN and
/// ReLU can be disabled (the final 6-filter output conv uses neither).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvBlock {
    /// Convolution weights `[C_out, C_in, 3, 3]`.
    pub w: Tensor,
    /// Convolution bias.
    pub b: Vec<f32>,
    /// Optional batch normalisation.
    pub bn: Option<BnState>,
    /// Apply ReLU after (BN if present, else conv).
    pub relu: bool,
    #[serde(skip)]
    gw: Option<Tensor>,
    #[serde(skip)]
    gb: Vec<f32>,
    #[serde(skip)]
    g_gamma: Vec<f32>,
    #[serde(skip)]
    g_beta: Vec<f32>,
    #[serde(skip, default)]
    slots: [OptSlot; 4],
}

/// Forward cache of a [`ConvBlock`].
pub struct ConvBlockCache {
    x: Tensor,
    conv_out: Tensor,
    bn_cache: Option<BnCache>,
    pre_relu: Tensor,
}

impl ConvBlock {
    /// He-initialised block.
    pub fn new<R: Rng>(c_in: usize, c_out: usize, bn: bool, relu: bool, rng: &mut R) -> Self {
        Self {
            w: Tensor::he_normal(Shape4::new(c_out, c_in, 3, 3), rng),
            b: vec![0.0; c_out],
            bn: if bn { Some(BnState::new(c_out)) } else { None },
            relu,
            gw: None,
            gb: vec![],
            g_gamma: vec![],
            g_beta: vec![],
            slots: Default::default(),
        }
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.w.shape().n
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.w.shape().c
    }

    /// Trainable + tracked parameter count, TF-style (BN counts 4/channel).
    pub fn param_count(&self) -> usize {
        self.w.shape().len() + self.b.len() + self.bn.as_ref().map_or(0, |bn| 4 * bn.channels())
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> (Tensor, ConvBlockCache) {
        let conv_out = conv2d(x, &self.w, &self.b, Conv2dParams::SAME_3X3);
        let (pre_relu, bn_cache) = match self.bn.as_mut() {
            Some(bn) => {
                let (y, cache) = batchnorm_forward(&conv_out, bn, training);
                (y, cache)
            }
            None => (conv_out.clone(), None),
        };
        let y = if self.relu { relu(&pre_relu) } else { pre_relu.clone() };
        (y, ConvBlockCache { x: x.clone(), conv_out, bn_cache, pre_relu })
    }

    /// Inference-only forward (no cache, running BN stats).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let conv_out = conv2d(x, &self.w, &self.b, Conv2dParams::SAME_3X3);
        let pre = match self.bn.as_ref() {
            Some(bn) => seneca_tensor::norm::batchnorm_inference(&conv_out, bn),
            None => conv_out,
        };
        if self.relu {
            relu(&pre)
        } else {
            pre
        }
    }

    /// Backward pass: accumulates parameter gradients, returns `dx`.
    pub fn backward(&mut self, cache: &ConvBlockCache, dy: &Tensor) -> Tensor {
        let d_pre = if self.relu { relu_backward(&cache.pre_relu, dy) } else { dy.clone() };
        let d_conv = match (&self.bn, &cache.bn_cache) {
            (Some(bn), Some(bnc)) => {
                let grads = batchnorm_backward(bn, bnc, &d_pre);
                accumulate(&mut self.g_gamma, &grads.dgamma);
                accumulate(&mut self.g_beta, &grads.dbeta);
                grads.dx
            }
            _ => d_pre,
        };
        let grads = conv2d_backward(&cache.x, &self.w, &d_conv, Conv2dParams::SAME_3X3);
        match &mut self.gw {
            Some(gw) => gw.axpy(1.0, &grads.dw),
            None => self.gw = Some(grads.dw),
        }
        accumulate(&mut self.gb, &grads.db);
        let _ = &cache.conv_out; // kept for debugging / future fused kernels
        grads.dx
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw = None;
        self.gb.clear();
        self.g_gamma.clear();
        self.g_beta.clear();
    }

    /// Visits `(value, grad, slot)` for each parameter tensor with grads.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        if let Some(gw) = &self.gw {
            f(self.w.data_mut(), gw.data(), &mut self.slots[0]);
        }
        if !self.gb.is_empty() {
            f(&mut self.b, &self.gb, &mut self.slots[1]);
        }
        if let Some(bn) = self.bn.as_mut() {
            if !self.g_gamma.is_empty() {
                f(&mut bn.gamma, &self.g_gamma, &mut self.slots[2]);
            }
            if !self.g_beta.is_empty() {
                f(&mut bn.beta, &self.g_beta, &mut self.slots[3]);
            }
        }
    }
}

/// A 2x2/stride-2 transpose-convolution up-sampling layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TConvLayer {
    /// Weights `[C_in, C_out, 2, 2]`.
    pub w: Tensor,
    /// Bias, length `C_out`.
    pub b: Vec<f32>,
    #[serde(skip)]
    gw: Option<Tensor>,
    #[serde(skip)]
    gb: Vec<f32>,
    #[serde(skip, default)]
    slots: [OptSlot; 2],
}

impl TConvLayer {
    /// He-initialised transpose conv.
    pub fn new<R: Rng>(c_in: usize, c_out: usize, rng: &mut R) -> Self {
        Self {
            w: Tensor::he_normal(Shape4::new(c_in, c_out, 2, 2), rng),
            b: vec![0.0; c_out],
            gw: None,
            gb: vec![],
            slots: Default::default(),
        }
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.w.shape().c
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.w.shape().len() + self.b.len()
    }

    /// Forward pass. The cache is just the input.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        (tconv2x2(x, &self.w, &self.b), x.clone())
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        tconv2x2(x, &self.w, &self.b)
    }

    /// Backward pass.
    pub fn backward(&mut self, x_cache: &Tensor, dy: &Tensor) -> Tensor {
        let grads = tconv2x2_backward(x_cache, &self.w, dy);
        match &mut self.gw {
            Some(gw) => gw.axpy(1.0, &grads.dw),
            None => self.gw = Some(grads.dw),
        }
        accumulate(&mut self.gb, &grads.db);
        grads.dx
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw = None;
        self.gb.clear();
    }

    /// Visits parameters (see [`ConvBlock::visit_params`]).
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        if let Some(gw) = &self.gw {
            f(self.w.data_mut(), gw.data(), &mut self.slots[0]);
        }
        if !self.gb.is_empty() {
            f(&mut self.b, &self.gb, &mut self.slots[1]);
        }
    }
}

/// Inverted dropout: scales kept activations by `1/(1-rate)` during training
/// so inference is a no-op (and the Vitis-AI-style compiler can delete it).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub rate: f32,
}

impl Dropout {
    /// Training forward; returns output and the keep-mask (None if inactive).
    pub fn forward<R: Rng>(
        &self,
        x: &Tensor,
        training: bool,
        rng: &mut R,
    ) -> (Tensor, Option<Vec<bool>>) {
        if !training || self.rate <= 0.0 {
            return (x.clone(), None);
        }
        let keep = 1.0 - self.rate;
        let inv = 1.0 / keep;
        let mask: Vec<bool> = (0..x.shape().len()).map(|_| rng.gen::<f32>() < keep).collect();
        let mut y = x.clone();
        for (v, &k) in y.data_mut().iter_mut().zip(&mask) {
            *v = if k { *v * inv } else { 0.0 };
        }
        (y, Some(mask))
    }

    /// Backward through the same mask.
    pub fn backward(&self, mask: &Option<Vec<bool>>, dy: &Tensor) -> Tensor {
        match mask {
            None => dy.clone(),
            Some(mask) => {
                let inv = 1.0 / (1.0 - self.rate);
                let mut dx = dy.clone();
                for (v, &k) in dx.data_mut().iter_mut().zip(mask) {
                    *v = if k { *v * inv } else { 0.0 };
                }
                dx
            }
        }
    }
}

fn accumulate(acc: &mut Vec<f32>, add: &[f32]) {
    if acc.is_empty() {
        acc.resize(add.len(), 0.0);
    }
    for (a, b) in acc.iter_mut().zip(add) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn conv_block_shapes_and_param_count() {
        let mut r = rng();
        let mut blk = ConvBlock::new(3, 8, true, true, &mut r);
        assert_eq!(blk.param_count(), 8 * 3 * 9 + 8 + 32);
        let x = Tensor::he_normal(Shape4::new(2, 3, 8, 8), &mut r);
        let (y, _) = blk.forward(&x, true);
        assert_eq!(y.shape(), Shape4::new(2, 8, 8, 8));
        assert!(y.data().iter().all(|&v| v >= 0.0), "ReLU output must be non-negative");
    }

    #[test]
    fn conv_block_train_step_reduces_simple_loss() {
        // One block, L2 loss toward zero: a gradient step must reduce ||y||².
        let mut r = rng();
        let mut blk = ConvBlock::new(1, 4, false, false, &mut r);
        let x = Tensor::he_normal(Shape4::new(1, 1, 6, 6), &mut r);
        let (y0, cache) = blk.forward(&x, true);
        let l0: f32 = y0.data().iter().map(|v| v * v).sum();
        let dy = {
            let mut t = y0.clone();
            t.scale(2.0);
            t
        };
        blk.zero_grad();
        let _ = blk.backward(&cache, &dy);
        blk.visit_params(&mut |val, grad, _| {
            for (v, g) in val.iter_mut().zip(grad) {
                *v -= 1e-2 * g;
            }
        });
        let y1 = blk.infer(&x);
        // infer uses running BN stats; with bn disabled this is exact.
        let l1: f32 = y1.data().iter().map(|v| v * v).sum();
        assert!(l1 < l0, "{l1} !< {l0}");
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut r = rng();
        let d = Dropout { rate: 0.5 };
        let x = Tensor::he_normal(Shape4::new(1, 2, 4, 4), &mut r);
        let (y, mask) = d.forward(&x, false, &mut r);
        assert!(mask.is_none());
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let mut r = rng();
        let d = Dropout { rate: 0.3 };
        let x = Tensor::full(Shape4::new(1, 1, 64, 64), 1.0);
        let (y, mask) = d.forward(&x, true, &mut r);
        assert!(mask.is_some());
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.1, "inverted dropout mean {mean}");
        // Dropped positions are exactly zero.
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        let expected = (0.3 * 4096.0) as isize;
        assert!((zeros as isize - expected).abs() < 300);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut r = rng();
        let d = Dropout { rate: 0.5 };
        let x = Tensor::full(Shape4::new(1, 1, 8, 8), 1.0);
        let (y, mask) = d.forward(&x, true, &mut r);
        let dy = Tensor::full(Shape4::new(1, 1, 8, 8), 1.0);
        let dx = d.backward(&mask, &dy);
        for (yv, dxv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *dxv == 0.0, "mask mismatch between fwd and bwd");
        }
    }

    #[test]
    fn tconv_layer_upsamples() {
        let mut r = rng();
        let layer = TConvLayer::new(4, 2, &mut r);
        assert_eq!(layer.param_count(), 4 * 2 * 4 + 2);
        let x = Tensor::he_normal(Shape4::new(1, 4, 5, 5), &mut r);
        let (y, _) = layer.forward(&x);
        assert_eq!(y.shape(), Shape4::new(1, 2, 10, 10));
    }

    #[test]
    fn zero_grad_resets_accumulation() {
        let mut r = rng();
        let mut blk = ConvBlock::new(1, 2, false, false, &mut r);
        let x = Tensor::he_normal(Shape4::new(1, 1, 4, 4), &mut r);
        let (y, cache) = blk.forward(&x, true);
        let _ = blk.backward(&cache, &y);
        let mut visited = 0;
        blk.visit_params(&mut |_, _, _| visited += 1);
        assert_eq!(visited, 2); // w and b
        blk.zero_grad();
        let mut visited2 = 0;
        blk.visit_params(&mut |_, _, _| visited2 += 1);
        assert_eq!(visited2, 0);
    }
}
