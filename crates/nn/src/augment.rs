//! Training-time data augmentation for 2-D CT slices.
//!
//! Standard geometric/intensity augmentations for medical segmentation:
//! horizontal flips (anatomically plausible for the near-symmetric trunk),
//! small translations, smooth elastic deformation (the classic coarse
//! displacement grid, bilinearly upsampled), intensity scale/shift jitter
//! and Gaussian noise. Labels follow geometric transforms exactly (nearest
//! neighbour for elastic); intensity transforms leave them untouched.
//!
//! For the training loop use [`Augmenter`]: it keeps scratch buffers across
//! calls and mutates samples in place — the flip is a true in-place column
//! swap, translation and elastic reuse one scratch image/label pair, and
//! intensity jitter writes through, so steady-state augmentation performs
//! no allocation at all.

use crate::train::Sample;
use rand::Rng;
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Augmentation policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Probability of a horizontal (left-right) flip.
    pub flip_prob: f64,
    /// Maximum |shift| in pixels along each axis (zero-padded).
    pub max_shift: usize,
    /// Intensity scale jitter: factor drawn from `1 ± scale_jitter`.
    pub scale_jitter: f32,
    /// Intensity shift jitter: offset drawn from `± shift_jitter`.
    pub shift_jitter: f32,
    /// Additive Gaussian noise sigma (post-normalisation units).
    pub noise_sigma: f32,
    /// Probability of applying an elastic deformation.
    pub elastic_prob: f64,
    /// Maximum |displacement| of an elastic grid node, in pixels.
    pub elastic_alpha: f32,
    /// Spacing of the coarse elastic displacement grid, in pixels.
    pub elastic_grid: usize,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            flip_prob: 0.5,
            max_shift: 4,
            scale_jitter: 0.05,
            shift_jitter: 0.05,
            noise_sigma: 0.02,
            elastic_prob: 0.3,
            elastic_alpha: 2.5,
            elastic_grid: 8,
        }
    }
}

/// Horizontal flip of image and labels.
pub fn flip_horizontal(s: &Sample) -> Sample {
    let shape = s.image.shape();
    let (h, w) = (shape.h, shape.w);
    let mut image = Tensor::zeros(shape);
    let mut labels = vec![0u8; h * w];
    for y in 0..h {
        for x in 0..w {
            *image.at_mut(0, 0, y, x) = s.image.at(0, 0, y, w - 1 - x);
            labels[y * w + x] = s.labels[y * w + (w - 1 - x)];
        }
    }
    Sample { image, labels }
}

/// Integer translation with zero padding (air background) for the image and
/// background label for the label map.
pub fn translate(s: &Sample, dx: isize, dy: isize) -> Sample {
    let shape = s.image.shape();
    let (h, w) = (shape.h as isize, shape.w as isize);
    let mut image = Tensor::full(shape, -1.0); // air after [-1,1] rescale
    let mut labels = vec![0u8; (h * w) as usize];
    for y in 0..h {
        for x in 0..w {
            let (sx, sy) = (x - dx, y - dy);
            if sx >= 0 && sx < w && sy >= 0 && sy < h {
                *image.at_mut(0, 0, y as usize, x as usize) =
                    s.image.at(0, 0, sy as usize, sx as usize);
                labels[(y * w + x) as usize] = s.labels[(sy * w + sx) as usize];
            }
        }
    }
    Sample { image, labels }
}

/// Smooth elastic deformation: random displacements on a coarse `grid`-px
/// lattice (uniform in `±alpha` px), bilinearly upsampled to a per-pixel
/// warp field. The image is sampled bilinearly (out-of-bounds reads air),
/// labels nearest-neighbour so classes never blend.
pub fn elastic_deform<R: Rng>(s: &Sample, alpha: f32, grid: usize, rng: &mut R) -> Sample {
    let mut out = s.clone();
    let mut aug = Augmenter::new(AugmentConfig::default());
    aug.elastic_in_place(&mut out, alpha, grid, rng);
    out
}

/// Applies the policy to one sample (convenience wrapper over
/// [`Augmenter`], which is what the training loop uses).
pub fn augment<R: Rng>(s: &Sample, cfg: &AugmentConfig, rng: &mut R) -> Sample {
    let mut out = s.clone();
    Augmenter::new(*cfg).apply(&mut out, rng);
    out
}

/// Reusable in-place augmentation engine.
///
/// Holds the scratch image/label pair and the elastic node buffers, so a
/// training loop pays for their allocation once and then augments every
/// sample of every epoch without touching the allocator.
#[derive(Debug, Clone)]
pub struct Augmenter {
    /// The policy applied by [`Augmenter::apply`].
    pub cfg: AugmentConfig,
    scratch_img: Vec<f32>,
    scratch_lab: Vec<u8>,
    node_dx: Vec<f32>,
    node_dy: Vec<f32>,
}

impl Augmenter {
    /// Creates an engine for `cfg` (scratch grows lazily to the slice size).
    pub fn new(cfg: AugmentConfig) -> Self {
        Self {
            cfg,
            scratch_img: Vec::new(),
            scratch_lab: Vec::new(),
            node_dx: Vec::new(),
            node_dy: Vec::new(),
        }
    }

    /// Augments `s` in place. Deterministic given the RNG state.
    pub fn apply<R: Rng>(&mut self, s: &mut Sample, rng: &mut R) {
        let cfg = self.cfg;
        if rng.gen_bool(cfg.flip_prob) {
            flip_horizontal_in_place(s);
        }
        if cfg.max_shift > 0 {
            let m = cfg.max_shift as isize;
            let (dx, dy) = (rng.gen_range(-m..=m), rng.gen_range(-m..=m));
            if dx != 0 || dy != 0 {
                self.translate_in_place(s, dx, dy);
            }
        }
        if cfg.elastic_prob > 0.0 && rng.gen_bool(cfg.elastic_prob) {
            self.elastic_in_place(s, cfg.elastic_alpha, cfg.elastic_grid, rng);
        }
        let scale = 1.0 + rng.gen_range(-cfg.scale_jitter..=cfg.scale_jitter);
        let shift = rng.gen_range(-cfg.shift_jitter..=cfg.shift_jitter);
        for v in s.image.data_mut() {
            let mut x = *v * scale + shift;
            if cfg.noise_sigma > 0.0 {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                x += cfg.noise_sigma * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            }
            *v = x.clamp(-1.0, 1.0);
        }
    }

    fn translate_in_place(&mut self, s: &mut Sample, dx: isize, dy: isize) {
        let shape = s.image.shape();
        let (h, w) = (shape.h as isize, shape.w as isize);
        let n = (h * w) as usize;
        self.scratch_img.clear();
        self.scratch_img.resize(n, -1.0); // air after [-1,1] rescale
        self.scratch_lab.clear();
        self.scratch_lab.resize(n, 0);
        let img = s.image.data();
        for y in 0..h {
            let sy = y - dy;
            if sy < 0 || sy >= h {
                continue;
            }
            for x in 0..w {
                let sx = x - dx;
                if sx >= 0 && sx < w {
                    self.scratch_img[(y * w + x) as usize] = img[(sy * w + sx) as usize];
                    self.scratch_lab[(y * w + x) as usize] = s.labels[(sy * w + sx) as usize];
                }
            }
        }
        s.image.data_mut().copy_from_slice(&self.scratch_img);
        s.labels.copy_from_slice(&self.scratch_lab);
    }

    fn elastic_in_place<R: Rng>(&mut self, s: &mut Sample, alpha: f32, grid: usize, rng: &mut R) {
        assert!(grid >= 2, "elastic grid spacing must be >= 2 px");
        assert!(alpha >= 0.0, "elastic amplitude must be non-negative");
        let shape = s.image.shape();
        let (h, w) = (shape.h, shape.w);
        let n = h * w;
        // Coarse node lattice covering [0, w) x [0, h) with one extra node
        // past each border so every pixel has four surrounding nodes.
        let gw = (w - 1) / grid + 2;
        let gh = (h - 1) / grid + 2;
        self.node_dx.clear();
        self.node_dy.clear();
        for _ in 0..gw * gh {
            self.node_dx.push(rng.gen_range(-alpha..=alpha));
            self.node_dy.push(rng.gen_range(-alpha..=alpha));
        }
        self.scratch_img.clear();
        self.scratch_img.resize(n, -1.0);
        self.scratch_lab.clear();
        self.scratch_lab.resize(n, 0);
        let img = s.image.data();
        for y in 0..h {
            let gy = y as f32 / grid as f32;
            let iy = gy as usize; // floor (gy >= 0)
            let fy = gy - iy as f32;
            for x in 0..w {
                let gx = x as f32 / grid as f32;
                let ix = gx as usize;
                let fx = gx - ix as f32;
                let node = |f: &[f32]| {
                    let a = f[iy * gw + ix];
                    let b = f[iy * gw + ix + 1];
                    let c = f[(iy + 1) * gw + ix];
                    let d = f[(iy + 1) * gw + ix + 1];
                    a * (1.0 - fx) * (1.0 - fy)
                        + b * fx * (1.0 - fy)
                        + c * (1.0 - fx) * fy
                        + d * fx * fy
                };
                let sx = x as f32 + node(&self.node_dx);
                let sy = y as f32 + node(&self.node_dy);
                let i = y * w + x;
                // Labels: nearest neighbour, background outside.
                let (rx, ry) = (sx.round(), sy.round());
                if rx >= 0.0 && ry >= 0.0 && (rx as usize) < w && (ry as usize) < h {
                    self.scratch_lab[i] = s.labels[ry as usize * w + rx as usize];
                }
                // Image: bilinear, air outside.
                if sx >= 0.0 && sy >= 0.0 && sx <= (w - 1) as f32 && sy <= (h - 1) as f32 {
                    let (x0, y0) = (sx as usize, sy as usize);
                    let (x1, y1) = ((x0 + 1).min(w - 1), (y0 + 1).min(h - 1));
                    let (tx, ty) = (sx - x0 as f32, sy - y0 as f32);
                    let v = img[y0 * w + x0] * (1.0 - tx) * (1.0 - ty)
                        + img[y0 * w + x1] * tx * (1.0 - ty)
                        + img[y1 * w + x0] * (1.0 - tx) * ty
                        + img[y1 * w + x1] * tx * ty;
                    self.scratch_img[i] = v;
                }
            }
        }
        s.image.data_mut().copy_from_slice(&self.scratch_img);
        s.labels.copy_from_slice(&self.scratch_lab);
    }
}

/// Horizontal flip without allocating: swaps columns of both the image and
/// the label map.
pub fn flip_horizontal_in_place(s: &mut Sample) {
    let shape = s.image.shape();
    let (h, w) = (shape.h, shape.w);
    let img = s.image.data_mut();
    for y in 0..h {
        let row = y * w;
        for x in 0..w / 2 {
            img.swap(row + x, row + w - 1 - x);
            s.labels.swap(row + x, row + w - 1 - x);
        }
    }
}

/// Expands a dataset with `factor - 1` augmented copies per sample.
pub fn augment_dataset<R: Rng>(
    samples: &[Sample],
    cfg: &AugmentConfig,
    factor: usize,
    rng: &mut R,
) -> Vec<Sample> {
    assert!(factor >= 1);
    let mut out = Vec::with_capacity(samples.len() * factor);
    out.extend(samples.iter().cloned());
    for _ in 1..factor {
        out.extend(samples.iter().map(|s| augment(s, cfg, rng)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seneca_tensor::Shape4;

    fn sample() -> Sample {
        let mut image = Tensor::zeros(Shape4::new(1, 1, 4, 4));
        let mut labels = vec![0u8; 16];
        *image.at_mut(0, 0, 1, 0) = 0.8;
        labels[4] = 3;
        Sample { image, labels }
    }

    #[test]
    fn flip_is_involutive() {
        let s = sample();
        let once = flip_horizontal(&s);
        assert_eq!(once.image.at(0, 0, 1, 3), 0.8);
        assert_eq!(once.labels[4 + 3], 3);
        let twice = flip_horizontal(&once);
        assert_eq!(twice.image, s.image);
        assert_eq!(twice.labels, s.labels);
    }

    #[test]
    fn translate_moves_content_and_pads_with_air() {
        let s = sample();
        let t = translate(&s, 2, 1);
        assert_eq!(t.image.at(0, 0, 2, 2), 0.8);
        assert_eq!(t.labels[2 * 4 + 2], 3);
        // Vacated corner is air / background.
        assert_eq!(t.image.at(0, 0, 0, 0), -1.0);
        assert_eq!(t.labels[0], 0);
    }

    #[test]
    fn labels_follow_geometry_not_intensity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg =
            AugmentConfig { flip_prob: 0.0, max_shift: 0, elastic_prob: 0.0, ..Default::default() };
        let s = sample();
        let a = augment(&s, &cfg, &mut rng);
        // No geometric change: labels identical even though intensities moved.
        assert_eq!(a.labels, s.labels);
        assert_ne!(a.image, s.image);
    }

    #[test]
    fn augmented_values_stay_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let s = sample();
        for _ in 0..20 {
            let a = augment(&s, &AugmentConfig::default(), &mut rng);
            assert!(a.image.data().iter().all(|v| (-1.0..=1.0).contains(v)));
            assert!(a.labels.iter().all(|&l| l <= 6));
        }
    }

    #[test]
    fn in_place_flip_matches_the_copying_flip() {
        let s = sample();
        let copied = flip_horizontal(&s);
        let mut inplace = s.clone();
        flip_horizontal_in_place(&mut inplace);
        assert_eq!(inplace.image, copied.image);
        assert_eq!(inplace.labels, copied.labels);
    }

    #[test]
    fn elastic_is_deterministic_and_identity_at_zero_amplitude() {
        let mut img = Tensor::zeros(Shape4::new(1, 1, 16, 16));
        let mut labels = vec![0u8; 256];
        for y in 0..16 {
            for x in 0..16 {
                *img.at_mut(0, 0, y, x) = (x as f32 - 8.0) / 8.0;
                labels[y * 16 + x] = ((x > 4 && x < 12 && y > 4 && y < 12) as u8) * 3;
            }
        }
        let s = Sample { image: img, labels };
        let mut r1 = rand::rngs::StdRng::seed_from_u64(11);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(11);
        let a = elastic_deform(&s, 2.0, 4, &mut r1);
        let b = elastic_deform(&s, 2.0, 4, &mut r2);
        assert_eq!(a.image, b.image);
        assert_eq!(a.labels, b.labels);
        // Zero amplitude: exact identity (bilinear weights collapse).
        let mut r3 = rand::rngs::StdRng::seed_from_u64(12);
        let id = elastic_deform(&s, 0.0, 4, &mut r3);
        assert_eq!(id.labels, s.labels);
        for (a, b) in id.image.data().iter().zip(s.image.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn augmenter_reuses_scratch_and_matches_the_wrapper() {
        let cfg = AugmentConfig::default();
        let mut aug = Augmenter::new(cfg);
        for seed in 0..4 {
            let s = sample();
            let mut r1 = rand::rngs::StdRng::seed_from_u64(seed);
            let mut r2 = rand::rngs::StdRng::seed_from_u64(seed);
            let via_fn = augment(&s, &cfg, &mut r1);
            let mut via_engine = s.clone();
            aug.apply(&mut via_engine, &mut r2);
            assert_eq!(via_fn.image, via_engine.image, "seed {seed}");
            assert_eq!(via_fn.labels, via_engine.labels, "seed {seed}");
        }
    }

    #[test]
    fn dataset_expansion_factor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let samples = vec![sample(), sample(), sample()];
        let out = augment_dataset(&samples, &AugmentConfig::default(), 3, &mut rng);
        assert_eq!(out.len(), 9);
        // Originals come first, untouched.
        assert_eq!(out[0].image, samples[0].image);
    }
}
