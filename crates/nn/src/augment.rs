//! Training-time data augmentation for 2-D CT slices.
//!
//! Standard geometric/intensity augmentations for medical segmentation:
//! horizontal flips (anatomically plausible for the near-symmetric trunk),
//! small translations, intensity scale/shift jitter and Gaussian noise.
//! Labels follow geometric transforms exactly; intensity transforms leave
//! them untouched.

use crate::train::Sample;
use rand::Rng;
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Augmentation policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Probability of a horizontal (left-right) flip.
    pub flip_prob: f64,
    /// Maximum |shift| in pixels along each axis (zero-padded).
    pub max_shift: usize,
    /// Intensity scale jitter: factor drawn from `1 ± scale_jitter`.
    pub scale_jitter: f32,
    /// Intensity shift jitter: offset drawn from `± shift_jitter`.
    pub shift_jitter: f32,
    /// Additive Gaussian noise sigma (post-normalisation units).
    pub noise_sigma: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            flip_prob: 0.5,
            max_shift: 4,
            scale_jitter: 0.05,
            shift_jitter: 0.05,
            noise_sigma: 0.02,
        }
    }
}

/// Horizontal flip of image and labels.
pub fn flip_horizontal(s: &Sample) -> Sample {
    let shape = s.image.shape();
    let (h, w) = (shape.h, shape.w);
    let mut image = Tensor::zeros(shape);
    let mut labels = vec![0u8; h * w];
    for y in 0..h {
        for x in 0..w {
            *image.at_mut(0, 0, y, x) = s.image.at(0, 0, y, w - 1 - x);
            labels[y * w + x] = s.labels[y * w + (w - 1 - x)];
        }
    }
    Sample { image, labels }
}

/// Integer translation with zero padding (air background) for the image and
/// background label for the label map.
pub fn translate(s: &Sample, dx: isize, dy: isize) -> Sample {
    let shape = s.image.shape();
    let (h, w) = (shape.h as isize, shape.w as isize);
    let mut image = Tensor::full(shape, -1.0); // air after [-1,1] rescale
    let mut labels = vec![0u8; (h * w) as usize];
    for y in 0..h {
        for x in 0..w {
            let (sx, sy) = (x - dx, y - dy);
            if sx >= 0 && sx < w && sy >= 0 && sy < h {
                *image.at_mut(0, 0, y as usize, x as usize) =
                    s.image.at(0, 0, sy as usize, sx as usize);
                labels[(y * w + x) as usize] = s.labels[(sy * w + sx) as usize];
            }
        }
    }
    Sample { image, labels }
}

/// Applies the policy to one sample.
pub fn augment<R: Rng>(s: &Sample, cfg: &AugmentConfig, rng: &mut R) -> Sample {
    let mut out = s.clone();
    if rng.gen_bool(cfg.flip_prob) {
        out = flip_horizontal(&out);
    }
    if cfg.max_shift > 0 {
        let m = cfg.max_shift as isize;
        let (dx, dy) = (rng.gen_range(-m..=m), rng.gen_range(-m..=m));
        if dx != 0 || dy != 0 {
            out = translate(&out, dx, dy);
        }
    }
    let scale = 1.0 + rng.gen_range(-cfg.scale_jitter..=cfg.scale_jitter);
    let shift = rng.gen_range(-cfg.shift_jitter..=cfg.shift_jitter);
    for v in out.image.data_mut() {
        let mut x = *v * scale + shift;
        if cfg.noise_sigma > 0.0 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            x += cfg.noise_sigma * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        }
        *v = x.clamp(-1.0, 1.0);
    }
    out
}

/// Expands a dataset with `factor - 1` augmented copies per sample.
pub fn augment_dataset<R: Rng>(
    samples: &[Sample],
    cfg: &AugmentConfig,
    factor: usize,
    rng: &mut R,
) -> Vec<Sample> {
    assert!(factor >= 1);
    let mut out = Vec::with_capacity(samples.len() * factor);
    out.extend(samples.iter().cloned());
    for _ in 1..factor {
        out.extend(samples.iter().map(|s| augment(s, cfg, rng)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seneca_tensor::Shape4;

    fn sample() -> Sample {
        let mut image = Tensor::zeros(Shape4::new(1, 1, 4, 4));
        let mut labels = vec![0u8; 16];
        *image.at_mut(0, 0, 1, 0) = 0.8;
        labels[4] = 3;
        Sample { image, labels }
    }

    #[test]
    fn flip_is_involutive() {
        let s = sample();
        let once = flip_horizontal(&s);
        assert_eq!(once.image.at(0, 0, 1, 3), 0.8);
        assert_eq!(once.labels[4 + 3], 3);
        let twice = flip_horizontal(&once);
        assert_eq!(twice.image, s.image);
        assert_eq!(twice.labels, s.labels);
    }

    #[test]
    fn translate_moves_content_and_pads_with_air() {
        let s = sample();
        let t = translate(&s, 2, 1);
        assert_eq!(t.image.at(0, 0, 2, 2), 0.8);
        assert_eq!(t.labels[2 * 4 + 2], 3);
        // Vacated corner is air / background.
        assert_eq!(t.image.at(0, 0, 0, 0), -1.0);
        assert_eq!(t.labels[0], 0);
    }

    #[test]
    fn labels_follow_geometry_not_intensity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = AugmentConfig { flip_prob: 0.0, max_shift: 0, ..Default::default() };
        let s = sample();
        let a = augment(&s, &cfg, &mut rng);
        // No geometric change: labels identical even though intensities moved.
        assert_eq!(a.labels, s.labels);
        assert_ne!(a.image, s.image);
    }

    #[test]
    fn augmented_values_stay_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let s = sample();
        for _ in 0..20 {
            let a = augment(&s, &AugmentConfig::default(), &mut rng);
            assert!(a.image.data().iter().all(|v| (-1.0..=1.0).contains(v)));
            assert!(a.labels.iter().all(|&l| l <= 6));
        }
    }

    #[test]
    fn dataset_expansion_factor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let samples = vec![sample(), sample(), sample()];
        let out = augment_dataset(&samples, &AugmentConfig::default(), 3, &mut rng);
        assert_eq!(out.len(), 9);
        // Originals come first, untouched.
        assert_eq!(out[0].image, samples[0].image);
    }
}
