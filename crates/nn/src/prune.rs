//! Magnitude-based channel pruning.
//!
//! The paper lists pruning as future work ("we will evaluate some pruning
//! techniques to additionally improve throughput and energy efficiency").
//! This module implements the standard L1-magnitude structured-pruning
//! baseline on the exported [`Graph`]: channels whose filters have the
//! smallest L1 norms are zeroed. Zeroed channels keep the tensor shapes
//! (so the DPU compiler output stays valid) but the performance model can
//! skip the zero work, which is how sparsity translates into FPS on the DPU.

use crate::graph::{Graph, Op};

/// Per-graph pruning summary.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneReport {
    /// Number of conv output channels zeroed.
    pub channels_pruned: usize,
    /// Total conv output channels considered.
    pub channels_total: usize,
    /// Fraction of conv weights that are now exactly zero.
    pub weight_sparsity: f64,
}

/// Zeroes the `ratio` fraction of lowest-L1 output channels in every conv
/// node (head conv excluded — its 6 maps are the classes). Returns a report.
pub fn prune_channels(graph: &mut Graph, ratio: f64) -> PruneReport {
    assert!((0.0..1.0).contains(&ratio), "ratio must be in [0,1)");
    let mut pruned = 0usize;
    let mut total = 0usize;
    let mut zeros = 0usize;
    let mut weights = 0usize;

    // Identify the last conv before softmax (the head) to skip it.
    let head_conv = graph
        .nodes
        .iter()
        .enumerate()
        .rev()
        .find(|(_, n)| matches!(n.op, Op::Conv { .. }))
        .map(|(i, _)| i);

    for (i, node) in graph.nodes.iter_mut().enumerate() {
        if Some(i) == head_conv {
            continue;
        }
        if let Op::Conv { w, b, .. } = &mut node.op {
            let s = w.shape();
            let per_out = s.c * s.h * s.w;
            total += s.n;
            let mut norms: Vec<(usize, f32)> = (0..s.n)
                .map(|co| {
                    let l1: f32 =
                        w.data()[co * per_out..(co + 1) * per_out].iter().map(|v| v.abs()).sum();
                    (co, l1)
                })
                .collect();
            norms.sort_by(|a, b| a.1.total_cmp(&b.1));
            let k = (s.n as f64 * ratio).floor() as usize;
            for &(co, _) in norms.iter().take(k) {
                w.data_mut()[co * per_out..(co + 1) * per_out].fill(0.0);
                if !b.is_empty() {
                    b[co] = 0.0;
                }
                pruned += 1;
            }
        }
    }
    for node in &graph.nodes {
        if let Op::Conv { w, .. } = &node.op {
            weights += w.data().len();
            zeros += w.data().iter().filter(|v| **v == 0.0).count();
        }
    }
    PruneReport {
        channels_pruned: pruned,
        channels_total: total,
        weight_sparsity: zeros as f64 / weights.max(1) as f64,
    }
}

/// Effective (non-zero-channel) MAC count per node after pruning; the DPU
/// performance model uses this to credit pruning with cycle savings.
pub fn effective_macs(graph: &Graph, input: seneca_tensor::Shape4) -> Vec<u64> {
    let shapes = graph.shapes(input);
    graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| match &node.op {
            Op::Conv { w, .. } => {
                let s = w.shape();
                let per_out = s.c * s.h * s.w;
                let live = (0..s.n)
                    .filter(|&co| {
                        w.data()[co * per_out..(co + 1) * per_out].iter().any(|v| *v != 0.0)
                    })
                    .count() as u64;
                shapes[i].hw() as u64 * live * per_out as u64
            }
            Op::TConv { w, .. } => shapes[node.inputs[0]].hw() as u64 * w.shape().len() as u64,
            _ => 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unet::{UNet, UNetConfig};
    use rand::SeedableRng;
    use seneca_tensor::{Shape4, Tensor};

    fn tiny_graph(seed: u64) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 1, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 };
        Graph::from_unet(&UNet::new(cfg, &mut rng), "tiny")
    }

    #[test]
    fn pruning_zeroes_expected_channel_count() {
        let mut g = tiny_graph(1);
        let report = prune_channels(&mut g, 0.5);
        assert!(report.channels_pruned > 0);
        assert!(report.channels_pruned <= report.channels_total / 2 + g.nodes.len());
        assert!(report.weight_sparsity > 0.2, "{report:?}");
    }

    #[test]
    fn zero_ratio_is_noop() {
        let mut g = tiny_graph(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Tensor::he_normal(Shape4::new(1, 1, 8, 8), &mut rng);
        let before = g.execute(&x);
        let report = prune_channels(&mut g, 0.0);
        assert_eq!(report.channels_pruned, 0);
        assert_eq!(g.execute(&x), before);
    }

    #[test]
    fn head_conv_is_never_pruned() {
        let mut g = tiny_graph(4);
        prune_channels(&mut g, 0.9);
        let head = g
            .nodes
            .iter()
            .rev()
            .find_map(|n| if let Op::Conv { w, .. } = &n.op { Some(w) } else { None })
            .unwrap();
        let s = head.shape();
        let per_out = s.c * s.h * s.w;
        for co in 0..s.n {
            assert!(
                head.data()[co * per_out..(co + 1) * per_out].iter().any(|v| *v != 0.0),
                "head channel {co} pruned"
            );
        }
    }

    #[test]
    fn effective_macs_drop_after_pruning() {
        let mut g = tiny_graph(5);
        let input = Shape4::new(1, 1, 16, 16);
        let before: u64 = effective_macs(&g, input).iter().sum();
        prune_channels(&mut g, 0.5);
        let after: u64 = effective_macs(&g, input).iter().sum();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn pruned_graph_still_executes() {
        let mut g = tiny_graph(6);
        prune_channels(&mut g, 0.25);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = Tensor::he_normal(Shape4::new(1, 1, 8, 8), &mut rng);
        let y = g.execute(&x);
        assert_eq!(y.shape(), Shape4::new(1, 6, 8, 8));
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
