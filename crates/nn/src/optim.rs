//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers visit parameters through [`crate::layer::ParamVisitor`]; each
//! parameter carries its own [`OptSlot`](crate::layer::OptSlot) scratch so no
//! global parameter registry is needed.

use crate::layer::OptSlot;
use crate::unet::UNet;

/// Common optimizer interface over a [`UNet`].
pub trait Optimizer {
    /// Applies one update step using the gradients accumulated in `net`.
    fn step(&mut self, net: &mut UNet);
    /// Current learning rate.
    fn lr(&self) -> f32;
    /// Overrides the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with momentum 0.9 and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.9, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut UNet) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        net.visit_params(&mut |value: &mut [f32], grad: &[f32], slot: &mut OptSlot| {
            if slot.m.len() != value.len() {
                slot.m = vec![0.0; value.len()];
            }
            for i in 0..value.len() {
                let g = grad[i] + wd * value[i];
                slot.m[i] = mu * slot.m[i] + g;
                value[i] -= lr * slot.m[i];
            }
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Adam {
    /// Standard defaults at the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut UNet) {
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        net.visit_params(&mut |value: &mut [f32], grad: &[f32], slot: &mut OptSlot| {
            if slot.m.len() != value.len() {
                slot.m = vec![0.0; value.len()];
                slot.v = vec![0.0; value.len()];
                slot.t = 0;
            }
            slot.t += 1;
            let bc1 = 1.0 - b1.powi(slot.t as i32);
            let bc2 = 1.0 - b2.powi(slot.t as i32);
            for i in 0..value.len() {
                let g = grad[i] + wd * value[i];
                slot.m[i] = b1 * slot.m[i] + (1.0 - b1) * g;
                slot.v[i] = b2 * slot.v[i] + (1.0 - b2) * g * g;
                let mhat = slot.m[i] / bc1;
                let vhat = slot.v[i] / bc2;
                value[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy_loss;
    use crate::unet::{UNet, UNetConfig};
    use rand::SeedableRng;
    use seneca_tensor::{Shape4, Tensor};

    fn tiny_setup(seed: u64) -> (UNet, Tensor, Vec<u8>, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg =
            UNetConfig { depth: 1, base_filters: 4, in_channels: 1, num_classes: 3, dropout: 0.0 };
        let net = UNet::new(cfg, &mut rng);
        let x = Tensor::he_normal(Shape4::new(2, 1, 8, 8), &mut rng);
        // Labels correlated with input sign so the task is learnable.
        let labels: Vec<u8> = (0..2 * 64)
            .map(|i| {
                let v = x.data()[i];
                if v > 0.3 {
                    2
                } else if v < -0.3 {
                    1
                } else {
                    0
                }
            })
            .collect();
        (net, x, labels, rng)
    }

    fn train_steps<O: Optimizer>(opt: &mut O, steps: usize, seed: u64) -> (f32, f32) {
        let (mut net, x, labels, mut rng) = tiny_setup(seed);
        let mut first = 0.0;
        let mut last = 0.0;
        for s in 0..steps {
            let (probs, cache) = net.forward(&x, &mut rng);
            let (loss, dprobs) = cross_entropy_loss(&probs, &labels);
            if s == 0 {
                first = loss;
            }
            last = loss;
            net.zero_grad();
            net.backward(&cache, &dprobs);
            opt.step(&mut net);
        }
        (first, last)
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt = Sgd::new(0.05);
        let (first, last) = train_steps(&mut opt, 30, 1);
        assert!(last < first * 0.9, "sgd: {first} -> {last}");
    }

    #[test]
    fn adam_reduces_loss() {
        let mut opt = Adam::new(1e-3);
        let (first, last) = train_steps(&mut opt, 30, 2);
        assert!(last < first * 0.9, "adam: {first} -> {last}");
    }

    #[test]
    fn lr_zero_is_a_no_op() {
        let (mut net, x, labels, mut rng) = tiny_setup(3);
        let before = net.infer(&x);
        let mut opt = Sgd { lr: 0.0, momentum: 0.9, weight_decay: 0.0 };
        let (probs, cache) = net.forward(&x, &mut rng);
        let (_, dprobs) = cross_entropy_loss(&probs, &labels);
        net.zero_grad();
        net.backward(&cache, &dprobs);
        opt.step(&mut net);
        // Weights unchanged => inference output unchanged except BN running
        // stats, which forward() updates; rebuild a fresh check on weights by
        // comparing a second zero-lr step instead.
        let after = net.infer(&x);
        // BN running stats moved, so allow small drift but no real update.
        let max_diff = before
            .data()
            .iter()
            .zip(after.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 0.2, "zero-lr step changed output too much: {max_diff}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut net, x, labels, mut rng) = tiny_setup(4);
        let norm_before: f32 = {
            let mut s = 0.0;
            net.zero_grad();
            // touch params via a dummy backward to expose them
            let (probs, cache) = net.forward(&x, &mut rng);
            let (_, dprobs) = cross_entropy_loss(&probs, &labels);
            net.backward(&cache, &dprobs);
            net.visit_params(&mut |v, _, _| s += v.iter().map(|x| x * x).sum::<f32>());
            s
        };
        let mut opt = Sgd { lr: 0.1, momentum: 0.0, weight_decay: 0.5 };
        // Zero the gradients' influence by re-running backward with dprobs=0.
        let (probs, cache) = net.forward(&x, &mut rng);
        net.zero_grad();
        net.backward(&cache, &Tensor::zeros(probs.shape()));
        opt.step(&mut net);
        let mut norm_after = 0.0;
        net.visit_params(&mut |v, _, _| norm_after += v.iter().map(|x| x * x).sum::<f32>());
        assert!(norm_after < norm_before, "{norm_after} !< {norm_before}");
    }
}
