//! Serving must be a scheduling layer, not a numerics layer: whatever the
//! arrival order, priorities, batch window, or replica count, every request
//! gets a prediction bit-identical to a direct `Backend::infer_batch` call
//! on the same frame.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use seneca_backend::{Backend, Fp32RefBackend, Logits, Prediction, ThroughputReport};
use seneca_serve::{AdmissionPolicy, Priority, ServeConfig, Server, Ticket};
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;
use std::time::Duration;

/// Pure deterministic toy backend: logits are an affine function of the
/// input, so any reordering or batch-splitting bug shows up as a bit
/// mismatch against the direct call.
#[derive(Clone)]
struct Affine;

impl Backend for Affine {
    fn name(&self) -> String {
        "affine".into()
    }

    fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction> {
        images
            .iter()
            .map(|img| {
                let data = img.data().iter().map(|v| v.mul_add(0.75, -0.25)).collect();
                Prediction::from_f32(Tensor::from_vec(img.shape(), data))
            })
            .collect()
    }

    fn throughput(&self, n_frames: usize, _seed: u64) -> ThroughputReport {
        ThroughputReport {
            fps: 0.0,
            watt: 0.0,
            frames: n_frames,
            threads: 1,
            busy_cores: 0.0,
            util: 0.0,
            makespan_s: 0.0,
            peak_arena_bytes: 0,
            total_activation_bytes: 0,
        }
    }
}

fn frames(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let shape = Shape4::new(1, 2, 3, 3);
    (0..n)
        .map(|_| {
            Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-2.0..2.0)).collect())
        })
        .collect()
}

fn assert_bit_identical(served: &Prediction, direct: &Prediction) {
    assert_eq!(served.labels, direct.labels, "labels must match the direct call");
    match (&served.logits, &direct.logits) {
        (Logits::F32(a), Logits::F32(b)) => {
            assert_eq!(a.shape(), b.shape());
            // Bit-exact, not approximately equal.
            let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "f32 logits must be bit-identical");
        }
        (Logits::I8(a), Logits::I8(b)) => assert_eq!(a.data(), b.data()),
        _ => panic!("served and direct predictions use different logit types"),
    }
}

/// Runs `imgs` through a server with the given shape knobs and checks every
/// response against the direct batch call.
fn check_serve_equivalence(
    backend: Arc<dyn Backend>,
    imgs: &[Tensor],
    replicas: usize,
    max_batch: usize,
    max_delay: Duration,
    seed: u64,
) {
    let direct = backend.infer_batch(imgs);
    let server = Server::start(
        backend,
        ServeConfig {
            replicas,
            max_batch,
            max_delay,
            queue_capacity: imgs.len().max(1),
            admission: AdmissionPolicy::Block,
        },
    );
    let h = server.handle();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tickets: Vec<Ticket> = imgs
        .iter()
        .map(|img| {
            let pr = if rng.gen_bool(0.5) { Priority::Interactive } else { Priority::Batch };
            h.submit(img.clone(), pr, None).expect("blocking admission never rejects")
        })
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let resp = t.wait();
        assert_eq!(resp.id, i as u64);
        let pred = resp.result.expect("no deadline, no rejection: must serve");
        assert_bit_identical(&pred, &direct[i]);
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, imgs.len() as u64);
    assert_eq!(stats.rejected + stats.shed_expired, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any request count, replica count, batch size, batch window, and
    /// priority mix, served predictions are bit-identical to the direct
    /// batch call on the same frames.
    #[test]
    fn serve_matches_direct_inference(
        n in 1usize..20,
        replicas in 1usize..4,
        max_batch in 1usize..6,
        delay_us in 0u64..3000,
        seed in 0u64..1000
    ) {
        check_serve_equivalence(
            Arc::new(Affine),
            &frames(n, seed),
            replicas,
            max_batch,
            Duration::from_micros(delay_us),
            seed ^ 0xA5A5,
        );
    }
}

/// The same property over a real session-backed backend (FP32 reference
/// executor on a randomly-initialised M1 UNet), exercising the
/// `InferenceSession::run_timed` path under the serving layer.
#[test]
fn serve_matches_direct_inference_fp32_ref() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let net = seneca_nn::unet::UNet::from_size(seneca_nn::unet::ModelSize::M1, &mut rng);
    let graph = seneca_nn::graph::Graph::from_unet(&net, "equiv-m1");
    let shape = Shape4::new(1, 1, 32, 32);
    let backend = Fp32RefBackend::new(graph, shape).with_threads(2);

    let imgs: Vec<Tensor> = (0..6)
        .map(|_| {
            Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-1.0..1.0)).collect())
        })
        .collect();
    check_serve_equivalence(Arc::new(backend), &imgs, 2, 3, Duration::from_millis(1), 0xF00D);
}
