//! Acceptance test for the serving layer's overload behaviour: at 2x the
//! measured saturation throughput with `RejectWhenFull` admission and
//! per-request deadlines, the service must stay up, keep interactive p99
//! under the deadline, and report explicit rejections/sheds.

use seneca_serve::{
    run_load, AdmissionPolicy, ArrivalProcess, LoadSpec, ServeConfig, Server, SyntheticBackend,
};
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;
use std::time::Duration;

fn frame() -> Tensor {
    let shape = Shape4::new(1, 1, 4, 4);
    Tensor::from_vec(shape, (0..shape.len()).map(|i| i as f32 * 0.1).collect())
}

#[test]
fn overload_sheds_but_keeps_interactive_slo() {
    // Deterministic service time: 2 replicas x 4 ms/frame => ~500 fps
    // capacity, independent of host speed.
    let backend = Arc::new(SyntheticBackend::new(Duration::from_millis(4)));
    let config = ServeConfig {
        replicas: 2,
        max_batch: 4,
        max_delay: Duration::from_millis(2),
        queue_capacity: 8,
        admission: AdmissionPolicy::RejectWhenFull,
    };

    // Measure saturation closed-loop.
    let server = Server::start(backend.clone(), config.clone());
    let sat =
        run_load(&server.handle(), &frame(), &LoadSpec::closed(120, 2 * config.replicas, 0xBEEF));
    let sat_fps = server.shutdown().served_fps;
    assert!(sat_fps > 100.0, "synthetic dual replica must exceed 100 fps, got {sat_fps}");
    assert_eq!(sat.ok, 120, "closed loop with blocking admission serves everything");

    // Open-loop Poisson at 2x saturation with a 100 ms deadline.
    let deadline = Duration::from_millis(100);
    let server = Server::start(backend, config);
    let spec = LoadSpec {
        requests: 200,
        interactive_fraction: 0.5,
        deadline: Some(deadline),
        arrival: ArrivalProcess::OpenLoop { rate_fps: 2.0 * sat_fps, poisson: true },
        seed: 0xCAFE,
    };
    let rep = run_load(&server.handle(), &frame(), &spec);
    let stats = server.shutdown();

    // Every ticket resolved: the service stayed up through the overload.
    assert_eq!(rep.ok + rep.errored, 200, "all requests must resolve");
    assert!(stats.served > 0, "must keep serving under overload");
    // Excess load turns into explicit rejections/sheds, not a hidden backlog.
    assert!(
        stats.rejected + stats.shed_expired > 0,
        "2x offered load must reject or shed: {stats:?}"
    );
    assert_eq!(stats.rejected + stats.shed_expired + stats.served, stats.submitted);
    // Interactive latency stays under the deadline: the bounded queue caps
    // the worst-case wait at (queue + in-flight) / service-rate, far below
    // 100 ms for this configuration.
    let p99 = stats.total_interactive.p99_us;
    assert!(
        p99 < deadline.as_micros() as u64,
        "interactive p99 {p99}us must stay under the {deadline:?} deadline: {stats:?}"
    );
    assert!(stats.total_interactive.count > 0, "some interactive traffic must be served");
}
