//! Serving-layer demo: saturate a synthetic dual-core backend, then push it
//! into overload with admission control and deadlines engaged.
//!
//! ```text
//! cargo run --release -p seneca-serve --example serve_demo          # full demo
//! cargo run --release -p seneca-serve --example serve_demo -- smoke # CI smoke
//! ```

use seneca_backend::Backend;
use seneca_serve::{run_load, AdmissionPolicy, LoadSpec, ServeConfig, Server, SyntheticBackend};
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;
use std::time::Duration;

fn frame() -> Tensor {
    let shape = Shape4::new(1, 3, 8, 8);
    let data = (0..shape.len()).map(|i| ((i * 37) % 255) as f32 / 127.0 - 1.0).collect();
    Tensor::from_vec(shape, data)
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    // Per-frame service time and request counts scale down in smoke mode so
    // the demo finishes in well under a second on CI.
    let per_frame = Duration::from_millis(if smoke { 1 } else { 4 });
    let n_sat = if smoke { 60 } else { 400 };
    let n_over = if smoke { 80 } else { 400 };
    let backend = Arc::new(SyntheticBackend::new(per_frame));
    let config = ServeConfig {
        replicas: 2,
        max_batch: 4,
        max_delay: Duration::from_millis(2),
        queue_capacity: 8,
        admission: AdmissionPolicy::Block,
    };

    // Phase 1 — closed-loop saturation: enough always-busy clients that the
    // measured served-FPS is the service capacity.
    println!("== phase 1: closed-loop saturation ==");
    let server = Server::start(backend.clone(), config.clone());
    let rep = run_load(&server.handle(), &frame(), &LoadSpec::closed(n_sat, 8, 42));
    let sat_fps = rep.stats.served_fps;
    let stats = server.shutdown();
    println!(
        "backend {} | saturation {:.0} fps | mean batch {:.2} | p50/p99 total {:.1}/{:.1} ms",
        backend.name(),
        sat_fps,
        stats.mean_batch,
        stats.total_interactive.p50_us as f64 / 1000.0,
        stats.total_interactive.p99_us as f64 / 1000.0,
    );

    // Phase 2 — open-loop overload at 2x saturation, with rejection instead
    // of unbounded queueing and a deadline on every request.
    println!("\n== phase 2: open-loop overload at 2x saturation ==");
    let deadline = Duration::from_millis(if smoke { 60 } else { 120 });
    let server = Server::start(
        backend.clone(),
        ServeConfig { admission: AdmissionPolicy::RejectWhenFull, ..config },
    );
    let spec = LoadSpec {
        deadline: Some(deadline),
        interactive_fraction: 0.5,
        ..LoadSpec::open(n_over, 2.0 * sat_fps, 43)
    };
    let rep = run_load(&server.handle(), &frame(), &spec);
    let stats = server.shutdown();
    println!(
        "offered {:.0} fps | served {:.0} fps | ok {} | rejected {} | shed {} | miss rate {:.1}%",
        rep.offered_fps,
        stats.served_fps,
        rep.ok,
        stats.rejected,
        stats.shed_expired,
        100.0 * stats.miss_rate(),
    );
    println!(
        "interactive p50/p95/p99 {:.1}/{:.1}/{:.1} ms (deadline {} ms) | batch p99 {:.1} ms",
        stats.total_interactive.p50_us as f64 / 1000.0,
        stats.total_interactive.p95_us as f64 / 1000.0,
        stats.total_interactive.p99_us as f64 / 1000.0,
        deadline.as_millis(),
        stats.total_batch.p99_us as f64 / 1000.0,
    );
    assert!(stats.served > 0, "overloaded server must keep serving");
    assert!(stats.rejected + stats.shed_expired > 0, "2x overload must shed load");
}
