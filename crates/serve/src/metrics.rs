//! Server-wide latency and outcome accounting.

use crate::histogram::{LatencyHistogram, LatencySummary};
use crate::request::{Priority, Timing};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Live counters and histograms, shared by the submit path and the
/// replicas. Everything is atomic: recording never takes a lock.
pub struct ServeMetrics {
    created: Instant,
    submitted: AtomicU64,
    served: AtomicU64,
    served_interactive: AtomicU64,
    served_batch: AtomicU64,
    rejected: AtomicU64,
    shed_expired: AtomicU64,
    shed_interactive: AtomicU64,
    shed_batch: AtomicU64,
    deadline_misses: AtomicU64,
    batches: AtomicU64,
    batched_frames: AtomicU64,
    /// ns offsets from `created`; `u64::MAX` = "no submission yet".
    first_submit_ns: AtomicU64,
    last_done_ns: AtomicU64,
    queue_hist: LatencyHistogram,
    exec_hist: LatencyHistogram,
    interactive_hist: LatencyHistogram,
    batch_hist: LatencyHistogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics anchored at "now".
    pub fn new() -> Self {
        Self {
            created: Instant::now(),
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            served_interactive: AtomicU64::new(0),
            served_batch: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            shed_interactive: AtomicU64::new(0),
            shed_batch: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_frames: AtomicU64::new(0),
            first_submit_ns: AtomicU64::new(u64::MAX),
            last_done_ns: AtomicU64::new(0),
            queue_hist: LatencyHistogram::new(),
            exec_hist: LatencyHistogram::new(),
            interactive_hist: LatencyHistogram::new(),
            batch_hist: LatencyHistogram::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.created.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records a submission attempt (admitted or not).
    pub(crate) fn note_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.first_submit_ns.fetch_min(self.now_ns(), Ordering::Relaxed);
    }

    /// Records an admission rejection (queue full).
    pub(crate) fn note_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a shed request (deadline expired at admission, in queue, or
    /// at dispatch), attributed to its priority class.
    pub(crate) fn note_shed(&self, priority: Priority) {
        self.shed_expired.fetch_add(1, Ordering::Relaxed);
        match priority {
            Priority::Interactive => self.shed_interactive.fetch_add(1, Ordering::Relaxed),
            Priority::Batch => self.shed_batch.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records one dispatched micro-batch of `frames` frames.
    pub(crate) fn note_batch(&self, frames: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_frames.fetch_add(frames as u64, Ordering::Relaxed);
    }

    /// Records a served request with its latency breakdown.
    pub(crate) fn note_served(&self, priority: Priority, timing: &Timing, missed_deadline: bool) {
        self.served.fetch_add(1, Ordering::Relaxed);
        if missed_deadline {
            self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.queue_hist.record(timing.queue);
        self.exec_hist.record(timing.execute);
        match priority {
            Priority::Interactive => {
                self.served_interactive.fetch_add(1, Ordering::Relaxed);
                self.interactive_hist.record(timing.total);
            }
            Priority::Batch => {
                self.served_batch.fetch_add(1, Ordering::Relaxed);
                self.batch_hist.record(timing.total);
            }
        }
        self.last_done_ns.fetch_max(self.now_ns(), Ordering::Relaxed);
    }

    /// Point-in-time snapshot of every counter and histogram.
    pub fn snapshot(&self) -> ServeStats {
        let served = self.served.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let first = self.first_submit_ns.load(Ordering::Relaxed);
        let last = self.last_done_ns.load(Ordering::Relaxed);
        let wall_s =
            if first == u64::MAX || last <= first { 0.0 } else { (last - first) as f64 * 1e-9 };
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            served,
            served_interactive: self.served_interactive.load(Ordering::Relaxed),
            served_batch: self.served_batch.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            shed_interactive: self.shed_interactive.load(Ordering::Relaxed),
            shed_batch: self.shed_batch.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                self.batched_frames.load(Ordering::Relaxed) as f64 / batches as f64
            },
            served_fps: if wall_s > 0.0 { served as f64 / wall_s } else { 0.0 },
            serving_wall_s: wall_s,
            queue: self.queue_hist.summary(),
            execute: self.exec_hist.summary(),
            total_interactive: self.interactive_hist.summary(),
            total_batch: self.batch_hist.summary(),
        }
    }
}

/// Serializable snapshot of a server's lifetime statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Submission attempts (admitted + rejected).
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub served: u64,
    /// Served `Interactive`-class requests (fleet isolation assertions
    /// need the per-priority split; `served` stays the aggregate).
    pub served_interactive: u64,
    /// Served `Batch`-class requests.
    pub served_batch: u64,
    /// Requests turned away at admission (queue full).
    pub rejected: u64,
    /// Requests dropped because their deadline expired before execution.
    pub shed_expired: u64,
    /// Sheds that hit `Interactive`-class requests.
    pub shed_interactive: u64,
    /// Sheds that hit `Batch`-class requests.
    pub shed_batch: u64,
    /// Served requests whose response arrived after their deadline.
    pub deadline_misses: u64,
    /// Micro-batches dispatched to replicas.
    pub batches: u64,
    /// Mean frames per dispatched micro-batch.
    pub mean_batch: f64,
    /// Served requests per second of serving wall-clock.
    pub served_fps: f64,
    /// First submission → last completion (s).
    pub serving_wall_s: f64,
    /// Queue-wait latency of served requests.
    pub queue: LatencySummary,
    /// Per-frame execution latency of served requests.
    pub execute: LatencySummary,
    /// End-to-end latency of served `Interactive` requests.
    pub total_interactive: LatencySummary,
    /// End-to-end latency of served `Batch` requests.
    pub total_batch: LatencySummary,
}

impl ServeStats {
    /// Deadline-miss rate over served requests (0 when nothing served).
    pub fn miss_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.served as f64
        }
    }

    /// Fraction of submissions not served (rejected or shed).
    pub fn loss_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.rejected + self.shed_expired) as f64 / self.submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn snapshot_aggregates_counters() {
        let m = ServeMetrics::new();
        m.note_submit();
        m.note_submit();
        m.note_submit();
        m.note_reject();
        m.note_shed(Priority::Batch);
        m.note_batch(1);
        m.note_batch(3);
        let t = Timing {
            queue: Duration::from_millis(2),
            execute: Duration::from_millis(5),
            total: Duration::from_millis(7),
        };
        m.note_served(Priority::Interactive, &t, false);
        m.note_served(Priority::Batch, &t, true);
        let s = m.snapshot();
        assert_eq!((s.submitted, s.served, s.rejected, s.shed_expired), (3, 2, 1, 1));
        assert_eq!((s.served_interactive, s.served_batch), (1, 1));
        assert_eq!((s.shed_interactive, s.shed_batch), (0, 1));
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch - 2.0).abs() < 1e-12);
        assert_eq!(s.total_interactive.count, 1);
        assert_eq!(s.total_batch.count, 1);
        assert_eq!(s.queue.count, 2);
        assert!(s.miss_rate() > 0.49 && s.miss_rate() < 0.51);
        assert!((s.loss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_serialize_to_json() {
        let s = ServeMetrics::new().snapshot();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"served_fps\""));
        assert!(json.contains("\"total_interactive\""));
        assert!(json.contains("\"served_interactive\""));
        assert!(json.contains("\"shed_batch\""));
    }
}
