//! The request/response vocabulary of the serving layer.

use seneca_backend::Prediction;
use seneca_tensor::Tensor;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Monotonically increasing per-server request identifier.
pub type RequestId = u64;

/// Scheduling class of a request. The scheduler always drains
/// `Interactive` work before `Batch` work (strict priority), so bulk
/// re-processing jobs cannot push surgery-stream frames past their SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive (deadline-bearing) traffic.
    Interactive,
    /// Throughput traffic; may wait arbitrarily long under load.
    Batch,
}

impl Priority {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control turned the request away (intake queue full).
    QueueFull,
    /// The request's deadline expired before a replica executed it.
    DeadlineExpired,
    /// The server is shutting down (or a response channel was dropped).
    ShuttingDown,
    /// The backend panicked while executing this request's batch.
    BackendFailed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ServeError::QueueFull => "intake queue full",
            ServeError::DeadlineExpired => "deadline expired before execution",
            ServeError::ShuttingDown => "server shutting down",
            ServeError::BackendFailed => "backend panicked during execution",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ServeError {}

/// Per-request latency accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timing {
    /// Submission → dispatch to a replica.
    pub queue: Duration,
    /// Execution share of this frame inside its micro-batch.
    pub execute: Duration,
    /// Submission → response.
    pub total: Duration,
}

/// One served (or failed) request.
#[derive(Debug)]
pub struct ServeResponse {
    /// The request this responds to.
    pub id: RequestId,
    /// The request's scheduling class.
    pub priority: Priority,
    /// The prediction, or why there is none.
    pub result: Result<Prediction, ServeError>,
    /// Latency breakdown (zeroed for requests that never dispatched).
    pub timing: Timing,
}

/// An in-flight request as stored in the intake queue.
pub(crate) struct ServeRequest {
    pub id: RequestId,
    pub priority: Priority,
    pub submitted_at: Instant,
    /// Absolute deadline; requests past it are shed instead of executed.
    pub deadline: Option<Instant>,
    pub image: Tensor,
    pub resp: mpsc::Sender<ServeResponse>,
}

impl ServeRequest {
    /// True once the deadline has passed.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }

    /// Resolves the request with an error response.
    pub fn fail(self, err: ServeError) {
        let timing = Timing { queue: self.submitted_at.elapsed(), ..Default::default() };
        let _ = self.resp.send(ServeResponse {
            id: self.id,
            priority: self.priority,
            result: Err(err),
            timing,
        });
    }
}

/// Claim on a submitted request; resolves to its [`ServeResponse`].
#[derive(Debug)]
pub struct Ticket {
    /// The id assigned at submission.
    pub id: RequestId,
    pub(crate) priority: Priority,
    pub(crate) rx: mpsc::Receiver<ServeResponse>,
}

impl Ticket {
    /// Blocks until the response arrives. A dropped server resolves to
    /// [`ServeError::ShuttingDown`] instead of hanging.
    pub fn wait(self) -> ServeResponse {
        self.rx.recv().unwrap_or(ServeResponse {
            id: self.id,
            priority: self.priority,
            result: Err(ServeError::ShuttingDown),
            timing: Timing::default(),
        })
    }
}
