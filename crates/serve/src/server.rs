//! The server: a replica pool pulling micro-batches from the intake queue.
//!
//! Each replica is one worker thread that owns its slot on the accelerator
//! (modelling the ZCU104's two DPU cores) and repeatedly: collects a
//! micro-batch from the [`IntakeQueue`], runs it through
//! [`Backend::infer_batch_timed`], and resolves every request's ticket with
//! a [`ServeResponse`] carrying queue/execute/total timings. A backend
//! panic fails the affected batch, not the server.

use crate::metrics::{ServeMetrics, ServeStats};
use crate::queue::{AdmissionPolicy, IntakeQueue};
use crate::request::{
    Priority, RequestId, ServeError, ServeRequest, ServeResponse, Ticket, Timing,
};
use seneca_backend::{Backend, Prediction};
use seneca_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Replica workers (the ZCU104 runs two DPU cores).
    pub replicas: usize,
    /// Largest micro-batch dispatched to one replica.
    pub max_batch: usize,
    /// How long a replica waits for the batch to fill after the first
    /// request arrives (the dynamic batching window).
    pub max_delay: Duration,
    /// Intake queue capacity (bounds memory and queueing delay).
    pub queue_capacity: usize,
    /// What to do with submissions when the queue is full.
    pub admission: AdmissionPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            queue_capacity: 16,
            admission: AdmissionPolicy::Block,
        }
    }
}

struct Shared {
    queue: IntakeQueue,
    metrics: ServeMetrics,
    next_id: AtomicU64,
}

/// A cloneable submission handle onto a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Submits one frame. Returns a [`Ticket`] resolving to the response,
    /// or the admission error if the request was turned away (in which
    /// case no ticket exists and nothing was enqueued).
    pub fn submit(
        &self,
        image: Tensor,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        self.shared.metrics.note_submit();
        let (tx, rx) = mpsc::channel();
        let req = ServeRequest {
            id,
            priority,
            submitted_at: now,
            deadline: deadline.map(|d| now + d),
            image,
            resp: tx,
        };
        match self.shared.queue.push(req, &self.shared.metrics) {
            Ok(()) => Ok(Ticket { id, priority, rx }),
            Err(e) => {
                if e == ServeError::QueueFull {
                    self.shared.metrics.note_reject();
                }
                Err(e)
            }
        }
    }

    /// Submit + block until the prediction (or failure) comes back.
    pub fn submit_wait(
        &self,
        image: Tensor,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Prediction, ServeError> {
        self.submit(image, priority, deadline)?.wait().result
    }

    /// Live statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.metrics.snapshot()
    }
}

/// A running serving instance; dropping it shuts the replicas down after
/// draining the queue.
pub struct Server {
    shared: Arc<Shared>,
    replicas: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts `config.replicas` worker threads over a shared backend.
    pub fn start(backend: Arc<dyn Backend>, config: ServeConfig) -> Self {
        assert!(config.replicas >= 1, "need at least one replica");
        assert!(config.max_batch >= 1, "micro-batches hold at least one frame");
        let shared = Arc::new(Shared {
            queue: IntakeQueue::new(config.queue_capacity, config.admission),
            metrics: ServeMetrics::new(),
            next_id: AtomicU64::new(0),
        });
        let replicas = (0..config.replicas)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let backend = Arc::clone(&backend);
                let max_batch = config.max_batch;
                let max_delay = config.max_delay;
                std::thread::Builder::new()
                    .name(format!("serve-replica-{i}"))
                    .spawn(move || replica_loop(&shared, backend.as_ref(), max_batch, max_delay))
                    .expect("spawn replica thread")
            })
            .collect();
        Self { shared, replicas }
    }

    /// A new submission handle (cheap to clone, safe to share).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { shared: Arc::clone(&self.shared) }
    }

    /// Live statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: stop admissions, drain the queue, join the
    /// replicas, and return the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.shared.metrics.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for r in self.replicas.drain(..) {
            let _ = r.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One replica: pull micro-batches until the queue closes.
fn replica_loop(shared: &Shared, backend: &dyn Backend, max_batch: usize, max_delay: Duration) {
    loop {
        // Batch formation covers idle wait for the first request plus the
        // dynamic batching window; recorded only for batches that formed
        // (the final `None` is shutdown, not formation time).
        let t0 = seneca_trace::now_ns();
        let Some(batch) = shared.queue.pop_batch(max_batch, max_delay, &shared.metrics) else {
            break;
        };
        seneca_trace::record_ns(
            "serve",
            "batch_form",
            seneca_trace::now_ns().saturating_sub(t0),
            batch.len() as u64,
        );
        run_batch(shared, backend, batch);
    }
}

/// Executes one micro-batch and resolves every ticket in it.
fn run_batch(shared: &Shared, backend: &dyn Backend, batch: Vec<ServeRequest>) {
    struct Meta {
        id: RequestId,
        priority: Priority,
        submitted_at: Instant,
        deadline: Option<Instant>,
        resp: mpsc::Sender<ServeResponse>,
    }
    let dispatch_sp = seneca_trace::span("serve", "dispatch");
    let mut metas = Vec::with_capacity(batch.len());
    let mut images = Vec::with_capacity(batch.len());
    for r in batch {
        let ServeRequest { id, priority, submitted_at, deadline, image, resp } = r;
        metas.push(Meta { id, priority, submitted_at, deadline, resp });
        images.push(image);
    }
    drop(dispatch_sp);

    let exec_start = Instant::now();
    for m in &metas {
        // Queue wait crosses threads (submission → this replica), so it is
        // recorded as a measured duration rather than a span.
        let waited = exec_start.saturating_duration_since(m.submitted_at);
        seneca_trace::record_ns(
            "serve",
            "queue_wait",
            u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX),
            0,
        );
    }
    let exec_sp = seneca_trace::span_bytes("serve", "replica_exec", images.len() as u64);
    // A panicking backend must not take the replica (and with it the whole
    // pool) down: fail the batch, keep serving.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        backend.infer_batch_timed(&images)
    }));
    drop(exec_sp);
    let (preds, timing) = match outcome {
        Ok(out) => out,
        Err(_) => {
            for m in metas {
                let timing = Timing {
                    queue: exec_start.saturating_duration_since(m.submitted_at),
                    execute: exec_start.elapsed(),
                    total: m.submitted_at.elapsed(),
                };
                let _ = m.resp.send(ServeResponse {
                    id: m.id,
                    priority: m.priority,
                    result: Err(ServeError::BackendFailed),
                    timing,
                });
            }
            return;
        }
    };

    shared.metrics.note_batch(metas.len());
    for (i, (m, pred)) in metas.into_iter().zip(preds).enumerate() {
        let done = Instant::now();
        let t = Timing {
            queue: exec_start.saturating_duration_since(m.submitted_at),
            execute: timing.per_frame.get(i).copied().unwrap_or(timing.wall),
            total: done.saturating_duration_since(m.submitted_at),
        };
        let missed = m.deadline.is_some_and(|d| done > d);
        shared.metrics.note_served(m.priority, &t, missed);
        let _ = m.resp.send(ServeResponse {
            id: m.id,
            priority: m.priority,
            result: Ok(pred),
            timing: t,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seneca_backend::ThroughputReport;
    use seneca_tensor::Shape4;

    /// Pure toy backend: logits echo the input scaled by 2.
    #[derive(Clone)]
    struct Double;
    impl Backend for Double {
        fn name(&self) -> String {
            "double".into()
        }
        fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction> {
            images
                .iter()
                .map(|img| {
                    let data = img.data().iter().map(|v| v * 2.0).collect();
                    Prediction::from_f32(Tensor::from_vec(img.shape(), data))
                })
                .collect()
        }
        fn throughput(&self, n_frames: usize, _seed: u64) -> ThroughputReport {
            ThroughputReport {
                fps: 0.0,
                watt: 0.0,
                frames: n_frames,
                threads: 1,
                busy_cores: 0.0,
                util: 0.0,
                makespan_s: 0.0,
                peak_arena_bytes: 0,
                total_activation_bytes: 0,
            }
        }
    }

    /// Backend that panics on any frame whose first pixel is negative.
    #[derive(Clone)]
    struct Grumpy;
    impl Backend for Grumpy {
        fn name(&self) -> String {
            "grumpy".into()
        }
        fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction> {
            assert!(images.iter().all(|i| i.data()[0] >= 0.0), "negative frame");
            Double.infer_batch(images)
        }
        fn throughput(&self, n_frames: usize, seed: u64) -> ThroughputReport {
            Double.throughput(n_frames, seed)
        }
    }

    fn frame(v: f32) -> Tensor {
        Tensor::from_vec(Shape4::new(1, 2, 1, 1), vec![v, -v])
    }

    #[test]
    fn serves_predictions_with_timings() {
        let server = Server::start(Arc::new(Double), ServeConfig::default());
        let h = server.handle();
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| h.submit(frame(i as f32), Priority::Interactive, None).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait();
            assert_eq!(resp.id, i as u64);
            let pred = resp.result.expect("served");
            assert_eq!(pred.as_f32().unwrap().data()[0], 2.0 * i as f32);
            assert!(resp.timing.total >= resp.timing.queue);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 10);
        assert_eq!(stats.rejected + stats.shed_expired, 0);
        assert!(stats.batches >= 1 && stats.mean_batch >= 1.0);
    }

    #[test]
    fn backend_panic_fails_batch_not_server() {
        let server = Server::start(
            Arc::new(Grumpy),
            ServeConfig { max_batch: 1, max_delay: Duration::ZERO, ..Default::default() },
        );
        let h = server.handle();
        let bad = h.submit(frame(-1.0), Priority::Interactive, None).unwrap();
        assert_eq!(bad.wait().result.unwrap_err(), ServeError::BackendFailed);
        // The pool survived the panic and keeps serving.
        let good = h.submit_wait(frame(1.0), Priority::Interactive, None).unwrap();
        assert_eq!(good.as_f32().unwrap().data()[0], 2.0);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        // One slow-ish replica, several queued frames, immediate shutdown:
        // every ticket must still resolve with a prediction.
        let server = Server::start(
            Arc::new(Double),
            ServeConfig { replicas: 1, queue_capacity: 32, ..Default::default() },
        );
        let h = server.handle();
        let tickets: Vec<Ticket> =
            (0..16).map(|i| h.submit(frame(i as f32), Priority::Batch, None).unwrap()).collect();
        let stats = server.shutdown();
        assert_eq!(stats.served, 16);
        for t in tickets {
            assert!(t.wait().result.is_ok());
        }
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let server = Server::start(Arc::new(Double), ServeConfig::default());
        let h = server.handle();
        server.shutdown();
        let err = h.submit(frame(0.0), Priority::Interactive, None).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }
}
