//! The admission-controlled intake queue.
//!
//! A bounded, priority-segregated queue between the submit path and the
//! replica pool. Admission policy decides what happens when the queue is
//! full, so overload degrades into bounded memory + explicit rejections
//! instead of an unbounded backlog. Replicas pull *micro-batches*: after
//! the first request is available, a replica keeps collecting until it has
//! `max_batch` frames or `max_delay` has elapsed — the classic dynamic
//! batching window. Requests whose deadline has already expired are shed at
//! dispatch (and, under [`AdmissionPolicy::ShedExpired`], at admission)
//! rather than executed.

use crate::metrics::ServeMetrics;
use crate::request::{ServeError, ServeRequest};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What `submit` does when the intake queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitter until a slot frees up (backpressure).
    Block,
    /// Fail fast with [`ServeError::QueueFull`].
    RejectWhenFull,
    /// First drop queued requests whose deadline already expired, then
    /// reject only if the queue is still full.
    ShedExpired,
}

struct Inner {
    interactive: VecDeque<ServeRequest>,
    batch: VecDeque<ServeRequest>,
    closed: bool,
}

impl Inner {
    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    /// Strict priority: interactive work always dequeues first.
    fn pop(&mut self) -> Option<ServeRequest> {
        self.interactive.pop_front().or_else(|| self.batch.pop_front())
    }

    /// Drops expired requests from one deque, failing each one.
    fn shed_deque(d: &mut VecDeque<ServeRequest>, now: Instant, metrics: &ServeMetrics) -> usize {
        let mut dropped = 0;
        let mut i = 0;
        while i < d.len() {
            if d[i].expired(now) {
                let req = d.remove(i).expect("index checked");
                metrics.note_shed(req.priority);
                req.fail(ServeError::DeadlineExpired);
                dropped += 1;
            } else {
                i += 1;
            }
        }
        dropped
    }

    /// Sheds every expired queued request; batch-class work goes first so
    /// interactive requests survive the purge longest.
    fn shed_expired(&mut self, now: Instant, metrics: &ServeMetrics) -> usize {
        Self::shed_deque(&mut self.batch, now, metrics)
            + Self::shed_deque(&mut self.interactive, now, metrics)
    }
}

/// The bounded intake queue.
pub(crate) struct IntakeQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: AdmissionPolicy,
}

impl IntakeQueue {
    pub fn new(capacity: usize, policy: AdmissionPolicy) -> Self {
        assert!(capacity >= 1, "intake queue needs at least one slot");
        Self {
            inner: Mutex::new(Inner {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            policy,
        }
    }

    /// Admits one request or explains why not. On `Err` the request is
    /// dropped here; the caller reports the error to the submitter
    /// directly, so no response is sent through the ticket channel.
    pub fn push(&self, req: ServeRequest, metrics: &ServeMetrics) -> Result<(), ServeError> {
        // Under the shedding policy, a request whose deadline has already
        // passed is shed *at admission* — enqueueing it would only spend a
        // slot on work guaranteed to be dropped at dispatch.
        if self.policy == AdmissionPolicy::ShedExpired && req.expired(Instant::now()) {
            metrics.note_shed(req.priority);
            return Err(ServeError::DeadlineExpired);
        }
        let mut g = self.inner.lock().expect("intake queue lock");
        if g.len() == self.capacity {
            match self.policy {
                AdmissionPolicy::Block => {
                    while g.len() == self.capacity && !g.closed {
                        g = self.not_full.wait(g).expect("intake queue lock");
                    }
                }
                AdmissionPolicy::RejectWhenFull => return Err(ServeError::QueueFull),
                AdmissionPolicy::ShedExpired => {
                    if g.shed_expired(Instant::now(), metrics) == 0 {
                        return Err(ServeError::QueueFull);
                    }
                }
            }
        }
        if g.closed {
            return Err(ServeError::ShuttingDown);
        }
        match req.priority {
            crate::request::Priority::Interactive => g.interactive.push_back(req),
            crate::request::Priority::Batch => g.batch.push_back(req),
        }
        self.not_empty.notify_one();
        Ok(())
    }

    /// Collects the next micro-batch: blocks for the first request, then
    /// keeps collecting until `max_batch` frames are in hand or `max_delay`
    /// has elapsed. Expired requests are shed, not returned. `None` means
    /// the queue is closed and fully drained — the replica should exit.
    pub fn pop_batch(
        &self,
        max_batch: usize,
        max_delay: Duration,
        metrics: &ServeMetrics,
    ) -> Option<Vec<ServeRequest>> {
        let mut g = self.inner.lock().expect("intake queue lock");
        loop {
            while g.len() == 0 {
                if g.closed {
                    return None;
                }
                g = self.not_empty.wait(g).expect("intake queue lock");
            }
            let mut out = Vec::with_capacity(max_batch);
            let window_end = Instant::now() + max_delay;
            loop {
                while out.len() < max_batch {
                    match g.pop() {
                        Some(r) if r.expired(Instant::now()) => {
                            metrics.note_shed(r.priority);
                            r.fail(ServeError::DeadlineExpired);
                        }
                        Some(r) => out.push(r),
                        None => break,
                    }
                }
                let now = Instant::now();
                if out.len() >= max_batch || now >= window_end || g.closed {
                    break;
                }
                let (g2, _) =
                    self.not_empty.wait_timeout(g, window_end - now).expect("intake queue lock");
                g = g2;
            }
            self.not_full.notify_all();
            if !out.is_empty() {
                return Some(out);
            }
            // Everything queued had expired; wait for fresh work.
        }
    }

    /// Closes the queue: no new admissions, replicas drain what remains.
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("intake queue lock");
        g.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Priority, ServeResponse, Ticket};
    use seneca_tensor::{Shape4, Tensor};
    use std::sync::mpsc;
    use std::time::Duration;

    fn req(
        id: u64,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> (ServeRequest, mpsc::Receiver<ServeResponse>) {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let r = ServeRequest {
            id,
            priority,
            submitted_at: now,
            deadline: deadline.map(|d| now + d),
            image: Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![id as f32]),
            resp: tx,
        };
        (r, rx)
    }

    fn metrics() -> ServeMetrics {
        ServeMetrics::new()
    }

    #[test]
    fn interactive_dequeues_before_batch() {
        let q = IntakeQueue::new(8, AdmissionPolicy::RejectWhenFull);
        let m = metrics();
        let (b, _rb) = req(0, Priority::Batch, None);
        let (i, _ri) = req(1, Priority::Interactive, None);
        q.push(b, &m).unwrap();
        q.push(i, &m).unwrap();
        let batch = q.pop_batch(2, Duration::ZERO, &m).unwrap();
        assert_eq!(batch[0].id, 1, "interactive first");
        assert_eq!(batch[1].id, 0);
    }

    #[test]
    fn reject_when_full_fails_fast() {
        let q = IntakeQueue::new(1, AdmissionPolicy::RejectWhenFull);
        let m = metrics();
        let (a, _ra) = req(0, Priority::Interactive, None);
        let (b, _rb) = req(1, Priority::Interactive, None);
        q.push(a, &m).unwrap();
        assert_eq!(q.push(b, &m).unwrap_err(), ServeError::QueueFull);
    }

    #[test]
    fn shed_expired_makes_room_and_fails_the_victim() {
        let q = IntakeQueue::new(1, AdmissionPolicy::ShedExpired);
        let m = metrics();
        // Valid at admission, expired by the time the queue is full.
        let (a, ra) = req(0, Priority::Batch, Some(Duration::from_millis(1)));
        q.push(a, &m).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let (b, _rb) = req(1, Priority::Interactive, None);
        q.push(b, &m).unwrap();
        let resp = Ticket { id: 0, priority: Priority::Batch, rx: ra }.wait();
        assert_eq!(resp.result.unwrap_err(), ServeError::DeadlineExpired);
        assert_eq!(m.snapshot().shed_expired, 1);
        // The fresh request survived and is dispatchable.
        let batch = q.pop_batch(4, Duration::ZERO, &m).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 1);
    }

    #[test]
    fn expired_at_admission_is_shed_not_enqueued() {
        let q = IntakeQueue::new(8, AdmissionPolicy::ShedExpired);
        let m = metrics();
        let (a, _ra) = req(0, Priority::Interactive, Some(Duration::ZERO)); // born expired
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(q.push(a, &m).unwrap_err(), ServeError::DeadlineExpired);
        let s = m.snapshot();
        assert_eq!(s.shed_expired, 1, "must count as shed, not rejected");
        assert_eq!(s.shed_interactive, 1);
        assert_eq!(s.rejected, 0);
        // Nothing was enqueued: fresh work is dispatched alone.
        let (b, _rb) = req(1, Priority::Interactive, None);
        q.push(b, &m).unwrap();
        let batch = q.pop_batch(4, Duration::ZERO, &m).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 1);
    }

    #[test]
    fn expired_requests_are_shed_at_dispatch() {
        let q = IntakeQueue::new(8, AdmissionPolicy::Block);
        let m = metrics();
        let (a, ra) = req(0, Priority::Interactive, Some(Duration::ZERO));
        let (b, _rb) = req(1, Priority::Interactive, None);
        q.push(a, &m).unwrap();
        q.push(b, &m).unwrap();
        std::thread::sleep(Duration::from_millis(1));
        let batch = q.pop_batch(4, Duration::ZERO, &m).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 1);
        let resp = ra.recv().unwrap();
        assert_eq!(resp.result.unwrap_err(), ServeError::DeadlineExpired);
    }

    #[test]
    fn batch_window_waits_for_more_work() {
        let q = std::sync::Arc::new(IntakeQueue::new(8, AdmissionPolicy::Block));
        let m = std::sync::Arc::new(metrics());
        let (a, _ra) = req(0, Priority::Batch, None);
        q.push(a, &m).unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let m2 = std::sync::Arc::clone(&m);
        let feeder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let (b, _rb) = req(1, Priority::Batch, None);
            q2.push(b, &m2).unwrap();
        });
        // A 100 ms window comfortably covers the 5 ms late arrival.
        let batch = q.pop_batch(2, Duration::from_millis(100), &m).unwrap();
        assert_eq!(batch.len(), 2, "window must coalesce the late arrival");
        feeder.join().unwrap();
    }

    #[test]
    fn closed_and_drained_returns_none() {
        let q = IntakeQueue::new(2, AdmissionPolicy::Block);
        let m = metrics();
        let (a, _ra) = req(0, Priority::Batch, None);
        q.push(a, &m).unwrap();
        q.close();
        // Drains the backlog first, then signals exit.
        assert_eq!(q.pop_batch(4, Duration::ZERO, &m).unwrap().len(), 1);
        assert!(q.pop_batch(4, Duration::ZERO, &m).is_none());
        let (b, _rb) = req(1, Priority::Batch, None);
        assert_eq!(q.push(b, &m).unwrap_err(), ServeError::ShuttingDown);
    }
}
