//! HDR-style fixed-bucket latency histogram.
//!
//! Values are recorded in microseconds into a fixed array of buckets: the
//! first [`SUB`] buckets are exact (one per microsecond), and every octave
//! above that is split into [`SUB`] geometric sub-buckets, giving a bounded
//! relative error of `1/SUB` (12.5%) across the full `u64` range. Recording
//! is lock-free (one atomic increment), so replicas and the scheduler can
//! share one histogram without contention on the serving hot path.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per octave (and the width of the exact linear prefix).
const SUB: u64 = 8;
/// Total buckets: linear prefix + `SUB` per octave for msb 3..=63.
const BUCKETS: usize = (SUB + (64 - SUB.trailing_zeros() as u64) * SUB) as usize;

/// Bucket index for a value in microseconds.
fn bucket_of(us: u64) -> usize {
    if us < SUB {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros() as u64; // >= 3 because us >= SUB
    let mantissa = us >> (msb - 3); // in [SUB, 2*SUB)
    (SUB + (msb - 3) * SUB + (mantissa - SUB)) as usize
}

/// Inclusive upper edge (µs) of a bucket — what quantiles report.
fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let octave = (idx - SUB) / SUB;
    let mantissa = SUB + (idx - SUB) % SUB;
    // The topmost buckets' edges exceed u64; compute wide and saturate.
    let edge = (u128::from(mantissa) + 1) << octave;
    u64::try_from(edge - 1).unwrap_or(u64::MAX)
}

/// A concurrent fixed-bucket latency histogram (µs resolution).
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.counts[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) in µs: the upper edge of the bucket
    /// holding the target sample, so the reported value never understates
    /// the true quantile by more than the bucket precision (12.5%).
    pub fn percentile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(idx).min(self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Point-in-time summary (p50/p95/p99, mean, max, count).
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        LatencySummary {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
            },
            p50_us: self.percentile_us(0.50),
            p95_us: self.percentile_us(0.95),
            p99_us: self.percentile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Plain snapshot of a [`LatencyHistogram`] for reports and JSON artifacts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Recorded samples.
    pub count: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median (µs, bucket upper edge).
    pub p50_us: u64,
    /// 95th percentile (µs).
    pub p95_us: u64,
    /// 99th percentile (µs).
    pub p99_us: u64,
    /// Largest recorded sample (µs, exact).
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_bounded() {
        let mut prev = 0usize;
        for us in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 1_000_000, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(us);
            assert!(b < BUCKETS, "bucket {b} out of range for {us}");
            assert!(b >= prev, "buckets must be monotone in the value");
            prev = b;
            // The bucket's upper edge never undershoots the value by more
            // than the 12.5% precision bound.
            let upper = bucket_upper(b);
            assert!(upper >= us || b == BUCKETS - 1, "{us} -> [{b}] upper {upper}");
        }
    }

    #[test]
    fn exact_below_linear_prefix() {
        for us in 0..8u64 {
            assert_eq!(bucket_upper(bucket_of(us)), us);
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile_us(0.50) as f64 / 1000.0;
        let p99 = h.percentile_us(0.99) as f64 / 1000.0;
        // Bucket precision is 12.5%; the ramp medians must land near 50/99 ms.
        assert!((45.0..=60.0).contains(&p50), "p50 {p50}");
        assert!((90.0..=112.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.summary().max_us, 100_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!((s.count, s.p50_us, s.p99_us, s.max_us), (0, 0, 0, 0));
        assert_eq!(s.mean_us, 0.0);
    }
}
