//! # seneca-serve
//!
//! Online inference serving on top of the [`Backend`] trait — the
//! request-level counterpart of the paper's stage E deployment. Where the
//! offline path answers "how many frames per second can the device do?",
//! this crate answers the production question: "what latency does each
//! *request* see, and what happens when more arrive than the device can
//! absorb?"
//!
//! The pipeline, front to back:
//!
//! * [`ServeHandle::submit`] — per-request IDs, [`Priority`] classes, and
//!   optional relative deadlines;
//! * the intake queue — bounded and priority-segregated, with a
//!   configurable [`AdmissionPolicy`] (block / reject-when-full /
//!   shed-expired-first), so overload degrades into explicit rejections
//!   instead of an unbounded backlog;
//! * dynamic **micro-batching**: an idle replica collects up to
//!   [`ServeConfig::max_batch`] frames, waiting at most
//!   [`ServeConfig::max_delay`] after the first — the VART-style
//!   asynchronous job window over the ZCU104's two DPU cores;
//! * a **replica pool** ([`ServeConfig::replicas`] worker threads) running
//!   [`Backend::infer_batch_timed`], with per-request queue/execute/total
//!   timings rolled into lock-free [`LatencyHistogram`]s (p50/p95/p99);
//! * a seeded load generator ([`run_load`]) with closed- and open-loop
//!   arrival processes for saturation measurements and overload
//!   experiments.
//!
//! [`Backend`]: seneca_backend::Backend
//! [`Backend::infer_batch_timed`]: seneca_backend::Backend::infer_batch_timed

mod histogram;
mod loadgen;
mod metrics;
mod queue;
mod request;
mod server;
mod synthetic;

pub use histogram::{LatencyHistogram, LatencySummary};
pub use loadgen::{run_load, ArrivalProcess, LoadReport, LoadSpec};
pub use metrics::{ServeMetrics, ServeStats};
pub use queue::AdmissionPolicy;
pub use request::{Priority, RequestId, ServeError, ServeResponse, Ticket, Timing};
pub use server::{ServeConfig, ServeHandle, Server};
pub use synthetic::SyntheticBackend;
