//! A deterministic constant-cost backend for serving tests and demos.

use seneca_backend::{Backend, Prediction, ThroughputReport};
use seneca_tensor::Tensor;
use std::time::Duration;

/// A backend whose per-frame service time is a configurable constant and
/// whose output is a pure function of the input (`logits = 2·x + 1`), so
/// load tests are deterministic in both timing model and results. Batches
/// cost `n · per_frame` — the replica is occupied for the whole batch,
/// like a DPU core running frames back to back.
#[derive(Debug, Clone)]
pub struct SyntheticBackend {
    /// Service time per frame.
    pub per_frame: Duration,
}

impl SyntheticBackend {
    /// A backend taking `per_frame` per frame.
    pub fn new(per_frame: Duration) -> Self {
        Self { per_frame }
    }

    /// The deterministic transform applied to each frame.
    fn transform(img: &Tensor) -> Prediction {
        let data = img.data().iter().map(|v| v.mul_add(2.0, 1.0)).collect();
        Prediction::from_f32(Tensor::from_vec(img.shape(), data))
    }
}

impl Backend for SyntheticBackend {
    fn name(&self) -> String {
        format!("synthetic/{}us", self.per_frame.as_micros())
    }

    fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction> {
        if !images.is_empty() && !self.per_frame.is_zero() {
            std::thread::sleep(self.per_frame * images.len() as u32);
        }
        images.iter().map(Self::transform).collect()
    }

    fn throughput(&self, n_frames: usize, _seed: u64) -> ThroughputReport {
        let per_s = self.per_frame.as_secs_f64().max(1e-9);
        ThroughputReport {
            fps: 1.0 / per_s,
            watt: 0.0,
            frames: n_frames,
            threads: 1,
            busy_cores: 0.0,
            util: 0.0,
            makespan_s: per_s * n_frames as f64,
            peak_arena_bytes: 0,
            total_activation_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seneca_tensor::Shape4;

    #[test]
    fn output_is_pure_and_shaped_like_the_input() {
        let b = SyntheticBackend::new(Duration::ZERO);
        let img = Tensor::from_vec(Shape4::new(1, 3, 1, 2), vec![0.0, 1.0, -1.0, 2.0, 0.5, -0.5]);
        let out = b.infer_batch(std::slice::from_ref(&img));
        let logits = out[0].as_f32().unwrap();
        assert_eq!(logits.shape(), img.shape());
        assert_eq!(logits.data()[1], 3.0);
        // Same input, same bits.
        let again = b.infer_batch(std::slice::from_ref(&img));
        assert_eq!(again[0].labels, out[0].labels);
        assert_eq!(again[0].as_f32().unwrap().data(), logits.data());
    }

    #[test]
    fn batch_occupies_the_replica_serially() {
        let b = SyntheticBackend::new(Duration::from_millis(2));
        let imgs: Vec<Tensor> =
            (0..4).map(|i| Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![i as f32])).collect();
        let t0 = std::time::Instant::now();
        b.infer_batch(&imgs);
        assert!(t0.elapsed() >= Duration::from_millis(8));
    }
}
