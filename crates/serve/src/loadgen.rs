//! Synthetic load generation against a [`ServeHandle`].
//!
//! Two arrival disciplines, both seeded and deterministic in their draws:
//!
//! * **closed loop** — `clients` workers each keep exactly one request in
//!   flight (submit → wait → think). Offered load self-regulates to the
//!   service rate, so the measured served-FPS *is* the saturation
//!   throughput when `clients` exceeds the replica count and think is 0;
//! * **open loop** — requests arrive on a fixed schedule (uniform spacing
//!   or a Poisson process) regardless of completions, which is what a
//!   fleet of independent edge clients looks like. Offered load can exceed
//!   capacity, which is exactly how admission control gets exercised.

use crate::metrics::ServeStats;
use crate::request::{Priority, Ticket};
use crate::server::ServeHandle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seneca_tensor::Tensor;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How requests arrive.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// `clients` workers, one outstanding request each, `think` pause
    /// between a response and the next submission.
    ClosedLoop {
        /// Concurrent workers.
        clients: usize,
        /// Pause between response and next request.
        think: Duration,
    },
    /// Requests arrive at `rate_fps` regardless of completions.
    OpenLoop {
        /// Offered load in requests per second.
        rate_fps: f64,
        /// Exponential inter-arrivals (Poisson process) instead of uniform.
        poisson: bool,
    },
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Total requests to submit.
    pub requests: usize,
    /// Probability that a request is [`Priority::Interactive`].
    pub interactive_fraction: f64,
    /// Relative deadline attached to every request (`None` = no SLO).
    pub deadline: Option<Duration>,
    /// Arrival discipline.
    pub arrival: ArrivalProcess,
    /// Seed for priority draws and Poisson inter-arrivals.
    pub seed: u64,
}

impl LoadSpec {
    /// A full-throttle closed loop: `clients` workers, no think time.
    pub fn closed(requests: usize, clients: usize, seed: u64) -> Self {
        Self {
            requests,
            interactive_fraction: 1.0,
            deadline: None,
            arrival: ArrivalProcess::ClosedLoop { clients, think: Duration::ZERO },
            seed,
        }
    }

    /// An open loop at `rate_fps` with Poisson arrivals.
    pub fn open(requests: usize, rate_fps: f64, seed: u64) -> Self {
        Self {
            requests,
            interactive_fraction: 1.0,
            deadline: None,
            arrival: ArrivalProcess::OpenLoop { rate_fps, poisson: true },
            seed,
        }
    }
}

/// Outcome of a load run, from the clients' point of view, plus the
/// server-side statistics snapshot taken after the last response.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Offered load (requests / submission-schedule span).
    pub offered_fps: f64,
    /// First submission → last resolution (s).
    pub wall_s: f64,
    /// Requests answered with a prediction.
    pub ok: u64,
    /// Requests rejected, shed, or otherwise failed.
    pub errored: u64,
    /// Server statistics after the run.
    pub stats: ServeStats,
}

/// Drives one load run; every request submits a clone of `frame`.
pub fn run_load(handle: &ServeHandle, frame: &Tensor, spec: &LoadSpec) -> LoadReport {
    match spec.arrival {
        ArrivalProcess::ClosedLoop { clients, think } => {
            run_closed(handle, frame, spec, clients, think)
        }
        ArrivalProcess::OpenLoop { rate_fps, poisson } => {
            run_open(handle, frame, spec, rate_fps, poisson)
        }
    }
}

fn priority_for(rng: &mut StdRng, spec: &LoadSpec) -> Priority {
    if spec.interactive_fraction >= 1.0 || rng.gen_bool(spec.interactive_fraction.clamp(0.0, 1.0)) {
        Priority::Interactive
    } else {
        Priority::Batch
    }
}

fn run_closed(
    handle: &ServeHandle,
    frame: &Tensor,
    spec: &LoadSpec,
    clients: usize,
    think: Duration,
) -> LoadReport {
    let clients = clients.max(1);
    let remaining = AtomicI64::new(spec.requests as i64);
    let ok = AtomicU64::new(0);
    let errored = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let remaining = &remaining;
            let ok = &ok;
            let errored = &errored;
            let handle = handle.clone();
            scope.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(spec.seed ^ (c as u64).wrapping_mul(0x9E37_79B9));
                while remaining.fetch_sub(1, Ordering::Relaxed) > 0 {
                    let pr = priority_for(&mut rng, spec);
                    match handle.submit_wait(frame.clone(), pr, spec.deadline) {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => errored.fetch_add(1, Ordering::Relaxed),
                    };
                    if !think.is_zero() {
                        std::thread::sleep(think);
                    }
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let done = ok.load(Ordering::Relaxed) + errored.load(Ordering::Relaxed);
    LoadReport {
        // Closed loops offer exactly what completes.
        offered_fps: done as f64 / wall_s,
        wall_s,
        ok: ok.load(Ordering::Relaxed),
        errored: errored.load(Ordering::Relaxed),
        stats: handle.stats(),
    }
}

fn run_open(
    handle: &ServeHandle,
    frame: &Tensor,
    spec: &LoadSpec,
    rate_fps: f64,
    poisson: bool,
) -> LoadReport {
    assert!(rate_fps > 0.0, "open-loop rate must be positive");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let t0 = Instant::now();
    let mut next = t0;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(spec.requests);
    let mut errored = 0u64;
    for _ in 0..spec.requests {
        let now = Instant::now();
        // Absolute schedule: if we fall behind (sleep granularity, a Block
        // admission), later submissions burst to restore the average rate.
        if next > now {
            std::thread::sleep(next - now);
        }
        let pr = priority_for(&mut rng, spec);
        match handle.submit(frame.clone(), pr, spec.deadline) {
            Ok(t) => tickets.push(t),
            Err(_) => errored += 1,
        }
        let dt = if poisson {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -u.ln() / rate_fps
        } else {
            1.0 / rate_fps
        };
        next += Duration::from_secs_f64(dt);
    }
    let schedule_s = (next - t0).as_secs_f64().max(1e-9);
    let mut ok = 0u64;
    for t in tickets {
        match t.wait().result {
            Ok(_) => ok += 1,
            Err(_) => errored += 1,
        }
    }
    LoadReport {
        offered_fps: spec.requests as f64 / schedule_s,
        wall_s: t0.elapsed().as_secs_f64(),
        ok,
        errored,
        stats: handle.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::AdmissionPolicy;
    use crate::server::{ServeConfig, Server};
    use crate::synthetic::SyntheticBackend;
    use seneca_tensor::Shape4;
    use std::sync::Arc;

    fn tiny_frame() -> Tensor {
        Tensor::from_vec(Shape4::new(1, 2, 2, 2), (0..8).map(|i| i as f32).collect())
    }

    #[test]
    fn closed_loop_serves_every_request() {
        let server = Server::start(
            Arc::new(SyntheticBackend::new(Duration::from_micros(200))),
            ServeConfig::default(),
        );
        let spec = LoadSpec::closed(40, 4, 7);
        let rep = run_load(&server.handle(), &tiny_frame(), &spec);
        assert_eq!(rep.ok, 40);
        assert_eq!(rep.errored, 0);
        assert_eq!(rep.stats.served, 40);
        assert!(rep.offered_fps > 0.0);
        server.shutdown();
    }

    #[test]
    fn open_loop_overload_rejects_some() {
        let server = Server::start(
            Arc::new(SyntheticBackend::new(Duration::from_millis(5))),
            ServeConfig {
                replicas: 1,
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_capacity: 1,
                admission: AdmissionPolicy::RejectWhenFull,
            },
        );
        // Service rate ≈ 200/s; offer 2000/s.
        let spec = LoadSpec::open(60, 2000.0, 11);
        let rep = run_load(&server.handle(), &tiny_frame(), &spec);
        assert!(rep.errored > 0, "overload must reject: {rep:?}");
        assert!(rep.ok > 0, "some requests still get served");
        assert_eq!(rep.ok + rep.errored, 60);
        assert_eq!(rep.stats.rejected, rep.errored);
        server.shutdown();
    }
}
