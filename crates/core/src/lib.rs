//! # seneca
//!
//! The SENECA workflow façade — the paper's Figure 1 pipeline end to end:
//!
//! * **(A)** data preparation: synthetic CT-ORG cohort + preprocessing
//!   ([`workflow::Workflow::prepare_data`]);
//! * **(B, C)** model definition and weighted-Focal-Tversky training
//!   ([`workflow::Workflow::train_model`], cached by [`zoo`]);
//! * **(D)** INT8 post-training quantisation with a frequency-leveled
//!   calibration set ([`workflow::Workflow::quantize`]);
//! * **(E)** VAI_C-style compilation and VART-style deployment on the
//!   simulated dual-core DPUCZDX8G-B4096
//!   ([`workflow::Workflow::compile_and_deploy`]).
//!
//! [`eval`] hosts the accuracy/throughput drivers behind Tables IV–V and
//! Figures 3, 4 and 6; [`render`] writes the qualitative Figure 5 panels.
//!
//! ```no_run
//! use seneca::{SenecaConfig, Workflow};
//! use seneca_nn::ModelSize;
//!
//! let cfg = SenecaConfig::fast(); // laptop-scale; `SenecaConfig::paper()` for full runs
//! let wf = Workflow::new(cfg);
//! let data = wf.prepare_data();
//! let deployment = wf.deploy(ModelSize::M1, &data);
//! let report = deployment.dpu_runner.run_throughput(2000, 0);
//! println!("{:.1} FPS at {:.1} W", report.fps, report.watt);
//! ```

pub mod config;
pub mod eval;
pub mod render;
pub mod workflow;
pub mod zoo;

/// The unified inference backend abstraction (re-exported so downstream
/// code can write `seneca::backend::Backend`).
pub use seneca_backend as backend;

pub use config::SenecaConfig;
pub use workflow::{Deployment, PreparedData, Workflow};
