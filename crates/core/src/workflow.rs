//! The Figure 1 pipeline, stage by stage.

use crate::config::SenecaConfig;
use rand::SeedableRng;
use seneca_backend::{Backend, Fp32RefBackend, QuantRefBackend};
use seneca_data::calibration::{manual_calibration, PAPER_MANUAL_TARGET};
use seneca_data::dataset::{SplitKind, SyntheticCtOrg};
use seneca_data::pathology::PathologyConfig;
use seneca_data::preprocess::preprocess;
use seneca_data::scenario::Scenario;
use seneca_data::stats::{FrequencyAccumulator, OrganFrequencies};
use seneca_data::volume::Slice2d;
use seneca_dpu::arch::DpuArch;
use seneca_dpu::runtime::{DpuRunner, RuntimeConfig};
use seneca_gpu::{GpuModel, GpuRunner};
use seneca_nn::graph::Graph;
use seneca_nn::loss::FocalTverskyLoss;
use seneca_nn::optim::{Adam, Optimizer};
use seneca_nn::train::{train, Sample};
use seneca_nn::unet::{ModelSize, UNet};
use seneca_quant::{fuse, quantize_post_training, PtqConfig, QuantizedGraph};
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;

/// One test patient's prepared evaluation batch: preprocessed slice images
/// and their ground-truth label maps, in slice order. Images and labels are
/// stored as parallel vectors so evaluation can hand `&images` straight to
/// `Backend::infer_batch` — borrowing the prepared tensors instead of
/// copying the test set on every evaluation pass.
pub struct TestPatient {
    /// Patient id within the cohort.
    pub id: usize,
    /// Preprocessed slice images (one batch per patient).
    pub images: Vec<Tensor>,
    /// Ground-truth label maps, parallel to `images`.
    pub labels: Vec<Vec<u8>>,
}

/// Stage-A output: preprocessed slices ready for training and evaluation.
pub struct PreparedData {
    /// Training samples (preprocessed slices + labels).
    pub train: Vec<Sample>,
    /// Calibration images (unlabeled use; frequency-leveled per Table III).
    pub calibration: Vec<Tensor>,
    /// Test slices (preprocessed, labels kept for metrics), grouped by patient.
    pub test_by_patient: Vec<TestPatient>,
    /// Organ frequencies of the training slices (drives the loss weights).
    pub frequencies: OrganFrequencies,
    /// Inverse-frequency class weights (background weight prepended).
    pub class_weights: Vec<f32>,
}

/// Stage-E output: everything deployed, both targets.
pub struct Deployment {
    /// The trained FP32 network.
    pub unet: UNet,
    /// FP32 inference graph (the GPU baseline executes this).
    pub graph: Graph,
    /// Quantized graph (stage D output).
    pub qgraph: QuantizedGraph,
    /// VART-style runner over the compiled xmodel.
    pub dpu_runner: DpuRunner,
    /// GPU baseline runner.
    pub gpu_runner: GpuRunner,
}

impl Deployment {
    /// Every inference path of this deployment behind the unified
    /// [`Backend`] trait: FP32 reference, GPU baseline, bit-exact INT8
    /// reference, DPU runtime. Evaluation and benchmarking iterate this
    /// list instead of hard-coding runner pairs.
    pub fn backends(&self) -> Vec<Box<dyn Backend>> {
        let input_shape = self.gpu_runner.input_shape;
        vec![
            Box::new(Fp32RefBackend::new(self.graph.clone(), input_shape)),
            Box::new(self.gpu_runner.clone()),
            Box::new(QuantRefBackend::new(self.qgraph.clone(), input_shape)),
            Box::new(self.dpu_runner.clone()),
        ]
    }
}

/// The workflow driver.
pub struct Workflow {
    /// Configuration.
    pub config: SenecaConfig,
}

/// Converts a preprocessed slice into a training sample.
pub fn slice_to_sample(s: &Slice2d) -> Sample {
    Sample {
        image: Tensor::from_vec(Shape4::new(1, 1, s.height, s.width), s.pixels.clone()),
        labels: s.labels.clone(),
    }
}

impl Workflow {
    /// Creates a workflow.
    pub fn new(config: SenecaConfig) -> Self {
        Self { config }
    }

    /// The synthetic cohort handle.
    pub fn cohort(&self) -> SyntheticCtOrg {
        SyntheticCtOrg::new(self.config.cohort.clone())
    }

    /// Stage A: generate, slice, preprocess, split; build the calibration
    /// set with the Table III manual sampler and the loss class weights.
    pub fn prepare_data(&self) -> PreparedData {
        let ds = self.cohort();
        let factor = self.config.downsample_factor();

        let prep = |slices: Vec<Slice2d>| -> Vec<Slice2d> {
            slices.iter().map(|s| preprocess(s, factor)).collect()
        };

        let train_slices = prep(ds.slices(SplitKind::Train, self.config.train_stride));
        assert!(!train_slices.is_empty(), "training split produced no slices");

        // Frequencies + class weights from the training distribution
        // (5 target organs; background gets a small fixed weight).
        let mut acc = FrequencyAccumulator::new();
        for s in &train_slices {
            acc.add_slice(s);
        }
        let frequencies = acc.finish();
        let organ_w = FocalTverskyLoss::inverse_frequency_weights(&frequencies.pct[..5]);
        let mut class_weights = Vec::with_capacity(6);
        class_weights.push(0.05); // background: large, easy, down-weighted
        class_weights.extend_from_slice(&organ_w);

        // Table III: manual (frequency-leveled) calibration sampling.
        let cal = manual_calibration(
            &train_slices,
            self.config.calibration_images,
            PAPER_MANUAL_TARGET,
            self.config.seed ^ 0xCA11,
        );
        let calibration: Vec<Tensor> =
            cal.slices.iter().map(|s| slice_to_sample(s).image).collect();

        // Test slices grouped per patient (per-volume DSC for Fig. 6).
        let mut test_by_patient = Vec::new();
        for id in ds.patients(SplitKind::Test) {
            let vol = ds.volume(id);
            let mut images = Vec::new();
            let mut labels = Vec::new();
            for z in (0..vol.depth).step_by(self.config.test_stride) {
                let s = slice_to_sample(&preprocess(&vol.slice(z), factor));
                images.push(s.image);
                labels.push(s.labels);
            }
            test_by_patient.push(TestPatient { id, images, labels });
        }

        PreparedData {
            train: train_slices.iter().map(slice_to_sample).collect(),
            calibration,
            test_by_patient,
            frequencies,
            class_weights,
        }
    }

    /// Builds the test split under an acquisition [`Scenario`], optionally
    /// with seeded pathology — the robustness suite's per-scenario
    /// evaluation sets. Uses the same patients, strides and preprocessing
    /// as [`Self::prepare_data`], so `(Scenario::nominal(), None)`
    /// reproduces the prepared `test_by_patient` exactly; only the
    /// acquisition (and the injected lesions) differ otherwise. FP32 and
    /// every quantized deployment are evaluated on these same tensors, so
    /// the measured gap is attributable to quantization alone.
    pub fn scenario_test_patients(
        &self,
        scenario: &Scenario,
        pathology: Option<&PathologyConfig>,
    ) -> Vec<TestPatient> {
        let ds = self.cohort();
        let factor = self.config.downsample_factor();
        let mut patients = Vec::new();
        for id in ds.patients(SplitKind::Test) {
            let vol = ds.scenario_volume(id, scenario, pathology);
            let mut images = Vec::new();
            let mut labels = Vec::new();
            for z in (0..vol.depth).step_by(self.config.test_stride) {
                let s = slice_to_sample(&preprocess(&vol.slice(z), factor));
                images.push(s.image);
                labels.push(s.labels);
            }
            patients.push(TestPatient { id, images, labels });
        }
        patients
    }

    /// Stages B + C: build and train one Table II model.
    ///
    /// Two pragmatic adaptations of the paper's protocol for CPU-scale
    /// budgets (documented in DESIGN.md §6):
    ///
    /// * one cross-entropy **warm-up epoch** before the Focal Tversky
    ///   epochs — CE converges much faster from random initialisation on
    ///   heavily imbalanced data, and FTL then sharpens the rare organs;
    /// * **compute-normalised epochs**: `config.train.epochs` is the budget
    ///   for the 1M model; larger models get proportionally fewer epochs so
    ///   every configuration trains for roughly equal wall-clock.
    pub fn train_model(&self, size: ModelSize, data: &PreparedData) -> UNet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let mut net = UNet::from_size(size, &mut rng);
        let mut opt = Adam::new(self.config.learning_rate);

        // Compute-normalised epoch budget.
        let s = self.config.input_size;
        let macs_this = net.macs_per_frame(s, s) as f64;
        let macs_1m = UNet::from_size(ModelSize::M1, &mut rng).macs_per_frame(s, s) as f64;
        let epochs =
            ((self.config.train.epochs as f64 * macs_1m / macs_this).round() as usize).max(1);

        // Cross-entropy warm-up epoch.
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..data.train.len()).collect();
        order.shuffle(&mut rng);
        for chunk in order.chunks(self.config.train.batch_size) {
            let images: Vec<Tensor> = chunk.iter().map(|&i| data.train[i].image.clone()).collect();
            let batch = Tensor::stack_batch(&images);
            let mut labels = Vec::new();
            for &i in chunk {
                labels.extend_from_slice(&data.train[i].labels);
            }
            let (probs, cache) = net.forward(&batch, &mut rng);
            let (_, dprobs) = seneca_nn::loss::cross_entropy_loss(&probs, &labels);
            net.zero_grad();
            net.backward(&cache, &dprobs);
            opt.step(&mut net);
        }
        if self.config.train.verbose {
            eprintln!("[train {}] CE warm-up done; {} FTL epochs follow", size.label(), epochs);
        }

        // Focal Tversky epochs.
        let loss = FocalTverskyLoss::paper_defaults(data.class_weights.clone());
        let cfg = seneca_nn::train::TrainConfig { epochs, ..self.config.train.clone() };
        let _history = train(&mut net, &data.train, &loss, &mut opt, &cfg);
        net
    }

    /// Stage D: PTQ with the calibration set.
    pub fn quantize(&self, net: &UNet, size: ModelSize, data: &PreparedData) -> QuantizedGraph {
        let graph = Graph::from_unet(net, size.label());
        let fg = fuse(&graph);
        let (qg, _report) = quantize_post_training(
            &fg,
            &data.calibration,
            &PtqConfig { max_images: self.config.calibration_images, ..Default::default() },
        );
        qg
    }

    /// Stage E: compile for the B4096 and wrap in runners (both targets).
    pub fn compile_and_deploy(&self, net: UNet, qg: QuantizedGraph, size: ModelSize) -> Deployment {
        let input_shape = Shape4::new(1, 1, self.config.input_size, self.config.input_size);
        let xm = seneca_dpu::compile(&qg, input_shape, DpuArch::b4096_zcu104());
        let dpu_runner = DpuRunner::new(Arc::new(xm), RuntimeConfig::default());
        let graph = Graph::from_unet(&net, size.label());
        let gpu_runner = GpuRunner::new(graph.clone(), GpuModel::rtx2060_mobile(), input_shape);
        Deployment { unet: net, graph, qgraph: qg, dpu_runner, gpu_runner }
    }

    /// Stage E, trait form: the deployment's inference paths as prepared
    /// [`Backend`] trait objects.
    pub fn deploy_backends(
        &self,
        net: UNet,
        qg: QuantizedGraph,
        size: ModelSize,
    ) -> Vec<Box<dyn Backend>> {
        let mut backends = self.compile_and_deploy(net, qg, size).backends();
        for b in &mut backends {
            b.prepare();
        }
        backends
    }

    /// Full pipeline for one model size (train → quantize → compile).
    pub fn deploy(&self, size: ModelSize, data: &PreparedData) -> Deployment {
        let net = self.train_model(size, data);
        let qg = self.quantize(&net, size, data);
        self.compile_and_deploy(net, qg, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_workflow() -> (Workflow, PreparedData) {
        let wf = Workflow::new(SenecaConfig::fast());
        let data = wf.prepare_data();
        (wf, data)
    }

    #[test]
    fn prepare_data_builds_all_pieces() {
        let (wf, data) = fast_workflow();
        assert!(!data.train.is_empty());
        assert_eq!(data.calibration.len(), wf.config.calibration_images);
        assert!(!data.test_by_patient.is_empty());
        assert_eq!(data.class_weights.len(), 6);
        // Images are preprocessed into [-1, 1] at the configured size.
        let s = data.train[0].image.shape();
        assert_eq!((s.h, s.w), (32, 32));
        assert!(data.train[0].image.data().iter().all(|v| (-1.0..=1.0).contains(v)));
        // Bladder weight exceeds bones weight (inverse frequency).
        assert!(data.class_weights[2] > data.class_weights[5]);
        // Background is down-weighted.
        assert!(data.class_weights[0] < 0.2);
    }

    #[test]
    fn nominal_scenario_test_set_matches_prepared_split() {
        let (wf, data) = fast_workflow();
        let nominal = wf.scenario_test_patients(&Scenario::nominal(), None);
        assert_eq!(nominal.len(), data.test_by_patient.len());
        for (a, b) in nominal.iter().zip(&data.test_by_patient) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.labels, b.labels);
            for (ia, ib) in a.images.iter().zip(&b.images) {
                assert_eq!(ia.data(), ib.data());
            }
        }
        // A degraded scenario with pathology produces different inputs.
        let sc = Scenario { dose: 0.25, slice_thickness: 2, fov: 0.85 };
        let degraded = wf.scenario_test_patients(&sc, Some(&PathologyConfig::default()));
        assert_eq!(degraded.len(), data.test_by_patient.len());
        assert!(degraded[0].images.len() < data.test_by_patient[0].images.len());
    }

    #[test]
    fn full_fast_pipeline_end_to_end() {
        let (wf, data) = fast_workflow();
        let dep = wf.deploy(ModelSize::M1, &data);
        // All artifacts line up on shapes.
        let img = &data.test_by_patient[0].images[0];
        let fp32 = dep.gpu_runner.predict(img);
        let int8 = dep.dpu_runner.predict(std::slice::from_ref(img));
        assert_eq!(fp32.len(), 32 * 32);
        assert_eq!(int8[0].len(), 32 * 32);
        // INT8 and FP32 agree on a large majority of pixels.
        let agree = fp32.iter().zip(&int8[0]).filter(|(a, b)| a == b).count() as f64 / 1024.0;
        assert!(agree > 0.7, "agreement {agree}");
        // Throughput path works on the deployed model.
        let rep = dep.dpu_runner.run_throughput(100, 1);
        assert!(rep.fps > 0.0 && rep.watt > 15.0);

        // Stage E exposes all four paths behind the unified Backend trait.
        let backends = dep.backends();
        assert_eq!(backends.len(), 4);
        for b in &backends {
            let pred = b.predict(img);
            assert_eq!(pred.len(), 32 * 32, "{} label map size", b.name());
            let t = b.throughput(20, 1);
            assert!(t.fps > 0.0, "{} throughput", b.name());
        }
        // Reference backends bit-match their device twins.
        let fp32_ref = backends[0].predict(img);
        assert_eq!(fp32_ref, fp32, "fp32-ref vs gpu");
        let int8_ref = backends[2].predict(img);
        assert_eq!(int8_ref, int8[0], "int8-ref vs dpu");
    }
}
