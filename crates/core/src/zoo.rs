//! Trained-model cache ("model zoo").
//!
//! Training five U-Nets on CPU is the slow part of reproducing the paper;
//! the zoo caches trained weights on disk (JSON via serde) keyed by model
//! size and the configuration fingerprint, so benches and the `reproduce`
//! harness can share one training run.

use crate::config::SenecaConfig;
use crate::workflow::{PreparedData, Workflow};
use seneca_nn::unet::{ModelSize, UNet};
use std::path::{Path, PathBuf};

/// Where artifacts live: `$SENECA_ARTIFACTS` or `target/seneca-artifacts`.
pub fn artifacts_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("SENECA_ARTIFACTS") {
        return PathBuf::from(dir);
    }
    PathBuf::from("target/seneca-artifacts")
}

/// A stable fingerprint of everything that affects trained weights.
pub fn config_fingerprint(cfg: &SenecaConfig) -> String {
    let c = &cfg.cohort;
    format!(
        "p{}s{}z{}i{}ts{}e{}b{}lr{}sd{:x}{}",
        c.n_patients,
        c.slice_size,
        c.slices_per_unit_z as u32,
        cfg.input_size,
        cfg.train_stride,
        cfg.train.epochs,
        cfg.train.batch_size,
        (cfg.learning_rate * 1e6) as u64,
        cfg.seed ^ cfg.train.seed,
        // Suffix only when augmentation is on, so pre-augmentation cache
        // entries keep their names (and stay valid — `None` leaves the
        // training RNG stream untouched).
        if cfg.train.augment.is_some() { "-aug" } else { "" },
    )
}

/// Cache path for one trained model.
pub fn model_path(cfg: &SenecaConfig, size: ModelSize) -> PathBuf {
    artifacts_dir().join(format!("unet-{}-{}.json", size.label(), config_fingerprint(cfg)))
}

/// Loads a cached model if present.
pub fn load_model(path: &Path) -> Option<UNet> {
    let bytes = std::fs::read(path).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// Saves a trained model (best effort; failures only warn).
pub fn save_model(path: &Path, net: &UNet) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match serde_json::to_vec(net) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(path, bytes) {
                eprintln!("zoo: could not cache model at {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("zoo: serialisation failed: {e}"),
    }
}

/// Returns the trained model for `size`, training (and caching) on a miss.
pub fn get_or_train(wf: &Workflow, size: ModelSize, data: &PreparedData) -> UNet {
    let path = model_path(&wf.config, size);
    if let Some(net) = load_model(&path) {
        if net.config == size.config() {
            return net;
        }
    }
    let net = wf.train_model(size, data);
    save_model(&path, &net);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SenecaConfig;

    #[test]
    fn fingerprint_changes_with_config() {
        let a = SenecaConfig::fast();
        let mut b = SenecaConfig::fast();
        b.train.epochs += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&SenecaConfig::fast()));
    }

    #[test]
    fn save_load_roundtrip() {
        use rand::SeedableRng;
        let dir = std::env::temp_dir().join(format!("seneca-zoo-test-{}", std::process::id()));
        let path = dir.join("m.json");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let net = UNet::from_size(ModelSize::M1, &mut rng);
        save_model(&path, &net);
        let loaded = load_model(&path).expect("model loads");
        assert_eq!(loaded.param_count(), net.param_count());
        assert_eq!(loaded.config, net.config);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_none() {
        assert!(load_model(Path::new("/nonexistent/seneca/model.json")).is_none());
    }

    #[test]
    fn get_or_train_caches() {
        let dir = std::env::temp_dir().join(format!("seneca-zoo-cache-{}", std::process::id()));
        std::env::set_var("SENECA_ARTIFACTS", &dir);
        let wf = crate::Workflow::new(SenecaConfig::fast());
        let data = wf.prepare_data();
        let t0 = std::time::Instant::now();
        let a = get_or_train(&wf, ModelSize::M1, &data);
        let first = t0.elapsed();
        let t1 = std::time::Instant::now();
        let b = get_or_train(&wf, ModelSize::M1, &data);
        let second = t1.elapsed();
        assert_eq!(a.param_count(), b.param_count());
        assert!(second < first, "cache hit must be faster: {second:?} vs {first:?}");
        std::env::remove_var("SENECA_ARTIFACTS");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
