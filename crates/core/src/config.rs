//! Experiment-scale configuration.
//!
//! The paper's full pipeline (140 patients at 512→256 px, 500-slice
//! calibration) is CPU-tractable here but slow; [`SenecaConfig::fast`]
//! shrinks every axis for tests and examples while keeping the same code
//! paths. [`SenecaConfig::paper`] follows the paper's setup at the
//! resolution used for recorded experiments.

use seneca_data::SyntheticCtOrgConfig;
use seneca_nn::train::TrainConfig;
use serde::{Deserialize, Serialize};

/// End-to-end workflow configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SenecaConfig {
    /// Synthetic cohort settings (patients, raster size, scan mix).
    pub cohort: SyntheticCtOrgConfig,
    /// Network input size after preprocessing (paper: 256).
    pub input_size: usize,
    /// Slice stride when building the training set (1 = every slice).
    pub train_stride: usize,
    /// Slice stride for test evaluation.
    pub test_stride: usize,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Calibration set size (paper: 500).
    pub calibration_images: usize,
    /// Throughput experiment frame count (paper: 2000).
    pub throughput_frames: usize,
    /// Repetitions for μ±σ (paper: 10).
    pub throughput_runs: usize,
    /// Master seed for training/quantisation randomness.
    pub seed: u64,
}

impl SenecaConfig {
    /// Paper-faithful setup at 256x256 (slow on CPU: use for the recorded
    /// experiment runs, not for tests).
    pub fn paper() -> Self {
        Self {
            cohort: SyntheticCtOrgConfig {
                slice_size: 512,
                slices_per_unit_z: 72.0,
                ..Default::default()
            },
            input_size: 256,
            train_stride: 4,
            test_stride: 2,
            train: TrainConfig {
                epochs: 8,
                batch_size: 4,
                seed: 0xC70E,
                lr_decay: 0.9,
                verbose: true,
                augment: None,
            },
            learning_rate: 1.5e-3,
            calibration_images: 500,
            throughput_frames: 2000,
            throughput_runs: 10,
            seed: 0x5E4ECA,
        }
    }

    /// Reduced-scale setup with the same structure: 64 px inputs, fewer
    /// patients/slices/epochs — sized so the full five-model sweep records
    /// in tens of minutes on a single CPU core. This is the default for the
    /// results in EXPERIMENTS.md; throughput experiments always simulate the
    /// paper's 256 px DPU geometry regardless of this accuracy resolution.
    pub fn reduced() -> Self {
        Self {
            cohort: SyntheticCtOrgConfig {
                n_patients: 28,
                slice_size: 128,
                slices_per_unit_z: 36.0,
                ..Default::default()
            },
            input_size: 64,
            train_stride: 6,
            test_stride: 3,
            train: TrainConfig {
                epochs: 14,
                batch_size: 4,
                seed: 0xC70E,
                lr_decay: 0.93,
                verbose: true,
                augment: None,
            },
            learning_rate: 3e-3,
            calibration_images: 150,
            throughput_frames: 2000,
            throughput_runs: 10,
            seed: 0x5E4ECA,
        }
    }

    /// Tiny setup for unit tests and quick examples (seconds, not minutes).
    pub fn fast() -> Self {
        Self {
            cohort: SyntheticCtOrgConfig {
                n_patients: 12,
                slice_size: 64,
                slices_per_unit_z: 16.0,
                ..Default::default()
            },
            input_size: 32,
            train_stride: 3,
            test_stride: 3,
            train: TrainConfig {
                epochs: 3,
                batch_size: 4,
                seed: 0xC70E,
                lr_decay: 0.9,
                verbose: false,
                augment: None,
            },
            learning_rate: 2e-3,
            calibration_images: 24,
            throughput_frames: 200,
            throughput_runs: 3,
            seed: 0x5E4ECA,
        }
    }

    /// Downsample factor from raster resolution to network input.
    pub fn downsample_factor(&self) -> usize {
        assert!(
            self.cohort.slice_size.is_multiple_of(self.input_size),
            "raster size {} must be a multiple of input size {}",
            self.cohort.slice_size,
            self.input_size
        );
        self.cohort.slice_size / self.input_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_paper_constants() {
        let c = SenecaConfig::paper();
        assert_eq!(c.cohort.n_patients, 140);
        assert_eq!(c.cohort.slice_size, 512);
        assert_eq!(c.input_size, 256);
        assert_eq!(c.downsample_factor(), 2);
        assert_eq!(c.calibration_images, 500);
        assert_eq!(c.throughput_frames, 2000);
        assert_eq!(c.throughput_runs, 10);
    }

    #[test]
    fn fast_config_is_small_and_consistent() {
        let c = SenecaConfig::fast();
        assert!(c.cohort.n_patients <= 20);
        assert_eq!(c.downsample_factor(), 2);
    }

    #[test]
    #[should_panic(expected = "must be a multiple")]
    fn indivisible_sizes_rejected() {
        let mut c = SenecaConfig::fast();
        c.input_size = 48;
        let _ = c.downsample_factor();
    }
}
