//! Qualitative rendering (Fig. 5): CT slice, ground truth, INT8 and FP32
//! segmentations as PPM images with the paper's colour code — liver red,
//! bladder green, lungs blue, kidneys yellow, bones white.

use seneca_tensor::Tensor;
use std::io::Write;
use std::path::Path;

/// RGB colour per label (0 = background stays on the CT underlay).
pub fn organ_color(label: u8) -> Option<[u8; 3]> {
    match label {
        1 => Some([220, 40, 40]),   // liver: red
        2 => Some([40, 200, 60]),   // bladder: green
        3 => Some([60, 90, 230]),   // lungs: blue
        4 => Some([235, 220, 50]),  // kidneys: yellow
        5 => Some([245, 245, 245]), // bones: white
        6 => Some([200, 120, 220]), // brain (only in raw volumes)
        _ => None,
    }
}

/// Grayscale pixel from a preprocessed `[-1, 1]` intensity.
fn gray(v: f32) -> u8 {
    (((v.clamp(-1.0, 1.0) + 1.0) / 2.0) * 255.0) as u8
}

/// Renders a CT slice as grayscale RGB rows.
pub fn render_ct(image: &Tensor) -> (usize, usize, Vec<u8>) {
    let s = image.shape();
    assert_eq!(s.n * s.c, 1, "expected a single-channel slice");
    let mut rgb = Vec::with_capacity(s.hw() * 3);
    for &v in image.data() {
        let g = gray(v);
        rgb.extend_from_slice(&[g, g, g]);
    }
    (s.w, s.h, rgb)
}

/// Renders labels over a CT underlay (alpha-blended overlays).
pub fn render_overlay(image: &Tensor, labels: &[u8]) -> (usize, usize, Vec<u8>) {
    let s = image.shape();
    assert_eq!(labels.len(), s.hw(), "label map size");
    let mut rgb = Vec::with_capacity(s.hw() * 3);
    for (&v, &l) in image.data().iter().zip(labels) {
        let g = gray(v) as u16;
        match organ_color(l) {
            Some(c) => {
                // 65% organ colour, 35% underlay.
                for &cv in &c {
                    rgb.push(((cv as u16 * 65 + g * 35) / 100) as u8);
                }
            }
            None => rgb.extend_from_slice(&[g as u8, g as u8, g as u8]),
        }
    }
    (s.w, s.h, rgb)
}

/// Concatenates panels horizontally with a separator column (the Fig. 5 row
/// layout: CT | GT | INT8 | FP32).
pub fn hstack(panels: &[(usize, usize, Vec<u8>)]) -> (usize, usize, Vec<u8>) {
    assert!(!panels.is_empty());
    let h = panels[0].1;
    assert!(panels.iter().all(|p| p.1 == h), "panel heights must match");
    let sep = 2usize;
    let total_w: usize = panels.iter().map(|p| p.0).sum::<usize>() + sep * (panels.len() - 1);
    let mut rgb = vec![30u8; total_w * h * 3];
    let mut x0 = 0usize;
    for (w, _, data) in panels {
        for y in 0..h {
            let dst = (y * total_w + x0) * 3;
            let src = y * w * 3;
            rgb[dst..dst + w * 3].copy_from_slice(&data[src..src + w * 3]);
        }
        x0 += w + sep;
    }
    (total_w, h, rgb)
}

/// Writes a binary PPM (P6).
pub fn write_ppm(path: &Path, width: usize, height: usize, rgb: &[u8]) -> std::io::Result<()> {
    assert_eq!(rgb.len(), width * height * 3, "pixel buffer size");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    write!(f, "P6\n{width} {height}\n255\n")?;
    f.write_all(rgb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seneca_tensor::Shape4;

    fn slice() -> Tensor {
        Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![-1.0, 0.0, 0.5, 1.0])
    }

    #[test]
    fn ct_render_is_grayscale() {
        let (w, h, rgb) = render_ct(&slice());
        assert_eq!((w, h), (2, 2));
        assert_eq!(rgb.len(), 12);
        assert_eq!(&rgb[0..3], &[0, 0, 0]);
        assert_eq!(&rgb[9..12], &[255, 255, 255]);
        for px in rgb.chunks(3) {
            assert!(px[0] == px[1] && px[1] == px[2]);
        }
    }

    #[test]
    fn overlay_colours_organs_only() {
        let labels = vec![0u8, 1, 3, 0];
        let (_, _, rgb) = render_overlay(&slice(), &labels);
        // Pixel 0: background stays gray.
        assert!(rgb[0] == rgb[1] && rgb[1] == rgb[2]);
        // Pixel 1: liver-tinted (red channel dominates).
        assert!(rgb[3] > rgb[4] && rgb[3] > rgb[5]);
        // Pixel 2: lungs-tinted (blue dominates).
        assert!(rgb[8] > rgb[6]);
    }

    #[test]
    fn hstack_geometry() {
        let a = render_ct(&slice());
        let b = render_ct(&slice());
        let (w, h, rgb) = hstack(&[a, b]);
        assert_eq!((w, h), (2 + 2 + 2, 2));
        assert_eq!(rgb.len(), w * h * 3);
    }

    #[test]
    fn ppm_file_roundtrip_header() {
        let dir = std::env::temp_dir().join(format!("seneca-ppm-{}", std::process::id()));
        let path = dir.join("t.ppm");
        let (w, h, rgb) = render_ct(&slice());
        write_ppm(&path, w, h, &rgb).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 12);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
