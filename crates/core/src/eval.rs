//! Accuracy evaluation drivers (Tables IV–V, Fig. 6).
//!
//! Predictions are evaluated *per test patient*: each volume contributes one
//! per-organ Dice sample, which is what the paper's boxplots (Fig. 6) and
//! mean±std columns (Table V) are built from.

use crate::workflow::{PreparedData, TestPatient};
use seneca_backend::Backend;
use seneca_data::volume::Organ;
use seneca_metrics::agg::{BoxplotStats, MeanStd};
use seneca_metrics::seg::{global_weighted_dice, weighted_global_rates, Confusion};
use seneca_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A segmentation predictor: preprocessed image in, label map out.
pub type Predictor<'a> = dyn Fn(&Tensor) -> Vec<u8> + Sync + 'a;

/// A batch predictor: one patient's preprocessed images in, label maps out
/// (in input order). Backends map onto this via `infer_batch`.
pub type BatchPredictor<'a> = dyn Fn(&[Tensor]) -> Vec<Vec<u8>> + Sync + 'a;

/// Accuracy evaluation results over the test split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Per-organ Dice samples, one per test patient where the organ occurs
    /// (percent). Index = organ label − 1 (liver..bones).
    pub per_organ_pct: Vec<Vec<f64>>,
    /// Global weighted Dice per patient (percent).
    pub global_pct: Vec<f64>,
    /// Global TPR per patient (percent).
    pub tpr_pct: Vec<f64>,
    /// Global TNR per patient (percent).
    pub tnr_pct: Vec<f64>,
}

impl AccuracyReport {
    /// Mean±std of the global Dice.
    pub fn global(&self) -> MeanStd {
        MeanStd::of(&self.global_pct)
    }

    /// Mean±std of one organ's Dice.
    pub fn organ(&self, organ: Organ) -> MeanStd {
        MeanStd::of(&self.per_organ_pct[organ.label() as usize - 1])
    }

    /// Boxplot stats of one organ's Dice (Fig. 6).
    pub fn organ_boxplot(&self, organ: Organ) -> Option<BoxplotStats> {
        let xs = &self.per_organ_pct[organ.label() as usize - 1];
        if xs.is_empty() {
            None
        } else {
            Some(BoxplotStats::of(xs))
        }
    }

    /// Mean±std global TPR (sensitivity, §IV-D).
    pub fn global_tpr(&self) -> MeanStd {
        MeanStd::of(&self.tpr_pct)
    }

    /// Mean±std global TNR (specificity, §IV-D).
    pub fn global_tnr(&self) -> MeanStd {
        MeanStd::of(&self.tnr_pct)
    }
}

/// Evaluates a per-image predictor over the prepared test split.
pub fn evaluate_accuracy(predict: &Predictor<'_>, data: &PreparedData) -> AccuracyReport {
    evaluate_batches(&|images| images.iter().map(predict).collect(), data)
}

/// Evaluates any [`Backend`] over the prepared test split. Each patient's
/// slices go through `infer_batch` as one batch, so backends with worker
/// pools (the DPU runtime, the INT8 reference) parallelise within patients.
pub fn evaluate_backend(backend: &dyn Backend, data: &PreparedData) -> AccuracyReport {
    evaluate_backend_on(backend, &data.test_by_patient)
}

/// Evaluates any [`Backend`] over an explicit patient list — the robustness
/// suite evaluates the same deployment on many scenario-specific test sets,
/// none of which are the prepared split.
pub fn evaluate_backend_on(backend: &dyn Backend, patients: &[TestPatient]) -> AccuracyReport {
    evaluate_batches_on(
        &|images| backend.infer_batch(images).into_iter().map(|p| p.labels).collect(),
        patients,
    )
}

/// Evaluates a batch predictor over the prepared test split.
///
/// Each patient's prepared images are handed to the predictor as one
/// borrowed `&[Tensor]` batch — evaluation never copies the test set, and
/// the tensors a predictor sees are *the* prepared tensors (stable buffer
/// addresses across evaluation passes).
pub fn evaluate_batches(predict: &BatchPredictor<'_>, data: &PreparedData) -> AccuracyReport {
    evaluate_batches_on(predict, &data.test_by_patient)
}

/// Evaluates a batch predictor over an explicit patient list.
pub fn evaluate_batches_on(
    predict: &BatchPredictor<'_>,
    patients: &[TestPatient],
) -> AccuracyReport {
    let mut per_organ_pct: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut global_pct = Vec::new();
    let mut tpr_pct = Vec::new();
    let mut tnr_pct = Vec::new();

    for patient in patients {
        let preds = predict(&patient.images);
        assert_eq!(preds.len(), patient.images.len(), "predictor batch length");

        // Accumulate confusion counts across the patient's slices.
        let mut organ_conf = [Confusion::default(); 5];
        let mut pred_all: Vec<u8> = Vec::new();
        let mut truth_all: Vec<u8> = Vec::new();
        for (truth, pred) in patient.labels.iter().zip(&preds) {
            assert_eq!(pred.len(), truth.len(), "predictor output length");
            for (k, conf) in organ_conf.iter_mut().enumerate() {
                conf.merge(&seneca_metrics::seg::confusion(pred, truth, k as u8 + 1));
            }
            pred_all.extend_from_slice(pred);
            truth_all.extend_from_slice(truth);
        }
        for (k, conf) in organ_conf.iter().enumerate() {
            // Only count organs present in the patient's ground truth.
            if conf.tp + conf.fn_ > 0 {
                if let Some(d) = conf.dice() {
                    per_organ_pct[k].push(100.0 * d);
                }
            }
        }
        if let Some(g) = global_weighted_dice(&pred_all, &truth_all, 5) {
            global_pct.push(100.0 * g);
        }
        // Global TPR/TNR over organs present, each rate weighted by its own
        // support (positives for TPR, negatives for TNR).
        let (tpr, tnr) = weighted_global_rates(&organ_conf);
        if let Some(t) = tpr {
            tpr_pct.push(100.0 * t);
        }
        if let Some(t) = tnr {
            tnr_pct.push(100.0 * t);
        }
    }

    AccuracyReport { per_organ_pct, global_pct, tpr_pct, tnr_pct }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SenecaConfig;
    use crate::workflow::Workflow;

    fn data() -> PreparedData {
        Workflow::new(SenecaConfig::fast()).prepare_data()
    }

    #[test]
    fn oracle_predictor_scores_100() {
        let data = data();
        // The oracle reads the ground truth through a side channel: map each
        // image pointer to its labels.
        let lookup: std::collections::HashMap<usize, Vec<u8>> = data
            .test_by_patient
            .iter()
            .flat_map(|p| p.images.iter().zip(&p.labels))
            .map(|(img, labels)| (img.data().as_ptr() as usize, labels.clone()))
            .collect();
        let oracle =
            move |img: &Tensor| -> Vec<u8> { lookup[&(img.data().as_ptr() as usize)].clone() };
        let rep = evaluate_accuracy(&oracle, &data);
        assert!((rep.global().mean - 100.0).abs() < 1e-9);
        assert!((rep.global_tpr().mean - 100.0).abs() < 1e-9);
        assert!((rep.global_tnr().mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn background_predictor_scores_0_dice_100_tnr_is_undefined() {
        let data = data();
        let bg = |img: &Tensor| -> Vec<u8> { vec![0u8; img.shape().hw()] };
        let rep = evaluate_accuracy(&bg, &data);
        assert!(rep.global().mean < 1e-9);
        // Predicting nothing: TPR 0, TNR 100 (no false positives).
        assert!(rep.global_tpr().mean < 1e-9);
        assert!((rep.global_tnr().mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn organ_samples_respect_presence() {
        let data = data();
        let bg = |img: &Tensor| -> Vec<u8> { vec![0u8; img.shape().hw()] };
        let rep = evaluate_accuracy(&bg, &data);
        // Lungs occur in every scan kind; samples == number of test patients
        // that contain lungs (> 0). Brain is not among the 5 targets at all.
        assert!(!rep.per_organ_pct[Organ::Lungs.label() as usize - 1].is_empty());
        assert_eq!(rep.per_organ_pct.len(), 5);
    }

    #[test]
    fn boxplot_available_for_present_organs() {
        let data = data();
        let bg = |img: &Tensor| -> Vec<u8> { vec![0u8; img.shape().hw()] };
        let rep = evaluate_accuracy(&bg, &data);
        assert!(rep.organ_boxplot(Organ::Lungs).is_some());
    }
}
