//! Segmentation metrics on label maps.
//!
//! All metrics work on flat `u8` label maps (prediction vs ground truth of
//! equal length); class `c` is evaluated one-vs-rest.

use serde::{Deserialize, Serialize};

/// One-vs-rest confusion counts for a class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// True negatives.
    pub tn: u64,
}

impl Confusion {
    /// Dice similarity coefficient `2TP / (2TP + FP + FN)` (Eq. 4). Returns
    /// `None` when the class is absent from both prediction and truth.
    pub fn dice(&self) -> Option<f64> {
        let denom = 2 * self.tp + self.fp + self.fn_;
        if denom == 0 {
            None
        } else {
            Some(2.0 * self.tp as f64 / denom as f64)
        }
    }

    /// Recall / true positive rate `TP / (TP + FN)` (Eq. 5).
    pub fn tpr(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            None
        } else {
            Some(self.tp as f64 / denom as f64)
        }
    }

    /// Specificity / true negative rate `TN / (TN + FP)` (Eq. 6).
    pub fn tnr(&self) -> Option<f64> {
        let denom = self.tn + self.fp;
        if denom == 0 {
            None
        } else {
            Some(self.tn as f64 / denom as f64)
        }
    }

    /// Merges counts (accumulate over slices/volumes).
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

/// One-vs-rest confusion of class `c`.
pub fn confusion(pred: &[u8], truth: &[u8], c: u8) -> Confusion {
    assert_eq!(pred.len(), truth.len(), "label map length mismatch");
    let mut conf = Confusion::default();
    for (&p, &g) in pred.iter().zip(truth) {
        match (p == c, g == c) {
            (true, true) => conf.tp += 1,
            (true, false) => conf.fp += 1,
            (false, true) => conf.fn_ += 1,
            (false, false) => conf.tn += 1,
        }
    }
    conf
}

/// Dice of class `c` (None when absent everywhere).
pub fn dice(pred: &[u8], truth: &[u8], c: u8) -> Option<f64> {
    confusion(pred, truth, c).dice()
}

/// TPR of class `c`.
pub fn tpr(pred: &[u8], truth: &[u8], c: u8) -> Option<f64> {
    confusion(pred, truth, c).tpr()
}

/// TNR of class `c`.
pub fn tnr(pred: &[u8], truth: &[u8], c: u8) -> Option<f64> {
    confusion(pred, truth, c).tnr()
}

/// Per-class Dice for classes `1..=n_classes` (organ labels; 0 = background
/// is excluded, matching the paper).
pub fn per_organ_dice(pred: &[u8], truth: &[u8], n_classes: u8) -> Vec<Option<f64>> {
    (1..=n_classes).map(|c| dice(pred, truth, c)).collect()
}

/// Global DSC "computed as the weighted mean of single organs DSCs"
/// (§IV-C), weighted by each organ's ground-truth pixel count.
pub fn global_weighted_dice(pred: &[u8], truth: &[u8], n_classes: u8) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for c in 1..=n_classes {
        let conf = confusion(pred, truth, c);
        if let Some(d) = conf.dice() {
            let weight = (conf.tp + conf.fn_) as f64; // ground-truth pixels
            num += d * weight;
            den += weight;
        }
    }
    if den == 0.0 {
        None
    } else {
        Some(num / den)
    }
}

/// Global TPR/TNR as support-weighted means over per-organ confusions,
/// gated on organ presence in the ground truth (`tp + fn_ > 0`), matching
/// the paper's per-patient sensitivity/specificity aggregation (§IV-D).
///
/// Each rate is weighted by its *own* support: TPR by positive pixels
/// (`tp + fn_`), TNR by negative pixels (`tn + fp`). Weighting specificity
/// by positive support would let a tiny organ's poor TNR vanish behind a
/// large organ's pixel count (and vice versa).
pub fn weighted_global_rates(confs: &[Confusion]) -> (Option<f64>, Option<f64>) {
    let (mut tpr_num, mut tpr_den) = (0.0f64, 0.0f64);
    let (mut tnr_num, mut tnr_den) = (0.0f64, 0.0f64);
    for conf in confs {
        let pos = (conf.tp + conf.fn_) as f64;
        if pos == 0.0 {
            continue; // organ absent from this ground truth
        }
        if let Some(t) = conf.tpr() {
            tpr_num += pos * t;
            tpr_den += pos;
        }
        let neg = (conf.tn + conf.fp) as f64;
        if neg > 0.0 {
            if let Some(t) = conf.tnr() {
                tnr_num += neg * t;
                tnr_den += neg;
            }
        }
    }
    let rate = |num: f64, den: f64| if den > 0.0 { Some(num / den) } else { None };
    (rate(tpr_num, tpr_den), rate(tnr_num, tnr_den))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let gt = vec![0u8, 1, 1, 2, 0, 2];
        for c in 0..=2 {
            assert_eq!(dice(&gt, &gt, c), Some(1.0));
            assert_eq!(tpr(&gt, &gt, c), Some(1.0));
            assert_eq!(tnr(&gt, &gt, c), Some(1.0));
        }
        assert_eq!(global_weighted_dice(&gt, &gt, 2), Some(1.0));
    }

    #[test]
    fn disjoint_prediction_zero_dice() {
        let gt = vec![1u8, 1, 0, 0];
        let pred = vec![0u8, 0, 1, 1];
        assert_eq!(dice(&pred, &gt, 1), Some(0.0));
        assert_eq!(tpr(&pred, &gt, 1), Some(0.0));
    }

    #[test]
    fn half_overlap() {
        // GT has 2 pixels of class 1, prediction hits 1 of them + 1 FP.
        let gt = vec![1u8, 1, 0, 0];
        let pred = vec![1u8, 0, 1, 0];
        // dice = 2*1 / (2*1 + 1 + 1) = 0.5
        assert_eq!(dice(&pred, &gt, 1), Some(0.5));
        assert_eq!(tpr(&pred, &gt, 1), Some(0.5));
        // TNR: TN=1 (idx3), FP=1 -> 0.5
        assert_eq!(tnr(&pred, &gt, 1), Some(0.5));
    }

    #[test]
    fn absent_class_is_none() {
        let gt = vec![0u8; 8];
        let pred = vec![0u8; 8];
        assert_eq!(dice(&pred, &gt, 3), None);
        // But predicted-only class gives Some(0).
        let pred2 = vec![3u8, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(dice(&pred2, &gt, 3), Some(0.0));
    }

    #[test]
    fn global_dice_weights_by_organ_size() {
        // Organ 1: 90 px perfectly segmented. Organ 2: 10 px fully missed.
        let mut gt = vec![0u8; 200];
        let mut pred = vec![0u8; 200];
        for i in 0..90 {
            gt[i] = 1;
            pred[i] = 1;
        }
        for i in 90..100 {
            gt[i] = 2;
        }
        let g = global_weighted_dice(&pred, &gt, 2).unwrap();
        assert!((g - 0.9).abs() < 1e-9, "{g}");
    }

    #[test]
    fn merge_accumulates() {
        let a = confusion(&[1, 0], &[1, 1], 1);
        let b = confusion(&[1, 1], &[1, 0], 1);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.tp, a.tp + b.tp);
        assert_eq!(m.fp, a.fp + b.fp);
        assert_eq!(m.fn_, a.fn_ + b.fn_);
    }

    #[test]
    fn weighted_rates_use_matching_support() {
        // Hand-computed two-organ case where positive- and negative-support
        // weightings of TNR disagree badly:
        //   A: 100 GT px, 90 hit, clean background    -> tpr 0.9,  tnr 1.0
        //   B: 1 GT px hit, 300 FP over 900 negatives -> tpr 1.0,  tnr 2/3
        let a = Confusion { tp: 90, fn_: 10, fp: 0, tn: 900 };
        let b = Confusion { tp: 1, fn_: 0, fp: 300, tn: 600 };
        let (tpr, tnr) = weighted_global_rates(&[a, b]);
        // TPR weighted by positive support: (100·0.9 + 1·1.0) / 101.
        assert!((tpr.unwrap() - 91.0 / 101.0).abs() < 1e-12);
        // TNR weighted by negative support: (900·1.0 + 900·(2/3)) / 1800 = 5/6.
        assert!((tnr.unwrap() - 5.0 / 6.0).abs() < 1e-12);
        // The old positive-support weighting would report ≈ 0.9967 instead,
        // hiding B's 300 false positives behind A's pixel count.
        let buggy = (100.0 * 1.0 + 1.0 * (2.0 / 3.0)) / 101.0;
        assert!((tnr.unwrap() - buggy).abs() > 0.15);
    }

    #[test]
    fn weighted_rates_gate_on_presence() {
        // An organ absent from the ground truth contributes to neither rate,
        // even though its background pixels would carry TNR weight.
        let absent = Confusion { tp: 0, fn_: 0, fp: 5, tn: 5 };
        assert_eq!(weighted_global_rates(&[absent]), (None, None));
        let present = Confusion { tp: 4, fn_: 0, fp: 0, tn: 6 };
        let (tpr, tnr) = weighted_global_rates(&[present, absent]);
        assert_eq!(tpr, Some(1.0));
        assert_eq!(tnr, Some(1.0)); // only the present organ's negatives count
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = confusion(&[0, 1], &[0], 1);
    }
}
