//! # seneca-metrics
//!
//! Segmentation quality metrics and distribution statistics:
//!
//! * [`seg`] — Dice similarity coefficient (Eq. 4), recall/TPR (Eq. 5),
//!   specificity/TNR (Eq. 6), per-organ and frequency-weighted global forms;
//! * [`agg`] — mean±std aggregation and box-plot statistics (quartiles,
//!   whiskers, outliers) for Fig. 6;
//! * [`boundary`] — Hausdorff / average-surface-distance boundary metrics
//!   (quantifying §IV-D's "conservative at the organ edges" observation);
//! * [`literature`] — the published CT-ORG 3D U-Net numbers [17] and the
//!   SENECA paper's own reported values, used as comparison columns when
//!   regenerating Tables IV and V.

pub mod agg;
pub mod boundary;
pub mod literature;
pub mod seg;

pub use agg::{BoxplotStats, MeanStd};
pub use seg::{confusion, dice, global_weighted_dice, per_organ_dice, tnr, tpr, Confusion};
