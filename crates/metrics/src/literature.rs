//! Published numbers used as comparison columns.
//!
//! Two sources: the CT-ORG 3D U-Net results of Rister et al. [17] (Table V's
//! right column) and the SENECA paper's own reported measurements (used by
//! EXPERIMENTS.md to print paper-vs-ours for every cell).

use serde::{Deserialize, Serialize};

/// mean ± std pair as printed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperStat {
    /// Reported mean.
    pub mean: f64,
    /// Reported standard deviation.
    pub std: f64,
}

impl PaperStat {
    /// Shorthand constructor.
    pub const fn new(mean: f64, std: f64) -> Self {
        Self { mean, std }
    }
}

/// CT-ORG 3D U-Net [17] per-organ Dice (%, mean ± std) — Table V.
pub mod ct_org_unet3d {
    use super::PaperStat;

    /// Global DSC.
    pub const GLOBAL: PaperStat = PaperStat::new(88.17, 5.16);
    /// Liver.
    pub const LIVER: PaperStat = PaperStat::new(92.00, 3.6);
    /// Bladder.
    pub const BLADDER: PaperStat = PaperStat::new(58.10, 22.3);
    /// Lungs.
    pub const LUNGS: PaperStat = PaperStat::new(93.80, 5.9);
    /// Kidneys.
    pub const KIDNEYS: PaperStat = PaperStat::new(88.20, 7.9);
    /// Bones.
    pub const BONES: PaperStat = PaperStat::new(82.70, 7.6);
    /// FPS range derived from the reported per-patient runtimes (4 GPUs).
    pub const FPS_RANGE: (f64, f64) = (17.0, 197.0);
}

/// One Table IV row as published (FP32 on RTX 2060 Mobile vs INT8 on the
/// ZCU104 with 4 threads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Model label ("1M".."16M").
    pub model: &'static str,
    /// FP32 GPU frames/s.
    pub fps_fp32: PaperStat,
    /// INT8 FPGA frames/s.
    pub fps_int8: PaperStat,
    /// FP32 board power (W).
    pub watt_fp32: PaperStat,
    /// INT8 board power (W).
    pub watt_int8: PaperStat,
    /// FP32 energy efficiency (FPS/W).
    pub ee_fp32: PaperStat,
    /// INT8 energy efficiency (FPS/W).
    pub ee_int8: PaperStat,
    /// FP32 global DSC (%).
    pub dsc_fp32: PaperStat,
    /// INT8 global DSC (%).
    pub dsc_int8: PaperStat,
}

/// The paper's Table IV (μ ± σ of 10 runs).
pub const TABLE4: [Table4Row; 5] = [
    Table4Row {
        model: "1M",
        fps_fp32: PaperStat::new(72.20, 0.47),
        fps_int8: PaperStat::new(335.40, 0.34),
        watt_fp32: PaperStat::new(78.01, 0.61),
        watt_int8: PaperStat::new(28.40, 0.02),
        ee_fp32: PaperStat::new(0.93, 0.01),
        ee_int8: PaperStat::new(11.81, 0.02),
        dsc_fp32: PaperStat::new(92.98, 0.16),
        dsc_int8: PaperStat::new(93.04, 0.07),
    },
    Table4Row {
        model: "2M",
        fps_fp32: PaperStat::new(77.45, 0.14),
        fps_int8: PaperStat::new(254.87, 0.20),
        watt_fp32: PaperStat::new(77.63, 0.91),
        watt_int8: PaperStat::new(24.82, 0.02),
        ee_fp32: PaperStat::new(1.00, 0.01),
        ee_int8: PaperStat::new(10.27, 0.01),
        dsc_fp32: PaperStat::new(92.98, 0.16),
        dsc_int8: PaperStat::new(93.01, 0.07),
    },
    Table4Row {
        model: "4M",
        fps_fp32: PaperStat::new(65.90, 0.30),
        fps_int8: PaperStat::new(273.17, 0.21),
        watt_fp32: PaperStat::new(77.94, 0.54),
        watt_int8: PaperStat::new(28.54, 0.06),
        ee_fp32: PaperStat::new(0.85, 0.01),
        ee_int8: PaperStat::new(9.57, 0.02),
        dsc_fp32: PaperStat::new(93.41, 0.16),
        dsc_int8: PaperStat::new(93.49, 0.07),
    },
    Table4Row {
        model: "8M",
        fps_fp32: PaperStat::new(52.22, 0.31),
        fps_int8: PaperStat::new(127.91, 0.06),
        watt_fp32: PaperStat::new(77.56, 0.90),
        watt_int8: PaperStat::new(28.00, 0.04),
        ee_fp32: PaperStat::new(0.67, 0.01),
        ee_int8: PaperStat::new(4.57, 0.01),
        dsc_fp32: PaperStat::new(93.53, 0.16),
        dsc_int8: PaperStat::new(93.65, 0.07),
    },
    Table4Row {
        model: "16M",
        fps_fp32: PaperStat::new(37.23, 0.42),
        fps_int8: PaperStat::new(98.12, 0.19),
        watt_fp32: PaperStat::new(77.99, 0.97),
        watt_int8: PaperStat::new(30.98, 0.15),
        ee_fp32: PaperStat::new(0.48, 0.01),
        ee_int8: PaperStat::new(3.17, 0.02),
        dsc_fp32: PaperStat::new(93.76, 0.16),
        dsc_int8: PaperStat::new(93.84, 0.07),
    },
];

/// SENECA's Table V per-organ DSC (%, FPGA column).
pub mod seneca_fpga {
    use super::PaperStat;

    /// Global DSC.
    pub const GLOBAL: PaperStat = PaperStat::new(93.04, 0.07);
    /// Liver.
    pub const LIVER: PaperStat = PaperStat::new(91.63, 0.09);
    /// Bladder.
    pub const BLADDER: PaperStat = PaperStat::new(79.21, 0.09);
    /// Lungs.
    pub const LUNGS: PaperStat = PaperStat::new(96.16, 0.09);
    /// Kidneys.
    pub const KIDNEYS: PaperStat = PaperStat::new(81.3, 0.08);
    /// Bones.
    pub const BONES: PaperStat = PaperStat::new(94.35, 0.03);
    /// Global TPR (§IV-D).
    pub const GLOBAL_TPR: PaperStat = PaperStat::new(93.06, 0.07);
    /// Global TNR (§IV-D).
    pub const GLOBAL_TNR: PaperStat = PaperStat::new(99.75, 0.07);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_headline_ratios() {
        // 1M INT8 vs FP32: 4.65x FPS, 12.7x EE (the abstract's claims).
        let r = &TABLE4[0];
        let speedup = r.fps_int8.mean / r.fps_fp32.mean;
        assert!((speedup - 4.645).abs() < 0.02, "{speedup}");
        let ee_gain = r.ee_int8.mean / r.ee_fp32.mean;
        assert!((ee_gain - 12.7).abs() < 0.1, "{ee_gain}");
    }

    #[test]
    fn fpga_fps_ordering() {
        let fps: Vec<f64> = TABLE4.iter().map(|r| r.fps_int8.mean).collect();
        // 1M > 4M > 2M > 8M > 16M.
        assert!(fps[0] > fps[2] && fps[2] > fps[1] && fps[1] > fps[3] && fps[3] > fps[4]);
    }

    #[test]
    fn bladder_improvement_over_ct_org() {
        // SENECA beats the 3D U-Net bladder DSC by > 20 points (§IV-E).
        let delta = seneca_fpga::BLADDER.mean - ct_org_unet3d::BLADDER.mean;
        assert!(delta > 20.0, "{delta}");
    }

    #[test]
    fn lungs_to_bladder_ratio_claim() {
        // §IV-D: lungs are 13.6x more frequent but only 1.21x higher DSC.
        let ratio = seneca_fpga::LUNGS.mean / seneca_fpga::BLADDER.mean;
        assert!((ratio - 1.21).abs() < 0.02, "{ratio}");
    }
}
