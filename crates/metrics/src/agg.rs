//! Distribution statistics: mean±std and box-plot summaries (Fig. 6).

use serde::{Deserialize, Serialize};

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanStd {
    /// Computes mean±std; empty input yields zeros.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self { mean: 0.0, std: 0.0, n: 0 };
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        Self { mean, std: var.sqrt(), n: xs.len() }
    }

    /// "μ±σ" display with the given precision.
    pub fn display(&self, prec: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.std, p = prec)
    }
}

/// Box-plot statistics of a sample (Tukey convention: whiskers at the last
/// data point within 1.5·IQR of the quartiles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// Minimum.
    pub min: f64,
    /// Lower whisker.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker.
    pub whisker_hi: f64,
    /// Maximum.
    pub max: f64,
    /// Points beyond the whiskers.
    pub outliers: Vec<f64>,
}

/// Linear-interpolation quantile of a sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl BoxplotStats {
    /// Computes box-plot statistics. Panics on empty input.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "boxplot of empty sample");
        let mut s: Vec<f64> = xs.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        let q1 = quantile_sorted(&s, 0.25);
        let median = quantile_sorted(&s, 0.5);
        let q3 = quantile_sorted(&s, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = *s.iter().find(|&&v| v >= lo_fence).unwrap_or(&s[0]);
        let whisker_hi = *s.iter().rev().find(|&&v| v <= hi_fence).unwrap_or(&s[s.len() - 1]);
        let outliers: Vec<f64> =
            s.iter().copied().filter(|&v| v < lo_fence || v > hi_fence).collect();
        Self { min: s[0], whisker_lo, q1, median, q3, whisker_hi, max: s[s.len() - 1], outliers }
    }

    /// Renders an ASCII box plot line scaled between `lo` and `hi` over
    /// `width` columns (the Fig. 6 renderer).
    pub fn ascii_row(&self, lo: f64, hi: f64, width: usize) -> String {
        assert!(hi > lo && width >= 10);
        let col = |v: f64| -> usize {
            (((v - lo) / (hi - lo)).clamp(0.0, 1.0) * (width - 1) as f64).round() as usize
        };
        let mut row = vec![b' '; width];
        // Outliers go down first so the structural glyphs win: an outlier
        // that rounds onto a whisker/median column must not erase `|`/`#`.
        for o in &self.outliers {
            row[col(*o)] = b'o';
        }
        row[col(self.whisker_lo)..=col(self.whisker_hi)].fill(b'-');
        row[col(self.q1)..=col(self.q3)].fill(b'=');
        row[col(self.whisker_lo)] = b'|';
        row[col(self.whisker_hi)] = b'|';
        row[col(self.median)] = b'#';
        String::from_utf8(row).expect("ascii")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let m = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        assert!((m.std - 2.0).abs() < 1e-12);
        assert_eq!(m.n, 8);
        assert_eq!(m.display(1), "5.0 ± 2.0");
    }

    #[test]
    fn mean_std_empty() {
        let m = MeanStd::of(&[]);
        assert_eq!(m.n, 0);
        assert_eq!(m.mean, 0.0);
    }

    #[test]
    fn boxplot_quartiles_of_uniform() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let b = BoxplotStats::of(&xs);
        assert!((b.q1 - 25.0).abs() < 1e-9);
        assert!((b.median - 50.0).abs() < 1e-9);
        assert!((b.q3 - 75.0).abs() < 1e-9);
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_lo, 0.0);
        assert_eq!(b.whisker_hi, 100.0);
    }

    #[test]
    fn boxplot_detects_outliers() {
        let mut xs: Vec<f64> = (0..20).map(|i| 50.0 + i as f64).collect();
        xs.push(500.0);
        let b = BoxplotStats::of(&xs);
        assert_eq!(b.outliers, vec![500.0]);
        assert!(b.whisker_hi < 500.0);
        assert_eq!(b.max, 500.0);
    }

    #[test]
    fn ascii_row_structure() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let b = BoxplotStats::of(&xs);
        let row = b.ascii_row(0.0, 100.0, 41);
        assert_eq!(row.len(), 41);
        assert!(row.contains('#'));
        assert!(row.contains('='));
        assert!(row.starts_with('|'));
        assert!(row.ends_with('|'));
    }

    #[test]
    fn ascii_row_outlier_never_overwrites_structure() {
        // xs in [0, 20] plus an outlier at 35 (fence = q3 + 1.5·IQR = 31.5).
        let mut xs: Vec<f64> = (0..=20).map(|i| i as f64).collect();
        xs.push(35.0);
        let b = BoxplotStats::of(&xs);
        assert_eq!(b.outliers, vec![35.0]);
        assert_eq!(b.whisker_hi, 20.0);
        // Narrow scale: both the whisker (20) and the outlier (35) round to
        // column 1 of 10 over [0, 300]. The whisker must win the collision.
        let narrow = b.ascii_row(0.0, 300.0, 10);
        assert_eq!(&narrow[1..2], "|", "whisker survives outlier collision: {narrow:?}");
        assert!(!narrow.contains('o'));
        // Wide scale: columns separate and the outlier glyph is visible.
        let wide = b.ascii_row(0.0, 40.0, 41);
        assert!(wide.contains('o'), "{wide:?}");
        assert!(wide.contains('#') && wide.contains('|'));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn boxplot_empty_panics() {
        let _ = BoxplotStats::of(&[]);
    }
}
