//! Boundary metrics: Hausdorff distance and average surface distance.
//!
//! The paper reports Dice/TPR/TNR only, but §IV-D's observation that the
//! network is "more conservative when detecting the organs' edges" is a
//! boundary statement — these metrics quantify it. Distances are measured
//! on 2-D label maps in pixel units (exact Euclidean via a two-pass
//! distance transform).

/// Exact Euclidean distance transform (Felzenszwalb–Huttenlocher) of a
/// binary mask: `out[i]` = distance from pixel `i` to the nearest `true`
/// pixel, or `f32::INFINITY` when the mask is empty.
pub fn distance_transform(mask: &[bool], w: usize, h: usize) -> Vec<f32> {
    assert_eq!(mask.len(), w * h, "mask size");
    const INF: f32 = 1e18;
    let mut d2: Vec<f32> = mask.iter().map(|&m| if m { 0.0 } else { INF }).collect();

    // 1-D squared-distance transform along a strided axis.
    fn dt1d(f: &[f32]) -> Vec<f32> {
        let n = f.len();
        let mut d = vec![0.0f32; n];
        let mut v = vec![0usize; n];
        let mut z = vec![0.0f32; n + 1];
        let mut k = 0usize;
        v[0] = 0;
        z[0] = f32::NEG_INFINITY;
        z[1] = f32::INFINITY;
        for q in 1..n {
            loop {
                let s = ((f[q] + (q * q) as f32) - (f[v[k]] + (v[k] * v[k]) as f32))
                    / (2.0 * q as f32 - 2.0 * v[k] as f32);
                if s <= z[k] {
                    if k == 0 {
                        // Degenerate parabola dominates from -inf.
                        v[0] = q;
                        z[0] = f32::NEG_INFINITY;
                        z[1] = f32::INFINITY;
                        break;
                    }
                    k -= 1;
                } else {
                    k += 1;
                    v[k] = q;
                    z[k] = s;
                    z[k + 1] = f32::INFINITY;
                    break;
                }
            }
        }
        let mut k = 0usize;
        for (q, dst) in d.iter_mut().enumerate().take(n) {
            while z[k + 1] < q as f32 {
                k += 1;
            }
            let dq = q as f32 - v[k] as f32;
            *dst = dq * dq + f[v[k]];
        }
        d
    }

    // Columns, then rows.
    for x in 0..w {
        let col: Vec<f32> = (0..h).map(|y| d2[y * w + x]).collect();
        let out = dt1d(&col);
        for (y, v) in out.into_iter().enumerate() {
            d2[y * w + x] = v;
        }
    }
    for y in 0..h {
        let row: Vec<f32> = d2[y * w..(y + 1) * w].to_vec();
        let out = dt1d(&row);
        d2[y * w..(y + 1) * w].copy_from_slice(&out);
    }
    d2.into_iter().map(|v| if v >= 1e17 { f32::INFINITY } else { v.sqrt() }).collect()
}

/// Boundary pixels of a class: labeled pixels with at least one 4-neighbour
/// of a different label (image border counts as different).
pub fn boundary_mask(labels: &[u8], w: usize, h: usize, class: u8) -> Vec<bool> {
    assert_eq!(labels.len(), w * h);
    let mut out = vec![false; w * h];
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if labels[i] != class {
                continue;
            }
            let edge = x == 0
                || y == 0
                || x == w - 1
                || y == h - 1
                || labels[i - 1] != class
                || labels[i + 1] != class
                || labels[i - w] != class
                || labels[i + w] != class;
            out[i] = edge;
        }
    }
    out
}

/// Directed statistics from one boundary to another.
fn directed(from: &[bool], to_dt: &[f32]) -> Option<(f32, f32)> {
    let mut max = 0.0f32;
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for (i, &f) in from.iter().enumerate() {
        if f {
            let d = to_dt[i];
            if !d.is_finite() {
                return None;
            }
            max = max.max(d);
            sum += d as f64;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((max, (sum / n as f64) as f32))
    }
}

/// Symmetric Hausdorff distance and average symmetric surface distance of a
/// class between prediction and ground truth. `None` when either map lacks
/// the class entirely.
pub fn hausdorff(pred: &[u8], truth: &[u8], w: usize, h: usize, class: u8) -> Option<(f32, f32)> {
    let bp = boundary_mask(pred, w, h, class);
    let bt = boundary_mask(truth, w, h, class);
    if !bp.iter().any(|&b| b) || !bt.iter().any(|&b| b) {
        return None;
    }
    let dt_p = distance_transform(&bp, w, h);
    let dt_t = distance_transform(&bt, w, h);
    let (max_pt, avg_pt) = directed(&bp, &dt_t)?;
    let (max_tp, avg_tp) = directed(&bt, &dt_p)?;
    Some((max_pt.max(max_tp), (avg_pt + avg_tp) / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(w: usize, h: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> Vec<u8> {
        let mut m = vec![0u8; w * h];
        for y in y0..y1 {
            for x in x0..x1 {
                m[y * w + x] = 1;
            }
        }
        m
    }

    #[test]
    fn distance_transform_exact_on_point() {
        let mut mask = vec![false; 25];
        mask[12] = true; // centre of 5x5
        let dt = distance_transform(&mask, 5, 5);
        assert_eq!(dt[12], 0.0);
        assert!((dt[11] - 1.0).abs() < 1e-4);
        assert!((dt[6] - 2.0f32.sqrt()).abs() < 1e-4); // diagonal
        assert!((dt[0] - 8.0f32.sqrt()).abs() < 1e-4); // corner
    }

    #[test]
    fn empty_mask_is_infinite() {
        let dt = distance_transform(&[false; 9], 3, 3);
        assert!(dt.iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn boundary_of_filled_square() {
        let m = square(8, 8, 2, 2, 6, 6); // 4x4 block
        let labels: Vec<u8> = m.clone();
        let b = boundary_mask(&labels, 8, 8, 1);
        // 4x4 block: 12 boundary pixels (all but the inner 2x2).
        assert_eq!(b.iter().filter(|&&v| v).count(), 12);
    }

    #[test]
    fn identical_maps_have_zero_hausdorff() {
        let m = square(10, 10, 2, 3, 7, 8);
        let (hd, asd) = hausdorff(&m, &m, 10, 10, 1).unwrap();
        assert_eq!(hd, 0.0);
        assert_eq!(asd, 0.0);
    }

    #[test]
    fn shifted_square_has_shift_distance() {
        let a = square(16, 16, 2, 2, 6, 6);
        let b = square(16, 16, 5, 2, 9, 6); // shifted +3 in x
        let (hd, asd) = hausdorff(&a, &b, 16, 16, 1).unwrap();
        assert!((hd - 3.0).abs() < 1e-4, "hd {hd}");
        assert!(asd > 0.5 && asd <= 3.0, "asd {asd}");
    }

    #[test]
    fn missing_class_yields_none() {
        let a = square(8, 8, 1, 1, 4, 4);
        let empty = vec![0u8; 64];
        assert!(hausdorff(&a, &empty, 8, 8, 1).is_none());
        assert!(hausdorff(&a, &a, 8, 8, 2).is_none());
    }
}
