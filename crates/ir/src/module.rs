//! The typed graph IR: one node vocabulary for every SENECA executor.
//!
//! A [`Module`] is a single-input / single-output DAG in topological order,
//! tagged with an explicit element dtype ([`DType`]). The FP32 inference
//! graph, the quantized INT8 graph and the DPU compiler all convert into
//! this one representation, run the same rewrite passes
//! ([`crate::passes`]) and lower through the same planner
//! ([`crate::plan::ExecPlan`]) — fusion and layout knowledge lives here
//! once instead of per-executor.
//!
//! Conv/TConv nodes carry their kernel as a [`ConvKernel`]: FP32 weights
//! plus bias, or INT8 weights plus accumulator-scale bias and the fix
//! positions the node was calibrated for. Quantisation is an attribute of
//! the node, not a separate graph type — per-layer bitwidth experiments
//! only have to touch this enum.

use crate::plan::ExecPlan;
use crate::shape::infer_shapes;
use seneca_tensor::norm::BnState;
use seneca_tensor::quantized::{Bitwidth, QTensor};
use seneca_tensor::{Shape4, Tensor};
use serde::{Deserialize, Serialize};

/// Element dtype of a module's activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit float (reference / GPU-baseline semantics).
    F32,
    /// Symmetric INT8 with power-of-two scales (DPU semantics).
    I8,
}

/// The weights of a (transpose) convolution, dtype-resolved.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ConvKernel {
    /// FP32 weights and bias.
    F32 {
        /// Weights: `[C_out, C_in, 3, 3]` for conv, `[C_in, C_out, 2, 2]`
        /// for transpose conv.
        w: Tensor,
        /// Bias (may be empty).
        b: Vec<f32>,
    },
    /// Integer weights, bias at accumulator scale, calibrated fix positions.
    /// The weight *bitwidth* is a per-node attribute: `W4` kernels store
    /// their weights as `i8` values confined to `[-8, 7]` (nibble packing
    /// happens in the lowered weight panels), so every unpacked execution
    /// path handles mixed W8/W4 graphs unchanged.
    I8 {
        /// Integer weights with their fix position (layouts as in `F32`).
        w: QTensor,
        /// Bias at accumulator scale (`in_fp + w.fix_pos()`).
        bias: Vec<i32>,
        /// Input activation fix position the node was calibrated for.
        in_fp: i32,
        /// Output activation fix position.
        out_fp: i32,
        /// Weight bitwidth (activations stay INT8 either way).
        wbits: Bitwidth,
    },
}

impl ConvKernel {
    /// `C_in` expected on the node input (`transpose` picks the tconv
    /// weight layout).
    pub fn c_in(&self, transpose: bool) -> usize {
        let s = match self {
            ConvKernel::F32 { w, .. } => w.shape(),
            ConvKernel::I8 { w, .. } => w.shape(),
        };
        if transpose {
            s.n
        } else {
            s.c
        }
    }

    /// `C_out` produced by the node.
    pub fn c_out(&self, transpose: bool) -> usize {
        let s = match self {
            ConvKernel::F32 { w, .. } => w.shape(),
            ConvKernel::I8 { w, .. } => w.shape(),
        };
        if transpose {
            s.c
        } else {
            s.n
        }
    }

    /// The INT8 requantisation shift (`in_fp + fp_w - out_fp`); panics on an
    /// FP32 kernel.
    pub fn shift(&self) -> i32 {
        match self {
            ConvKernel::I8 { w, in_fp, out_fp, .. } => in_fp + w.fix_pos() - out_fp,
            ConvKernel::F32 { .. } => panic!("shift() on an FP32 kernel"),
        }
    }

    /// Weight bitwidth of the kernel (`W8` for FP32 kernels, which have no
    /// narrower representation).
    pub fn wbits(&self) -> Bitwidth {
        match self {
            ConvKernel::I8 { wbits, .. } => *wbits,
            ConvKernel::F32 { .. } => Bitwidth::W8,
        }
    }
}

/// Layout of one pre-packed weight-panel slot, recorded at pack-slot
/// assignment time so the lowering and the executor agree on the panel
/// format without re-deriving it from the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackFormat {
    /// `f32` panels ([`seneca_tensor::gemm::PackedA<f32>`]).
    F32,
    /// `i8` panels ([`seneca_tensor::gemm::PackedA<i8>`]).
    I8,
    /// Nibble-packed INT4 panels ([`seneca_tensor::gemm::PackedA4`]), two
    /// weights per byte — half the panel bytes of `I8`.
    I4,
}

/// A pack-slot assignment: where this node's pre-packed weight panels live
/// in the lowered program, and in which format they are materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackSlot {
    /// Index into the lowered program's pack table.
    pub slot: usize,
    /// Panel layout, derived from the kernel dtype and weight bitwidth.
    pub format: PackFormat,
}

/// Attributes shared by conv and transpose-conv nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvAttrs {
    /// The kernel (weights + bias + quantisation, dtype-resolved).
    pub kernel: ConvKernel,
    /// ReLU fused into the GEMM epilogue.
    pub relu: bool,
    /// Pack slot assigned by [`crate::passes::assign_pack_slots`]: index and
    /// format of this node's pre-packed weight panels in the lowered
    /// program. `None` until the pass runs (weights then pack per call).
    pub pack: Option<PackSlot>,
}

/// Requantisation attributes of an INT8 concat.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConcatQ {
    /// Right shift applied to the first input.
    pub shift_a: i32,
    /// Right shift applied to the second input.
    pub shift_b: i32,
    /// Resulting fix position.
    pub out_fp: i32,
}

/// IR operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum IrOp {
    /// Graph input placeholder (exactly one, always node 0).
    Input,
    /// 3x3 stride-1 pad-1 convolution.
    Conv(ConvAttrs),
    /// 2x2 stride-2 transpose convolution.
    TConv(ConvAttrs),
    /// Batch normalisation (inference form; FP32 modules only, folded away
    /// by [`crate::passes::fold_batchnorm`]).
    BatchNorm {
        /// Running statistics and affine parameters.
        bn: BnState,
    },
    /// Standalone ReLU (fused into the producing conv by
    /// [`crate::passes::fuse_relu`] when the edge is exclusive).
    Relu,
    /// 2x2 stride-2 max pool (fix position unchanged in INT8).
    MaxPool2x2,
    /// Channel concat of two inputs; INT8 modules carry alignment shifts.
    Concat {
        /// INT8 requantisation (None for FP32).
        requant: Option<ConcatQ>,
    },
    /// Dropout (identity at inference; stripped by
    /// [`crate::passes::strip_identities`]).
    Dropout {
        /// Drop rate recorded for provenance.
        rate: f32,
    },
    /// Channel-wise softmax (FP32 only; stripped for DPU-bound lowerings).
    Softmax,
}

impl IrOp {
    /// Trace/listing mnemonic, matching the historical per-executor names
    /// (`conv3x3` vs `qconv` etc.) so profiles stay comparable.
    pub fn mnemonic(&self, dtype: DType) -> &'static str {
        match (self, dtype) {
            (IrOp::Input, _) => "input",
            (IrOp::Conv(_), DType::F32) => "conv3x3",
            (IrOp::Conv(_), DType::I8) => "qconv",
            (IrOp::TConv(_), DType::F32) => "tconv2x2",
            (IrOp::TConv(_), DType::I8) => "qtconv",
            (IrOp::BatchNorm { .. }, _) => "batchnorm",
            (IrOp::Relu, _) => "relu",
            (IrOp::MaxPool2x2, DType::F32) => "maxpool2x2",
            (IrOp::MaxPool2x2, DType::I8) => "qmaxpool",
            (IrOp::Concat { .. }, DType::F32) => "concat",
            (IrOp::Concat { .. }, DType::I8) => "qconcat",
            (IrOp::Dropout { .. }, _) => "dropout",
            (IrOp::Softmax, _) => "softmax",
        }
    }
}

/// An IR node: operation plus input node ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IrNode {
    /// The operation.
    pub op: IrOp,
    /// Input node ids (empty for `Input`, two for `Concat`, else one).
    pub inputs: Vec<usize>,
}

/// A typed single-input / single-output inference DAG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Module {
    /// Nodes; `nodes[0]` is always [`IrOp::Input`], ids are vector indices.
    pub nodes: Vec<IrNode>,
    /// Id of the output node.
    pub output: usize,
    /// Human-readable model name.
    pub name: String,
    /// Activation dtype.
    pub dtype: DType,
    /// Fix position of the INT8 input (0 for FP32 modules).
    pub input_fp: i32,
    /// Fix position of the INT8 output (0 for FP32 modules).
    pub output_fp: i32,
}

impl Module {
    /// Creates an empty module of the given dtype containing only the input
    /// node.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        Self {
            nodes: vec![IrNode { op: IrOp::Input, inputs: vec![] }],
            output: 0,
            name: name.into(),
            dtype,
            input_fp: 0,
            output_fp: 0,
        }
    }

    /// Appends a node and returns its id. Rejects forward references.
    pub fn push(&mut self, op: IrOp, inputs: Vec<usize>) -> usize {
        for &i in &inputs {
            assert!(i < self.nodes.len(), "forward reference in graph");
        }
        self.nodes.push(IrNode { op, inputs });
        self.output = self.nodes.len() - 1;
        self.output
    }

    /// Infers every node's output shape for a given input shape. Panics on
    /// structurally corrupt graphs (mismatched conv `C_in`, unequal concat
    /// geometries) rather than mis-executing.
    pub fn shapes(&self, input: Shape4) -> Vec<Shape4> {
        infer_shapes(self, input)
    }

    /// Output fix position per node (propagated through fix-transparent
    /// ops). All zero for FP32 modules.
    pub fn fix_positions(&self) -> Vec<i32> {
        let mut fps: Vec<i32> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let fp = match &node.op {
                IrOp::Input => self.input_fp,
                IrOp::Conv(a) | IrOp::TConv(a) => match &a.kernel {
                    ConvKernel::I8 { out_fp, .. } => *out_fp,
                    ConvKernel::F32 { .. } => 0,
                },
                IrOp::Concat { requant: Some(q) } => q.out_fp,
                IrOp::Concat { requant: None }
                | IrOp::BatchNorm { .. }
                | IrOp::Relu
                | IrOp::MaxPool2x2
                | IrOp::Dropout { .. }
                | IrOp::Softmax => fps[node.inputs[0]],
            };
            fps.push(fp);
        }
        fps
    }

    /// Lowers the module into a liveness-planned [`ExecPlan`] for the given
    /// input geometry.
    pub fn plan(&self, input: Shape4) -> ExecPlan {
        self.plan_padded(input, |c| c)
    }

    /// [`Module::plan`] over channel-padded element counts: node `i`
    /// contributes `n * h * w * pad_c(c)` elements. This is the single
    /// ICP-padding hook shared by the host executor arenas (`pad_c`
    /// identity) and the DPU compiler's DDR accounting
    /// (`pad_c = arch.pad_channels`), so the two can never drift.
    pub fn plan_padded(&self, input: Shape4, pad_c: impl Fn(usize) -> usize) -> ExecPlan {
        let shapes = self.shapes(input);
        let elems: Vec<usize> = shapes.iter().map(|s| s.n * s.hw() * pad_c(s.c)).collect();
        let inputs: Vec<&[usize]> = self.nodes.iter().map(|n| n.inputs.as_slice()).collect();
        let mut plan = ExecPlan::build(&inputs, &elems, self.output);
        plan.set_work_bytes(self.gemm_work_bytes(&shapes));
        plan
    }

    /// Peak per-frame GEMM work-buffer bytes under the implicit-GEMM route:
    /// for each conv/tconv node, the thread-local B panels the activation
    /// tiles gather into, plus — for nodes without a pack slot — the
    /// per-call A panels (and for unpacked tconvs the repacked weights and
    /// replicated bias). The buffers are reused node to node, so the plan's
    /// figure is the max, not the sum. Mirrors what the kernels actually
    /// allocate via [`seneca_tensor::gemm::packed_a_len`] /
    /// [`seneca_tensor::gemm::packed_b_len`].
    fn gemm_work_bytes(&self, shapes: &[Shape4]) -> u64 {
        use seneca_tensor::gemm::{packed_a_len, packed_b_len};
        let es = match self.dtype {
            DType::F32 => 4,
            DType::I8 => 1,
        };
        let mut peak = 0u64;
        for node in &self.nodes {
            let (attrs, transpose) = match &node.op {
                IrOp::Conv(a) => (a, false),
                IrOp::TConv(a) => (a, true),
                _ => continue,
            };
            let s = shapes[node.inputs[0]];
            let c_out = attrs.kernel.c_out(transpose);
            // Per image, not per batch: the per-image loop reuses the same
            // thread-local panels.
            let bytes = if transpose {
                // The input plane is the column matrix: B is [C_in, H*W].
                let mut b = (packed_b_len(s.c, s.hw()) * es) as u64;
                if attrs.pack.is_none() {
                    // Repacked weights + per-row bias + per-call A panels.
                    b += (4 * c_out * s.c * es) as u64;
                    b += (4 * c_out * 4) as u64;
                    b += (packed_a_len(4 * c_out, s.c) * es) as u64;
                }
                b
            } else {
                // Implicit im2col pack: B is [C_in*9, H*W] gathered in tiles.
                let k = s.c * 9;
                let mut b = (packed_b_len(k, s.hw()) * es) as u64;
                if attrs.pack.is_none() {
                    b += (packed_a_len(c_out, k) * es) as u64;
                }
                b
            };
            peak = peak.max(bytes);
        }
        peak
    }

    /// Number of nodes per mnemonic (listing/statistics helper).
    pub fn op_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for n in &self.nodes {
            *h.entry(n.op.mnemonic(self.dtype)).or_insert(0) += 1;
        }
        h
    }
}
