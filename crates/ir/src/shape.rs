//! The one shape-inference pass.
//!
//! Previously the FP32 graph, the quantized graph and the fused graph each
//! carried their own shape walk; they now all delegate here — either from a
//! full [`Module`] via [`infer_shapes`], or from a borrowed list of
//! lightweight [`ShapeOp`] descriptors via [`infer_shapes_ops`] (so the
//! legacy graph types can reuse the pass without cloning their weight
//! tensors). Panic messages keep the historical per-dtype wording
//! (`conv C_in mismatch` vs `qconv C_in mismatch`) so corrupted-graph
//! diagnostics — and the tests that pin them — are unchanged.

use crate::module::{DType, IrOp, Module};
use seneca_tensor::Shape4;

/// Everything shape inference needs to know about one node — a weight-free
/// projection of [`IrOp`].
#[derive(Debug, Clone, Copy)]
pub enum ShapeOp {
    /// Graph input placeholder.
    Input,
    /// 3x3 same conv: `C` becomes `c_out` (input must carry `c_in`).
    Conv {
        /// Expected input channels.
        c_in: usize,
        /// Produced output channels.
        c_out: usize,
    },
    /// 2x2 stride-2 transpose conv: `C` becomes `c_out`, `H`/`W` double.
    TConv {
        /// Expected input channels.
        c_in: usize,
        /// Produced output channels.
        c_out: usize,
    },
    /// Shape-preserving op (BN, ReLU, dropout, softmax).
    PassThrough,
    /// 2x2 stride-2 max pool.
    MaxPool2x2,
    /// Channel concat of two inputs.
    Concat,
}

fn conv_label(dtype: DType, transpose: bool) -> &'static str {
    match (dtype, transpose) {
        (DType::F32, false) => "conv",
        (DType::I8, false) => "qconv",
        (DType::F32, true) => "tconv",
        (DType::I8, true) => "qtconv",
    }
}

/// Infers every node's output shape from weight-free descriptors. Panics on
/// structurally corrupt graphs (mismatched conv `C_in`, unequal concat
/// geometries) rather than mis-executing.
pub fn infer_shapes_ops(ops: &[(ShapeOp, &[usize])], dtype: DType, input: Shape4) -> Vec<Shape4> {
    let mut shapes: Vec<Shape4> = Vec::with_capacity(ops.len());
    for (op, inputs) in ops {
        let s = match *op {
            ShapeOp::Input => input,
            ShapeOp::Conv { c_in, c_out } => {
                let i: Shape4 = shapes[inputs[0]];
                assert_eq!(c_in, i.c, "{} C_in mismatch", conv_label(dtype, false));
                i.with_c(c_out)
            }
            ShapeOp::TConv { c_in, c_out } => {
                let i: Shape4 = shapes[inputs[0]];
                assert_eq!(c_in, i.c, "{} C_in mismatch", conv_label(dtype, true));
                i.with_c(c_out).upsampled2x2()
            }
            ShapeOp::PassThrough => shapes[inputs[0]],
            ShapeOp::MaxPool2x2 => shapes[inputs[0]].pooled2x2(),
            ShapeOp::Concat => {
                let a = shapes[inputs[0]];
                let b = shapes[inputs[1]];
                match dtype {
                    DType::F32 => {
                        assert_eq!((a.n, a.h, a.w), (b.n, b.h, b.w), "concat mismatch")
                    }
                    DType::I8 => {
                        assert_eq!((a.n, a.h, a.w), (b.n, b.h, b.w), "qconcat geometry mismatch")
                    }
                }
                a.with_c(a.c + b.c)
            }
        };
        shapes.push(s);
    }
    shapes
}

/// [`infer_shapes_ops`] over a full [`Module`].
pub fn infer_shapes(m: &Module, input: Shape4) -> Vec<Shape4> {
    let ops: Vec<(ShapeOp, &[usize])> = m
        .nodes
        .iter()
        .map(|node| {
            let op = match &node.op {
                IrOp::Input => ShapeOp::Input,
                IrOp::Conv(a) => {
                    ShapeOp::Conv { c_in: a.kernel.c_in(false), c_out: a.kernel.c_out(false) }
                }
                IrOp::TConv(a) => {
                    ShapeOp::TConv { c_in: a.kernel.c_in(true), c_out: a.kernel.c_out(true) }
                }
                IrOp::BatchNorm { .. } | IrOp::Relu | IrOp::Dropout { .. } | IrOp::Softmax => {
                    ShapeOp::PassThrough
                }
                IrOp::MaxPool2x2 => ShapeOp::MaxPool2x2,
                IrOp::Concat { .. } => ShapeOp::Concat,
            };
            (op, node.inputs.as_slice())
        })
        .collect();
    infer_shapes_ops(&ops, m.dtype, input)
}
