//! Rewrite passes over the typed IR.
//!
//! Each pass is a whole-module rebuild with an id remap — nodes that fold
//! into their producer simply alias the producer's new id, so downstream
//! edges rewire for free and the node vocabulary never grows transient
//! "fused" variants. The canonical frontend pipeline is
//! BN fold → ReLU fusion → identity strip → pack-slot assignment, with
//! liveness planning ([`crate::plan::ExecPlan`]) as the final pass at
//! lowering time.

use crate::module::{ConvKernel, IrOp, Module, PackFormat, PackSlot};
use seneca_tensor::norm::fold_bn_into_conv;
use seneca_tensor::quantized::Bitwidth;
use serde::{Deserialize, Serialize};

/// What the pass pipeline did to a module, for listings and smoke gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassStats {
    /// BatchNorm nodes folded into their producing conv.
    pub bn_folded: usize,
    /// Standalone ReLU nodes fused into a conv/tconv epilogue.
    pub relu_fused: usize,
    /// Inference-identity nodes (dropout, optionally softmax) removed.
    pub identities_removed: usize,
    /// Weight tensors given a pack slot (packed once at model load).
    pub pack_slots: usize,
    /// Of those, slots materialized as nibble-packed INT4 panels.
    pub pack_slots_i4: usize,
}

/// Consumers per node id; the module output counts as one extra consumer so
/// a value feeding the output is never treated as exclusively owned.
fn consumer_counts(m: &Module) -> Vec<usize> {
    let mut counts = vec![0usize; m.nodes.len()];
    for node in &m.nodes {
        for &i in &node.inputs {
            counts[i] += 1;
        }
    }
    counts[m.output] += 1;
    counts
}

/// Shell of a rebuilt module: same name/dtype/fix positions, input node only.
fn rebuilt_shell(m: &Module) -> Module {
    let mut new = Module::new(m.name.clone(), m.dtype);
    new.input_fp = m.input_fp;
    new.output_fp = m.output_fp;
    new
}

/// Folds inference BatchNorm into the preceding convolution's weights and
/// bias (`bn(conv(x, w) + b) == conv(x, w') + b'`), exactly as the Vitis AI
/// quantizer does before calibration. Returns the number of BN nodes folded.
///
/// A BN whose producing conv feeds other consumers too is left standalone
/// (folding would change the value those consumers see); a BN after
/// anything that is not a convolution panics, as the legacy fuser did.
pub fn fold_batchnorm(m: &mut Module) -> usize {
    let consumers = consumer_counts(m);
    let mut new = rebuilt_shell(m);
    let mut remap = vec![0usize; m.nodes.len()];
    let mut folded = 0;
    for (i, node) in m.nodes.iter().enumerate().skip(1) {
        if let IrOp::BatchNorm { bn } = &node.op {
            let j = node.inputs[0];
            match &mut new.nodes[remap[j]].op {
                IrOp::Conv(a) if consumers[j] == 1 => {
                    let ConvKernel::F32 { w, b } = &a.kernel else {
                        panic!("BatchNorm after a quantized conv unsupported")
                    };
                    let (w2, b2) = fold_bn_into_conv(w, b, bn);
                    a.kernel = ConvKernel::F32 { w: w2, b: b2 };
                    remap[i] = remap[j];
                    folded += 1;
                    continue;
                }
                IrOp::Conv(_) => {} // shared conv output: keep BN standalone
                other => panic!(
                    "BatchNorm after {:?} unsupported (expected conv)",
                    other.mnemonic(m.dtype)
                ),
            }
        }
        let ins: Vec<usize> = node.inputs.iter().map(|&j| remap[j]).collect();
        remap[i] = new.push(node.op.clone(), ins);
    }
    new.output = remap[m.output];
    *m = new;
    folded
}

/// Fuses standalone ReLU nodes into the conv/tconv GEMM epilogue. A ReLU is
/// fused only when its producer edge is *exclusive* — the conv's sole
/// consumer is this ReLU — because other consumers need the pre-activation
/// value. Returns the number of ReLUs fused.
pub fn fuse_relu(m: &mut Module) -> usize {
    let consumers = consumer_counts(m);
    let mut new = rebuilt_shell(m);
    let mut remap = vec![0usize; m.nodes.len()];
    let mut fused = 0;
    for (i, node) in m.nodes.iter().enumerate().skip(1) {
        if matches!(node.op, IrOp::Relu) {
            let j = node.inputs[0];
            if consumers[j] == 1 {
                if let IrOp::Conv(a) | IrOp::TConv(a) = &mut new.nodes[remap[j]].op {
                    if !a.relu {
                        a.relu = true;
                        remap[i] = remap[j];
                        fused += 1;
                        continue;
                    }
                }
            }
        }
        let ins: Vec<usize> = node.inputs.iter().map(|&j| remap[j]).collect();
        remap[i] = new.push(node.op.clone(), ins);
    }
    new.output = remap[m.output];
    *m = new;
    fused
}

/// Removes nodes that are identities at inference time: dropout always,
/// softmax when `strip_softmax` (DPU-bound lowerings run argmax on logits).
/// Returns the number of nodes removed.
pub fn strip_identities(m: &mut Module, strip_softmax: bool) -> usize {
    let mut new = rebuilt_shell(m);
    let mut remap = vec![0usize; m.nodes.len()];
    let mut removed = 0;
    for (i, node) in m.nodes.iter().enumerate().skip(1) {
        let identity = matches!(node.op, IrOp::Dropout { .. })
            || (strip_softmax && matches!(node.op, IrOp::Softmax));
        if identity {
            remap[i] = remap[node.inputs[0]];
            removed += 1;
            continue;
        }
        let ins: Vec<usize> = node.inputs.iter().map(|&j| remap[j]).collect();
        remap[i] = new.push(node.op.clone(), ins);
    }
    new.output = remap[m.output];
    *m = new;
    removed
}

/// Assigns every conv/tconv weight tensor a pack slot: the index of its
/// pre-packed GEMM panels in the lowered program, plus the panel *format*
/// (f32 / i8 / nibble-packed int4) derived from the kernel dtype and weight
/// bitwidth. Weights are immutable at inference, so packing happens exactly
/// once at model load instead of once per frame. Panics if any node already
/// holds a slot — the pass must run exactly once per module. Returns the
/// number of slots assigned.
pub fn assign_pack_slots(m: &mut Module) -> usize {
    let mut next = 0;
    for node in &mut m.nodes {
        if let IrOp::Conv(a) | IrOp::TConv(a) = &mut node.op {
            assert!(a.pack.is_none(), "pack slot already assigned");
            let format = match &a.kernel {
                ConvKernel::F32 { .. } => PackFormat::F32,
                ConvKernel::I8 { wbits: Bitwidth::W8, .. } => PackFormat::I8,
                ConvKernel::I8 { wbits: Bitwidth::W4, .. } => PackFormat::I4,
            };
            a.pack = Some(PackSlot { slot: next, format });
            next += 1;
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_f32;
    use crate::module::{ConvAttrs, DType};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use seneca_tensor::norm::BnState;
    use seneca_tensor::{Shape4, Tensor};

    fn conv_attrs(c_in: usize, c_out: usize, rng: &mut StdRng) -> ConvAttrs {
        let ws = Shape4::new(c_out, c_in, 3, 3);
        let w = Tensor::from_vec(ws, (0..ws.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let b: Vec<f32> = (0..c_out).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
        ConvAttrs { kernel: ConvKernel::F32 { w, b }, relu: false, pack: None }
    }

    fn random_bn(c: usize, rng: &mut StdRng) -> BnState {
        let mut bn = BnState::new(c);
        for i in 0..c {
            bn.gamma[i] = rng.gen_range(0.5f32..1.5);
            bn.beta[i] = rng.gen_range(-0.5f32..0.5);
            bn.running_mean[i] = rng.gen_range(-0.5f32..0.5);
            bn.running_var[i] = rng.gen_range(0.2f32..2.0);
        }
        bn
    }

    /// BN folding preserves the network function within f32 tolerance.
    #[test]
    fn bn_fold_preserves_outputs_within_f32_tolerance() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Module::new("bn-fold", DType::F32);
        let c = m.push(IrOp::Conv(conv_attrs(2, 3, &mut rng)), vec![0]);
        let bn = m.push(IrOp::BatchNorm { bn: random_bn(3, &mut rng) }, vec![c]);
        m.output = bn;

        let mut folded = m.clone();
        assert_eq!(fold_batchnorm(&mut folded), 1);
        assert_eq!(folded.nodes.len(), 2, "BN node must be gone");

        let s = Shape4::new(1, 2, 6, 6);
        let x = Tensor::from_vec(s, (0..s.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let y_ref = execute_f32(&m, &x);
        let y_fold = execute_f32(&folded, &x);
        let worst = y_ref
            .data()
            .iter()
            .zip(y_fold.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-4, "BN fold drifted by {worst}");
    }

    #[test]
    #[should_panic(expected = "unsupported (expected conv)")]
    fn bn_after_non_conv_panics() {
        let mut m = Module::new("bad-bn", DType::F32);
        let p = m.push(IrOp::MaxPool2x2, vec![0]);
        m.push(IrOp::BatchNorm { bn: BnState::new(2) }, vec![p]);
        fold_batchnorm(&mut m);
    }

    /// A BN on a conv that also feeds another consumer stays standalone.
    #[test]
    fn bn_on_shared_conv_stays_standalone() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut m = Module::new("shared-bn", DType::F32);
        let c = m.push(IrOp::Conv(conv_attrs(2, 2, &mut rng)), vec![0]);
        let bn = m.push(IrOp::BatchNorm { bn: random_bn(2, &mut rng) }, vec![c]);
        let cat = m.push(IrOp::Concat { requant: None }, vec![c, bn]);
        m.output = cat;
        assert_eq!(fold_batchnorm(&mut m), 0);
        assert!(m.nodes.iter().any(|n| matches!(n.op, IrOp::BatchNorm { .. })));
    }

    /// An exclusive conv → relu edge fuses into the epilogue.
    #[test]
    fn relu_fuses_on_exclusive_edge() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut m = Module::new("relu-fuse", DType::F32);
        let c = m.push(IrOp::Conv(conv_attrs(2, 3, &mut rng)), vec![0]);
        let r = m.push(IrOp::Relu, vec![c]);
        m.output = r;
        assert_eq!(fuse_relu(&mut m), 1);
        assert_eq!(m.nodes.len(), 2);
        let IrOp::Conv(a) = &m.nodes[m.output].op else { panic!("conv expected") };
        assert!(a.relu, "relu flag must be set on the conv");
    }

    /// Fusion never crosses a consumed-by-two edge: a skip connection that
    /// reads the pre-activation value keeps the ReLU standalone.
    #[test]
    fn relu_never_fuses_across_consumed_by_two_edge() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut m = Module::new("relu-shared", DType::F32);
        let c = m.push(IrOp::Conv(conv_attrs(2, 2, &mut rng)), vec![0]);
        let r = m.push(IrOp::Relu, vec![c]);
        let cat = m.push(IrOp::Concat { requant: None }, vec![c, r]);
        m.output = cat;
        assert_eq!(fuse_relu(&mut m), 0);
        assert!(m.nodes.iter().any(|n| matches!(n.op, IrOp::Relu)));
        let IrOp::Conv(a) = &m.nodes[1].op else { panic!("conv expected") };
        assert!(!a.relu, "pre-activation consumer forbids fusion");
    }

    /// Dropout always strips; softmax only for DPU-bound lowerings.
    #[test]
    fn strip_removes_dropout_and_optionally_softmax() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut m = Module::new("strip", DType::F32);
        let c = m.push(IrOp::Conv(conv_attrs(2, 3, &mut rng)), vec![0]);
        let d = m.push(IrOp::Dropout { rate: 0.25 }, vec![c]);
        let sm = m.push(IrOp::Softmax, vec![d]);
        m.output = sm;

        let mut host = m.clone();
        assert_eq!(strip_identities(&mut host, false), 1);
        assert!(host.nodes.iter().any(|n| matches!(n.op, IrOp::Softmax)));

        assert_eq!(strip_identities(&mut m, true), 2);
        assert_eq!(m.nodes.len(), 2);
        assert!(matches!(m.nodes[m.output].op, IrOp::Conv(_)));
    }

    /// Every weight tensor gets exactly one pack slot, in node order.
    #[test]
    fn pack_slots_assigned_exactly_once_per_weight() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut m = Module::new("pack", DType::F32);
        let c1 = m.push(IrOp::Conv(conv_attrs(2, 3, &mut rng)), vec![0]);
        let p = m.push(IrOp::MaxPool2x2, vec![c1]);
        let c2 = m.push(IrOp::Conv(conv_attrs(3, 4, &mut rng)), vec![p]);
        m.output = c2;
        assert_eq!(assign_pack_slots(&mut m), 2);
        let slots: Vec<Option<PackSlot>> = m
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                IrOp::Conv(a) | IrOp::TConv(a) => Some(a.pack),
                _ => None,
            })
            .collect();
        assert_eq!(
            slots,
            vec![
                Some(PackSlot { slot: 0, format: PackFormat::F32 }),
                Some(PackSlot { slot: 1, format: PackFormat::F32 })
            ]
        );
    }

    #[test]
    #[should_panic(expected = "pack slot already assigned")]
    fn double_pack_assignment_panics() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut m = Module::new("pack-twice", DType::F32);
        let c = m.push(IrOp::Conv(conv_attrs(2, 2, &mut rng)), vec![0]);
        m.output = c;
        assign_pack_slots(&mut m);
        assign_pack_slots(&mut m);
    }
}
