//! # seneca-ir
//!
//! The typed graph IR at the centre of the SENECA reproduction: one node
//! vocabulary ([`Module`]) with explicit dtype and quantisation attributes,
//! a rewrite-pass pipeline ([`passes`]: BN fold → ReLU fusion → identity
//! strip → pack-slot assignment), and a single lowering path ([`lower`])
//! that ends in liveness planning ([`ExecPlan`]).
//!
//! The FP32 executor, the bit-exact INT8 executor and the DPU compiler all
//! lower through this crate — there is exactly one shape-inference walk,
//! one ICP-padding hook, one planner and one executor loop, where the
//! pre-refactor code kept a parallel node-walk implementation per graph
//! type. Weight tensors are immutable at inference, so the pack-slot pass
//! packs their GEMM panels once at model load; per frame only activation
//! panels are packed, which measurably cuts per-frame latency on the larger
//! Table II models.

pub mod exec;
pub mod lower;
pub mod module;
pub mod passes;
pub mod plan;
pub mod shape;

pub use exec::{execute_f32, FpScratch, QScratch};
pub use lower::{lower, LowerOptions, Lowered, PackedKernel};
pub use module::{
    ConcatQ, ConvAttrs, ConvKernel, DType, IrNode, IrOp, Module, PackFormat, PackSlot,
};
pub use passes::{assign_pack_slots, fold_batchnorm, fuse_relu, strip_identities, PassStats};
pub use plan::ExecPlan;
pub use seneca_tensor::quantized::Bitwidth;
pub use shape::{infer_shapes, infer_shapes_ops, ShapeOp};
