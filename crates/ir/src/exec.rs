//! The one planned executor behind every host backend.
//!
//! A [`crate::lower::Lowered`] program executes out of a per-worker slot
//! arena ([`FpScratch`] / [`QScratch`]): every node writes into its
//! liveness-plan slot, so steady-state inference allocates nothing and the
//! arena holds the peak-live footprint instead of one buffer per node.
//! FP32 and INT8 share the walk; only the kernel dispatch differs. Conv and
//! transpose-conv nodes with a pack slot run their GEMM against the
//! panels packed once at lowering time — per frame only the activation
//! (B-panel) side is packed, directly from the NCHW feature map (implicit
//! GEMM). The arena therefore holds *only* the plan slots: there is no
//! im2col column buffer and no pre-scatter tconv buffer — the conv packs
//! compute the im2col index math inside the tile gather and the tconv
//! stores scatter from the GEMM tile.
//!
//! Outputs are bit-identical to the legacy per-graph executors: the
//! implicit packs produce the same panel bytes the materialized
//! im2col-then-pack route did, and the node arithmetic is byte-for-byte
//! the same kernels.

use crate::lower::{Lowered, PackedKernel};
use crate::module::{ConvKernel, DType, IrOp, Module};
use crate::plan::ExecPlan;
use seneca_tensor::activation::{relu_into, softmax_channels_into};
use seneca_tensor::conv::{conv2d_fused_into, Conv2dParams};
use seneca_tensor::gemm::{GemmEpilogue, PackedA4};
use seneca_tensor::igemm::{
    igemm4_conv_packed, igemm4_tconv2x2_packed, igemm_conv, igemm_conv_packed,
    igemm_tconv2x2_packed, sgemm_conv_packed, sgemm_tconv2x2_packed,
};
use seneca_tensor::im2col::ConvGeom;
use seneca_tensor::norm::batchnorm_inference_into;
use seneca_tensor::pool::maxpool2x2_into;
use seneca_tensor::quantized::{concat_requant_i8, maxpool2x2_i8};
use seneca_tensor::tconv::{qtconv2x2_i8_into, tconv2x2_into};
use seneca_tensor::tensor::concat_channels_into;
use seneca_tensor::{QTensor, QTensorView, Shape4, Tensor, TensorView};

/// Per-worker FP32 execution arena: one `f32` buffer per plan slot, reused
/// across frames. Built by [`Lowered::make_scratch_f32`].
#[derive(Debug, Clone)]
pub struct FpScratch {
    plan: ExecPlan,
    shapes: Vec<Shape4>,
    slots: Vec<Vec<f32>>,
}

impl FpScratch {
    pub(crate) fn new(plan: ExecPlan, shapes: Vec<Shape4>) -> Self {
        let slots = plan.slot_sizes().iter().map(|&e| vec![0.0f32; e]).collect();
        Self { plan, shapes, slots }
    }

    /// The execution plan this arena was built from.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// The input geometry this arena was built for.
    pub fn input_shape(&self) -> Shape4 {
        self.shapes[0]
    }

    /// Total elements actually allocated by this arena. With implicit-GEMM
    /// convolution this is exactly the plan's slot footprint — there is no
    /// auxiliary column/pre-scatter storage to hide.
    pub fn arena_elems(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }
}

/// Per-worker INT8 execution arena: one `i8` buffer per plan slot, reused
/// across frames. Built by [`Lowered::make_scratch_i8`].
#[derive(Debug, Clone)]
pub struct QScratch {
    plan: ExecPlan,
    shapes: Vec<Shape4>,
    fps: Vec<i32>,
    slots: Vec<Vec<i8>>,
}

impl QScratch {
    pub(crate) fn new(plan: ExecPlan, shapes: Vec<Shape4>, fps: Vec<i32>) -> Self {
        let slots = plan.slot_sizes().iter().map(|&e| vec![0i8; e]).collect();
        Self { plan, shapes, fps, slots }
    }

    /// The execution plan this arena was built from.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// The input geometry this arena was built for.
    pub fn input_shape(&self) -> Shape4 {
        self.shapes[0]
    }

    /// Total elements actually allocated by this arena. With implicit-GEMM
    /// convolution this is exactly the plan's slot footprint — there is no
    /// auxiliary column/repack/pre-scatter storage to hide.
    pub fn arena_elems(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Seeds the input node's slot from a quantised frame.
    pub fn load_input(&mut self, input: &QTensor) {
        assert_eq!(input.shape(), self.shapes[0], "scratch input geometry");
        assert_eq!(input.fix_pos(), self.fps[0], "scratch input fix position");
        let s0 = self.plan.slot_of(0);
        self.slots[s0][..input.data().len()].copy_from_slice(input.data());
    }

    /// Borrowed view of one node's output. Valid only while the node's
    /// value is live under the plan (always true for the graph output after
    /// a full walk).
    pub fn node_output(&self, id: usize) -> QTensorView<'_> {
        let s = self.shapes[id];
        QTensorView::new(s, &self.slots[self.plan.slot_of(id)][..s.len()], self.fps[id])
    }
}

impl Lowered {
    /// Executes an FP32 program through the liveness plan. Bit-identical to
    /// the legacy naive walk (dropout is the identity the strip pass
    /// removed); the returned view borrows the scratch and stays valid
    /// until the next frame.
    pub fn execute_f32_into<'s>(
        &self,
        input: &Tensor,
        scratch: &'s mut FpScratch,
    ) -> TensorView<'s> {
        assert_eq!(self.module().dtype, DType::F32, "FP32 execution of a non-FP32 module");
        assert_eq!(input.shape(), scratch.shapes[0], "scratch built for a different input shape");
        let s0 = scratch.plan.slot_of(0);
        scratch.slots[s0][..input.data().len()].copy_from_slice(input.data());
        for i in 1..self.module().nodes.len() {
            self.exec_node_f32(i, scratch);
        }
        let m = self.module();
        let so = scratch.plan.slot_of(m.output);
        let shape = scratch.shapes[m.output];
        TensorView::new(shape, &scratch.slots[so][..shape.len()])
    }

    /// Allocating convenience wrapper around [`Lowered::execute_f32_into`].
    pub fn execute_f32(&self, input: &Tensor) -> Tensor {
        let mut scratch = self.make_scratch_for(input.shape());
        self.execute_f32_into(input, &mut scratch).to_tensor()
    }

    fn exec_node_f32(&self, i: usize, scratch: &mut FpScratch) {
        let m = self.module();
        let node = &m.nodes[i];
        let _sp = seneca_trace::span_bytes(
            "fp32-op",
            node.op.mnemonic(m.dtype),
            (scratch.plan.elems_of(i) * std::mem::size_of::<f32>()) as u64,
        );
        let FpScratch { plan, shapes, slots } = scratch;
        let si = plan.slot_of(i);
        // Take the output buffer out of the arena so input slots stay
        // borrowable; the plan guarantees no live input shares `si`.
        let mut out_buf = std::mem::take(&mut slots[si]);
        let out = &mut out_buf[..plan.elems_of(i)];
        {
            let slots = &*slots;
            let view = |j: usize| -> (Shape4, &[f32]) {
                debug_assert_ne!(plan.slot_of(j), si, "output slot aliases live input {j}");
                (shapes[j], &slots[plan.slot_of(j)][..shapes[j].len()])
            };
            match &node.op {
                IrOp::Input => unreachable!("multiple inputs unsupported"),
                IrOp::Conv(a) => {
                    let (xs, x) = view(node.inputs[0]);
                    let ConvKernel::F32 { w, b } = &a.kernel else {
                        panic!("INT8 kernel in an FP32 module")
                    };
                    match a.pack.map(|p| &self.packs()[p.slot]) {
                        Some(PackedKernel::ConvF32(pa)) => {
                            conv3x3_f32_packed(xs, x, pa, b, a.relu, out);
                        }
                        None => {
                            conv2d_fused_into(xs, x, w, b, a.relu, Conv2dParams::SAME_3X3, out);
                        }
                        Some(_) => panic!("pack slot holds the wrong kernel kind"),
                    }
                }
                IrOp::TConv(a) => {
                    let (xs, x) = view(node.inputs[0]);
                    let ConvKernel::F32 { w, b } = &a.kernel else {
                        panic!("INT8 kernel in an FP32 module")
                    };
                    assert!(!a.relu, "fused ReLU on an FP32 tconv is unsupported");
                    match a.pack.map(|p| &self.packs()[p.slot]) {
                        Some(PackedKernel::TConvF32 { pa, bias4 }) => {
                            tconv2x2_f32_packed(xs, x, pa, bias4, out);
                        }
                        None => {
                            tconv2x2_into(xs, x, w, b, out);
                        }
                        Some(_) => panic!("pack slot holds the wrong kernel kind"),
                    }
                }
                IrOp::BatchNorm { bn } => {
                    let (xs, x) = view(node.inputs[0]);
                    batchnorm_inference_into(xs, x, bn, out);
                }
                IrOp::Relu => {
                    let (_, x) = view(node.inputs[0]);
                    relu_into(x, out);
                }
                IrOp::MaxPool2x2 => {
                    let (xs, x) = view(node.inputs[0]);
                    maxpool2x2_into(xs, x, out);
                }
                IrOp::Concat { requant } => {
                    assert!(requant.is_none(), "requantising concat in an FP32 module");
                    let (sa, a) = view(node.inputs[0]);
                    let (sb, b) = view(node.inputs[1]);
                    concat_channels_into(sa, a, sb, b, out);
                }
                IrOp::Dropout { .. } => {
                    let (_, x) = view(node.inputs[0]);
                    out.copy_from_slice(x);
                }
                IrOp::Softmax => {
                    let (xs, x) = view(node.inputs[0]);
                    softmax_channels_into(xs, x, out);
                }
            }
        }
        scratch.slots[si] = out_buf;
    }

    /// Executes an INT8 program through the liveness plan — bit-identical
    /// to the legacy quantized node walk. The returned view borrows the
    /// arena and stays valid until the next frame.
    pub fn execute_i8_into<'s>(
        &self,
        input: &QTensor,
        scratch: &'s mut QScratch,
    ) -> QTensorView<'s> {
        scratch.load_input(input);
        for id in 1..self.module().nodes.len() {
            self.execute_node_i8(id, scratch);
        }
        scratch.node_output(self.module().output)
    }

    /// Allocating convenience wrapper around [`Lowered::execute_i8_into`].
    pub fn execute_i8(&self, input: &QTensor) -> QTensor {
        let mut scratch = self.make_scratch_i8_for(input.shape());
        self.execute_i8_into(input, &mut scratch).to_qtensor()
    }

    /// Seeds the input node's slot from a quantised frame (DPU runtime
    /// entry point; pairs with [`Lowered::execute_node_i8`]).
    pub fn load_input_i8(&self, input: &QTensor, scratch: &mut QScratch) {
        scratch.load_input(input);
    }

    /// Borrowed view of one node's output (DPU runtime entry point).
    pub fn node_output_i8<'s>(&self, id: usize, scratch: &'s QScratch) -> QTensorView<'s> {
        scratch.node_output(id)
    }

    /// Executes one INT8 node out of the scratch arena. Inputs must still
    /// be live under the plan — running ids in increasing order (as both
    /// [`Lowered::execute_i8_into`] and the compiled DPU instruction stream
    /// do) satisfies this, because a slot is only recycled after its
    /// value's last consumer has run.
    pub fn execute_node_i8(&self, id: usize, scratch: &mut QScratch) {
        let m = self.module();
        assert_eq!(m.dtype, DType::I8, "INT8 execution of a non-INT8 module");
        let node = &m.nodes[id];
        if matches!(node.op, IrOp::Input) {
            return; // seeded by `QScratch::load_input`
        }
        let _sp = seneca_trace::span_bytes(
            "int8-op",
            node.op.mnemonic(m.dtype),
            scratch.plan.elems_of(id) as u64,
        );
        let QScratch { plan, shapes, fps, slots } = scratch;
        let si = plan.slot_of(id);
        // Take the output buffer out of the arena so input slots stay
        // borrowable; the plan guarantees no live input shares `si`.
        let mut out_buf = std::mem::take(&mut slots[si]);
        let out = &mut out_buf[..plan.elems_of(id)];
        {
            let slots = &*slots;
            let view = |j: usize| -> (Shape4, &[i8]) {
                debug_assert_ne!(plan.slot_of(j), si, "output slot aliases live input {j}");
                (shapes[j], &slots[plan.slot_of(j)][..shapes[j].len()])
            };
            match &node.op {
                IrOp::Input => unreachable!(),
                IrOp::Conv(a) => {
                    let j = node.inputs[0];
                    let (xs, x) = view(j);
                    let ConvKernel::I8 { w, bias, in_fp, .. } = &a.kernel else {
                        panic!("FP32 kernel in an INT8 module")
                    };
                    debug_assert_eq!(fps[j], *in_fp, "qconv input fix position");
                    let shift = a.kernel.shift();
                    match a.pack.map(|p| &self.packs()[p.slot]) {
                        Some(PackedKernel::ConvI8(pa)) => {
                            qconv3x3_i8(xs, x, w, Some(pa), bias, shift, a.relu, out);
                        }
                        Some(PackedKernel::ConvI4(pa)) => {
                            qconv3x3_i4(xs, x, pa, bias, shift, a.relu, out);
                        }
                        // Unpacked W4 kernels run the i8 path on their
                        // `[-8, 7]` weight bytes — bit-identical by
                        // construction (the nibble packing is a pure
                        // bandwidth optimisation).
                        None => {
                            qconv3x3_i8(xs, x, w, None, bias, shift, a.relu, out);
                        }
                        Some(_) => panic!("pack slot holds the wrong kernel kind"),
                    }
                }
                IrOp::TConv(a) => {
                    let j = node.inputs[0];
                    let (xs, x) = view(j);
                    let ConvKernel::I8 { w, bias, in_fp, .. } = &a.kernel else {
                        panic!("FP32 kernel in an INT8 module")
                    };
                    debug_assert_eq!(fps[j], *in_fp, "qtconv input fix position");
                    let shift = a.kernel.shift();
                    match a.pack.map(|p| &self.packs()[p.slot]) {
                        Some(PackedKernel::TConvI8 { pa, bias4 }) => {
                            qtconv2x2_i8_packed(xs, x, pa, bias4, shift, a.relu, out);
                        }
                        Some(PackedKernel::TConvI4 { pa, bias4 }) => {
                            qtconv2x2_i4_packed(xs, x, pa, bias4, shift, a.relu, out);
                        }
                        None => {
                            let c_out = w.shape().c;
                            qtconv2x2_i8_into(xs, x, w.data(), c_out, bias, shift, a.relu, out);
                        }
                        Some(_) => panic!("pack slot holds the wrong kernel kind"),
                    }
                }
                IrOp::MaxPool2x2 => {
                    let (xs, x) = view(node.inputs[0]);
                    maxpool2x2_i8(xs, x, out);
                }
                IrOp::Concat { requant } => {
                    let q = requant.as_ref().expect("INT8 concat without requant attributes");
                    let (sa, a) = view(node.inputs[0]);
                    let (sb, b) = view(node.inputs[1]);
                    concat_requant_i8(sa, a, sb, b, q.shift_a, q.shift_b, out);
                }
                IrOp::BatchNorm { .. } | IrOp::Relu | IrOp::Dropout { .. } | IrOp::Softmax => {
                    panic!("{} unsupported in an INT8 module", node.op.mnemonic(m.dtype))
                }
            }
        }
        scratch.slots[si] = out_buf;
    }
}

/// FP32 3x3 same conv against pre-packed weight panels — the arithmetic of
/// [`conv2d_fused_into`] bit for bit, minus the per-call A-pack. The
/// activation panels pack straight from the feature map (implicit GEMM).
fn conv3x3_f32_packed(
    xs: Shape4,
    x: &[f32],
    pa: &seneca_tensor::gemm::PackedA<f32>,
    b: &[f32],
    relu: bool,
    out: &mut [f32],
) -> Shape4 {
    let geom = ConvGeom { c_in: xs.c, h: xs.h, w: xs.w, k: 3, pad: 1, stride: 1 };
    assert_eq!(pa.k(), geom.col_rows(), "packed conv panel K");
    let out_shape = Shape4::new(xs.n, pa.m(), geom.h_out(), geom.w_out());
    assert_eq!(out.len(), out_shape.len(), "output buffer size");
    let epi = match (b.is_empty(), relu) {
        (true, false) => GemmEpilogue::None,
        (false, false) => GemmEpilogue::Bias(b),
        // BiasRelu with an empty slice is a plain ReLU (missing bias reads 0).
        (_, true) => GemmEpilogue::BiasRelu(b),
    };
    for n in 0..xs.n {
        let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
        let y_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
        sgemm_conv_packed(pa, &geom, x_n, y_n, epi);
    }
    out_shape
}

/// FP32 transpose conv against pre-packed co-major `[4*C_out, C_in]` panels
/// — the arithmetic of [`tconv2x2_into`] bit for bit, minus the per-call
/// repack-and-pack. The stride-2 scatter runs in the GEMM tile store.
fn tconv2x2_f32_packed(
    xs: Shape4,
    x: &[f32],
    pa: &seneca_tensor::gemm::PackedA<f32>,
    bias4: &[f32],
    out: &mut [f32],
) -> Shape4 {
    let c_out = pa.m() / 4;
    assert_eq!(pa.k(), xs.c, "packed tconv panel C_in");
    let out_shape = Shape4::new(xs.n, c_out, xs.h * 2, xs.w * 2);
    assert_eq!(out.len(), out_shape.len(), "output buffer size");
    for n in 0..xs.n {
        let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
        let out_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
        // The `[C_in, H*W]` input plane is already the column matrix.
        sgemm_tconv2x2_packed(pa, x_n, xs.h, xs.w, bias4, out_n);
    }
    out_shape
}

/// INT8 3x3 same conv: implicit-GEMM pack + fused-epilogue GEMM (bias add,
/// requantisation and ReLU clamp in the store). With `pa` the weight panels
/// were packed at lowering time; without, the GEMM packs per call.
#[allow(clippy::too_many_arguments)]
fn qconv3x3_i8(
    xs: Shape4,
    x: &[i8],
    w: &seneca_tensor::QTensor,
    pa: Option<&seneca_tensor::gemm::PackedA<i8>>,
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) -> Shape4 {
    let ws = w.shape();
    assert_eq!(x.len(), xs.len(), "qconv input buffer/shape mismatch");
    assert_eq!(ws.c, xs.c, "qconv C_in");
    let geom = ConvGeom { c_in: xs.c, h: xs.h, w: xs.w, k: 3, pad: 1, stride: 1 };
    let out_shape = Shape4::new(xs.n, ws.n, geom.h_out(), geom.w_out());
    assert_eq!(out.len(), out_shape.len(), "qconv output buffer size");
    for n in 0..xs.n {
        let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
        let y_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
        match pa {
            Some(pa) => igemm_conv_packed(pa, &geom, x_n, bias, shift, relu, y_n),
            None => igemm_conv(ws.n, w.data(), &geom, x_n, bias, shift, relu, y_n),
        }
    }
    out_shape
}

/// W4A8 3x3 same conv against nibble-packed weight panels: identical to the
/// packed arm of [`qconv3x3_i8`] but streaming half the weight-panel bytes.
/// Bit-exact vs running the i8 path on the unpacked `[-8, 7]` weights.
fn qconv3x3_i4(
    xs: Shape4,
    x: &[i8],
    pa: &PackedA4,
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) -> Shape4 {
    assert_eq!(x.len(), xs.len(), "qconv input buffer/shape mismatch");
    let geom = ConvGeom { c_in: xs.c, h: xs.h, w: xs.w, k: 3, pad: 1, stride: 1 };
    assert_eq!(pa.k(), geom.col_rows(), "packed qconv panel K");
    let out_shape = Shape4::new(xs.n, pa.m(), geom.h_out(), geom.w_out());
    assert_eq!(out.len(), out_shape.len(), "qconv output buffer size");
    for n in 0..xs.n {
        let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
        let y_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
        igemm4_conv_packed(pa, &geom, x_n, bias, shift, relu, y_n);
    }
    out_shape
}

/// W4A8 transpose conv against nibble-packed co-major `[4*C_out, C_in]`
/// panels — the arithmetic of [`qtconv2x2_i8_packed`] with half the
/// weight-panel bytes. The scatter runs in the GEMM tile store.
fn qtconv2x2_i4_packed(
    xs: Shape4,
    x: &[i8],
    pa: &PackedA4,
    bias4: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) -> Shape4 {
    let c_out = pa.m() / 4;
    assert_eq!(pa.k(), xs.c, "packed qtconv panel C_in");
    let out_shape = Shape4::new(xs.n, c_out, xs.h * 2, xs.w * 2);
    assert_eq!(out.len(), out_shape.len(), "qtconv output buffer size");
    for n in 0..xs.n {
        let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
        let out_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
        igemm4_tconv2x2_packed(pa, x_n, xs.h, xs.w, bias4, shift, relu, out_n);
    }
    out_shape
}

/// INT8 transpose conv against pre-packed co-major panels: one fused GEMM
/// per image with the stride-2 scatter in the tile store — no pre-scatter
/// buffer.
fn qtconv2x2_i8_packed(
    xs: Shape4,
    x: &[i8],
    pa: &seneca_tensor::gemm::PackedA<i8>,
    bias4: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) -> Shape4 {
    let c_out = pa.m() / 4;
    assert_eq!(pa.k(), xs.c, "packed qtconv panel C_in");
    let out_shape = Shape4::new(xs.n, c_out, xs.h * 2, xs.w * 2);
    assert_eq!(out.len(), out_shape.len(), "qtconv output buffer size");
    for n in 0..xs.n {
        let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
        let out_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
        igemm_tconv2x2_packed(pa, x_n, xs.h, xs.w, bias4, shift, relu, out_n);
    }
    out_shape
}

/// Lowers `m` with [`crate::lower::LowerOptions::reference`] and executes
/// it on one FP32 frame (test/diagnostic convenience).
pub fn execute_f32(m: &Module, x: &Tensor) -> Tensor {
    let lowered =
        crate::lower::lower(m.clone(), x.shape(), &crate::lower::LowerOptions::reference());
    lowered.execute_f32(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use crate::module::{ConcatQ, ConvAttrs};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use seneca_tensor::norm::BnState;
    use seneca_tensor::quantized::{choose_fix_pos, choose_fix_pos_bits, Bitwidth};

    fn rand_tensor(shape: Shape4, rng: &mut StdRng) -> Tensor {
        Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    }

    /// A small FP32 module covering every op: conv(+relu attr), bn,
    /// standalone relu, pool, tconv, concat, dropout, softmax.
    fn f32_module(rng: &mut StdRng) -> Module {
        let conv = |c_in: usize, c_out: usize, relu: bool, rng: &mut StdRng| {
            let w = rand_tensor(Shape4::new(c_out, c_in, 3, 3), rng);
            let b: Vec<f32> = (0..c_out).map(|_| rng.gen_range(-0.2f32..0.2)).collect();
            IrOp::Conv(ConvAttrs { kernel: ConvKernel::F32 { w, b }, relu, pack: None })
        };
        let mut m = Module::new("exec-f32", DType::F32);
        let c1 = m.push(conv(2, 4, true, rng), vec![0]);
        let mut bn = BnState::new(4);
        for i in 0..4 {
            bn.gamma[i] = rng.gen_range(0.5f32..1.5);
            bn.beta[i] = rng.gen_range(-0.3f32..0.3);
            bn.running_mean[i] = rng.gen_range(-0.3f32..0.3);
            bn.running_var[i] = rng.gen_range(0.3f32..1.5);
        }
        let b1 = m.push(IrOp::BatchNorm { bn }, vec![c1]);
        let r1 = m.push(IrOp::Relu, vec![b1]);
        let p1 = m.push(IrOp::MaxPool2x2, vec![r1]);
        let c2 = m.push(conv(4, 6, true, rng), vec![p1]);
        let wt = rand_tensor(Shape4::new(6, 4, 2, 2), rng);
        let bt: Vec<f32> = (0..4).map(|_| rng.gen_range(-0.2f32..0.2)).collect();
        let t = m.push(
            IrOp::TConv(ConvAttrs {
                kernel: ConvKernel::F32 { w: wt, b: bt },
                relu: false,
                pack: None,
            }),
            vec![c2],
        );
        let cat = m.push(IrOp::Concat { requant: None }, vec![r1, t]);
        let d = m.push(IrOp::Dropout { rate: 0.5 }, vec![cat]);
        let sm = m.push(IrOp::Softmax, vec![d]);
        m.output = sm;
        m
    }

    /// Packed (pack-once) and unpacked (pack-per-call) lowerings are
    /// bit-exact — the pack-slot pass is purely a latency optimisation.
    #[test]
    fn packed_lowering_is_bit_exact_f32() {
        let mut rng = StdRng::seed_from_u64(31);
        let m = f32_module(&mut rng);
        let s = Shape4::new(2, 2, 8, 8);
        let x = rand_tensor(s, &mut rng);
        let packed = lower(m.clone(), s, &LowerOptions::reference());
        let unpacked = lower(m, s, &LowerOptions::reference_unpacked());
        assert!(packed.stats().pack_slots > 0);
        assert_eq!(unpacked.stats().pack_slots, 0);
        let y_p = packed.execute_f32(&x);
        let y_u = unpacked.execute_f32(&x);
        assert_eq!(y_p.data(), y_u.data());
    }

    fn qconv_kernel(
        c_in: usize,
        c_out: usize,
        in_fp: i32,
        out_fp: i32,
        rng: &mut StdRng,
    ) -> ConvKernel {
        let w = rand_tensor(Shape4::new(c_out, c_in, 3, 3), rng);
        let w_fp = choose_fix_pos(w.abs_max());
        let wq = QTensor::quantize(&w, w_fp);
        let bias: Vec<i32> = (0..c_out).map(|_| rng.gen_range(-40i32..40)).collect();
        ConvKernel::I8 { w: wq, bias, in_fp, out_fp, wbits: Bitwidth::W8 }
    }

    /// A small INT8 module: qconv → qmaxpool → qtconv → qconcat.
    fn i8_module(rng: &mut StdRng) -> Module {
        let mut m = Module::new("exec-i8", DType::I8);
        m.input_fp = 6;
        let c1 = m.push(
            IrOp::Conv(ConvAttrs { kernel: qconv_kernel(2, 4, 6, 5, rng), relu: true, pack: None }),
            vec![0],
        );
        let p1 = m.push(IrOp::MaxPool2x2, vec![c1]);
        let wt = rand_tensor(Shape4::new(4, 3, 2, 2), rng);
        let wt_fp = choose_fix_pos(wt.abs_max());
        let wq = QTensor::quantize(&wt, wt_fp);
        let bias: Vec<i32> = (0..3).map(|_| rng.gen_range(-30i32..30)).collect();
        let t = m.push(
            IrOp::TConv(ConvAttrs {
                kernel: ConvKernel::I8 { w: wq, bias, in_fp: 5, out_fp: 4, wbits: Bitwidth::W8 },
                relu: false,
                pack: None,
            }),
            vec![p1],
        );
        let cat = m.push(
            IrOp::Concat { requant: Some(ConcatQ { shift_a: 1, shift_b: 0, out_fp: 4 }) },
            vec![c1, t],
        );
        m.output = cat;
        m.output_fp = 4;
        m
    }

    #[test]
    fn packed_lowering_is_bit_exact_i8() {
        let mut rng = StdRng::seed_from_u64(32);
        let m = i8_module(&mut rng);
        let s = Shape4::new(1, 2, 8, 8);
        let x = QTensor::quantize(&rand_tensor(s, &mut rng), 6);
        let packed = lower(m.clone(), s, &LowerOptions::reference());
        let unpacked = lower(m, s, &LowerOptions::reference_unpacked());
        let y_p = packed.execute_i8(&x);
        let y_u = unpacked.execute_i8(&x);
        assert_eq!(y_p.data(), y_u.data());
        assert_eq!(y_p.fix_pos(), 4);
    }

    /// A mixed W4A8/W8A8 module: W4 qconv → qmaxpool → W4 qtconv → qconcat
    /// with a W8 qconv on the skip path.
    fn mixed_module(rng: &mut StdRng) -> Module {
        let w4_kernel = |c_in: usize, c_out: usize, in_fp: i32, out_fp: i32, rng: &mut StdRng| {
            let w = rand_tensor(Shape4::new(c_out, c_in, 3, 3), rng);
            let w_fp = choose_fix_pos_bits(w.abs_max(), Bitwidth::W4);
            let wq = QTensor::quantize_bits(&w, w_fp, Bitwidth::W4);
            let bias: Vec<i32> = (0..c_out).map(|_| rng.gen_range(-40i32..40)).collect();
            ConvKernel::I8 { w: wq, bias, in_fp, out_fp, wbits: Bitwidth::W4 }
        };
        let mut m = Module::new("exec-mixed", DType::I8);
        m.input_fp = 6;
        let c1 = m.push(
            IrOp::Conv(ConvAttrs { kernel: w4_kernel(2, 4, 6, 5, rng), relu: true, pack: None }),
            vec![0],
        );
        let c2 = m.push(
            IrOp::Conv(ConvAttrs { kernel: qconv_kernel(4, 4, 5, 5, rng), relu: true, pack: None }),
            vec![c1],
        );
        let p1 = m.push(IrOp::MaxPool2x2, vec![c2]);
        let wt = rand_tensor(Shape4::new(4, 3, 2, 2), rng);
        let wt_fp = choose_fix_pos_bits(wt.abs_max(), Bitwidth::W4);
        let wq = QTensor::quantize_bits(&wt, wt_fp, Bitwidth::W4);
        let bias: Vec<i32> = (0..3).map(|_| rng.gen_range(-30i32..30)).collect();
        let t = m.push(
            IrOp::TConv(ConvAttrs {
                kernel: ConvKernel::I8 { w: wq, bias, in_fp: 5, out_fp: 4, wbits: Bitwidth::W4 },
                relu: false,
                pack: None,
            }),
            vec![p1],
        );
        let cat = m.push(
            IrOp::Concat { requant: Some(ConcatQ { shift_a: 1, shift_b: 0, out_fp: 4 }) },
            vec![c2, t],
        );
        m.output = cat;
        m.output_fp = 4;
        m
    }

    /// Mixed-precision modules execute bit-exactly whether the W4 weights
    /// run nibble-packed (pack slots) or through the plain i8 path
    /// (unpacked) — the packing is a pure bandwidth optimisation.
    #[test]
    fn packed_lowering_is_bit_exact_mixed() {
        let mut rng = StdRng::seed_from_u64(35);
        let m = mixed_module(&mut rng);
        let s = Shape4::new(1, 2, 8, 8);
        let x = QTensor::quantize(&rand_tensor(s, &mut rng), 6);
        let packed = lower(m.clone(), s, &LowerOptions::reference());
        let unpacked = lower(m, s, &LowerOptions::reference_unpacked());
        assert_eq!(packed.stats().pack_slots, 3);
        assert_eq!(packed.stats().pack_slots_i4, 2, "W4 conv + W4 tconv slots");
        // The nibble panels really are half the i8 bytes: the lone W8 conv
        // accounts for the rest.
        assert!(packed.packs().iter().any(|p| matches!(p, crate::lower::PackedKernel::ConvI4(_))));
        assert!(packed
            .packs()
            .iter()
            .any(|p| matches!(p, crate::lower::PackedKernel::TConvI4 { .. })));
        let y_p = packed.execute_i8(&x);
        let y_u = unpacked.execute_i8(&x);
        assert_eq!(y_p.data(), y_u.data());
        assert_eq!(y_p.fix_pos(), 4);
    }

    /// Scratch arenas replan for a new geometry; the packed weights are
    /// shape-independent and shared.
    #[test]
    fn scratch_adapts_to_new_input_shape() {
        let mut rng = StdRng::seed_from_u64(33);
        let m = f32_module(&mut rng);
        let lowered = lower(m, Shape4::new(1, 2, 8, 8), &LowerOptions::reference());
        let s2 = Shape4::new(1, 2, 16, 16);
        let x = rand_tensor(s2, &mut rng);
        let mut scratch = lowered.make_scratch_for(s2);
        assert_eq!(scratch.input_shape(), s2);
        let y = lowered.execute_f32_into(&x, &mut scratch);
        assert_eq!(y.shape().hw(), s2.hw());
    }

    /// Regression for the implicit-GEMM refactor: the executor arenas hold
    /// ONLY plan-slot storage, even after running conv-heavy frames — the
    /// materialized im2col column buffer and the pre-scatter tconv buffer
    /// are gone (their former fields no longer exist; this guards against
    /// side storage creeping back in under another name).
    #[test]
    fn scratch_allocates_only_plan_slots() {
        let mut rng = StdRng::seed_from_u64(36);
        let m = f32_module(&mut rng);
        let s = Shape4::new(1, 2, 8, 8);
        let lowered = lower(m, s, &LowerOptions::reference());
        let mut scratch = lowered.make_scratch_f32();
        let x = rand_tensor(s, &mut rng);
        let _ = lowered.execute_f32_into(&x, &mut scratch);
        assert_eq!(scratch.arena_elems(), scratch.plan().peak_arena_elems());

        let mq = i8_module(&mut rng);
        let lowered_q = lower(mq, s, &LowerOptions::reference());
        let mut qscratch = lowered_q.make_scratch_i8();
        let xq = QTensor::quantize(&rand_tensor(s, &mut rng), 6);
        let _ = lowered_q.execute_i8_into(&xq, &mut qscratch);
        assert_eq!(qscratch.arena_elems(), qscratch.plan().peak_arena_elems());
    }

    /// Frame-to-frame reuse of one scratch stays bit-exact.
    #[test]
    fn reused_scratch_is_bit_exact_across_frames() {
        let mut rng = StdRng::seed_from_u64(34);
        let m = f32_module(&mut rng);
        let s = Shape4::new(1, 2, 8, 8);
        let lowered = lower(m, s, &LowerOptions::reference());
        let mut scratch = lowered.make_scratch_f32();
        for _ in 0..3 {
            let x = rand_tensor(s, &mut rng);
            let fresh = lowered.execute_f32(&x);
            let reused = lowered.execute_f32_into(&x, &mut scratch).to_tensor();
            assert_eq!(fresh.data(), reused.data());
        }
    }
}
