//! Lowering: IR module → executable program.
//!
//! [`lower`] runs the pass pipeline selected by [`LowerOptions`]
//! (BN fold → ReLU fusion → identity strip → pack-slot assignment), then
//! materialises everything the executors need per model — shapes, fix
//! positions, the liveness [`ExecPlan`] and the **pre-packed weight
//! panels**. Weights are immutable at inference, so their GEMM A-operand
//! panels are packed exactly once here; each frame then only packs the
//! activation (B) panels, which is where the per-frame pack share of the
//! 16M model drops measurably.

use crate::exec::{FpScratch, QScratch};
use crate::module::{ConvKernel, IrOp, Module, PackFormat};
use crate::passes::{assign_pack_slots, fold_batchnorm, fuse_relu, strip_identities, PassStats};
use crate::plan::ExecPlan;
use seneca_tensor::gemm::{PackedA, PackedA4};
use seneca_tensor::quantized::Bitwidth;
use seneca_tensor::tconv::repack_tconv_weights;
use seneca_tensor::Shape4;

/// Which rewrite passes a lowering runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Fold inference BatchNorm into the preceding conv's weights.
    pub fold_bn: bool,
    /// Fuse exclusive standalone ReLUs into the conv/tconv epilogue.
    pub fuse_relu: bool,
    /// Strip softmax too (DPU-bound / quantizer-bound lowerings; dropout is
    /// always stripped — it is the identity at inference).
    pub strip_softmax: bool,
    /// Pre-pack weight GEMM panels at lowering time (pack-once caching).
    pub pack_weights: bool,
}

impl LowerOptions {
    /// Bit-exact lowering of the graph as given: no semantic rewrites, only
    /// pack-slot caching. The FP32/INT8 host executors use this — packed
    /// GEMM panels hold the same bytes as the per-call pack, so outputs are
    /// bit-identical to the legacy node-walk executors.
    pub fn reference() -> Self {
        Self { fold_bn: false, fuse_relu: false, strip_softmax: false, pack_weights: true }
    }

    /// [`LowerOptions::reference`] without pack-slot caching: weights pack
    /// per GEMM call, as the legacy executors did. Kept as the baseline arm
    /// of the pack-share profile comparison.
    pub fn reference_unpacked() -> Self {
        Self { pack_weights: false, ..Self::reference() }
    }

    /// The quantizer/compiler frontend pipeline: BN fold + ReLU fusion +
    /// identity strip (softmax included), mirroring what Vitis AI does
    /// before calibration.
    pub fn frontend() -> Self {
        Self { fold_bn: true, fuse_relu: true, strip_softmax: true, pack_weights: true }
    }
}

/// Pre-packed GEMM panels of one conv/tconv weight tensor, indexed by the
/// node's pack slot.
#[derive(Debug, Clone)]
pub enum PackedKernel {
    /// FP32 conv: `[C_out, C_in*K*K]` panels.
    ConvF32(PackedA<f32>),
    /// INT8 conv: `[C_out, C_in*K*K]` panels.
    ConvI8(PackedA<i8>),
    /// FP32 transpose conv: co-major `[4*C_out, C_in]` panels (row
    /// `co*4 + kidx`) plus the per-row-replicated bias (empty when the conv
    /// has no bias).
    TConvF32 {
        /// Packed repacked weights.
        pa: PackedA<f32>,
        /// Bias replicated per kernel position (`4*C_out`, or empty).
        bias4: Vec<f32>,
    },
    /// INT8 transpose conv: co-major `[4*C_out, C_in]` panels plus the
    /// per-row-replicated accumulator-scale bias.
    TConvI8 {
        /// Packed repacked weights.
        pa: PackedA<i8>,
        /// Bias replicated per kernel position (`4*C_out`).
        bias4: Vec<i32>,
    },
    /// INT4 (W4A8) conv: nibble-packed `[C_out, C_in*K*K]` panels — half
    /// the panel bytes of `ConvI8`.
    ConvI4(PackedA4),
    /// INT4 (W4A8) transpose conv: nibble-packed co-major `[4*C_out, C_in]`
    /// panels plus the per-row-replicated accumulator-scale bias.
    TConvI4 {
        /// Packed repacked weights (nibble-packed).
        pa: PackedA4,
        /// Bias replicated per kernel position (`4*C_out`).
        bias4: Vec<i32>,
    },
}

impl PackedKernel {
    /// Bytes held by the packed panels (memory accounting).
    pub fn bytes(&self) -> u64 {
        match self {
            PackedKernel::ConvF32(pa) => (pa.panel_len() * 4) as u64,
            PackedKernel::ConvI8(pa) => pa.panel_len() as u64,
            PackedKernel::TConvF32 { pa, bias4 } => ((pa.panel_len() + bias4.len()) * 4) as u64,
            PackedKernel::TConvI8 { pa, bias4 } => (pa.panel_len() + bias4.len() * 4) as u64,
            PackedKernel::ConvI4(pa) => pa.panel_len() as u64,
            PackedKernel::TConvI4 { pa, bias4 } => (pa.panel_len() + bias4.len() * 4) as u64,
        }
    }

    /// The panel format this kernel was materialized in.
    pub fn format(&self) -> PackFormat {
        match self {
            PackedKernel::ConvF32(_) | PackedKernel::TConvF32 { .. } => PackFormat::F32,
            PackedKernel::ConvI8(_) | PackedKernel::TConvI8 { .. } => PackFormat::I8,
            PackedKernel::ConvI4(_) | PackedKernel::TConvI4 { .. } => PackFormat::I4,
        }
    }
}

/// A lowered program: the rewritten module plus everything the executors
/// derive from it once per model — shapes, fix positions, the liveness
/// plan and the pre-packed weight panels.
#[derive(Debug, Clone)]
pub struct Lowered {
    module: Module,
    input: Shape4,
    shapes: Vec<Shape4>,
    fps: Vec<i32>,
    plan: ExecPlan,
    packs: Vec<PackedKernel>,
    stats: PassStats,
}

/// Runs the pass pipeline on `module` and materialises the lowered program
/// for the given input geometry.
pub fn lower(mut module: Module, input: Shape4, opts: &LowerOptions) -> Lowered {
    let mut stats = PassStats::default();
    if opts.fold_bn {
        stats.bn_folded = fold_batchnorm(&mut module);
    }
    if opts.fuse_relu {
        stats.relu_fused = fuse_relu(&mut module);
    }
    stats.identities_removed = strip_identities(&mut module, opts.strip_softmax);
    if opts.pack_weights {
        stats.pack_slots = assign_pack_slots(&mut module);
        stats.pack_slots_i4 = module
            .nodes
            .iter()
            .filter(|n| match &n.op {
                IrOp::Conv(a) | IrOp::TConv(a) => {
                    a.pack.is_some_and(|p| p.format == PackFormat::I4)
                }
                _ => false,
            })
            .count();
    }
    let shapes = module.shapes(input);
    let fps = module.fix_positions();
    let plan = module.plan(input);
    let packs = build_packs(&module);
    Lowered { module, input, shapes, fps, plan, packs, stats }
}

/// Packs every pack-slotted weight tensor once (model load time).
fn build_packs(m: &Module) -> Vec<PackedKernel> {
    let mut packs: Vec<Option<PackedKernel>> = Vec::new();
    for node in &m.nodes {
        let (attrs, transpose) = match &node.op {
            IrOp::Conv(a) => (a, false),
            IrOp::TConv(a) => (a, true),
            _ => continue,
        };
        let Some(ps) = attrs.pack else { continue };
        let packed = if transpose {
            let c_in = attrs.kernel.c_in(true);
            let c_out = attrs.kernel.c_out(true);
            match &attrs.kernel {
                ConvKernel::F32 { w, b } => {
                    let mut wk = vec![0.0f32; 4 * c_out * c_in];
                    repack_tconv_weights(c_in, c_out, w.data(), &mut wk);
                    // Row `co*4 + kidx` of the co-major repack belongs to
                    // output channel `co`, so the replicated bias indexes by
                    // `row / 4`.
                    let bias4: Vec<f32> = if b.is_empty() {
                        Vec::new()
                    } else {
                        (0..4 * c_out).map(|i| b[i / 4]).collect()
                    };
                    PackedKernel::TConvF32 { pa: PackedA::pack(4 * c_out, c_in, &wk), bias4 }
                }
                ConvKernel::I8 { w, bias, wbits, .. } => {
                    let mut wk = vec![0i8; 4 * c_out * c_in];
                    repack_tconv_weights(c_in, c_out, w.data(), &mut wk);
                    let bias4: Vec<i32> =
                        (0..4 * c_out).map(|i| bias.get(i / 4).copied().unwrap_or(0)).collect();
                    match wbits {
                        Bitwidth::W8 => {
                            PackedKernel::TConvI8 { pa: PackedA::pack(4 * c_out, c_in, &wk), bias4 }
                        }
                        Bitwidth::W4 => PackedKernel::TConvI4 {
                            pa: PackedA4::pack(4 * c_out, c_in, &wk),
                            bias4,
                        },
                    }
                }
            }
        } else {
            match &attrs.kernel {
                ConvKernel::F32 { w, .. } => {
                    let ws = w.shape();
                    PackedKernel::ConvF32(PackedA::pack(ws.n, ws.c * ws.h * ws.w, w.data()))
                }
                ConvKernel::I8 { w, wbits, .. } => {
                    let ws = w.shape();
                    match wbits {
                        Bitwidth::W8 => {
                            PackedKernel::ConvI8(PackedA::pack(ws.n, ws.c * ws.h * ws.w, w.data()))
                        }
                        Bitwidth::W4 => {
                            PackedKernel::ConvI4(PackedA4::pack(ws.n, ws.c * ws.h * ws.w, w.data()))
                        }
                    }
                }
            }
        };
        assert_eq!(
            packed.format(),
            ps.format,
            "pack slot {} format drifted from assignment",
            ps.slot
        );
        let slot = ps.slot;
        if packs.len() <= slot {
            packs.resize_with(slot + 1, || None);
        }
        assert!(packs[slot].is_none(), "pack slot {slot} assigned twice");
        packs[slot] = Some(packed);
    }
    packs.into_iter().map(|p| p.expect("pack slot without kernel")).collect()
}

impl Lowered {
    /// The rewritten module this program executes.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The input geometry the program was lowered for.
    pub fn input_shape(&self) -> Shape4 {
        self.input
    }

    /// Per-node output shapes at the lowered input geometry.
    pub fn shapes(&self) -> &[Shape4] {
        &self.shapes
    }

    /// Per-node output fix positions (all zero for FP32 modules).
    pub fn fix_positions(&self) -> &[i32] {
        &self.fps
    }

    /// The liveness plan at the lowered input geometry.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// What the pass pipeline did.
    pub fn stats(&self) -> PassStats {
        self.stats
    }

    /// The pre-packed weight panels, indexed by pack slot.
    pub fn packs(&self) -> &[PackedKernel] {
        &self.packs
    }

    /// Bytes held by all pre-packed weight panels.
    pub fn packed_weight_bytes(&self) -> u64 {
        self.packs.iter().map(|p| p.bytes()).sum()
    }

    /// Allocates the per-worker FP32 arena at the lowered input geometry.
    pub fn make_scratch_f32(&self) -> FpScratch {
        self.make_scratch_for(self.input)
    }

    /// Allocates an FP32 arena for a different input geometry (replans; the
    /// packed weights are shape-independent and stay shared).
    pub fn make_scratch_for(&self, input: Shape4) -> FpScratch {
        let shapes = self.module.shapes(input);
        let plan = self.module.plan(input);
        FpScratch::new(plan, shapes)
    }

    /// Allocates the per-worker INT8 arena at the lowered input geometry.
    pub fn make_scratch_i8(&self) -> QScratch {
        self.make_scratch_i8_for(self.input)
    }

    /// Allocates an INT8 arena for a different input geometry.
    pub fn make_scratch_i8_for(&self, input: Shape4) -> QScratch {
        let shapes = self.module.shapes(input);
        let plan = self.module.plan(input);
        QScratch::new(plan, shapes, self.fps.clone())
    }
}
