//! The execution-plan layer: liveness analysis + buffer-slot assignment.
//!
//! Liveness planning is the final pass of the IR pipeline: every lowered
//! program — the FP32 executor, the bit-exact INT8 executor and the DPU
//! compiler's channel-padded DDR layout — reduces to the same [`ExecPlan`],
//! a topologically ordered walk annotated with each value's *last use* and
//! an assignment of values to reusable **buffer slots**. A per-worker arena
//! then holds one buffer per slot — sized to the peak-live footprint —
//! instead of one buffer per node (sum-of-all-activations). Skip
//! connections naturally stay live across the encoder–decoder span and keep
//! their slot pinned; every other activation recycles as soon as its last
//! consumer has run.
//!
//! The planner is graph-agnostic: it sees only each node's input ids and
//! output element count, so every dtype and layout reuses the same pass.

use serde::{Deserialize, Serialize};

/// A liveness-planned execution schedule over a topologically ordered DAG.
///
/// Node `i`'s value is *defined* at step `i` and *lives* until
/// `last_use[i]` (the index of its last consumer; the graph output carries
/// the sentinel `n_nodes`, keeping it live past the final step so the
/// caller can read it). Two values may share a slot only when their live
/// ranges are disjoint; [`ExecPlan::assert_valid`] checks the invariant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecPlan {
    /// Per node: assigned buffer slot.
    slot: Vec<usize>,
    /// Per node: step index of the last consumer (`n_nodes` for the output).
    last_use: Vec<usize>,
    /// Per node: output element count.
    elems: Vec<usize>,
    /// Per slot: element capacity (max over the values assigned to it).
    slot_elems: Vec<usize>,
    /// The graph's output node.
    output: usize,
    /// Peak per-frame GEMM work-buffer bytes: the thread-local pack panels
    /// the implicit-GEMM route gathers activations into, max over nodes
    /// (the panels are reused node to node). Set by the module lowering;
    /// zero for plans built directly via [`ExecPlan::build`].
    #[serde(default)]
    work_bytes: u64,
}

impl ExecPlan {
    /// Plans a topologically ordered DAG.
    ///
    /// * `inputs[i]` — the ids of node `i`'s inputs (all `< i`);
    /// * `elems[i]` — the element count of node `i`'s output;
    /// * `output` — the node whose value must survive the whole walk.
    ///
    /// Slot assignment is a deterministic greedy best-fit: a node takes the
    /// smallest dead slot that already fits its output (growing the largest
    /// dead slot when none fits, opening a fresh slot when none is dead).
    /// Inputs are released only *after* their consumer's slot is chosen, so
    /// an op never writes into a buffer it is still reading from.
    pub fn build(inputs: &[&[usize]], elems: &[usize], output: usize) -> Self {
        let n = inputs.len();
        assert_eq!(elems.len(), n, "one element count per node");
        assert!(output < n, "output node out of range");

        // Liveness: last_use[i] = index of i's last consumer. A value nobody
        // consumes dies at its own definition (its slot frees immediately
        // after step i); the output lives past the end.
        let mut last_use: Vec<usize> = (0..n).collect();
        for (i, ins) in inputs.iter().enumerate() {
            for &j in ins.iter() {
                assert!(j < i, "plan requires topological order ({j} feeds {i})");
                last_use[j] = last_use[j].max(i);
            }
        }
        last_use[output] = n;

        // Values to release after each step.
        let mut frees_at: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &lu) in last_use.iter().enumerate() {
            if lu < n {
                frees_at[lu].push(i);
            }
        }

        let mut slot = vec![usize::MAX; n];
        let mut slot_elems: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        for i in 0..n {
            let need = elems[i];
            // Best fit among dead slots; ties break toward the lowest id so
            // the plan is independent of release order.
            let mut fit: Option<usize> = None; // index into `free`
            let mut grow: Option<usize> = None;
            for (k, &s) in free.iter().enumerate() {
                let cap = slot_elems[s];
                if cap >= need {
                    let better = match fit {
                        None => true,
                        Some(f) => (cap, s) < (slot_elems[free[f]], free[f]),
                    };
                    if better {
                        fit = Some(k);
                    }
                } else {
                    let better = match grow {
                        None => true,
                        Some(g) => {
                            (cap, free[g]) > (slot_elems[free[g]], s).min((cap, s))
                                && (cap > slot_elems[free[g]]
                                    || (cap == slot_elems[free[g]] && s < free[g]))
                        }
                    };
                    if better {
                        grow = Some(k);
                    }
                }
            }
            let s = match fit.or(grow) {
                Some(k) => {
                    let s = free.swap_remove(k);
                    slot_elems[s] = slot_elems[s].max(need);
                    s
                }
                None => {
                    slot_elems.push(need);
                    slot_elems.len() - 1
                }
            };
            slot[i] = s;
            for &v in &frees_at[i] {
                free.push(slot[v]);
            }
        }

        let plan =
            Self { slot, last_use, elems: elems.to_vec(), slot_elems, output, work_bytes: 0 };
        plan.assert_valid();
        plan
    }

    /// Records the peak per-frame GEMM work-buffer bytes (see `work_bytes`).
    pub fn set_work_bytes(&mut self, bytes: u64) {
        self.work_bytes = bytes;
    }

    /// Peak per-frame GEMM work-buffer bytes recorded by the lowering.
    pub fn work_bytes(&self) -> u64 {
        self.work_bytes
    }

    /// Number of planned nodes.
    pub fn n_nodes(&self) -> usize {
        self.slot.len()
    }

    /// Number of buffer slots the arena needs.
    pub fn n_slots(&self) -> usize {
        self.slot_elems.len()
    }

    /// The slot node `i`'s output lives in.
    pub fn slot_of(&self, i: usize) -> usize {
        self.slot[i]
    }

    /// Step index of node `i`'s last consumer (`n_nodes()` for the output).
    pub fn last_use_of(&self, i: usize) -> usize {
        self.last_use[i]
    }

    /// Element count of node `i`'s output.
    pub fn elems_of(&self, i: usize) -> usize {
        self.elems[i]
    }

    /// Per-slot element capacities.
    pub fn slot_sizes(&self) -> &[usize] {
        &self.slot_elems
    }

    /// Arena footprint in elements: the sum of slot capacities — the
    /// *peak-live* activation memory, not the per-node sum.
    pub fn peak_arena_elems(&self) -> usize {
        self.slot_elems.iter().sum()
    }

    /// Sum of every node's output elements — what a naive one-buffer-per-node
    /// executor allocates.
    pub fn total_activation_elems(&self) -> usize {
        self.elems.iter().sum()
    }

    /// The full per-worker steady-state footprint in bytes: the slot arena
    /// ([`ExecPlan::peak_arena_elems`] scaled by `bytes_per_elem`) plus the
    /// per-frame GEMM work panels ([`ExecPlan::work_bytes`]). With the
    /// implicit-GEMM route the pack panels are the *only* auxiliary
    /// storage — there is no materialized im2col column matrix and no
    /// pre-scatter tconv buffer.
    pub fn peak_arena_bytes(&self, bytes_per_elem: usize) -> u64 {
        (self.peak_arena_elems() * bytes_per_elem) as u64 + self.work_bytes
    }

    /// [`ExecPlan::total_activation_elems`] scaled to bytes.
    pub fn total_activation_bytes(&self, bytes_per_elem: usize) -> u64 {
        (self.total_activation_elems() * bytes_per_elem) as u64
    }

    /// Panics unless the plan is sound: every slot holds its values, no two
    /// values with overlapping live ranges share a slot, and no node's
    /// output slot aliases one of its still-live inputs.
    pub fn assert_valid(&self) {
        let n = self.n_nodes();
        for i in 0..n {
            assert!(
                self.slot_elems[self.slot[i]] >= self.elems[i],
                "slot {} too small for node {i}",
                self.slot[i]
            );
            for j in (i + 1)..n {
                if self.slot[i] == self.slot[j] {
                    // j is defined at step j; i must be dead strictly before.
                    assert!(
                        self.last_use[i] < j,
                        "slot {} aliases live values {i} (last use {}) and {j}",
                        self.slot[i],
                        self.last_use[i]
                    );
                }
            }
        }
        assert_eq!(self.last_use[self.output], n, "output must stay live");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pure chain recycles down to two slots (ping-pong).
    #[test]
    fn chain_ping_pongs_two_slots() {
        let inputs: Vec<Vec<usize>> = vec![vec![], vec![0], vec![1], vec![2], vec![3]];
        let ins: Vec<&[usize]> = inputs.iter().map(|v| v.as_slice()).collect();
        let plan = ExecPlan::build(&ins, &[10, 10, 10, 10, 10], 4);
        assert_eq!(plan.n_slots(), 2);
        assert_eq!(plan.peak_arena_elems(), 20);
        assert_eq!(plan.total_activation_elems(), 50);
        plan.assert_valid();
    }

    /// A skip connection pins its slot across the span it stays live.
    #[test]
    fn skip_connection_keeps_slot_pinned() {
        // 0 -> 1 -> 2 -> 3, then 4 = concat(1, 3): node 1 is live until 4.
        let inputs: Vec<Vec<usize>> = vec![vec![], vec![0], vec![1], vec![2], vec![1, 3]];
        let ins: Vec<&[usize]> = inputs.iter().map(|v| v.as_slice()).collect();
        let plan = ExecPlan::build(&ins, &[8, 8, 8, 8, 16], 4);
        assert_eq!(plan.last_use_of(1), 4);
        for j in 2..4 {
            assert_ne!(plan.slot_of(j), plan.slot_of(1), "node {j} must not clobber the skip");
        }
        plan.assert_valid();
    }

    /// Unequal sizes: best-fit reuses the big dead slot instead of growing a
    /// small one.
    #[test]
    fn best_fit_prefers_smallest_sufficient_slot() {
        // 0(large) -> 1(small) -> 2(small out), 0 dead after 1.
        let inputs: Vec<Vec<usize>> = vec![vec![], vec![0], vec![1]];
        let ins: Vec<&[usize]> = inputs.iter().map(|v| v.as_slice()).collect();
        let plan = ExecPlan::build(&ins, &[100, 10, 10], 2);
        // Node 2 fits either dead slot; it must take the 10-elem one, leaving
        // the arena at 110 rather than growing to 200.
        assert_eq!(plan.peak_arena_elems(), 110);
        plan.assert_valid();
    }

    /// An op never writes over an input it is still reading.
    #[test]
    fn output_slot_never_aliases_inputs() {
        let inputs: Vec<Vec<usize>> = vec![vec![], vec![0], vec![0, 1]];
        let ins: Vec<&[usize]> = inputs.iter().map(|v| v.as_slice()).collect();
        let plan = ExecPlan::build(&ins, &[4, 4, 8], 2);
        assert_ne!(plan.slot_of(1), plan.slot_of(0));
        assert_ne!(plan.slot_of(2), plan.slot_of(0));
        assert_ne!(plan.slot_of(2), plan.slot_of(1));
    }

    /// Dead values (no consumers, not the output) free immediately.
    #[test]
    fn unconsumed_value_frees_its_slot() {
        let inputs: Vec<Vec<usize>> = vec![vec![], vec![0], vec![1], vec![2]];
        let ins: Vec<&[usize]> = inputs.iter().map(|v| v.as_slice()).collect();
        let plan = ExecPlan::build(&ins, &[4, 4, 4, 4], 3);
        assert!(plan.n_slots() <= 2);
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn forward_reference_rejected() {
        let inputs: Vec<Vec<usize>> = vec![vec![1], vec![]];
        let ins: Vec<&[usize]> = inputs.iter().map(|v| v.as_slice()).collect();
        let _ = ExecPlan::build(&ins, &[1, 1], 1);
    }
}
