//! The shared throughput vocabulary.
//!
//! Every backend — device-modelled (DPU DES simulation, GPU latency model)
//! or host-measured (the FP32/INT8 reference executors) — reports the same
//! [`ThroughputReport`], and μ±σ aggregation over seeded runs lives in one
//! place ([`ThroughputStats::from_runs`]) instead of being re-implemented
//! per runner.

use serde::{Deserialize, Serialize};

/// Planned activation-memory footprint of a backend's executor, derived from
/// the shared liveness plan (`seneca_nn::plan::ExecPlan`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Activation arena bytes actually allocated per worker: the sum of the
    /// liveness plan's slot capacities (peak-live, skip-aware).
    pub peak_arena_bytes: u64,
    /// Sum of every node's activation bytes — what a naive
    /// one-buffer-per-node executor would hold.
    pub total_activation_bytes: u64,
}

/// Result of one throughput run on any backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Frames per second.
    pub fps: f64,
    /// Average board power (W). Host-measured reference backends report 0
    /// (no power model) and therefore a zero energy efficiency.
    pub watt: f64,
    /// Frames processed.
    pub frames: usize,
    /// Host runner threads used.
    pub threads: usize,
    /// Mean busy accelerator cores (0 when the backend has no core model).
    pub busy_cores: f64,
    /// Accelerator utilisation in `[0, 1]` (0 when not modelled).
    pub util: f64,
    /// Wall-clock of the run (s) — simulated or measured.
    pub makespan_s: f64,
    /// Per-worker activation arena bytes under the liveness plan (0 when the
    /// backend does not report memory).
    pub peak_arena_bytes: u64,
    /// Sum-of-all-activations bytes for comparison (0 when not reported).
    pub total_activation_bytes: u64,
}

impl ThroughputReport {
    /// Energy efficiency, Eq. (3): FPS / Watt = frames / Joule.
    pub fn energy_efficiency(&self) -> f64 {
        if self.watt <= 0.0 {
            return 0.0;
        }
        self.fps / self.watt
    }
}

/// Aggregated throughput statistics over seeded runs (the μ±σ of Table IV).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputStats {
    /// Mean FPS.
    pub fps_mean: f64,
    /// FPS standard deviation.
    pub fps_std: f64,
    /// Mean board power (W).
    pub watt_mean: f64,
    /// Power standard deviation.
    pub watt_std: f64,
    /// Mean energy efficiency (FPS/W).
    pub ee_mean: f64,
    /// EE standard deviation.
    pub ee_std: f64,
    /// The individual runs.
    pub runs: Vec<ThroughputReport>,
}

impl ThroughputStats {
    /// Aggregates individual runs into mean ± (population) std; `None` when
    /// there are no runs to aggregate.
    pub fn from_runs(runs: Vec<ThroughputReport>) -> Option<Self> {
        if runs.is_empty() {
            return None;
        }
        let mean_std = |xs: Vec<f64>| -> (f64, f64) {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
            (m, v.sqrt())
        };
        let (fps_mean, fps_std) = mean_std(runs.iter().map(|r| r.fps).collect());
        let (watt_mean, watt_std) = mean_std(runs.iter().map(|r| r.watt).collect());
        let (ee_mean, ee_std) = mean_std(runs.iter().map(|r| r.energy_efficiency()).collect());
        Some(Self { fps_mean, fps_std, watt_mean, watt_std, ee_mean, ee_std, runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(fps: f64, watt: f64) -> ThroughputReport {
        ThroughputReport {
            fps,
            watt,
            frames: 10,
            threads: 1,
            busy_cores: 0.0,
            util: 0.0,
            makespan_s: 1.0,
            peak_arena_bytes: 0,
            total_activation_bytes: 0,
        }
    }

    #[test]
    fn energy_efficiency_guards_zero_power() {
        assert_eq!(rep(100.0, 0.0).energy_efficiency(), 0.0);
        assert!((rep(100.0, 20.0).energy_efficiency() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_runs_aggregate_to_none() {
        assert!(ThroughputStats::from_runs(Vec::new()).is_none());
    }

    #[test]
    fn stats_aggregate_mean_and_std() {
        let s = ThroughputStats::from_runs(vec![rep(90.0, 20.0), rep(110.0, 20.0)]).unwrap();
        assert!((s.fps_mean - 100.0).abs() < 1e-9);
        assert!((s.fps_std - 10.0).abs() < 1e-9);
        assert!((s.watt_std).abs() < 1e-9);
        assert!((s.ee_mean - 5.0).abs() < 1e-9);
        assert_eq!(s.runs.len(), 2);
    }
}
