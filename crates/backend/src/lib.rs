//! Unified inference backend abstraction (§III-E, "deployment").
//!
//! The paper deploys the same trained model to two very different targets
//! (an RTX 2060 GPU via TensorFlow and a ZCU104 DPU via VART), and the
//! reproduction adds two host reference executors (FP32 graph, bit-exact
//! INT8 graph). This crate defines the one vocabulary they all speak:
//!
//! * [`Backend`] — `name` / `prepare` / `infer_batch` / `throughput`;
//! * [`ThroughputReport`] / [`ThroughputStats`] — shared measurement types;
//! * [`Prediction`] / [`Logits`] — labels plus backend-native logits;
//! * [`InferenceSession`] — the streaming batch executor: bounded job
//!   queue, worker-side input preparation, per-worker scratch pools.

mod backend;
mod prediction;
mod report;
mod session;

pub use backend::{Backend, BatchTiming, Fp32RefBackend, FpWorker, QuantRefBackend};
pub use prediction::{Logits, Prediction};
pub use report::{MemoryFootprint, ThroughputReport, ThroughputStats};
pub use session::{resolve_worker_threads, InferenceEngine, InferenceSession, SessionConfig};
