//! The [`Backend`] trait and the two host reference backends.

use crate::prediction::Prediction;
use crate::report::{MemoryFootprint, ThroughputReport, ThroughputStats};
use crate::session::{resolve_worker_threads, InferenceEngine, InferenceSession, SessionConfig};
use seneca_ir::{lower, FpScratch, LowerOptions, Lowered, QScratch};
use seneca_nn::graph::Graph;
use seneca_quant::QuantizedGraph;
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution timing of one [`Backend::infer_batch_timed`] call.
#[derive(Debug, Clone)]
pub struct BatchTiming {
    /// Wall clock of the whole batch.
    pub wall: Duration,
    /// Per-frame execution time, in input order. Backends without per-frame
    /// visibility amortise `wall` evenly; session-backed backends report
    /// each frame's actual time on its worker.
    pub per_frame: Vec<Duration>,
}

/// A deployable inference target: every path through the SENECA pipeline —
/// FP32 reference, GPU baseline, bit-exact INT8 reference, DPU runtime —
/// implements this one vocabulary, so evaluation and benchmarking code can
/// iterate `Box<dyn Backend>` instead of hard-coding runner pairs.
pub trait Backend: Send + Sync {
    /// Human-readable backend identifier (used as the row/series key in
    /// experiment outputs).
    fn name(&self) -> String;

    /// One-time preparation: weight upload, buffer allocation, sanity
    /// checks. Backends with nothing to do inherit the no-op.
    fn prepare(&mut self) {}

    /// Runs a batch of preprocessed FP32 images; outputs are in input order.
    fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction>;

    /// [`Backend::infer_batch`] plus execution timing — the hook the serving
    /// layer uses for per-request latency accounting. The default times the
    /// whole batch and amortises it evenly across frames; backends with
    /// per-frame visibility override it.
    fn infer_batch_timed(&self, images: &[Tensor]) -> (Vec<Prediction>, BatchTiming) {
        let t0 = Instant::now();
        let preds = self.infer_batch(images);
        let wall = t0.elapsed();
        let n = images.len() as u32;
        let per_frame = if n == 0 { Vec::new() } else { vec![wall / n; images.len()] };
        (preds, BatchTiming { wall, per_frame })
    }

    /// One throughput run over `n_frames` frames. Device-modelled backends
    /// use `seed` for measurement jitter; host-measured backends ignore it.
    fn throughput(&self, n_frames: usize, seed: u64) -> ThroughputReport;

    /// Per-pixel argmax labels for one image.
    fn predict(&self, image: &Tensor) -> Vec<u8> {
        let mut out = self.infer_batch(std::slice::from_ref(image));
        assert_eq!(out.len(), 1);
        out.pop().expect("one prediction").labels
    }

    /// μ±σ over `n_runs` seeded throughput runs (the Table IV aggregation),
    /// shared across all backends.
    fn throughput_repeated(&self, n_frames: usize, n_runs: usize, seed0: u64) -> ThroughputStats {
        assert!(n_runs >= 1);
        ThroughputStats::from_runs(
            (0..n_runs).map(|r| self.throughput(n_frames, seed0 + r as u64)).collect(),
        )
        .expect("n_runs >= 1")
    }
}

/// Deterministic synthetic frame for host-measured throughput runs: a ramp
/// in `[-1, 1]` so no kernel gets an all-zero fast path.
fn synthetic_frame(shape: Shape4) -> Tensor {
    let data = (0..shape.len()).map(|i| ((i * 37) % 255) as f32 / 127.0 - 1.0).collect();
    Tensor::from_vec(shape, data)
}

/// Measures host wall-clock throughput of an engine. Reference backends have
/// no power model, so `watt` (and thus energy efficiency) is reported as 0.
fn measured_throughput<E: InferenceEngine>(
    engine: &E,
    shape: Shape4,
    threads: usize,
    n_frames: usize,
    mem: MemoryFootprint,
) -> ThroughputReport {
    // Cap the measured frames: host execution of a 256x256 UNet is orders of
    // magnitude slower than the device models, and FPS converges quickly.
    let frames = n_frames.clamp(1, 16);
    let batch: Vec<Tensor> = (0..frames).map(|_| synthetic_frame(shape)).collect();
    let session = InferenceSession::new(engine, SessionConfig::new(threads));
    session.run(&batch[..1]); // warm-up (page-in weights, fill caches)
    let t0 = std::time::Instant::now();
    session.run(&batch);
    let makespan_s = t0.elapsed().as_secs_f64().max(1e-9);
    ThroughputReport {
        fps: frames as f64 / makespan_s,
        watt: 0.0,
        frames,
        threads: resolve_worker_threads(threads, frames),
        busy_cores: 0.0,
        util: 0.0,
        makespan_s,
        peak_arena_bytes: mem.peak_arena_bytes,
        total_activation_bytes: mem.total_activation_bytes,
    }
}

/// Host FP32 reference backend: executes the inference [`Graph`] (BN and
/// softmax still explicit) on the CPU. This is the bit-for-bit twin of the
/// GPU baseline's functional path.
#[derive(Clone)]
pub struct Fp32RefBackend {
    /// FP32 inference graph.
    pub graph: Graph,
    /// Input geometry.
    pub input_shape: Shape4,
    /// Host worker threads for batch inference.
    pub threads: usize,
    /// IR lowering of `graph` at `input_shape` (packed weight panels +
    /// liveness plan), shared by every worker.
    lowered: Arc<Lowered>,
}

impl Fp32RefBackend {
    /// Creates a single-threaded reference backend.
    pub fn new(graph: Graph, input_shape: Shape4) -> Self {
        let lowered = Arc::new(lower(graph.to_ir(), input_shape, &LowerOptions::reference()));
        Self { graph, input_shape, threads: 1, lowered }
    }

    /// Sets the host thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Planned per-worker activation memory (4 bytes per FP32 element).
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let plan = self.lowered.plan();
        MemoryFootprint {
            peak_arena_bytes: plan.peak_arena_bytes(4),
            total_activation_bytes: plan.total_activation_bytes(4),
        }
    }
}

/// Per-worker state of [`Fp32RefBackend`]: a liveness-planned scratch arena,
/// reused across frames so the steady-state hot path never allocates.
pub struct FpWorker {
    scratch: FpScratch,
}

impl InferenceEngine for Fp32RefBackend {
    type Worker = FpWorker;

    fn new_worker(&self) -> FpWorker {
        FpWorker { scratch: self.lowered.make_scratch_f32() }
    }

    fn infer(&self, worker: &mut FpWorker, image: &Tensor) -> Prediction {
        if worker.scratch.input_shape() != image.shape() {
            worker.scratch = self.lowered.make_scratch_for(image.shape());
        }
        Prediction::from_f32(self.lowered.execute_f32_into(image, &mut worker.scratch).to_tensor())
    }
}

impl Backend for Fp32RefBackend {
    fn name(&self) -> String {
        format!("fp32-ref/{}", self.graph.name)
    }

    fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction> {
        InferenceSession::new(self, SessionConfig::new(self.threads)).run(images)
    }

    fn infer_batch_timed(&self, images: &[Tensor]) -> (Vec<Prediction>, BatchTiming) {
        session_timed(self, self.threads, images)
    }

    fn throughput(&self, n_frames: usize, _seed: u64) -> ThroughputReport {
        measured_throughput(self, self.input_shape, self.threads, n_frames, self.memory_footprint())
    }
}

/// Shared [`Backend::infer_batch_timed`] override for session-backed
/// backends: per-frame worker timings from [`InferenceSession::run_timed`].
fn session_timed<E: InferenceEngine>(
    engine: &E,
    threads: usize,
    images: &[Tensor],
) -> (Vec<Prediction>, BatchTiming) {
    let t0 = Instant::now();
    let (preds, per_frame) =
        InferenceSession::new(engine, SessionConfig::new(threads)).run_timed(images);
    (preds, BatchTiming { wall: t0.elapsed(), per_frame })
}

/// Host INT8 reference backend: executes the [`QuantizedGraph`] bit-exactly,
/// with worker-side input quantisation and a per-worker scratch pool (zero
/// per-frame allocation in the im2col/GEMM hot path). This is the bit-for-bit
/// twin of the DPU runtime's functional path.
#[derive(Clone)]
pub struct QuantRefBackend {
    /// The quantized graph.
    pub qgraph: QuantizedGraph,
    /// Input geometry.
    pub input_shape: Shape4,
    /// Host worker threads for batch inference.
    pub threads: usize,
    /// IR lowering of `qgraph` at `input_shape` (packed weight panels +
    /// liveness plan), shared by every worker.
    lowered: Arc<Lowered>,
}

impl QuantRefBackend {
    /// Creates a single-threaded reference backend.
    pub fn new(qgraph: QuantizedGraph, input_shape: Shape4) -> Self {
        let lowered = Arc::new(lower(qgraph.to_ir(), input_shape, &LowerOptions::reference()));
        Self { qgraph, input_shape, threads: 1, lowered }
    }

    /// Sets the host thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Planned per-worker activation memory (1 byte per INT8 element).
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let plan = self.lowered.plan();
        MemoryFootprint {
            peak_arena_bytes: plan.peak_arena_bytes(1),
            total_activation_bytes: plan.total_activation_bytes(1),
        }
    }
}

impl InferenceEngine for QuantRefBackend {
    type Worker = QScratch;

    fn new_worker(&self) -> Self::Worker {
        self.lowered.make_scratch_i8()
    }

    fn infer(&self, scratch: &mut Self::Worker, image: &Tensor) -> Prediction {
        let q = {
            let _sp =
                seneca_trace::span_bytes("session", "quantize", image.data().len() as u64 * 4);
            self.qgraph.quantize_input(image)
        };
        let out = self.lowered.execute_i8_into(&q, scratch).to_qtensor();
        Prediction::from_i8(out)
    }
}

impl Backend for QuantRefBackend {
    fn name(&self) -> String {
        format!("int8-ref/{}", self.qgraph.name)
    }

    fn infer_batch(&self, images: &[Tensor]) -> Vec<Prediction> {
        InferenceSession::new(self, SessionConfig::new(self.threads)).run(images)
    }

    fn infer_batch_timed(&self, images: &[Tensor]) -> (Vec<Prediction>, BatchTiming) {
        session_timed(self, self.threads, images)
    }

    fn throughput(&self, n_frames: usize, _seed: u64) -> ThroughputReport {
        measured_throughput(self, self.input_shape, self.threads, n_frames, self.memory_footprint())
    }
}
