//! The shared prediction vocabulary.

use seneca_tensor::quantized::QTensor;
use seneca_tensor::Tensor;

/// Backend-native output logits: FP32 probabilities for the GPU-style
/// baselines, INT8 fixed-point logits for the DPU-style paths. Keeping the
/// native representation allows bit-for-bit parity checks across backends.
#[derive(Debug, Clone)]
pub enum Logits {
    /// FP32 class maps (post-softmax for the reference graph).
    F32(Tensor),
    /// INT8 fixed-point logits straight off the quantized executor.
    I8(QTensor),
}

/// One inference result: per-pixel argmax labels plus the native logits.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Per-pixel class labels (host argmax over channels).
    pub labels: Vec<u8>,
    /// Backend-native logits.
    pub logits: Logits,
}

impl Prediction {
    /// Builds a prediction from FP32 class maps.
    pub fn from_f32(y: Tensor) -> Self {
        let _sp = seneca_trace::span_bytes("session", "argmax", y.data().len() as u64 * 4);
        let labels = seneca_tensor::activation::argmax_channels(&y);
        Self { labels, logits: Logits::F32(y) }
    }

    /// Builds a prediction from INT8 logits.
    pub fn from_i8(q: QTensor) -> Self {
        let _sp = seneca_trace::span_bytes("session", "argmax", q.data().len() as u64);
        let labels = seneca_tensor::activation::argmax_channels_i8(q.shape(), q.data());
        Self { labels, logits: Logits::I8(q) }
    }

    /// The FP32 logits, if this backend produces them.
    pub fn as_f32(&self) -> Option<&Tensor> {
        match &self.logits {
            Logits::F32(t) => Some(t),
            Logits::I8(_) => None,
        }
    }

    /// The INT8 logits, if this backend produces them.
    pub fn as_i8(&self) -> Option<&QTensor> {
        match &self.logits {
            Logits::I8(q) => Some(q),
            Logits::F32(_) => None,
        }
    }

    /// Consumes the prediction, returning INT8 logits (panics on FP32).
    pub fn into_i8(self) -> QTensor {
        match self.logits {
            Logits::I8(q) => q,
            Logits::F32(_) => panic!("expected INT8 logits, backend produced FP32"),
        }
    }
}
