//! The streaming inference session.
//!
//! Replaces the eager fan-out pattern (quantize every input up front into an
//! unbounded channel — an O(batch) memory spike) with:
//!
//! * a **bounded job queue** ([`SessionConfig::queue_depth`] slots): the
//!   feeder blocks once workers fall behind, so only a handful of in-flight
//!   frames exist at any time;
//! * **worker-side preparation**: quantisation (or any other per-frame input
//!   transform) happens on the worker thread that will execute the frame,
//!   not on the submitting thread;
//! * a **per-worker state pool** ([`InferenceEngine::Worker`]): each worker
//!   owns its scratch buffers (im2col columns, GEMM accumulators, per-node
//!   activation tensors), so the steady-state hot path performs zero
//!   per-frame allocation.
//!
//! Results are returned in submission order regardless of completion order.

use crate::prediction::Prediction;
use seneca_tensor::Tensor;

/// Resolves the number of worker threads for a job batch: never more threads
/// than jobs, never fewer than one. The single source of truth used by both
/// the functional runner and the throughput model.
pub fn resolve_worker_threads(requested: usize, jobs: usize) -> usize {
    requested.max(1).min(jobs.max(1))
}

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Worker threads (capped to the job count at run time).
    pub threads: usize,
    /// Bounded job-queue capacity: how many frames may wait between the
    /// feeder and the workers. Small values bound memory; larger values
    /// smooth out service-time jitter.
    pub queue_depth: usize,
}

impl SessionConfig {
    /// A config with `threads` workers and a queue of twice that depth.
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1), queue_depth: 2 * threads.max(1) }
    }
}

/// Per-frame execution engine: how one worker turns an FP32 image into a
/// [`Prediction`]. Implementations own the backend-specific preparation
/// (e.g. INT8 quantisation) and reuse `Worker` scratch state across frames.
pub trait InferenceEngine: Sync {
    /// Per-worker mutable state (scratch buffers, core handle, ...).
    type Worker: Send;

    /// Creates one worker's state.
    fn new_worker(&self) -> Self::Worker;

    /// Runs one frame on a worker.
    fn infer(&self, worker: &mut Self::Worker, image: &Tensor) -> Prediction;
}

/// A streaming inference session over some [`InferenceEngine`].
pub struct InferenceSession<'e, E: InferenceEngine> {
    engine: &'e E,
    config: SessionConfig,
}

impl<'e, E: InferenceEngine> InferenceSession<'e, E> {
    /// Creates a session.
    pub fn new(engine: &'e E, config: SessionConfig) -> Self {
        Self { engine, config }
    }

    /// Runs a batch; outputs are in input order.
    pub fn run(&self, images: &[Tensor]) -> Vec<Prediction> {
        let n = images.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = resolve_worker_threads(self.config.threads, n);
        if threads == 1 {
            // No pool needed; still reuses one worker's scratch across frames.
            let mut worker = self.engine.new_worker();
            return images.iter().map(|img| self.engine.infer(&mut worker, img)).collect();
        }

        let capacity = self.config.queue_depth.max(1);
        let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<(usize, &Tensor)>(capacity);
        let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, Prediction)>();
        let job_rx = std::sync::Mutex::new(job_rx);
        let mut results: Vec<Option<Prediction>> = (0..n).map(|_| None).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let job_rx = &job_rx;
                let res_tx = res_tx.clone();
                let engine = self.engine;
                scope.spawn(move || {
                    let mut worker = engine.new_worker();
                    loop {
                        // Hold the lock only for the dequeue, not the inference.
                        let job = job_rx.lock().expect("job queue lock").recv();
                        let (i, img) = match job {
                            Ok(j) => j,
                            Err(_) => break, // feeder done and queue drained
                        };
                        let out = engine.infer(&mut worker, img);
                        if res_tx.send((i, out)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            // Feed lazily: blocks when the bounded queue is full, so at most
            // `queue_depth` frames wait and `threads` frames execute at once.
            for (i, img) in images.iter().enumerate() {
                job_tx.send((i, img)).expect("worker pool alive");
            }
            drop(job_tx);
            while let Ok((i, out)) = res_rx.recv() {
                results[i] = Some(out);
            }
        });
        results.into_iter().map(|r| r.expect("all jobs completed")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seneca_tensor::Shape4;

    /// Toy engine: label = round(first pixel), logits echo the input.
    struct Echo;
    impl InferenceEngine for Echo {
        type Worker = usize; // counts frames this worker has seen
        fn new_worker(&self) -> usize {
            0
        }
        fn infer(&self, worker: &mut usize, image: &Tensor) -> Prediction {
            *worker += 1;
            Prediction {
                labels: vec![image.data()[0] as u8],
                logits: crate::Logits::F32(image.clone()),
            }
        }
    }

    fn images(n: usize) -> Vec<Tensor> {
        (0..n).map(|i| Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![i as f32])).collect()
    }

    #[test]
    fn preserves_submission_order() {
        let imgs = images(17);
        for threads in [1, 2, 4, 8] {
            let out = InferenceSession::new(&Echo, SessionConfig::new(threads)).run(&imgs);
            let labels: Vec<u8> = out.iter().map(|p| p.labels[0]).collect();
            assert_eq!(labels, (0..17).map(|i| i as u8).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(InferenceSession::new(&Echo, SessionConfig::new(4)).run(&[]).is_empty());
    }

    #[test]
    fn resolve_worker_threads_clamps_both_ends() {
        assert_eq!(resolve_worker_threads(4, 2), 2);
        assert_eq!(resolve_worker_threads(4, 100), 4);
        assert_eq!(resolve_worker_threads(0, 3), 1);
        assert_eq!(resolve_worker_threads(2, 0), 1);
    }
}
