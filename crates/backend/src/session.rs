//! The streaming inference session.
//!
//! Replaces the eager fan-out pattern (quantize every input up front into an
//! unbounded channel — an O(batch) memory spike) with:
//!
//! * a **bounded job queue** ([`SessionConfig::queue_depth`] slots): the
//!   feeder blocks once workers fall behind, so only a handful of in-flight
//!   frames exist at any time;
//! * **worker-side preparation**: quantisation (or any other per-frame input
//!   transform) happens on the worker thread that will execute the frame,
//!   not on the submitting thread;
//! * a **per-worker state pool** ([`InferenceEngine::Worker`]): each worker
//!   owns its scratch buffers (im2col columns, GEMM accumulators, per-node
//!   activation tensors), so the steady-state hot path performs zero
//!   per-frame allocation.
//!
//! Results are returned in submission order regardless of completion order.
//! A panic inside [`InferenceEngine::infer`] is captured on the worker and
//! re-raised on the calling thread with the failing frame index attached,
//! instead of surfacing as an unrelated "all jobs completed" failure.

use crate::prediction::Prediction;
use seneca_tensor::Tensor;
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

/// Resolves the number of worker threads for a job batch: never more threads
/// than jobs, never fewer than one. The single source of truth used by both
/// the functional runner and the throughput model.
pub fn resolve_worker_threads(requested: usize, jobs: usize) -> usize {
    requested.max(1).min(jobs.max(1))
}

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Worker threads (capped to the job count at run time).
    pub threads: usize,
    /// Bounded job-queue capacity: how many frames may wait between the
    /// feeder and the workers. Small values bound memory; larger values
    /// smooth out service-time jitter.
    pub queue_depth: usize,
}

impl SessionConfig {
    /// A config with `threads` workers and a queue of twice that depth.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Self { threads, queue_depth: 2 * threads }
    }
}

/// Per-frame execution engine: how one worker turns an FP32 image into a
/// [`Prediction`]. Implementations own the backend-specific preparation
/// (e.g. INT8 quantisation) and reuse `Worker` scratch state across frames.
pub trait InferenceEngine: Sync {
    /// Per-worker mutable state (scratch buffers, core handle, ...).
    type Worker: Send;

    /// Creates one worker's state.
    fn new_worker(&self) -> Self::Worker;

    /// Runs one frame on a worker.
    fn infer(&self, worker: &mut Self::Worker, image: &Tensor) -> Prediction;
}

/// A streaming inference session over some [`InferenceEngine`].
pub struct InferenceSession<'e, E: InferenceEngine> {
    engine: &'e E,
    config: SessionConfig,
}

/// Re-raises a worker panic on the calling thread, annotated with the frame
/// that caused it. String payloads are embedded in the new message; opaque
/// payloads are re-propagated as-is after reporting the index.
fn rethrow(frame: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned());
    match msg {
        Some(m) => panic!("inference worker panicked on frame {frame}: {m}"),
        None => {
            eprintln!("inference worker panicked on frame {frame} (non-string payload)");
            std::panic::resume_unwind(payload)
        }
    }
}

impl<'e, E: InferenceEngine> InferenceSession<'e, E> {
    /// Creates a session.
    pub fn new(engine: &'e E, config: SessionConfig) -> Self {
        Self { engine, config }
    }

    /// Runs a batch; outputs are in input order.
    pub fn run(&self, images: &[Tensor]) -> Vec<Prediction> {
        self.run_map(images, |engine, worker, img| engine.infer(worker, img))
    }

    /// Runs a batch and reports each frame's wall-clock execution time as
    /// observed on its worker (queueing excluded). This is the per-frame
    /// timing hook the serving layer's latency accounting builds on.
    pub fn run_timed(&self, images: &[Tensor]) -> (Vec<Prediction>, Vec<Duration>) {
        self.run_map(images, |engine, worker, img| {
            let t0 = Instant::now();
            let pred = engine.infer(worker, img);
            (pred, t0.elapsed())
        })
        .into_iter()
        .unzip()
    }

    /// The shared batch executor: applies `work` to every frame on the
    /// worker pool, preserving submission order and frame-indexed panics.
    fn run_map<T, F>(&self, images: &[Tensor], work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&E, &mut E::Worker, &Tensor) -> T + Sync,
    {
        let n = images.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = resolve_worker_threads(self.config.threads, n);
        if threads == 1 {
            // No pool needed; still reuses one worker's scratch across frames.
            let mut worker = self.engine.new_worker();
            return images
                .iter()
                .enumerate()
                .map(|(i, img)| {
                    let _sp = seneca_trace::span("session", "infer");
                    std::panic::catch_unwind(AssertUnwindSafe(|| {
                        work(self.engine, &mut worker, img)
                    }))
                    .unwrap_or_else(|payload| rethrow(i, payload))
                })
                .collect();
        }

        type Outcome<T> = Result<T, Box<dyn std::any::Any + Send>>;
        let capacity = self.config.queue_depth.max(1);
        let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<(usize, &Tensor)>(capacity);
        let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, Outcome<T>)>();
        // Workers co-own the receiver: when the last worker retires (normal
        // drain or panic), the channel closes and the feeder's `send` errors
        // instead of blocking on a queue nobody will ever empty.
        let job_rx = std::sync::Arc::new(std::sync::Mutex::new(job_rx));
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let job_rx = std::sync::Arc::clone(&job_rx);
                let res_tx = res_tx.clone();
                let engine = self.engine;
                let work = &work;
                scope.spawn(move || {
                    let mut worker = engine.new_worker();
                    loop {
                        // Hold the lock only for the dequeue, not the inference.
                        let wait = seneca_trace::span("session", "dequeue_wait");
                        let job = job_rx.lock().expect("job queue lock").recv();
                        drop(wait);
                        let (i, img) = match job {
                            Ok(j) => j,
                            Err(_) => break, // feeder done and queue drained
                        };
                        let infer_sp = seneca_trace::span("session", "infer");
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            work(engine, &mut worker, img)
                        }));
                        drop(infer_sp);
                        // A panic may have poisoned the worker state; report
                        // it and retire this worker.
                        let dead = out.is_err();
                        if res_tx.send((i, out)).is_err() || dead {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            drop(job_rx); // only workers hold the receiver now
                          // Feed lazily: blocks when the bounded queue is full, so at most
                          // `queue_depth` frames wait and `threads` frames execute at once.
                          // Send errors mean every worker has retired (all panicked): stop
                          // feeding and let the panic below surface.
            for (i, img) in images.iter().enumerate() {
                if job_tx.send((i, img)).is_err() {
                    break;
                }
            }
            drop(job_tx);
            while let Ok((i, out)) = res_rx.recv() {
                match out {
                    Ok(v) => results[i] = Some(v),
                    Err(payload) => {
                        // Keep the earliest failing frame for the re-raise.
                        if panic.as_ref().is_none_or(|(j, _)| i < *j) {
                            panic = Some((i, payload));
                        }
                    }
                }
            }
        });
        if let Some((i, payload)) = panic {
            rethrow(i, payload);
        }
        results.into_iter().map(|r| r.expect("all jobs completed")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seneca_tensor::Shape4;

    /// Toy engine: label = round(first pixel), logits echo the input.
    struct Echo;
    impl InferenceEngine for Echo {
        type Worker = usize; // counts frames this worker has seen
        fn new_worker(&self) -> usize {
            0
        }
        fn infer(&self, worker: &mut usize, image: &Tensor) -> Prediction {
            *worker += 1;
            Prediction {
                labels: vec![image.data()[0] as u8],
                logits: crate::Logits::F32(image.clone()),
            }
        }
    }

    /// Engine that panics on frames whose first pixel is negative.
    struct Fussy;
    impl InferenceEngine for Fussy {
        type Worker = ();
        fn new_worker(&self) {}
        fn infer(&self, _w: &mut (), image: &Tensor) -> Prediction {
            assert!(image.data()[0] >= 0.0, "negative frame rejected");
            Echo.infer(&mut 0, image)
        }
    }

    fn images(n: usize) -> Vec<Tensor> {
        (0..n).map(|i| Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![i as f32])).collect()
    }

    #[test]
    fn preserves_submission_order() {
        let imgs = images(17);
        for threads in [1, 2, 4, 8] {
            let out = InferenceSession::new(&Echo, SessionConfig::new(threads)).run(&imgs);
            let labels: Vec<u8> = out.iter().map(|p| p.labels[0]).collect();
            assert_eq!(labels, (0..17).map(|i| i as u8).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(InferenceSession::new(&Echo, SessionConfig::new(4)).run(&[]).is_empty());
    }

    #[test]
    fn run_timed_returns_one_duration_per_frame() {
        let imgs = images(9);
        for threads in [1, 3] {
            let (preds, times) =
                InferenceSession::new(&Echo, SessionConfig::new(threads)).run_timed(&imgs);
            assert_eq!(preds.len(), 9);
            assert_eq!(times.len(), 9);
            assert_eq!(preds[4].labels[0], 4, "timed path preserves order");
        }
    }

    #[test]
    fn worker_panic_reports_failing_frame() {
        let mut imgs = images(12);
        imgs[7] = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![-1.0]);
        for threads in [1, 4] {
            let session_panic = std::panic::catch_unwind(AssertUnwindSafe(|| {
                InferenceSession::new(&Fussy, SessionConfig::new(threads)).run(&imgs)
            }))
            .expect_err("worker panic must propagate");
            let msg =
                session_panic.downcast_ref::<String>().cloned().expect("panic message is a string");
            assert!(msg.contains("frame 7"), "threads={threads}: {msg}");
            assert!(msg.contains("negative frame rejected"), "threads={threads}: {msg}");
        }
    }

    #[test]
    fn all_workers_panicking_still_reports_first_frame() {
        let imgs: Vec<Tensor> =
            (0..20).map(|_| Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![-1.0])).collect();
        let session_panic = std::panic::catch_unwind(AssertUnwindSafe(|| {
            InferenceSession::new(&Fussy, SessionConfig::new(4)).run(&imgs)
        }))
        .expect_err("must propagate");
        let msg = session_panic.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("panicked on frame"), "{msg}");
    }

    #[test]
    fn resolve_worker_threads_clamps_both_ends() {
        assert_eq!(resolve_worker_threads(4, 2), 2);
        assert_eq!(resolve_worker_threads(4, 100), 4);
        assert_eq!(resolve_worker_threads(0, 3), 1);
        assert_eq!(resolve_worker_threads(2, 0), 1);
    }

    #[test]
    fn session_config_defaults_queue_depth_to_twice_threads() {
        let c = SessionConfig::new(3);
        assert_eq!((c.threads, c.queue_depth), (3, 6));
        // Zero threads clamps once, and the queue depth follows the clamp.
        let z = SessionConfig::new(0);
        assert_eq!((z.threads, z.queue_depth), (1, 2));
    }
}
