//! Property tests for the consistent-hash router: assignments must be
//! stable (shard add/remove moves only ~1/N of the keys, everything else
//! stays put) and uniform (±20% of fair share across 8 shards).

use proptest::prelude::*;
use seneca_fleet::{HashRing, DEFAULT_VNODES};

/// Deterministic key set: `n` keys spread over the u64 domain.
fn keys(n: usize, seed: u64) -> Vec<u64> {
    // Weyl sequence: distinct, seeded, covers the whole domain.
    (0..n as u64).map(|i| seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Removing one shard re-homes exactly the removed shard's keys:
    /// every key previously on a surviving shard keeps its assignment,
    /// and the moved fraction is ~1/N (within 2.5x of the expectation,
    /// which covers vnode arc-length variance).
    #[test]
    fn remove_moves_only_the_lost_shards_keys(
        n_shards in 2u32..10,
        victim_ix in 0u32..10,
        seed in 0u64..1_000_000,
    ) {
        let shard_ids: Vec<u32> = (0..n_shards).collect();
        let victim = victim_ix % n_shards;
        let survivors: Vec<u32> =
            shard_ids.iter().copied().filter(|&s| s != victim).collect();
        let before = HashRing::with_shards(&shard_ids, DEFAULT_VNODES);
        let after = HashRing::with_shards(&survivors, DEFAULT_VNODES);

        let ks = keys(4000, seed);
        let mut moved = 0usize;
        for &k in &ks {
            let b = before.shard_for(k);
            let a = after.shard_for(k);
            if b == victim {
                moved += 1;
                prop_assert!(a != victim, "victim is gone");
            } else {
                // The load-bearing property: survivors keep their keys.
                prop_assert_eq!(a, b, "key {} must not move off a surviving shard", k);
            }
        }
        let expected = ks.len() as f64 / f64::from(n_shards);
        prop_assert!(
            (moved as f64) < 2.5 * expected,
            "moved {} of {} keys; expected ~{:.0}",
            moved, ks.len(), expected
        );
    }

    /// Adding one shard steals ~1/(N+1) of the keys and moves nothing
    /// between pre-existing shards.
    #[test]
    fn add_steals_only_the_new_shards_keys(
        n_shards in 1u32..9,
        seed in 0u64..1_000_000,
    ) {
        let old_ids: Vec<u32> = (0..n_shards).collect();
        let mut new_ids = old_ids.clone();
        new_ids.push(n_shards); // the joining shard
        let before = HashRing::with_shards(&old_ids, DEFAULT_VNODES);
        let after = HashRing::with_shards(&new_ids, DEFAULT_VNODES);

        let ks = keys(4000, seed);
        let mut stolen = 0usize;
        for &k in &ks {
            let b = before.shard_for(k);
            let a = after.shard_for(k);
            if a == n_shards {
                stolen += 1;
            } else {
                prop_assert_eq!(a, b, "key {} moved between pre-existing shards", k);
            }
        }
        let expected = ks.len() as f64 / f64::from(n_shards + 1);
        prop_assert!(
            (stolen as f64) < 2.5 * expected,
            "new shard stole {} of {} keys; expected ~{:.0}",
            stolen, ks.len(), expected
        );
    }

    /// Across 8 shards, every shard's share of a large random key set is
    /// within ±20% of fair — the bound the fleet sizes capacity against.
    #[test]
    fn eight_shards_balanced_within_20pct(seed in 0u64..1_000_000) {
        let ring = HashRing::new(8);
        let ks = keys(16_000, seed);
        let mut counts = [0usize; 8];
        for &k in &ks {
            counts[ring.shard_for(k) as usize] += 1;
        }
        let fair = ks.len() as f64 / 8.0;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - fair).abs() / fair;
            prop_assert!(
                dev <= 0.20,
                "shard {} got {} keys, {:+.1}% off fair share {:.0}",
                s, c, 100.0 * (c as f64 / fair - 1.0), fair
            );
        }
    }
}
