//! Fleet acceptance test: tenant isolation under 2× batch overload.
//!
//! All five Table II models run on two shards (synthetic backends with
//! per-frame costs proportional to the paper's Table IV INT8 FPS, so the
//! test is host-independent). A batch tenant floods the fleet at twice
//! its model's saturation throughput while two interactive tenants keep
//! their normal rates. The fleet must stay up, shed the batch excess
//! explicitly, keep interactive p99 under its deadline with zero deadline
//! misses, and never route any tenant below its Dice floor.

use seneca_fleet::{run_mixed_load, FleetBuilder, FleetConfig, ModelSpec, TenantLoad, TenantSpec};
use seneca_serve::{AdmissionPolicy, ServeConfig, SyntheticBackend};
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;
use std::time::Duration;

/// Table IV INT8 rows: (label, global Dice %, FPS).
const TABLE_IV: [(&str, f64, f64); 5] = [
    ("1M", 93.04, 335.40),
    ("2M", 93.01, 254.87),
    ("4M", 93.49, 273.17),
    ("8M", 93.65, 127.91),
    ("16M", 93.84, 98.12),
];

/// Synthetic service time: paper-shaped cost, slowed 2x so the test's
/// rates stay well inside one host thread's submission bandwidth.
fn per_frame(fps: f64) -> Duration {
    Duration::from_secs_f64(2.0 / fps)
}

fn frame() -> Tensor {
    let shape = Shape4::new(1, 1, 4, 4);
    Tensor::from_vec(shape, (0..shape.len()).map(|i| i as f32 * 0.05).collect())
}

#[test]
fn batch_overload_cannot_move_interactive_p99() {
    const SHARDS: usize = 2;
    const REPLICAS: usize = 2;
    let mut b = FleetBuilder::new(FleetConfig {
        shards: SHARDS,
        serve: ServeConfig {
            replicas: REPLICAS,
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 16,
            admission: AdmissionPolicy::RejectWhenFull,
        },
        batch_inflight_cap: 8,
    });
    for (name, dice, fps) in TABLE_IV {
        b.model(ModelSpec::from_fps(
            name,
            dice,
            fps,
            Arc::new(SyntheticBackend::new(per_frame(fps))),
        ));
    }

    // The contended pair: surgery and bulk both qualify for the 1M model.
    let deadline = Duration::from_millis(150);
    let surgery = b.tenant(TenantSpec::interactive("surgery", deadline, 93.0));
    let bulk = b.tenant(TenantSpec::batch("bulk", 93.0));
    // A second interactive tenant on a different Pareto point (4M), with a
    // downgrade floor it must never be routed below.
    let clinic = b.tenant(TenantSpec::interactive("clinic", deadline, 93.4).with_floor(93.0));

    let fleet = b.start();
    let h = fleet.handle();

    // Fleet-wide saturation of the 1M model (both tenants' primary):
    // shards x replicas x the per-replica service rate (1 / per_frame).
    let per_replica_fps = TABLE_IV[0].2 / 2.0;
    let sat_fps = (SHARDS * REPLICAS) as f64 * per_replica_fps;
    let n_bulk = 600;
    let n_inter = 150;

    let reports = run_mixed_load(
        &h,
        &frame(),
        &[
            // 2x saturation: half of this load *must* be turned away.
            TenantLoad { patients: 64, ..TenantLoad::open(bulk, n_bulk, 2.0 * sat_fps, 0xB01) },
            // Interactive tenants at comfortable fractions of capacity.
            TenantLoad { patients: 32, ..TenantLoad::open(surgery, n_inter, 0.2 * sat_fps, 0x51) },
            TenantLoad { patients: 32, ..TenantLoad::open(clinic, n_inter, 0.1 * sat_fps, 0xC1) },
        ],
    );
    let stats = fleet.shutdown();

    // Every request resolved: the fleet stayed up through the overload.
    let resolved: u64 = reports.iter().map(|r| r.ok + r.errored).sum();
    assert_eq!(resolved, (n_bulk + 2 * n_inter) as u64, "all requests must resolve");

    // The batch tier was actually driven past capacity and shed explicitly.
    let bulk_stats = stats.tenant("bulk").unwrap();
    assert!(
        bulk_stats.shed + bulk_stats.rejected > 0,
        "2x batch overload must shed or reject: {bulk_stats:?}"
    );

    // Isolation: both interactive tenants served everything, on time.
    for name in ["surgery", "clinic"] {
        let t = stats.tenant(name).unwrap();
        assert_eq!(t.served, n_inter as u64, "{name} must be fully served: {t:?}");
        assert_eq!(t.rejected + t.shed + t.failed, 0, "{name} must see no refusals: {t:?}");
        assert_eq!(t.deadline_misses, 0, "batch overload moved {name}'s deadline: {t:?}");
        assert!(
            t.latency.p99_us < deadline.as_micros() as u64,
            "{name} p99 {}us exceeds the {deadline:?} deadline under batch overload",
            t.latency.p99_us
        );
    }

    // The Dice-floor invariant: no tenant was ever routed below its floor.
    for t in &stats.tenants {
        if let Some(min) = t.min_routed_dice() {
            assert!(
                min >= t.dice_floor,
                "tenant {} routed to dice {:.2} below floor {:.2}",
                t.name,
                min,
                t.dice_floor
            );
        }
    }

    // Sharding: the load actually spread across both shards of the 1M cell.
    let m1 = stats.model("1M").unwrap();
    assert_eq!(m1.per_shard.len(), SHARDS);
    for (s, cell) in m1.per_shard.iter().enumerate() {
        assert!(cell.served > 0, "shard {s} of the 1M model served nothing");
    }

    // Tier accounting (satellite): the overload landed on the batch
    // counters of the cells, never on the interactive ones.
    let shed_interactive: u64 =
        stats.models.iter().flat_map(|m| &m.per_shard).map(|c| c.shed_interactive).sum();
    assert_eq!(shed_interactive, 0, "no interactive request may be shed in any cell");
}
