//! Multi-tenant load generation against a [`FleetHandle`].
//!
//! Reuses `seneca-serve`'s [`ArrivalProcess`] vocabulary, adds the fleet
//! dimensions: each spec drives one tenant, and every request draws an
//! affinity key (a patient id) from the tenant's patient population, so
//! the consistent-hash router sees realistic per-patient key reuse.
//! [`run_mixed_load`] drives several tenants *concurrently* — the shape of
//! every isolation experiment: an interactive tenant measured while a
//! batch tenant floods the fleet.

use crate::fleet::{FleetHandle, FleetTicket};
use crate::tenant::TenantId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seneca_serve::ArrivalProcess;
use seneca_tensor::Tensor;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One tenant's load-generation spec.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// The tenant to drive.
    pub tenant: TenantId,
    /// Total requests to submit.
    pub requests: usize,
    /// Arrival discipline (closed loop or open loop).
    pub arrival: ArrivalProcess,
    /// Patient population: affinity keys are drawn from `0..patients`.
    pub patients: u64,
    /// Seed for key draws and Poisson inter-arrivals.
    pub seed: u64,
}

impl TenantLoad {
    /// A full-throttle closed loop (`clients` workers, no think time).
    pub fn closed(tenant: TenantId, requests: usize, clients: usize, seed: u64) -> Self {
        Self {
            tenant,
            requests,
            arrival: ArrivalProcess::ClosedLoop { clients, think: Duration::ZERO },
            patients: 64,
            seed,
        }
    }

    /// An open loop at `rate_fps` with Poisson arrivals.
    pub fn open(tenant: TenantId, requests: usize, rate_fps: f64, seed: u64) -> Self {
        Self {
            tenant,
            requests,
            arrival: ArrivalProcess::OpenLoop { rate_fps, poisson: true },
            patients: 64,
            seed,
        }
    }
}

/// One tenant's client-side outcome.
#[derive(Debug, Clone)]
pub struct TenantLoadReport {
    /// The tenant driven.
    pub tenant: TenantId,
    /// Requests answered with a prediction.
    pub ok: u64,
    /// Requests refused at fleet admission or resolved with an error.
    pub errored: u64,
    /// Requests the router downgraded below the tenant's Dice target.
    pub downgraded: u64,
    /// Offered load (requests / submission-schedule span).
    pub offered_fps: f64,
    /// First submission → last resolution (s).
    pub wall_s: f64,
}

/// Drives one tenant's load; every request submits a clone of `frame`.
pub fn run_tenant_load(
    handle: &FleetHandle,
    frame: &Tensor,
    load: &TenantLoad,
) -> TenantLoadReport {
    match load.arrival {
        ArrivalProcess::ClosedLoop { clients, think } => {
            run_closed(handle, frame, load, clients, think)
        }
        ArrivalProcess::OpenLoop { rate_fps, poisson } => {
            run_open(handle, frame, load, rate_fps, poisson)
        }
    }
}

/// Drives several tenant loads concurrently (one driver per spec); reports
/// come back in spec order. Server-side truth lives in `FleetStats`.
pub fn run_mixed_load(
    handle: &FleetHandle,
    frame: &Tensor,
    loads: &[TenantLoad],
) -> Vec<TenantLoadReport> {
    std::thread::scope(|scope| {
        let drivers: Vec<_> = loads
            .iter()
            .map(|load| {
                let handle = handle.clone();
                scope.spawn(move || run_tenant_load(&handle, frame, load))
            })
            .collect();
        drivers.into_iter().map(|d| d.join().expect("load driver panicked")).collect()
    })
}

fn key_for(rng: &mut StdRng, load: &TenantLoad) -> u64 {
    rng.gen_range(0..load.patients.max(1))
}

fn run_closed(
    handle: &FleetHandle,
    frame: &Tensor,
    load: &TenantLoad,
    clients: usize,
    think: Duration,
) -> TenantLoadReport {
    let clients = clients.max(1);
    let remaining = AtomicI64::new(load.requests as i64);
    let ok = AtomicU64::new(0);
    let errored = AtomicU64::new(0);
    let downgraded = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let remaining = &remaining;
            let ok = &ok;
            let errored = &errored;
            let downgraded = &downgraded;
            let handle = handle.clone();
            scope.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(load.seed ^ (c as u64).wrapping_mul(0x9E37_79B9));
                while remaining.fetch_sub(1, Ordering::Relaxed) > 0 {
                    let key = key_for(&mut rng, load);
                    match handle.submit(load.tenant, key, frame.clone()) {
                        Ok(t) => {
                            if t.downgraded {
                                downgraded.fetch_add(1, Ordering::Relaxed);
                            }
                            match t.wait().result {
                                Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                                Err(_) => errored.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        Err(_) => {
                            errored.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if !think.is_zero() {
                        std::thread::sleep(think);
                    }
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let done = ok.load(Ordering::Relaxed) + errored.load(Ordering::Relaxed);
    TenantLoadReport {
        tenant: load.tenant,
        ok: ok.load(Ordering::Relaxed),
        errored: errored.load(Ordering::Relaxed),
        downgraded: downgraded.load(Ordering::Relaxed),
        // Closed loops offer exactly what completes.
        offered_fps: done as f64 / wall_s,
        wall_s,
    }
}

fn run_open(
    handle: &FleetHandle,
    frame: &Tensor,
    load: &TenantLoad,
    rate_fps: f64,
    poisson: bool,
) -> TenantLoadReport {
    assert!(rate_fps > 0.0, "open-loop rate must be positive");
    let mut rng = StdRng::seed_from_u64(load.seed);
    let t0 = Instant::now();
    let mut next = t0;
    let mut tickets: Vec<FleetTicket> = Vec::with_capacity(load.requests);
    let mut errored = 0u64;
    let mut downgraded = 0u64;
    for _ in 0..load.requests {
        let now = Instant::now();
        // Absolute schedule: if submission falls behind, later requests
        // burst to restore the average rate.
        if next > now {
            std::thread::sleep(next - now);
        }
        let key = key_for(&mut rng, load);
        match handle.submit(load.tenant, key, frame.clone()) {
            Ok(t) => {
                if t.downgraded {
                    downgraded += 1;
                }
                tickets.push(t);
            }
            Err(_) => errored += 1,
        }
        let dt = if poisson {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -u.ln() / rate_fps
        } else {
            1.0 / rate_fps
        };
        next += Duration::from_secs_f64(dt);
    }
    let schedule_s = (next - t0).as_secs_f64().max(1e-9);
    let mut ok = 0u64;
    for t in tickets {
        match t.wait().result {
            Ok(_) => ok += 1,
            Err(_) => errored += 1,
        }
    }
    TenantLoadReport {
        tenant: load.tenant,
        ok,
        errored,
        downgraded,
        offered_fps: load.requests as f64 / schedule_s,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}
