//! # seneca-fleet
//!
//! Fleet-scale serving above `seneca-serve`: the layer that turns "one
//! model on one replica pool" into "the whole Table II family for a
//! million users". The paper's headline artifact is an accuracy-vs-FPS
//! Pareto across five U-Nets (1M–16M); this crate *operationalizes* that
//! Pareto — every tenant declares a Dice floor, and the router sends each
//! request to the cheapest registered model that still meets it.
//!
//! The stack, top to bottom:
//!
//! * [`FleetBuilder`] — registers [`ModelSpec`]s (dice/cost coordinates +
//!   backend) and [`TenantSpec`]s (tier, deadline, Dice target/floor),
//!   then starts one `seneca-serve` replica pool per `(shard, model)`;
//! * [`HashRing`] — consistent-hash request routing on a per-patient
//!   affinity key: all of a patient's frames hit the same shard, shard
//!   add/remove moves only `~1/N` of the keyspace;
//! * Dice-floor cost routing ([`ModelRegistry::route_chain`]) — cheapest
//!   model meeting the tenant's target, with overload fallback down to
//!   (never below) its floor for tenants that allow downgrade;
//! * tiered load-shedding — batch-tier requests take a bounded per-cell
//!   in-flight slot before touching any queue, so bulk overload cannot
//!   crowd interactive traffic out of admission (the isolation guarantee
//!   the acceptance test pins: 2× batch overload, flat interactive p99);
//! * [`FleetHandle`] — the admin surface: per-tenant / per-model /
//!   per-shard [`FleetStats`], plus a live [`seneca_trace::TraceReport`]
//!   export, no restart required.

mod fleet;
mod loadgen;
mod registry;
mod ring;
mod tenant;

pub use fleet::{
    Fleet, FleetBuilder, FleetConfig, FleetError, FleetHandle, FleetStats, FleetTicket, ModelStats,
    RoutedCount, TenantStats,
};
pub use loadgen::{run_mixed_load, run_tenant_load, TenantLoad, TenantLoadReport};
pub use registry::{ModelId, ModelRegistry, ModelSpec};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use tenant::{TenantId, TenantSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use seneca_serve::{Priority, ServeError, SyntheticBackend};
    use seneca_tensor::{Shape4, Tensor};
    use std::sync::Arc;
    use std::time::Duration;

    fn frame() -> Tensor {
        Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![0.1, 0.2, 0.3, 0.4])
    }

    fn two_model_fleet(shards: usize) -> (FleetBuilder, ModelId, ModelId) {
        let mut b = FleetBuilder::new(FleetConfig { shards, ..FleetConfig::default() });
        let cheap = b.model(ModelSpec::from_fps(
            "cheap",
            93.0,
            2000.0,
            Arc::new(SyntheticBackend::new(Duration::from_micros(100))),
        ));
        let fine = b.model(ModelSpec::from_fps(
            "fine",
            93.8,
            500.0,
            Arc::new(SyntheticBackend::new(Duration::from_micros(400))),
        ));
        (b, cheap, fine)
    }

    #[test]
    fn routes_to_cheapest_model_meeting_target() {
        let (mut b, _, _) = two_model_fleet(1);
        let low = b.tenant(TenantSpec::batch("low", 92.5));
        let high = b.tenant(TenantSpec::batch("high", 93.5));
        let fleet = b.start();
        let h = fleet.handle();
        let r1 = h.submit(low, 7, frame()).expect("admitted");
        assert_eq!(r1.model, 0, "low target routes to the cheap model");
        let r2 = h.submit(high, 7, frame()).expect("admitted");
        assert_eq!(r2.model, 1, "high target requires the fine model");
        r1.wait().result.expect("served");
        r2.wait().result.expect("served");
        let stats = fleet.shutdown();
        assert_eq!(stats.tenant("low").unwrap().served, 1);
        assert_eq!(stats.tenant("high").unwrap().routed[1].count, 1);
        assert_eq!(stats.model("cheap").unwrap().served, 1);
    }

    #[test]
    fn affinity_key_pins_the_shard() {
        let (mut b, _, _) = two_model_fleet(4);
        let t = b.tenant(TenantSpec::batch("t", 92.0));
        let fleet = b.start();
        let h = fleet.handle();
        for key in [3u64, 99, 12345] {
            let expect = h.shard_for(key);
            for _ in 0..3 {
                let ticket = h.submit(t, key, frame()).expect("admitted");
                assert_eq!(ticket.shard, expect, "same key, same shard");
                ticket.wait().result.expect("served");
            }
        }
        fleet.shutdown();
    }

    #[test]
    fn unknown_tenant_is_refused() {
        let (b, _, _) = two_model_fleet(1);
        let fleet = b.start();
        assert_eq!(fleet.handle().submit(42, 0, frame()).unwrap_err(), FleetError::UnknownTenant);
        fleet.shutdown();
    }

    #[test]
    #[should_panic(expected = "no registered model reaches it")]
    fn unreachable_dice_target_fails_at_start() {
        let (mut b, _, _) = two_model_fleet(1);
        b.tenant(TenantSpec::batch("greedy", 99.9));
        b.start();
    }

    #[test]
    fn batch_tier_sheds_at_the_inflight_cap() {
        // One slow model, cap 2: a burst of batch submissions must shed
        // beyond the cap while the queue itself still has room.
        let mut b = FleetBuilder::new(FleetConfig {
            shards: 1,
            serve: seneca_serve::ServeConfig {
                replicas: 1,
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_capacity: 16,
                admission: seneca_serve::AdmissionPolicy::RejectWhenFull,
            },
            batch_inflight_cap: 2,
        });
        b.model(ModelSpec::from_fps(
            "slow",
            93.0,
            20.0,
            Arc::new(SyntheticBackend::new(Duration::from_millis(50))),
        ));
        let t = b.tenant(TenantSpec::batch("bulk", 93.0));
        let fleet = b.start();
        let h = fleet.handle();
        let a = h.submit(t, 0, frame()).expect("slot 1");
        let bt = h.submit(t, 1, frame()).expect("slot 2");
        assert_eq!(h.submit(t, 2, frame()).unwrap_err(), FleetError::BatchShed);
        a.wait().result.expect("served");
        // A freed slot re-admits.
        let c = h.submit(t, 3, frame()).expect("slot freed by resolution");
        bt.wait().result.expect("served");
        c.wait().result.expect("served");
        let stats = fleet.shutdown();
        let ts = stats.tenant("bulk").unwrap();
        assert_eq!(ts.shed, 1, "the capped submission counts as a tier shed");
        assert_eq!(ts.served, 3);
    }

    #[test]
    fn interactive_tier_ignores_the_batch_cap() {
        let mut b = FleetBuilder::new(FleetConfig {
            shards: 1,
            serve: seneca_serve::ServeConfig {
                replicas: 1,
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_capacity: 8,
                admission: seneca_serve::AdmissionPolicy::RejectWhenFull,
            },
            batch_inflight_cap: 1,
        });
        b.model(ModelSpec::from_fps(
            "m",
            93.0,
            100.0,
            Arc::new(SyntheticBackend::new(Duration::from_millis(10))),
        ));
        let bulk = b.tenant(TenantSpec::batch("bulk", 93.0));
        let surg = b.tenant(TenantSpec::interactive("surgery", Duration::from_millis(500), 93.0));
        let fleet = b.start();
        let h = fleet.handle();
        let t1 = h.submit(bulk, 0, frame()).expect("batch slot");
        assert_eq!(h.submit(bulk, 1, frame()).unwrap_err(), FleetError::BatchShed);
        // Interactive admission is untouched by the saturated batch cap.
        let t2 = h.submit(surg, 2, frame()).expect("interactive must admit");
        t1.wait().result.expect("served");
        t2.wait().result.expect("served");
        fleet.shutdown();
    }

    #[test]
    fn overload_downgrade_stays_at_or_above_the_floor() {
        // The fine model has one queue slot and a glacial backend; the
        // downgrade-tolerant tenant falls back to the cheap model, the
        // pinned tenant is rejected instead.
        let mut b = FleetBuilder::new(FleetConfig {
            shards: 1,
            serve: seneca_serve::ServeConfig {
                replicas: 1,
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_capacity: 1,
                admission: seneca_serve::AdmissionPolicy::RejectWhenFull,
            },
            batch_inflight_cap: 8,
        });
        b.model(ModelSpec::from_fps(
            "cheap",
            93.0,
            1000.0,
            Arc::new(SyntheticBackend::new(Duration::from_micros(200))),
        ));
        b.model(ModelSpec::from_fps(
            "fine",
            93.8,
            10.0,
            Arc::new(SyntheticBackend::new(Duration::from_millis(40))),
        ));
        let flex = b.tenant(TenantSpec::batch("flex", 93.8).with_floor(93.0));
        let pinned = b.tenant(TenantSpec::batch("pinned", 93.8));
        let fleet = b.start();
        let h = fleet.handle();

        // Saturate the fine model: one executing + one queued.
        let mut held = Vec::new();
        let mut downgraded = None;
        for i in 0..8u64 {
            match h.submit(flex, i, frame()) {
                Ok(t) if t.downgraded => {
                    assert_eq!(t.model, 0, "downgrade lands on the cheap model");
                    downgraded = Some(t);
                    break;
                }
                Ok(t) => held.push(t),
                Err(e) => panic!("flex tenant must downgrade, not fail: {e}"),
            }
        }
        let downgraded = downgraded.expect("fine-model overload must downgrade");
        // The pinned tenant sees the same overload and is refused.
        assert_eq!(
            h.submit(pinned, 99, frame()).unwrap_err(),
            FleetError::Overloaded(ServeError::QueueFull)
        );
        downgraded.wait().result.expect("served on the cheap model");
        for t in held {
            t.wait().result.expect("served on the fine model");
        }
        let stats = fleet.shutdown();
        let flex_stats = stats.tenant("flex").unwrap();
        assert_eq!(flex_stats.downgraded, 1);
        assert!(flex_stats.min_routed_dice().unwrap() >= flex_stats.dice_floor);
        assert_eq!(stats.tenant("pinned").unwrap().rejected, 1);
    }

    #[test]
    fn stats_serialize_to_json() {
        let (mut b, _, _) = two_model_fleet(2);
        let t = b.tenant(TenantSpec::batch("t", 92.0));
        let fleet = b.start();
        fleet.handle().submit_wait(t, 5, frame()).expect("served").result.expect("ok");
        let stats = fleet.shutdown();
        let json = serde_json::to_string(&stats).expect("serializable");
        assert!(json.contains("\"tenants\""));
        assert!(json.contains("\"per_shard\""));
        assert!(json.contains("\"dice_floor\""));
    }

    #[test]
    fn trace_report_exports_live() {
        let (mut b, _, _) = two_model_fleet(1);
        let t = b.tenant(TenantSpec::batch("t", 92.0));
        let fleet = b.start();
        let h = fleet.handle();
        let enabled = seneca_trace::enabled();
        seneca_trace::set_enabled(true);
        h.submit_wait(t, 1, frame()).expect("served").result.expect("ok");
        let report = h.trace_report();
        seneca_trace::set_enabled(enabled);
        // The live fleet shows up in the serving domain without restart.
        assert!(
            report.get("serve", "replica_exec").is_some_and(|r| r.count >= 1),
            "live trace must include the fleet's replica executions"
        );
        fleet.shutdown();
    }

    #[test]
    fn mixed_load_drives_all_tenants() {
        let (mut b, _, _) = two_model_fleet(2);
        let bulk = b.tenant(TenantSpec::batch("bulk", 92.5));
        let surg = b.tenant(TenantSpec::interactive("surgery", Duration::from_millis(500), 93.5));
        let fleet = b.start();
        let reports = run_mixed_load(
            &fleet.handle(),
            &frame(),
            &[TenantLoad::closed(bulk, 20, 2, 1), TenantLoad::closed(surg, 20, 2, 2)],
        );
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.ok, 20, "closed loop over an uncontended fleet serves all");
        }
        let stats = fleet.shutdown();
        assert_eq!(stats.tenant("bulk").unwrap().served, 20);
        assert_eq!(stats.tenant("surgery").unwrap().served, 20);
        fleet_totals_are_consistent(&stats);
    }

    /// Cross-checks tenant-side and model-side accounting.
    fn fleet_totals_are_consistent(stats: &FleetStats) {
        let routed: u64 = stats.tenants.iter().flat_map(|t| t.routed.iter().map(|r| r.count)).sum();
        let submitted_cells: u64 = stats.models.iter().map(|m| m.submitted).sum();
        assert_eq!(routed, submitted_cells, "every admission maps to one cell submission");
    }
}
