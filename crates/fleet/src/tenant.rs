//! Tenant SLO classes.
//!
//! A tenant is one consumer population (a hospital, a device fleet, a bulk
//! re-processing job) with its own quality floor and latency class. The
//! SLO class maps straight onto the machinery `seneca-serve` already has:
//! the tier is a [`Priority`] (interactive work always dequeues first), the
//! deadline rides on every submission, and the Dice bounds drive the
//! cost-aware model routing — the paper's accuracy-vs-FPS Pareto,
//! operationalized per consumer instead of hard-coded globally.

use seneca_serve::Priority;
use std::time::Duration;

/// Index of a registered tenant (returned by [`crate::FleetBuilder::tenant`]).
pub type TenantId = usize;

/// One tenant's service-level objective. (The serializable projection
/// lives in [`crate::TenantStats`]; the spec itself stays a plain value.)
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (report key).
    pub name: String,
    /// Scheduling tier: `Interactive` traffic preempts `Batch` traffic in
    /// every shard queue, and only `Batch` traffic is subject to the
    /// fleet's in-flight cap (tiered shedding).
    pub tier: Priority,
    /// Relative deadline stamped on every request (`None` = no SLO).
    pub deadline: Option<Duration>,
    /// Preferred quality: the router picks the *cheapest* registered model
    /// whose expected Dice (%) meets this target.
    pub dice_target: f64,
    /// Hard quality minimum (%). With [`TenantSpec::allow_downgrade`], an
    /// overloaded preferred model falls back to cheaper models down to —
    /// but never below — this floor.
    pub dice_floor: f64,
    /// Whether overload may downgrade this tenant inside
    /// `[dice_floor, dice_target)`. Without it the floor is informational
    /// and the tenant only ever runs at `dice_target` quality or better.
    pub allow_downgrade: bool,
}

impl TenantSpec {
    /// An interactive (deadline-bearing) tenant pinned at `dice_target`.
    pub fn interactive(name: &str, deadline: Duration, dice_target: f64) -> Self {
        Self {
            name: name.to_string(),
            tier: Priority::Interactive,
            deadline: Some(deadline),
            dice_target,
            dice_floor: dice_target,
            allow_downgrade: false,
        }
    }

    /// A batch (throughput) tenant pinned at `dice_target`, no deadline.
    pub fn batch(name: &str, dice_target: f64) -> Self {
        Self {
            name: name.to_string(),
            tier: Priority::Batch,
            deadline: None,
            dice_target,
            dice_floor: dice_target,
            allow_downgrade: false,
        }
    }

    /// Permits overload downgrade down to `dice_floor`.
    pub fn with_floor(mut self, dice_floor: f64) -> Self {
        assert!(
            dice_floor <= self.dice_target,
            "dice floor {dice_floor} must not exceed target {}",
            self.dice_target
        );
        self.dice_floor = dice_floor;
        self.allow_downgrade = dice_floor < self.dice_target;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pin_floor_to_target() {
        let t = TenantSpec::interactive("surgery", Duration::from_millis(50), 93.5);
        assert_eq!(t.tier, Priority::Interactive);
        assert_eq!(t.dice_floor, 93.5);
        assert!(!t.allow_downgrade);

        let b = TenantSpec::batch("archive", 93.5).with_floor(93.0);
        assert_eq!(b.tier, Priority::Batch);
        assert!(b.allow_downgrade);
        assert_eq!(b.dice_floor, 93.0);
    }

    #[test]
    #[should_panic(expected = "must not exceed target")]
    fn floor_above_target_is_rejected() {
        let _ = TenantSpec::batch("broken", 93.0).with_floor(93.5);
    }
}
