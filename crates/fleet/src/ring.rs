//! Consistent-hash request routing across shards.
//!
//! The fleet routes every request by an *affinity key* (the patient id), so
//! all frames of one patient land on the same shard — its per-patient
//! caches and replica-local state stay warm, and capacity is added by
//! adding shards rather than re-balancing everything. The ring is the
//! classic virtual-node construction: each shard owns [`HashRing::vnodes`]
//! pseudo-random points on a `u64` circle, and a key belongs to the shard
//! owning the first point at or after the key's hash (wrapping). Because a
//! shard's points do not move when other shards join or leave, adding or
//! removing one shard relocates only the keys in the arcs it gains or
//! loses — ~`1/N` of the keyspace — which a proptest asserts.

/// Virtual points per shard. High enough that the largest/smallest shard
/// arc share stays within ±20% of the mean for typical fleet sizes (a
/// proptest pins this for 8 shards), low enough that the sorted point
/// table stays a few KiB.
pub const DEFAULT_VNODES: usize = 256;

/// SplitMix64: a full-period 64-bit mixer. The ring only needs a fast,
/// well-distributed stateless hash, not a cryptographic one.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring mapping `u64` affinity keys to shard ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; ties broken by shard id so the
    /// ring is deterministic regardless of construction order.
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

impl HashRing {
    /// A ring over shards `0..n_shards` with [`DEFAULT_VNODES`] points each.
    pub fn new(n_shards: usize) -> Self {
        let ids: Vec<u32> = (0..n_shards as u32).collect();
        Self::with_shards(&ids, DEFAULT_VNODES)
    }

    /// A ring over an explicit shard-id set (ids need not be contiguous —
    /// this is what shard add/remove produces).
    pub fn with_shards(shard_ids: &[u32], vnodes: usize) -> Self {
        assert!(!shard_ids.is_empty(), "a ring needs at least one shard");
        assert!(vnodes >= 1, "each shard needs at least one virtual node");
        let mut points = Vec::with_capacity(shard_ids.len() * vnodes);
        for &s in shard_ids {
            // Per-shard point stream: mix the shard id, then chain-mix per
            // vnode. Independent of the other shards by construction.
            let mut h = splitmix64(0xF1EE_7000_0000_0000 ^ u64::from(s));
            for _ in 0..vnodes {
                h = splitmix64(h);
                points.push((h, s));
            }
        }
        points.sort_unstable();
        points.dedup();
        Self { points, vnodes }
    }

    /// Virtual points per shard this ring was built with.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The shard owning `key`: the first point clockwise of the key's hash.
    pub fn shard_for(&self, key: u64) -> u32 {
        let h = splitmix64(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        // Wrap past the last point back to the first.
        self.points[if idx == self.points.len() { 0 } else { idx }].1
    }

    /// Fraction of the keyspace each shard owns (arc-length shares, exact).
    pub fn arc_shares(&self) -> Vec<(u32, f64)> {
        let mut owned: std::collections::BTreeMap<u32, u128> = std::collections::BTreeMap::new();
        for (i, &(p, _)) in self.points.iter().enumerate() {
            // The arc *ending* at point i is owned by point i's shard.
            let prev = if i == 0 {
                // Wrap: from the last point over u64::MAX to the first.
                (u128::from(p) + (1u128 << 64)) - u128::from(self.points[self.points.len() - 1].0)
            } else {
                u128::from(p) - u128::from(self.points[i - 1].0)
            };
            *owned.entry(self.points[i].1).or_default() += prev;
        }
        owned.into_iter().map(|(s, len)| (s, len as f64 / (1u128 << 64) as f64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_total() {
        let r = HashRing::new(4);
        for key in 0..1000u64 {
            let s = r.shard_for(key);
            assert!(s < 4);
            assert_eq!(s, r.shard_for(key), "assignment must be stable");
        }
        // Construction order must not matter.
        let a = HashRing::with_shards(&[0, 1, 2, 3], 64);
        let b = HashRing::with_shards(&[3, 1, 0, 2], 64);
        for key in 0..500u64 {
            assert_eq!(a.shard_for(key), b.shard_for(key));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let r = HashRing::new(1);
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(r.shard_for(key), 0);
        }
        let shares = r.arc_shares();
        assert_eq!(shares.len(), 1);
        assert!((shares[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arc_shares_sum_to_one() {
        let r = HashRing::new(8);
        let total: f64 = r.arc_shares().iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn default_ring_is_balanced_within_20pct() {
        // The uniformity bound the fleet relies on: with DEFAULT_VNODES
        // points per shard, no shard of an 8-shard ring owns more than
        // ±20% off the fair share of the keyspace.
        let r = HashRing::new(8);
        let fair = 1.0 / 8.0;
        for (s, share) in r.arc_shares() {
            assert!(
                (share - fair).abs() <= 0.2 * fair,
                "shard {s} owns {:.2}% of keyspace (fair {:.2}%)",
                100.0 * share,
                100.0 * fair
            );
        }
    }
}
