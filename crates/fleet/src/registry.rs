//! The model registry and the Dice-floor / cost routing table.
//!
//! Each registered model is one point on the paper's accuracy-vs-FPS
//! Pareto: an expected global Dice (%, Table IV) and a per-frame cost
//! (routing weight — modeled milliseconds per frame, i.e. `1000 / FPS`).
//! Routing is *cost-aware quality admission*: a tenant gets the cheapest
//! model whose Dice meets its target, and — if it allows downgrade — a
//! fallback chain of cheaper models down to its floor for overload.

use crate::tenant::TenantSpec;
use seneca_backend::Backend;
use std::sync::Arc;

/// Index of a registered model inside the fleet (registration order).
pub type ModelId = usize;

/// One registered model: quality/cost coordinates plus the backend every
/// shard's replica pool executes.
#[derive(Clone)]
pub struct ModelSpec {
    /// Display name (report key, e.g. the Table II label "1M".."16M").
    pub name: String,
    /// Expected global Dice (%) of this model — the routing quality axis.
    pub dice: f64,
    /// Modeled per-frame cost in milliseconds — the routing cost axis.
    pub cost_ms: f64,
    /// The inference backend (shared by all shards; each shard runs its
    /// own replica pool over it).
    pub backend: Arc<dyn Backend>,
}

impl ModelSpec {
    /// A spec with cost expressed as frames/s (`cost_ms = 1000 / fps`).
    pub fn from_fps(name: &str, dice: f64, fps: f64, backend: Arc<dyn Backend>) -> Self {
        assert!(fps > 0.0, "model fps must be positive");
        Self { name: name.to_string(), dice, cost_ms: 1000.0 / fps, backend }
    }
}

/// The fleet's registered model family, with the routing order
/// precomputed: model ids sorted by ascending cost.
pub struct ModelRegistry {
    models: Vec<ModelSpec>,
    by_cost: Vec<ModelId>,
}

impl ModelRegistry {
    /// Builds the registry. At least one model is required.
    pub fn new(models: Vec<ModelSpec>) -> Self {
        assert!(!models.is_empty(), "the fleet needs at least one model");
        let mut by_cost: Vec<ModelId> = (0..models.len()).collect();
        by_cost.sort_by(|&a, &b| models[a].cost_ms.total_cmp(&models[b].cost_ms).then(a.cmp(&b)));
        Self { models, by_cost }
    }

    /// All models, registration order.
    pub fn models(&self) -> &[ModelSpec] {
        &self.models
    }

    /// One model by id.
    pub fn get(&self, id: ModelId) -> &ModelSpec {
        &self.models[id]
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are registered (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The routing chain for one tenant: the primary choice (cheapest
    /// model with `dice >= dice_target`) first, then — when the tenant
    /// allows downgrade — every other model with `dice >= dice_floor` in
    /// ascending cost order. Empty iff no model meets the target.
    pub fn route_chain(&self, tenant: &TenantSpec) -> Vec<ModelId> {
        let primary =
            self.by_cost.iter().copied().find(|&id| self.models[id].dice >= tenant.dice_target);
        let Some(primary) = primary else {
            return Vec::new();
        };
        let mut chain = vec![primary];
        if tenant.allow_downgrade {
            chain.extend(
                self.by_cost
                    .iter()
                    .copied()
                    .filter(|&id| id != primary && self.models[id].dice >= tenant.dice_floor),
            );
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantSpec;
    use seneca_serve::SyntheticBackend;
    use std::time::Duration;

    /// The Table IV INT8 Pareto (dice %, fps) for the five models.
    fn table_iv() -> Vec<ModelSpec> {
        let rows = [
            ("1M", 93.04, 335.40),
            ("2M", 93.01, 254.87),
            ("4M", 93.49, 273.17),
            ("8M", 93.65, 127.91),
            ("16M", 93.84, 98.12),
        ];
        rows.iter()
            .map(|&(name, dice, fps)| {
                ModelSpec::from_fps(
                    name,
                    dice,
                    fps,
                    Arc::new(SyntheticBackend::new(Duration::ZERO)),
                )
            })
            .collect()
    }

    #[test]
    fn routes_cheapest_model_meeting_the_target() {
        let reg = ModelRegistry::new(table_iv());
        // 93.0 floor: the 1M model (highest FPS = cheapest) qualifies.
        let chain = reg.route_chain(&TenantSpec::batch("t", 93.0));
        assert_eq!(reg.get(chain[0]).name, "1M");
        // 93.4: 1M/2M fall short; 4M is the cheapest qualifying model.
        let chain = reg.route_chain(&TenantSpec::batch("t", 93.4));
        assert_eq!(reg.get(chain[0]).name, "4M");
        // 93.8: only the 16M model qualifies.
        let chain = reg.route_chain(&TenantSpec::batch("t", 93.8));
        assert_eq!(reg.get(chain[0]).name, "16M");
        assert_eq!(chain.len(), 1, "no downgrade allowed by default");
    }

    #[test]
    fn downgrade_chain_stops_at_the_floor() {
        let reg = ModelRegistry::new(table_iv());
        let tenant = TenantSpec::batch("t", 93.6).with_floor(93.4);
        let chain = reg.route_chain(&tenant);
        let names: Vec<&str> = chain.iter().map(|&id| reg.get(id).name.as_str()).collect();
        // Primary 8M (cheapest >= 93.6), fallback 4M (>= 93.4), then 16M.
        // 1M and 2M are below the floor and must never appear.
        assert_eq!(names, ["8M", "4M", "16M"]);
    }

    #[test]
    fn unreachable_target_yields_empty_chain() {
        let reg = ModelRegistry::new(table_iv());
        assert!(reg.route_chain(&TenantSpec::batch("t", 99.0)).is_empty());
    }
}
