//! The fleet: shards × models × replica pools, one admin surface.
//!
//! A [`Fleet`] instantiates every registered model on every shard — each
//! `(shard, model)` cell is a full `seneca-serve` [`Server`] (bounded
//! intake queue, dynamic micro-batching, replica pool) — and routes each
//! submission in three steps:
//!
//! 1. **shard** by consistent-hashing the request's affinity key (the
//!    patient id), so per-patient traffic has shard affinity and capacity
//!    scales by adding shards;
//! 2. **model** by the tenant's routing chain (cheapest model meeting its
//!    Dice target, with optional overload downgrade down to its floor);
//! 3. **tier admission**: batch-tier requests take a per-cell in-flight
//!    slot first, so bulk traffic can never occupy more than
//!    [`FleetConfig::batch_inflight_cap`] slots of any cell — interactive
//!    work always finds queue room, which is what keeps its p99 flat under
//!    batch overload.

use crate::registry::{ModelId, ModelRegistry, ModelSpec};
use crate::ring::HashRing;
use crate::tenant::{TenantId, TenantSpec};
use seneca_serve::{
    LatencyHistogram, LatencySummary, Priority, ServeConfig, ServeError, ServeHandle,
    ServeResponse, ServeStats, Server, Ticket,
};
use seneca_tensor::Tensor;
use seneca_trace::TraceReport;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Horizontal shards. Every model gets a replica pool on every shard.
    pub shards: usize,
    /// Per-cell serving configuration (queue, batching window, replicas).
    pub serve: ServeConfig,
    /// Largest number of batch-tier requests simultaneously admitted to
    /// one `(shard, model)` cell. Keep it below the cell's queue capacity
    /// so interactive traffic always has admission headroom.
    pub batch_inflight_cap: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        let serve = ServeConfig {
            admission: seneca_serve::AdmissionPolicy::RejectWhenFull,
            ..ServeConfig::default()
        };
        // Half the queue: batch work can fill at most half of any cell.
        let batch_inflight_cap = serve.queue_capacity / 2;
        Self { shards: 2, serve, batch_inflight_cap }
    }
}

/// Why the fleet turned a submission away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// No such tenant id.
    UnknownTenant,
    /// Every model in the tenant's routing chain refused admission; the
    /// payload is the last refusal (queue full, shutting down, …).
    Overloaded(ServeError),
    /// Batch-tier shed: every candidate cell was already at its batch
    /// in-flight cap (interactive traffic is never shed this way).
    BatchShed,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownTenant => f.write_str("unknown tenant"),
            FleetError::Overloaded(e) => write!(f, "all routed models refused admission: {e}"),
            FleetError::BatchShed => f.write_str("batch tier at its in-flight cap"),
        }
    }
}

impl std::error::Error for FleetError {}

/// RAII batch-tier in-flight slot; freed when the request resolves (or
/// its ticket is dropped).
struct BatchSlot {
    counter: Arc<AtomicUsize>,
}

impl BatchSlot {
    fn acquire(counter: &Arc<AtomicUsize>, cap: usize) -> Option<Self> {
        let mut cur = counter.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                return None;
            }
            match counter.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(Self { counter: Arc::clone(counter) }),
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Drop for BatchSlot {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One `(shard, model)` cell's submission side.
struct Cell {
    handle: ServeHandle,
    batch_inflight: Arc<AtomicUsize>,
}

/// Fleet-level accounting for one tenant.
struct TenantMetrics {
    submitted: AtomicU64,
    served: AtomicU64,
    /// Tier sheds + deadline-expired resolutions.
    shed: AtomicU64,
    /// Admission refusals after the whole routing chain was tried.
    rejected: AtomicU64,
    /// Resolutions that failed for other reasons (backend panic, shutdown).
    failed: AtomicU64,
    downgraded: AtomicU64,
    deadline_misses: AtomicU64,
    /// Admissions per model id — the routing table the Dice-floor
    /// invariant is asserted against.
    routed: Vec<AtomicU64>,
    latency: LatencyHistogram,
}

impl TenantMetrics {
    fn new(n_models: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            downgraded: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            routed: (0..n_models).map(|_| AtomicU64::new(0)).collect(),
            latency: LatencyHistogram::new(),
        }
    }
}

struct TenantState {
    spec: TenantSpec,
    /// Precomputed model routing chain (validated non-empty at start).
    chain: Vec<ModelId>,
    metrics: TenantMetrics,
}

struct FleetInner {
    registry: ModelRegistry,
    tenants: Vec<TenantState>,
    ring: HashRing,
    /// `cells[shard][model]`.
    cells: Vec<Vec<Cell>>,
    batch_inflight_cap: usize,
}

/// Builds a [`Fleet`]: register models and tenants, then start.
pub struct FleetBuilder {
    config: FleetConfig,
    models: Vec<ModelSpec>,
    tenants: Vec<TenantSpec>,
}

impl FleetBuilder {
    /// A builder over the given fleet configuration.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.shards >= 1, "the fleet needs at least one shard");
        assert!(
            config.batch_inflight_cap >= 1,
            "batch tier needs at least one in-flight slot per cell"
        );
        Self { config, models: Vec::new(), tenants: Vec::new() }
    }

    /// Registers one model; returns its [`ModelId`].
    pub fn model(&mut self, spec: ModelSpec) -> ModelId {
        self.models.push(spec);
        self.models.len() - 1
    }

    /// Registers one tenant; returns its [`TenantId`].
    pub fn tenant(&mut self, spec: TenantSpec) -> TenantId {
        self.tenants.push(spec);
        self.tenants.len() - 1
    }

    /// Starts every `(shard, model)` replica pool and wires the router.
    /// Panics if a tenant's Dice target is not met by any registered model
    /// — that tenant could never be routed.
    pub fn start(self) -> Fleet {
        let registry = ModelRegistry::new(self.models);
        let tenants: Vec<TenantState> = self
            .tenants
            .into_iter()
            .map(|spec| {
                let chain = registry.route_chain(&spec);
                assert!(
                    !chain.is_empty(),
                    "tenant '{}' wants dice >= {:.2} but no registered model reaches it",
                    spec.name,
                    spec.dice_target
                );
                let metrics = TenantMetrics::new(registry.len());
                TenantState { spec, chain, metrics }
            })
            .collect();

        let mut servers = Vec::with_capacity(self.config.shards);
        let mut cells = Vec::with_capacity(self.config.shards);
        for _ in 0..self.config.shards {
            let mut shard_servers = Vec::with_capacity(registry.len());
            let mut shard_cells = Vec::with_capacity(registry.len());
            for spec in registry.models() {
                let server = Server::start(Arc::clone(&spec.backend), self.config.serve.clone());
                shard_cells.push(Cell {
                    handle: server.handle(),
                    batch_inflight: Arc::new(AtomicUsize::new(0)),
                });
                shard_servers.push(server);
            }
            servers.push(shard_servers);
            cells.push(shard_cells);
        }

        let inner = Arc::new(FleetInner {
            registry,
            tenants,
            ring: HashRing::new(self.config.shards),
            cells,
            batch_inflight_cap: self.config.batch_inflight_cap,
        });
        Fleet { inner, servers }
    }
}

/// A running fleet; dropping it shuts every cell down after draining.
pub struct Fleet {
    inner: Arc<FleetInner>,
    /// `servers[shard][model]`, kept for shutdown.
    servers: Vec<Vec<Server>>,
}

impl Fleet {
    /// A cloneable submission/admin handle.
    pub fn handle(&self) -> FleetHandle {
        FleetHandle { inner: Arc::clone(&self.inner) }
    }

    /// Live fleet statistics.
    pub fn stats(&self) -> FleetStats {
        self.handle().stats()
    }

    /// Graceful shutdown: drains every cell and returns final statistics.
    pub fn shutdown(self) -> FleetStats {
        let Fleet { inner, servers } = self;
        // Collect final per-cell stats as each server drains and joins.
        let final_cells: Vec<Vec<ServeStats>> = servers
            .into_iter()
            .map(|shard| shard.into_iter().map(Server::shutdown).collect())
            .collect();
        inner.stats_from_cells(final_cells)
    }
}

/// Claim on a fleet submission, annotated with the routing decision.
pub struct FleetTicket {
    /// The tenant that submitted.
    pub tenant: TenantId,
    /// The model the router assigned (always ≥ the tenant's Dice floor).
    pub model: ModelId,
    /// The shard the affinity key hashed to.
    pub shard: usize,
    /// True when overload pushed the tenant below its Dice target (but
    /// never below its floor).
    pub downgraded: bool,
    ticket: Ticket,
    inner: Arc<FleetInner>,
    /// Holds the batch-tier in-flight slot until resolution.
    _slot: Option<BatchSlot>,
}

impl std::fmt::Debug for FleetTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTicket")
            .field("tenant", &self.tenant)
            .field("model", &self.model)
            .field("shard", &self.shard)
            .field("downgraded", &self.downgraded)
            .finish_non_exhaustive()
    }
}

impl FleetTicket {
    /// Blocks until the response arrives, recording the outcome in the
    /// tenant's fleet-level statistics.
    pub fn wait(self) -> ServeResponse {
        let resp = self.ticket.wait();
        let m = &self.inner.tenants[self.tenant].metrics;
        match &resp.result {
            Ok(_) => {
                m.served.fetch_add(1, Ordering::Relaxed);
                m.latency.record(resp.timing.total);
                let missed = self.inner.tenants[self.tenant]
                    .spec
                    .deadline
                    .is_some_and(|d| resp.timing.total > d);
                if missed {
                    m.deadline_misses.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(ServeError::DeadlineExpired) => {
                m.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                m.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        resp
    }
}

/// Cloneable submission + admin surface of a running [`Fleet`].
#[derive(Clone)]
pub struct FleetHandle {
    inner: Arc<FleetInner>,
}

impl FleetHandle {
    /// Submits one frame for `tenant`, keyed by `affinity` (the patient
    /// id). Routing: affinity → shard, tenant chain → model, tier →
    /// admission. Returns the annotated ticket or why the fleet refused.
    pub fn submit(
        &self,
        tenant: TenantId,
        affinity: u64,
        image: Tensor,
    ) -> Result<FleetTicket, FleetError> {
        let state = self.inner.tenants.get(tenant).ok_or(FleetError::UnknownTenant)?;
        state.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let shard = self.inner.ring.shard_for(affinity) as usize;
        let cells = &self.inner.cells[shard];

        let mut image = Some(image);
        let mut saw_full = false;
        let mut last_err = ServeError::QueueFull;
        for (hop, &model) in state.chain.iter().enumerate() {
            let cell = &cells[model];
            // Tiered shedding: batch work must take an in-flight slot
            // before it may touch the cell's queue.
            let slot = match state.spec.tier {
                Priority::Batch => {
                    match BatchSlot::acquire(&cell.batch_inflight, self.inner.batch_inflight_cap) {
                        Some(s) => Some(s),
                        None => continue,
                    }
                }
                Priority::Interactive => None,
            };
            // Clone only when another chain hop could still need the frame.
            let frame = if hop + 1 < state.chain.len() {
                image.clone().expect("frame present until submitted")
            } else {
                image.take().expect("frame present until submitted")
            };
            match cell.handle.submit(frame, state.spec.tier, state.spec.deadline) {
                Ok(ticket) => {
                    state.metrics.routed[model].fetch_add(1, Ordering::Relaxed);
                    if hop > 0 {
                        state.metrics.downgraded.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(FleetTicket {
                        tenant,
                        model,
                        shard,
                        downgraded: hop > 0,
                        ticket,
                        inner: Arc::clone(&self.inner),
                        _slot: slot,
                    });
                }
                Err(e @ (ServeError::QueueFull | ServeError::DeadlineExpired)) => {
                    // Overload on this cell; the next hop may still admit.
                    saw_full = true;
                    last_err = e;
                }
                Err(e) => {
                    state.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(FleetError::Overloaded(e));
                }
            }
        }
        if state.spec.tier == Priority::Batch && !saw_full {
            // Every candidate was at its batch in-flight cap: a pure
            // tier shed — the queues themselves may well have room.
            state.metrics.shed.fetch_add(1, Ordering::Relaxed);
            Err(FleetError::BatchShed)
        } else {
            state.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            Err(FleetError::Overloaded(last_err))
        }
    }

    /// Submit + block until the prediction (or failure) comes back.
    pub fn submit_wait(
        &self,
        tenant: TenantId,
        affinity: u64,
        image: Tensor,
    ) -> Result<ServeResponse, FleetError> {
        Ok(self.submit(tenant, affinity, image)?.wait())
    }

    /// The shard an affinity key routes to (for tests and placement
    /// introspection).
    pub fn shard_for(&self, affinity: u64) -> usize {
        self.inner.ring.shard_for(affinity) as usize
    }

    /// Live fleet statistics aggregated per tenant, model, and shard.
    pub fn stats(&self) -> FleetStats {
        let cells = self
            .inner
            .cells
            .iter()
            .map(|shard| shard.iter().map(|c| c.handle.stats()).collect())
            .collect();
        self.inner.stats_from_cells(cells)
    }

    /// Drains and aggregates the live `seneca-trace` recorders — the
    /// profiler view of the running fleet, no restart required.
    pub fn trace_report(&self) -> TraceReport {
        seneca_trace::report()
    }
}

impl FleetInner {
    fn stats_from_cells(&self, cells: Vec<Vec<ServeStats>>) -> FleetStats {
        let models = (0..self.registry.len())
            .map(|m| {
                let spec = self.registry.get(m);
                let per_shard: Vec<ServeStats> =
                    cells.iter().map(|shard| shard[m].clone()).collect();
                ModelStats {
                    name: spec.name.clone(),
                    dice: spec.dice,
                    cost_ms: spec.cost_ms,
                    submitted: per_shard.iter().map(|s| s.submitted).sum(),
                    served: per_shard.iter().map(|s| s.served).sum(),
                    rejected: per_shard.iter().map(|s| s.rejected).sum(),
                    shed_expired: per_shard.iter().map(|s| s.shed_expired).sum(),
                    served_fps: per_shard.iter().map(|s| s.served_fps).sum(),
                    per_shard,
                }
            })
            .collect();
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                let m = &t.metrics;
                TenantStats {
                    name: t.spec.name.clone(),
                    tier: t.spec.tier.label().to_string(),
                    deadline_ms: t.spec.deadline.map(|d| d.as_secs_f64() * 1000.0),
                    dice_target: t.spec.dice_target,
                    dice_floor: t.spec.dice_floor,
                    submitted: m.submitted.load(Ordering::Relaxed),
                    served: m.served.load(Ordering::Relaxed),
                    shed: m.shed.load(Ordering::Relaxed),
                    rejected: m.rejected.load(Ordering::Relaxed),
                    failed: m.failed.load(Ordering::Relaxed),
                    downgraded: m.downgraded.load(Ordering::Relaxed),
                    deadline_misses: m.deadline_misses.load(Ordering::Relaxed),
                    routed: m
                        .routed
                        .iter()
                        .enumerate()
                        .map(|(i, c)| RoutedCount {
                            model: self.registry.get(i).name.clone(),
                            dice: self.registry.get(i).dice,
                            count: c.load(Ordering::Relaxed),
                        })
                        .collect(),
                    latency: m.latency.summary(),
                }
            })
            .collect();
        FleetStats { shards: self.cells.len(), tenants, models }
    }
}

/// Routing admissions of one tenant to one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedCount {
    /// Model name.
    pub model: String,
    /// That model's expected Dice (%) — lets floor audits read one row.
    pub dice: f64,
    /// Requests admitted to it.
    pub count: u64,
}

/// Fleet-level view of one tenant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// `interactive` or `batch`.
    pub tier: String,
    /// SLO deadline in milliseconds, if any.
    pub deadline_ms: Option<f64>,
    /// Preferred Dice (%).
    pub dice_target: f64,
    /// Hard Dice minimum (%).
    pub dice_floor: f64,
    /// Submission attempts.
    pub submitted: u64,
    /// Requests answered with a prediction (and waited on).
    pub served: u64,
    /// Tier sheds at fleet admission + deadline-expired resolutions.
    pub shed: u64,
    /// Refusals after the whole routing chain was tried.
    pub rejected: u64,
    /// Backend/shutdown failures.
    pub failed: u64,
    /// Admissions that landed below the Dice target (but ≥ the floor).
    pub downgraded: u64,
    /// Served responses that arrived after the tenant deadline.
    pub deadline_misses: u64,
    /// Admissions per model — the audit trail for the floor invariant.
    pub routed: Vec<RoutedCount>,
    /// End-to-end latency of served (and waited-on) requests.
    pub latency: LatencySummary,
}

impl TenantStats {
    /// The lowest model Dice this tenant was ever routed to (`None` when
    /// nothing was admitted). An isolation audit asserts this never dips
    /// below [`TenantStats::dice_floor`].
    pub fn min_routed_dice(&self) -> Option<f64> {
        self.routed.iter().filter(|r| r.count > 0).map(|r| r.dice).min_by(f64::total_cmp)
    }
}

/// Fleet-level view of one model across all shards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelStats {
    /// Model name.
    pub name: String,
    /// Expected global Dice (%).
    pub dice: f64,
    /// Modeled per-frame cost (ms).
    pub cost_ms: f64,
    /// Submissions across shards.
    pub submitted: u64,
    /// Served across shards.
    pub served: u64,
    /// Admission rejections across shards.
    pub rejected: u64,
    /// Deadline sheds across shards.
    pub shed_expired: u64,
    /// Summed served FPS across shards.
    pub served_fps: f64,
    /// Full per-shard serving statistics.
    pub per_shard: Vec<ServeStats>,
}

/// One aggregated snapshot of the whole fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetStats {
    /// Shard count.
    pub shards: usize,
    /// Per-tenant accounting.
    pub tenants: Vec<TenantStats>,
    /// Per-model accounting (with per-shard detail).
    pub models: Vec<ModelStats>,
}

impl FleetStats {
    /// The tenant row by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// The model row by name.
    pub fn model(&self, name: &str) -> Option<&ModelStats> {
        self.models.iter().find(|m| m.name == name)
    }
}
