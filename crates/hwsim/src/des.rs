//! Event-driven simulation of closed pipeline networks.
//!
//! Time is in integer nanoseconds. A *job* flows through a fixed sequence of
//! stages; each stage runs on one server of a named [`Resource`] for a
//! caller-supplied service time. At most `population` jobs are in flight
//! (closed network) — when one completes, the next is admitted at the same
//! instant. All state lives in the [`PipelineSim`] struct; the engine is
//! fully deterministic given the service-time function.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A multi-server FIFO resource (e.g. "DPU cores" with 2 servers).
#[derive(Debug, Clone)]
pub struct Resource {
    /// Display name.
    pub name: String,
    /// Number of identical servers.
    pub servers: usize,
}

impl Resource {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        let servers_checked = servers;
        assert!(servers_checked >= 1, "resource needs at least one server");
        Self { name: name.into(), servers }
    }
}

/// One pipeline stage: which resource it runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// Index into the resource table.
    pub resource: usize,
}

/// Simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total simulated time from first admission to last completion (ns).
    pub makespan_ns: u64,
    /// Per-resource total busy server-time (ns). Can exceed `makespan_ns`
    /// for multi-server resources.
    pub busy_ns: Vec<u64>,
    /// Jobs completed.
    pub completed: usize,
    /// Per-resource peak queue length observed.
    pub peak_queue: Vec<usize>,
    /// Per-job completion times (ns), in completion order.
    pub completion_times_ns: Vec<u64>,
}

impl SimReport {
    /// Throughput in jobs per second.
    pub fn throughput_per_s(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.makespan_ns as f64 * 1e-9)
    }

    /// Utilisation of a resource in `[0, 1]` (busy server-time over
    /// capacity × makespan).
    pub fn utilisation(&self, resource: usize, servers: usize) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.busy_ns[resource] as f64 / (self.makespan_ns as f64 * servers as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A job finished its current stage.
    StageDone { job: usize, stage: usize },
}

/// The simulator. Construct with [`PipelineSim::new`], then [`PipelineSim::run`].
pub struct PipelineSim<'a> {
    resources: &'a [Resource],
    stages: &'a [StageSpec],
    population: usize,
    n_jobs: usize,
    /// `service(job, stage) -> ns`.
    service: Box<dyn Fn(usize, usize) -> u64 + 'a>,
}

impl<'a> PipelineSim<'a> {
    /// Creates a simulator for `n_jobs` jobs flowing through `stages` with at
    /// most `population` jobs in flight.
    pub fn new(
        resources: &'a [Resource],
        stages: &'a [StageSpec],
        population: usize,
        n_jobs: usize,
        service: impl Fn(usize, usize) -> u64 + 'a,
    ) -> Self {
        assert!(population >= 1, "population must be >= 1");
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        for s in stages {
            assert!(s.resource < resources.len(), "stage references unknown resource");
        }
        Self { resources, stages, population, n_jobs, service: Box::new(service) }
    }

    /// Runs the simulation to completion.
    pub fn run(&self) -> SimReport {
        let nr = self.resources.len();
        let mut free: Vec<usize> = self.resources.iter().map(|r| r.servers).collect();
        let mut queues: Vec<VecDeque<(usize, usize)>> = vec![VecDeque::new(); nr];
        let mut peak_queue = vec![0usize; nr];
        let mut busy = vec![0u64; nr];
        let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut admitted = 0usize;
        let mut completed = 0usize;
        let mut completion_times = Vec::with_capacity(self.n_jobs);

        // Either starts the stage now (if a server is free) or enqueues.
        macro_rules! try_start {
            ($job:expr, $stage:expr) => {{
                let r = self.stages[$stage].resource;
                if free[r] > 0 {
                    free[r] -= 1;
                    let dt = (self.service)($job, $stage);
                    busy[r] += dt;
                    seq += 1;
                    heap.push(Reverse((
                        now + dt,
                        seq,
                        Event::StageDone { job: $job, stage: $stage },
                    )));
                } else {
                    queues[r].push_back(($job, $stage));
                    peak_queue[r] = peak_queue[r].max(queues[r].len());
                }
            }};
        }

        // Admit the initial population.
        while admitted < self.population.min(self.n_jobs) {
            let job = admitted;
            admitted += 1;
            try_start!(job, 0);
        }

        while let Some(Reverse((t, _, Event::StageDone { job, stage }))) = heap.pop() {
            now = t;
            let r = self.stages[stage].resource;
            // Release the server; hand it to the next queued stage if any.
            if let Some((qjob, qstage)) = queues[r].pop_front() {
                let dt = (self.service)(qjob, qstage);
                busy[r] += dt;
                seq += 1;
                heap.push(Reverse((now + dt, seq, Event::StageDone { job: qjob, stage: qstage })));
            } else {
                free[r] += 1;
            }
            // Advance the job.
            if stage + 1 < self.stages.len() {
                try_start!(job, stage + 1);
            } else {
                completed += 1;
                completion_times.push(now);
                if admitted < self.n_jobs {
                    let next = admitted;
                    admitted += 1;
                    try_start!(next, 0);
                }
            }
        }

        SimReport {
            makespan_ns: now,
            busy_ns: busy,
            completed,
            peak_queue,
            completion_times_ns: completion_times,
        }
    }
}

/// One-shot convenience wrapper around [`PipelineSim`].
pub fn simulate_closed_pipeline(
    resources: &[Resource],
    stages: &[StageSpec],
    population: usize,
    n_jobs: usize,
    service: impl Fn(usize, usize) -> u64,
) -> SimReport {
    PipelineSim::new(resources, stages, population, n_jobs, service).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_resource(servers: usize) -> Vec<Resource> {
        vec![Resource::new("r0", servers)]
    }

    #[test]
    fn single_server_serialises_jobs() {
        let res = one_resource(1);
        let stages = [StageSpec { resource: 0 }];
        let rep = simulate_closed_pipeline(&res, &stages, 4, 10, |_, _| 100);
        assert_eq!(rep.completed, 10);
        assert_eq!(rep.makespan_ns, 1000);
        assert_eq!(rep.busy_ns[0], 1000);
        assert!((rep.utilisation(0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_servers_halve_makespan() {
        let res = one_resource(2);
        let stages = [StageSpec { resource: 0 }];
        let rep = simulate_closed_pipeline(&res, &stages, 4, 10, |_, _| 100);
        assert_eq!(rep.makespan_ns, 500);
        assert!((rep.utilisation(0, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn population_one_cannot_pipeline() {
        // Two stages on distinct resources; with one job in flight, stages
        // never overlap: makespan = n * (s1 + s2).
        let res = vec![Resource::new("cpu", 1), Resource::new("acc", 1)];
        let stages = [StageSpec { resource: 0 }, StageSpec { resource: 1 }];
        let rep =
            simulate_closed_pipeline(&res, &stages, 1, 5, |_, s| if s == 0 { 30 } else { 70 });
        assert_eq!(rep.makespan_ns, 5 * 100);
        // Accelerator idles 30% of the time.
        assert!((rep.utilisation(1, 1) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn pipelining_hides_the_shorter_stage() {
        let res = vec![Resource::new("cpu", 1), Resource::new("acc", 1)];
        let stages = [StageSpec { resource: 0 }, StageSpec { resource: 1 }];
        let rep =
            simulate_closed_pipeline(&res, &stages, 2, 50, |_, s| if s == 0 { 30 } else { 70 });
        // Bottleneck = 70ns/job; makespan ≈ 50*70 + pipeline fill.
        assert!(rep.makespan_ns < 50 * 70 + 100, "{}", rep.makespan_ns);
        assert!(rep.utilisation(1, 1) > 0.97);
    }

    #[test]
    fn throughput_saturates_with_population() {
        // 3-stage pipeline: cpu(4) -> acc(2) -> cpu(4). Bottleneck: acc,
        // 2 servers x 100ns => 1 job / 50ns asymptotically.
        let res = vec![Resource::new("cpu", 4), Resource::new("acc", 2)];
        let stages =
            [StageSpec { resource: 0 }, StageSpec { resource: 1 }, StageSpec { resource: 0 }];
        let service = |_: usize, s: usize| match s {
            0 => 60,
            1 => 100,
            _ => 40,
        };
        let mut prev = 0.0;
        let mut rates = vec![];
        for population in [1usize, 2, 4, 8] {
            let rep = simulate_closed_pipeline(&res, &stages, population, 400, service);
            let rate = rep.throughput_per_s();
            assert!(rate >= prev * 0.999, "throughput must be monotone");
            prev = rate;
            rates.push(rate);
        }
        // 1 -> 2 threads is a big jump; 4 -> 8 is negligible (saturated).
        assert!(rates[1] > rates[0] * 1.5);
        assert!(rates[3] < rates[2] * 1.05);
    }

    #[test]
    fn queue_lengths_are_tracked() {
        let res = one_resource(1);
        let stages = [StageSpec { resource: 0 }];
        let rep = simulate_closed_pipeline(&res, &stages, 5, 5, |_, _| 10);
        assert_eq!(rep.peak_queue[0], 4); // all but the running job queued
    }

    #[test]
    fn zero_jobs_complete_instantly() {
        let res = one_resource(1);
        let stages = [StageSpec { resource: 0 }];
        let rep = simulate_closed_pipeline(&res, &stages, 2, 0, |_, _| 10);
        assert_eq!(rep.completed, 0);
        assert_eq!(rep.makespan_ns, 0);
        assert_eq!(rep.throughput_per_s(), 0.0);
    }

    #[test]
    fn completion_times_are_monotone() {
        let res = vec![Resource::new("a", 2), Resource::new("b", 1)];
        let stages = [StageSpec { resource: 0 }, StageSpec { resource: 1 }];
        let rep = simulate_closed_pipeline(&res, &stages, 3, 20, |j, s| {
            10 + ((j * 7 + s * 13) % 23) as u64
        });
        for w in rep.completion_times_ns.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(rep.completion_times_ns.len(), 20);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn bad_stage_reference_panics() {
        let res = one_resource(1);
        let stages = [StageSpec { resource: 3 }];
        let _ = simulate_closed_pipeline(&res, &stages, 1, 1, |_, _| 1);
    }
}
