//! Execution tracing for the DES: per-job stage spans, suitable for
//! timeline visualisation (chrome://tracing-style) and for asserting
//! scheduling properties in tests.

use crate::des::{Resource, StageSpec};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One traced stage execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Job id.
    pub job: usize,
    /// Stage index.
    pub stage: usize,
    /// Resource index.
    pub resource: usize,
    /// Service start (ns).
    pub start_ns: u64,
    /// Service end (ns).
    pub end_ns: u64,
}

/// A full trace: spans in start order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// All spans.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Spans of one job, in stage order.
    pub fn job(&self, job: usize) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.job == job).collect();
        v.sort_by_key(|s| s.stage);
        v
    }

    /// Maximum number of concurrently busy servers observed on a resource.
    pub fn peak_concurrency(&self, resource: usize) -> usize {
        let mut events: Vec<(u64, i32)> = Vec::new();
        for s in self.spans.iter().filter(|s| s.resource == resource) {
            events.push((s.start_ns, 1));
            events.push((s.end_ns, -1));
        }
        events.sort_by_key(|&(t, d)| (t, d)); // end (-1) before start (+1) at ties
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }

    /// Chrome-trace-format JSON (open in `chrome://tracing` / Perfetto).
    pub fn to_chrome_json(&self, resources: &[Resource]) -> String {
        let mut events = Vec::new();
        for s in &self.spans {
            let name = resources
                .get(s.resource)
                .map(|r| r.name.clone())
                .unwrap_or_else(|| format!("res{}", s.resource));
            events.push(serde_json::json!({
                "name": format!("job{} stage{}", s.job, s.stage),
                "cat": name,
                "ph": "X",
                "ts": s.start_ns as f64 / 1000.0,
                "dur": (s.end_ns - s.start_ns) as f64 / 1000.0,
                "pid": s.resource,
                "tid": s.job % 64,
            }));
        }
        serde_json::to_string(&events).expect("trace serialisation")
    }
}

/// Like [`crate::des::simulate_closed_pipeline`] but also returns the trace.
/// (Separate function so the hot path stays allocation-light.)
pub fn simulate_traced(
    resources: &[Resource],
    stages: &[StageSpec],
    population: usize,
    n_jobs: usize,
    service: impl Fn(usize, usize) -> u64,
) -> Trace {
    assert!(population >= 1);
    let nr = resources.len();
    let mut free: Vec<usize> = resources.iter().map(|r| r.servers).collect();
    let mut queues: Vec<VecDeque<(usize, usize)>> = vec![VecDeque::new(); nr];
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut admitted = 0usize;
    let mut trace = Trace::default();

    let start = |job: usize,
                 stage: usize,
                 now: u64,
                 free: &mut Vec<usize>,
                 queues: &mut Vec<VecDeque<(usize, usize)>>,
                 heap: &mut BinaryHeap<Reverse<(u64, u64, usize, usize)>>,
                 seq: &mut u64,
                 trace: &mut Trace| {
        let r = stages[stage].resource;
        if free[r] > 0 {
            free[r] -= 1;
            let dt = service(job, stage);
            trace.spans.push(Span { job, stage, resource: r, start_ns: now, end_ns: now + dt });
            *seq += 1;
            heap.push(Reverse((now + dt, *seq, job, stage)));
        } else {
            queues[r].push_back((job, stage));
        }
    };

    while admitted < population.min(n_jobs) {
        let j = admitted;
        admitted += 1;
        start(j, 0, now, &mut free, &mut queues, &mut heap, &mut seq, &mut trace);
    }
    while let Some(Reverse((t, _, job, stage))) = heap.pop() {
        now = t;
        let r = stages[stage].resource;
        if let Some((qj, qs)) = queues[r].pop_front() {
            let dt = service(qj, qs);
            trace.spans.push(Span {
                job: qj,
                stage: qs,
                resource: r,
                start_ns: now,
                end_ns: now + dt,
            });
            seq += 1;
            heap.push(Reverse((now + dt, seq, qj, qs)));
        } else {
            free[r] += 1;
        }
        if stage + 1 < stages.len() {
            start(job, stage + 1, now, &mut free, &mut queues, &mut heap, &mut seq, &mut trace);
        } else if admitted < n_jobs {
            let j = admitted;
            admitted += 1;
            start(j, 0, now, &mut free, &mut queues, &mut heap, &mut seq, &mut trace);
        }
    }
    trace.spans.sort_by_key(|s| (s.start_ns, s.job, s.stage));
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vec<Resource>, Vec<StageSpec>) {
        (
            vec![Resource::new("cpu", 2), Resource::new("acc", 1)],
            vec![StageSpec { resource: 0 }, StageSpec { resource: 1 }],
        )
    }

    #[test]
    fn trace_has_one_span_per_job_stage() {
        let (res, stages) = setup();
        let trace = simulate_traced(&res, &stages, 2, 5, |_, _| 10);
        assert_eq!(trace.spans.len(), 5 * 2);
        for j in 0..5 {
            let spans = trace.job(j);
            assert_eq!(spans.len(), 2);
            // Stage 1 starts only after stage 0 ends.
            assert!(spans[1].start_ns >= spans[0].end_ns);
        }
    }

    #[test]
    fn concurrency_never_exceeds_server_count() {
        let (res, stages) = setup();
        let trace = simulate_traced(&res, &stages, 6, 30, |j, s| 7 + (j + s) as u64 % 5);
        assert!(trace.peak_concurrency(0) <= 2);
        assert!(trace.peak_concurrency(1) <= 1);
        // With enough population the single accelerator saturates.
        assert_eq!(trace.peak_concurrency(1), 1);
    }

    #[test]
    fn spans_match_untraced_simulation_makespan() {
        use crate::des::simulate_closed_pipeline;
        let (res, stages) = setup();
        let svc = |j: usize, s: usize| 10 + ((j * 3 + s) % 4) as u64;
        let trace = simulate_traced(&res, &stages, 3, 12, svc);
        let rep = simulate_closed_pipeline(&res, &stages, 3, 12, svc);
        let trace_end = trace.spans.iter().map(|s| s.end_ns).max().unwrap();
        assert_eq!(trace_end, rep.makespan_ns);
    }

    #[test]
    fn chrome_json_is_valid() {
        let (res, stages) = setup();
        let trace = simulate_traced(&res, &stages, 1, 2, |_, _| 5);
        let json = trace.to_chrome_json(&res);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 4);
        assert_eq!(parsed[0]["ph"], "X");
    }
}
