//! Power-rail accounting: integrates busy/idle power over a simulation into
//! Joules, the denominator of the paper's Energy Efficiency metric
//! (EE = FPS/Watt = frames/Joule, Eq. (3)).

use crate::des::SimReport;
use serde::{Deserialize, Serialize};

/// A power rail attached to one DES resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerRail {
    /// Display name.
    pub name: String,
    /// Power drawn per *busy server* (W).
    pub active_w: f64,
    /// Power drawn per *idle server* (W).
    pub idle_w: f64,
    /// Number of servers on this rail.
    pub servers: usize,
}

/// Whole-board energy meter: per-resource rails plus a constant baseboard
/// draw (regulators, DRAM refresh, fans — the reason the ZCU104 idles around
/// 20 W rather than 0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Rails, index-aligned with the DES resource table.
    pub rails: Vec<PowerRail>,
    /// Constant platform draw (W).
    pub static_w: f64,
}

/// Measured energy breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total energy (J).
    pub total_j: f64,
    /// Average power over the makespan (W).
    pub avg_power_w: f64,
    /// Energy per rail (J), same order as the rails.
    pub per_rail_j: Vec<f64>,
    /// Static platform energy (J).
    pub static_j: f64,
    /// Wall-clock of the measurement (s).
    pub duration_s: f64,
}

impl EnergyMeter {
    /// Integrates a simulation report into energy.
    pub fn measure(&self, report: &SimReport) -> EnergyReport {
        assert_eq!(self.rails.len(), report.busy_ns.len(), "rail count must match resource count");
        let duration_s = report.makespan_ns as f64 * 1e-9;
        let mut per_rail_j = Vec::with_capacity(self.rails.len());
        for (rail, &busy_ns) in self.rails.iter().zip(&report.busy_ns) {
            let busy_s = busy_ns as f64 * 1e-9;
            let idle_s = (duration_s * rail.servers as f64 - busy_s).max(0.0);
            per_rail_j.push(rail.active_w * busy_s + rail.idle_w * idle_s);
        }
        let static_j = self.static_w * duration_s;
        let total_j = static_j + per_rail_j.iter().sum::<f64>();
        EnergyReport {
            total_j,
            avg_power_w: if duration_s > 0.0 { total_j / duration_s } else { 0.0 },
            per_rail_j,
            static_j,
            duration_s,
        }
    }
}

impl EnergyReport {
    /// Energy efficiency for `frames` processed: FPS/W == frames/J (Eq. 3).
    pub fn energy_efficiency(&self, frames: usize) -> f64 {
        if self.total_j <= 0.0 {
            return 0.0;
        }
        frames as f64 / self.total_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{simulate_closed_pipeline, Resource, StageSpec};

    fn report_100ns_busy() -> SimReport {
        // One resource, one server, fully busy for 1000 ns.
        let res = [Resource::new("acc", 1)];
        let stages = [StageSpec { resource: 0 }];
        simulate_closed_pipeline(&res, &stages, 1, 10, |_, _| 100)
    }

    #[test]
    fn fully_busy_rail_draws_active_power() {
        let meter = EnergyMeter {
            rails: vec![PowerRail { name: "acc".into(), active_w: 8.0, idle_w: 2.0, servers: 1 }],
            static_w: 20.0,
        };
        let rep = report_100ns_busy();
        let e = meter.measure(&rep);
        // 1 µs at 28 W total.
        assert!((e.avg_power_w - 28.0).abs() < 1e-6, "{e:?}");
        assert!((e.total_j - 28.0 * 1e-6).abs() < 1e-9);
    }

    #[test]
    fn idle_servers_draw_idle_power() {
        // 2 servers but population 1 -> one server always idle.
        let res = [Resource::new("acc", 2)];
        let stages = [StageSpec { resource: 0 }];
        let rep = simulate_closed_pipeline(&res, &stages, 1, 10, |_, _| 100);
        let meter = EnergyMeter {
            rails: vec![PowerRail { name: "acc".into(), active_w: 10.0, idle_w: 1.0, servers: 2 }],
            static_w: 0.0,
        };
        let e = meter.measure(&rep);
        // avg power = 10 (busy) + 1 (idle) = 11 W.
        assert!((e.avg_power_w - 11.0).abs() < 1e-6, "{e:?}");
    }

    #[test]
    fn energy_efficiency_is_frames_per_joule() {
        let meter = EnergyMeter {
            rails: vec![PowerRail { name: "acc".into(), active_w: 8.0, idle_w: 2.0, servers: 1 }],
            static_w: 20.0,
        };
        let rep = report_100ns_busy();
        let e = meter.measure(&rep);
        let ee = e.energy_efficiency(10);
        // FPS = 10 / 1µs = 1e7; W = 28; FPS/W == frames/J.
        let fps = 10.0 / e.duration_s;
        assert!((ee - fps / e.avg_power_w).abs() / ee < 1e-9);
    }

    #[test]
    #[should_panic(expected = "rail count")]
    fn mismatched_rails_panic() {
        let meter = EnergyMeter { rails: vec![], static_w: 0.0 };
        let rep = report_100ns_busy();
        let _ = meter.measure(&rep);
    }
}
