//! # seneca-hwsim
//!
//! A small discrete-event simulation (DES) engine used to model the timing
//! and power behaviour of the ZCU104 (dual-core DPU + ARM host) and the GPU
//! baseline. The engine is generic: [`des`] provides an event queue,
//! multi-server FIFO resources and a closed pipeline-network simulator;
//! [`power`] integrates busy/idle power into energy.
//!
//! The VART-style runtime in `seneca-dpu` maps onto this as a *closed
//! queueing network*: `population` = number of runner threads, stages =
//! CPU pre-process → DPU core → CPU post-process, resources = 4 ARM cores
//! and 2 DPU cores. Thread-count saturation (paper Fig. 3: EE grows up to 4
//! threads, flat beyond) emerges from the contention structure rather than
//! from a fitted curve.

pub mod des;
pub mod power;
pub mod trace;

pub use des::{simulate_closed_pipeline, PipelineSim, Resource, SimReport, StageSpec};
pub use power::{EnergyMeter, PowerRail};
