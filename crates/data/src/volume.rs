//! CT volumes: Hounsfield-unit voxels plus per-voxel organ labels.

use serde::{Deserialize, Serialize};

/// The six labeled organs of CT-ORG (label values match the dataset
/// convention used throughout this reproduction; 0 is background).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Organ {
    /// Liver (label 1).
    Liver = 1,
    /// Bladder (label 2).
    Bladder = 2,
    /// Lungs (label 3).
    Lungs = 3,
    /// Kidneys (label 4).
    Kidneys = 4,
    /// Bones (label 5).
    Bones = 5,
    /// Brain (label 6) — removed from the training targets (paper §III-A).
    Brain = 6,
}

impl Organ {
    /// All organs in Table I column order.
    pub const ALL: [Organ; 6] =
        [Organ::Liver, Organ::Bladder, Organ::Lungs, Organ::Kidneys, Organ::Bones, Organ::Brain];

    /// The five organs SENECA is trained on (brain excluded).
    pub const TARGETS: [Organ; 5] =
        [Organ::Liver, Organ::Bladder, Organ::Lungs, Organ::Kidneys, Organ::Bones];

    /// Label value.
    pub const fn label(self) -> u8 {
        self as u8
    }

    /// Organ from a label value (None for background / unknown).
    pub fn from_label(l: u8) -> Option<Organ> {
        match l {
            1 => Some(Organ::Liver),
            2 => Some(Organ::Bladder),
            3 => Some(Organ::Lungs),
            4 => Some(Organ::Kidneys),
            5 => Some(Organ::Bones),
            6 => Some(Organ::Brain),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Organ::Liver => "Liver",
            Organ::Bladder => "Bladder",
            Organ::Lungs => "Lungs",
            Organ::Kidneys => "Kidneys",
            Organ::Bones => "Bones",
            Organ::Brain => "Brain",
        }
    }

    /// Paper Table I frequency (percent of labeled pixels in CT-ORG).
    pub fn paper_frequency_pct(self) -> f64 {
        match self {
            Organ::Liver => 22.18,
            Organ::Bladder => 2.51,
            Organ::Lungs => 34.17,
            Organ::Kidneys => 4.70,
            Organ::Bones => 36.26,
            Organ::Brain => 0.18,
        }
    }
}

impl std::fmt::Display for Organ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A 3-D CT acquisition: `depth` axial slices of `height x width` voxels.
/// `hu` holds Hounsfield units, `labels` the organ label (0 = background).
/// Slice-major layout: voxel `(z, y, x)` is at `(z*H + y)*W + x`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Volume {
    /// Slice width in voxels.
    pub width: usize,
    /// Slice height in voxels.
    pub height: usize,
    /// Number of axial slices.
    pub depth: usize,
    /// Hounsfield units.
    pub hu: Vec<f32>,
    /// Organ labels.
    pub labels: Vec<u8>,
    /// Lesion mask (1 = voxel belongs to an injected lesion), parallel to
    /// `labels`. Lesion voxels keep their host organ's label — the lesion
    /// channel is *folded into* the organ mask so Dice is scored on
    /// lesion-bearing anatomy — and this mask records where they are.
    /// Empty for healthy volumes (no per-voxel cost when unused).
    pub lesion: Vec<u8>,
    /// Patient identifier within the synthetic cohort.
    pub patient_id: usize,
}

/// One axial slice extracted from a volume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Slice2d {
    /// Slice width.
    pub width: usize,
    /// Slice height.
    pub height: usize,
    /// Intensity values (HU before preprocessing, `[-1, 1]` after).
    pub pixels: Vec<f32>,
    /// Per-pixel organ labels.
    pub labels: Vec<u8>,
    /// Source patient.
    pub patient_id: usize,
    /// Source slice index.
    pub slice_index: usize,
}

impl Volume {
    /// Allocates an air-filled (−1000 HU), unlabeled volume.
    pub fn air(width: usize, height: usize, depth: usize, patient_id: usize) -> Self {
        Self {
            width,
            height,
            depth,
            hu: vec![-1000.0; width * height * depth],
            labels: vec![0; width * height * depth],
            lesion: Vec::new(),
            patient_id,
        }
    }

    /// Number of lesion voxels (0 for healthy volumes).
    pub fn lesion_voxels(&self) -> u64 {
        self.lesion.iter().filter(|&&m| m != 0).count() as u64
    }

    /// Number of voxels per slice.
    pub fn slice_len(&self) -> usize {
        self.width * self.height
    }

    /// Extracts slice `z`.
    pub fn slice(&self, z: usize) -> Slice2d {
        assert!(z < self.depth, "slice {z} out of {}", self.depth);
        let n = self.slice_len();
        Slice2d {
            width: self.width,
            height: self.height,
            pixels: self.hu[z * n..(z + 1) * n].to_vec(),
            labels: self.labels[z * n..(z + 1) * n].to_vec(),
            patient_id: self.patient_id,
            slice_index: z,
        }
    }

    /// Counts labeled voxels per organ (index = label value, 0..=6).
    /// Labels outside the organ range are a corrupted volume, not a seventh
    /// organ: they panic instead of silently folding into label 6.
    pub fn label_histogram(&self) -> [u64; 7] {
        let mut h = [0u64; 7];
        for &l in &self.labels {
            debug_assert!(l <= 6, "corrupted volume: label {l} out of range (0..=6)");
            h[l as usize] += 1;
        }
        h
    }
}

impl Slice2d {
    /// Counts labeled pixels per organ (index = label value, 0..=6).
    /// Out-of-range labels panic (corrupted data), mirroring
    /// [`Volume::label_histogram`].
    pub fn label_histogram(&self) -> [u64; 7] {
        let mut h = [0u64; 7];
        for &l in &self.labels {
            debug_assert!(l <= 6, "corrupted slice: label {l} out of range (0..=6)");
            h[l as usize] += 1;
        }
        h
    }

    /// True when the slice contains at least one labeled pixel of `organ`.
    pub fn contains(&self, organ: Organ) -> bool {
        self.labels.iter().any(|&l| l == organ.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organ_labels_roundtrip() {
        for o in Organ::ALL {
            assert_eq!(Organ::from_label(o.label()), Some(o));
        }
        assert_eq!(Organ::from_label(0), None);
        assert_eq!(Organ::from_label(9), None);
    }

    #[test]
    fn paper_frequencies_sum_to_100() {
        let sum: f64 = Organ::ALL.iter().map(|o| o.paper_frequency_pct()).sum();
        assert!((sum - 100.0).abs() < 0.1, "{sum}");
    }

    #[test]
    fn air_volume_and_slices() {
        let mut v = Volume::air(4, 3, 2, 7);
        assert_eq!(v.hu.len(), 24);
        v.labels[4 * 3 + 5] = Organ::Liver.label(); // slice 1, y=1, x=2... index math below
        let s0 = v.slice(0);
        let s1 = v.slice(1);
        assert_eq!(s0.labels.iter().filter(|&&l| l != 0).count(), 0);
        assert_eq!(s1.labels.iter().filter(|&&l| l != 0).count(), 1);
        assert!(s1.contains(Organ::Liver));
        assert!(!s1.contains(Organ::Bladder));
        assert_eq!(s1.patient_id, 7);
        assert_eq!(s1.slice_index, 1);
    }

    #[test]
    fn histograms_count_labels() {
        let mut v = Volume::air(2, 2, 1, 0);
        v.labels = vec![0, 1, 5, 5];
        let h = v.label_histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 1);
        assert_eq!(h[5], 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn slice_bounds_checked() {
        let v = Volume::air(2, 2, 1, 0);
        let _ = v.slice(1);
    }

    #[test]
    #[should_panic]
    fn corrupted_volume_labels_panic() {
        // A label outside 0..=6 is data corruption; the histogram must not
        // silently fold it into the brain bucket (debug: range assert,
        // release: bounds check — either way, a panic, mirroring the
        // corrupted-graph panics in seneca-ir).
        let mut v = Volume::air(2, 2, 1, 0);
        v.labels = vec![0, 1, 7, 5];
        let _ = v.label_histogram();
    }

    #[test]
    #[should_panic]
    fn corrupted_slice_labels_panic() {
        let s = Slice2d {
            width: 2,
            height: 1,
            pixels: vec![0.0; 2],
            labels: vec![0, 255],
            patient_id: 0,
            slice_index: 0,
        };
        let _ = s.label_histogram();
    }

    #[test]
    fn lesion_mask_counts() {
        let mut v = Volume::air(2, 2, 1, 0);
        assert_eq!(v.lesion_voxels(), 0);
        v.lesion = vec![0, 1, 1, 0];
        assert_eq!(v.lesion_voxels(), 2);
    }
}
