//! Parametric patient anatomy.
//!
//! Coordinates: axial slices live in a normalized body frame with
//! `nx ∈ [-1, 1]` (patient right → left), `ny ∈ [-1, 1]` (anterior → posterior,
//! i.e. image top → bottom), and a longitudinal coordinate `z` running from
//! the top of the scan range downward: the head occupies `z < 0`, the chest
//! roughly `z ∈ [0, 0.5]`, the abdomen `z ∈ [0.4, 0.8]`, the pelvis
//! `z ∈ [0.8, 1]`.
//!
//! Every patient draws its own geometry jitter from a seeded RNG, so the
//! cohort has realistic inter-patient variability while remaining fully
//! deterministic.

use crate::pathology::Lesion;
use crate::volume::Organ;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Nominal Hounsfield units per tissue (before noise / partial-volume blur).
pub mod hu {
    /// Outside the body.
    pub const AIR: f32 = -1000.0;
    /// Generic soft tissue / muscle.
    pub const TISSUE: f32 = 45.0;
    /// Subcutaneous fat ring.
    pub const FAT: f32 = -90.0;
    /// Aerated lung parenchyma.
    pub const LUNG: f32 = -740.0;
    /// Liver parenchyma.
    pub const LIVER: f32 = 62.0;
    /// Renal tissue (deliberately close to [`TISSUE`]: low contrast).
    pub const KIDNEY: f32 = 42.0;
    /// Urine-filled bladder.
    pub const BLADDER: f32 = 18.0;
    /// Cortical/trabecular bone mix.
    pub const BONE: f32 = 380.0;
    /// Brain parenchyma.
    pub const BRAIN: f32 = 36.0;
}

/// Per-patient anatomy: global scale/jitter factors drawn once per patient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Anatomy {
    /// Body half-width (ellipse x radius in normalized units).
    pub body_rx: f32,
    /// Body half-height (ellipse y radius).
    pub body_ry: f32,
    /// Global organ size multiplier.
    pub organ_scale: f32,
    /// Organ centre jitter (dx, dy) applied to all organs.
    pub jitter: (f32, f32),
    /// Longitudinal stretch of organ z-ranges.
    pub z_stretch: f32,
    /// Rib periodicity phase.
    pub rib_phase: f32,
    /// Gaussian HU noise sigma.
    pub noise_sigma: f32,
    /// Injected pathologies (empty = healthy patient). Lesions keep their
    /// host organ's label and only shift HU — see [`crate::pathology`].
    pub lesions: Vec<Lesion>,
}

impl Anatomy {
    /// Samples a (healthy) patient anatomy.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        Self {
            body_rx: 0.86 * rng.gen_range(0.94..1.06),
            body_ry: 0.68 * rng.gen_range(0.94..1.06),
            organ_scale: rng.gen_range(0.92..1.08),
            jitter: (rng.gen_range(-0.03..0.03), rng.gen_range(-0.03..0.03)),
            z_stretch: rng.gen_range(0.96..1.04),
            rib_phase: rng.gen_range(0.0..std::f32::consts::TAU),
            noise_sigma: rng.gen_range(9.0..14.0),
            lesions: Vec::new(),
        }
    }

    /// True if `(nx, ny)` lies inside the body ellipse at longitudinal `z`.
    /// The trunk tapers slightly toward the pelvis; the head is narrower.
    pub fn inside_body(&self, nx: f32, ny: f32, z: f32) -> bool {
        let (rx, ry) = self.body_radii(z);
        ellipse(nx, ny, 0.0, 0.0, rx, ry) <= 1.0
    }

    /// Body ellipse radii at `z`.
    pub fn body_radii(&self, z: f32) -> (f32, f32) {
        if z < -0.02 {
            // Head.
            (self.body_rx * 0.52, self.body_ry * 0.78)
        } else {
            let taper = 1.0 - 0.08 * (z.clamp(0.0, 1.0));
            (self.body_rx * taper, self.body_ry * taper)
        }
    }

    /// Classifies a voxel including pathology: returns
    /// `(label, nominal HU, lesion)`.
    ///
    /// The organ label is the *healthy* classification — lesion voxels keep
    /// their host organ's label (the lesion channel folds into the organ
    /// mask) — but a lesion hosted by that organ shifts the HU and sets the
    /// lesion flag.
    pub fn classify_voxel(&self, nx: f32, ny: f32, z: f32) -> (u8, f32, bool) {
        let (label, hu) = self.classify(nx, ny, z);
        if label != 0 {
            for lesion in &self.lesions {
                if label == lesion.organ.label() && lesion.contains(nx, ny, z) {
                    return (label, hu + lesion.hu_offset, true);
                }
            }
        }
        (label, hu, false)
    }

    /// Classifies a voxel of the *healthy* anatomy: returns
    /// `(label, nominal HU)`, ignoring any injected lesions.
    ///
    /// Priority order (first match wins): bones, lungs, liver, kidneys,
    /// bladder, brain, fat ring, soft tissue.
    pub fn classify(&self, nx: f32, ny: f32, z: f32) -> (u8, f32) {
        if !self.inside_body(nx, ny, z) {
            return (0, hu::AIR);
        }
        let zs = z / self.z_stretch;
        let (jx, jy) = self.jitter;
        let s = self.organ_scale;
        let (brx, bry) = self.body_radii(z);

        if self.in_bones(nx, ny, zs, brx, bry) {
            return (Organ::Bones.label(), hu::BONE);
        }
        if zs < -0.02 {
            // Head interior: brain fills most of the skull.
            if ellipse(nx, ny, jx, jy * 0.5, brx * 0.74, bry * 0.74) <= 1.0 {
                return (Organ::Brain.label(), hu::BRAIN);
            }
            return (0, hu::TISSUE);
        }
        if self.in_lungs(nx, ny, zs, jx, jy, s) {
            return (Organ::Lungs.label(), hu::LUNG);
        }
        if self.in_liver(nx, ny, zs, jx, jy, s) {
            return (Organ::Liver.label(), hu::LIVER);
        }
        if self.in_kidneys(nx, ny, zs, jx, jy, s) {
            return (Organ::Kidneys.label(), hu::KIDNEY);
        }
        if self.in_bladder(nx, ny, zs, jx, jy, s) {
            return (Organ::Bladder.label(), hu::BLADDER);
        }
        // Subcutaneous fat ring just inside the skin.
        let r = ellipse(nx, ny, 0.0, 0.0, brx, bry);
        if r > 0.90 {
            return (0, hu::FAT);
        }
        (0, hu::TISSUE)
    }

    fn in_bones(&self, nx: f32, ny: f32, z: f32, brx: f32, bry: f32) -> bool {
        if z < -0.02 {
            // Skull: shell of the head ellipse.
            let r = ellipse(nx, ny, 0.0, 0.0, brx, bry);
            return (0.80..=0.97).contains(&r);
        }
        // Spine: posterior midline column, present along the whole trunk.
        if ellipse(nx, ny, 0.0, 0.42, 0.125, 0.135) <= 1.0 {
            return true;
        }
        // Ribs: periodic thin shells at the chest periphery.
        if (0.0..=0.55).contains(&z) {
            let r = ellipse(nx, ny, 0.0, 0.0, brx * 0.88, bry * 0.88);
            let band = (z * 52.0 + self.rib_phase).sin();
            if (0.86..=1.05).contains(&r) && band > 0.02 {
                return true;
            }
        }
        // Pelvis: posterior/lateral arcs near the bottom of the scan.
        if (0.76..=1.0).contains(&z) {
            let r = ellipse(nx, ny, 0.0, 0.12, brx * 0.78, bry * 0.82);
            if (0.72..=1.04).contains(&r) && ny > -0.35 {
                return true;
            }
        }
        // Shoulder girdle hint at the very top of the trunk.
        if (-0.02..=0.06).contains(&z) && nx.abs() > brx * 0.62 && ny < 0.15 {
            return true;
        }
        false
    }

    fn in_lungs(&self, nx: f32, ny: f32, z: f32, jx: f32, jy: f32, s: f32) -> bool {
        let (z0, z1) = (0.05, 0.46);
        if !(z0..=z1).contains(&z) {
            return false;
        }
        // Longitudinal taper: lungs are widest mid-chest.
        let t = ((z - z0) / (z1 - z0) * std::f32::consts::PI).sin().max(0.0).sqrt();
        let (rx, ry) = (0.27 * s * t, 0.35 * s * t);
        ellipse(nx, ny, -0.40 + jx, -0.08 + jy, rx, ry) <= 1.0
            || ellipse(nx, ny, 0.40 + jx, -0.08 + jy, rx, ry) <= 1.0
    }

    fn in_liver(&self, nx: f32, ny: f32, z: f32, jx: f32, jy: f32, s: f32) -> bool {
        let (z0, z1) = (0.40, 0.74);
        if !(z0..=z1).contains(&z) {
            return false;
        }
        let t = ((z - z0) / (z1 - z0) * std::f32::consts::PI).sin().max(0.0).sqrt();
        // Patient-right lobe (image left) with a medial extension.
        ellipse(nx, ny, -0.30 + jx, 0.02 + jy, 0.47 * s * t, 0.40 * s * t) <= 1.0
            || ellipse(nx, ny, 0.02 + jx, -0.10 + jy, 0.22 * s * t, 0.18 * s * t) <= 1.0
    }

    fn in_kidneys(&self, nx: f32, ny: f32, z: f32, jx: f32, jy: f32, s: f32) -> bool {
        let (z0, z1) = (0.52, 0.82);
        if !(z0..=z1).contains(&z) {
            return false;
        }
        let t = ((z - z0) / (z1 - z0) * std::f32::consts::PI).sin().max(0.0).sqrt();
        let (rx, ry) = (0.215 * s * t, 0.18 * s * t);
        ellipse(nx, ny, -0.34 + jx, 0.26 + jy, rx, ry) <= 1.0
            || ellipse(nx, ny, 0.34 + jx, 0.26 + jy, rx, ry) <= 1.0
    }

    fn in_bladder(&self, nx: f32, ny: f32, z: f32, jx: f32, jy: f32, s: f32) -> bool {
        let (z0, z1) = (0.83, 1.0);
        if !(z0..=z1).contains(&z) {
            return false;
        }
        let t = ((z - z0) / (z1 - z0) * std::f32::consts::PI).sin().max(0.0).sqrt();
        ellipse(nx, ny, jx, 0.10 + jy, 0.27 * s * t, 0.23 * s * t) <= 1.0
    }
}

/// Normalized ellipse metric: `<= 1` inside.
#[inline]
fn ellipse(x: f32, y: f32, cx: f32, cy: f32, rx: f32, ry: f32) -> f32 {
    if rx <= 0.0 || ry <= 0.0 {
        return f32::INFINITY;
    }
    let dx = (x - cx) / rx;
    let dy = (y - cy) / ry;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn anatomy(seed: u64) -> Anatomy {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Anatomy::sample(&mut rng)
    }

    #[test]
    fn outside_body_is_air() {
        let a = anatomy(1);
        let (l, h) = a.classify(0.99, 0.99, 0.3);
        assert_eq!(l, 0);
        assert_eq!(h, hu::AIR);
    }

    #[test]
    fn organs_appear_in_their_z_ranges() {
        let a = anatomy(2);
        // Lung voxel mid-chest.
        let (l, _) = a.classify(-0.40, -0.08, 0.25);
        assert_eq!(l, Organ::Lungs.label());
        // Liver voxel upper abdomen (patient right).
        let (l, _) = a.classify(-0.30, 0.02, 0.57);
        assert_eq!(l, Organ::Liver.label());
        // Kidney voxel.
        let (l, _) = a.classify(0.34, 0.26, 0.67);
        assert_eq!(l, Organ::Kidneys.label());
        // Bladder voxel.
        let (l, _) = a.classify(0.0, 0.10, 0.93);
        assert_eq!(l, Organ::Bladder.label());
        // Spine voxel anywhere along the trunk.
        let (l, _) = a.classify(0.0, 0.42, 0.5);
        assert_eq!(l, Organ::Bones.label());
        // Brain voxel in the head.
        let (l, _) = a.classify(0.0, 0.0, -0.15);
        assert_eq!(l, Organ::Brain.label());
    }

    #[test]
    fn organs_absent_outside_their_z_ranges() {
        let a = anatomy(3);
        assert_ne!(a.classify(-0.40, -0.08, 0.9).0, Organ::Lungs.label());
        assert_ne!(a.classify(0.0, 0.10, 0.3).0, Organ::Bladder.label());
        assert_ne!(a.classify(0.34, 0.26, 0.1).0, Organ::Kidneys.label());
    }

    #[test]
    fn kidney_contrast_is_low() {
        // The kidney/soft-tissue HU gap must stay small — the paper's "low
        // contrast among semantically different areas".
        assert!((hu::KIDNEY - hu::TISSUE).abs() < 10.0);
        assert!((hu::BRAIN - hu::TISSUE).abs() < 15.0);
    }

    #[test]
    fn anatomies_differ_between_patients() {
        let a = anatomy(10);
        let b = anatomy(11);
        assert_ne!(a.body_rx, b.body_rx);
        assert_ne!(a.rib_phase, b.rib_phase);
    }

    #[test]
    fn lesions_shift_hu_but_keep_the_organ_label() {
        let mut a = anatomy(2);
        // Healthy liver voxel (see organs_appear_in_their_z_ranges).
        let (l, hu_healthy) = a.classify(-0.30, 0.02, 0.57);
        assert_eq!(l, Organ::Liver.label());
        a.lesions.push(crate::pathology::Lesion {
            organ: Organ::Liver,
            center: (-0.30, 0.02, 0.57),
            radii: (0.05, 0.05, 0.04),
            hu_offset: -35.0,
        });
        let (l2, hu_lesion, is_lesion) = a.classify_voxel(-0.30, 0.02, 0.57);
        assert_eq!(l2, Organ::Liver.label(), "lesion must fold into the organ mask");
        assert!(is_lesion);
        assert_eq!(hu_lesion, hu_healthy - 35.0);
        // A lung voxel is untouched by a liver lesion even if the ellipsoid
        // happened to overlap it geometrically.
        let (l3, _, is3) = a.classify_voxel(-0.40, -0.08, 0.25);
        assert_eq!(l3, Organ::Lungs.label());
        assert!(!is3);
    }

    #[test]
    fn skull_surrounds_brain() {
        let a = anatomy(4);
        // Moving outward from the head centre along +x we must cross brain,
        // then bone (skull), then air.
        let mut seen = vec![];
        for i in 0..60 {
            let nx = i as f32 / 60.0;
            let (l, _) = a.classify(nx, 0.0, -0.15);
            seen.push(l);
        }
        let brain = Organ::Brain.label();
        let bone = Organ::Bones.label();
        let first_bone = seen.iter().position(|&l| l == bone);
        let last_brain = seen.iter().rposition(|&l| l == brain);
        assert!(first_bone.is_some(), "no skull found");
        assert!(last_brain.is_some(), "no brain found");
        assert!(last_brain.unwrap() < first_bone.unwrap(), "brain outside skull");
    }
}
