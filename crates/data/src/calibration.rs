//! Calibration-set construction for post-training quantisation (Table III).
//!
//! The Vitis AI quantizer calibrates activation ranges on a small unlabeled
//! set (the paper uses 500 slices). §III-D observes that *random* sampling
//! mirrors the dataset's organ imbalance, letting rare organs (bladder)
//! contribute almost nothing to the calibration — so the authors manually
//! level the frequencies (Table III). [`manual_calibration`] reproduces that
//! with a greedy frequency-matching sampler.

use crate::stats::{FrequencyAccumulator, OrganFrequencies};
use crate::volume::Slice2d;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Table III "Manual Sampling" row: target percentages for
/// liver, bladder, lungs, kidneys, bones.
pub const PAPER_MANUAL_TARGET: [f64; 5] = [21.69, 7.66, 32.02, 6.90, 31.73];

/// A constructed calibration set.
#[derive(Debug, Clone)]
pub struct CalibrationSet {
    /// Selected slices (unlabeled use downstream; labels retained for stats).
    pub slices: Vec<Slice2d>,
    /// Achieved organ frequencies.
    pub frequencies: OrganFrequencies,
}

/// Uniform random sampling of `n` slices (Table III "Random Sampling" row).
pub fn random_calibration(pool: &[Slice2d], n: usize, seed: u64) -> CalibrationSet {
    assert!(!pool.is_empty(), "empty slice pool");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    idx.shuffle(&mut rng);
    let slices: Vec<Slice2d> = idx.into_iter().take(n).map(|i| pool[i].clone()).collect();
    finish(slices)
}

/// Greedy frequency-leveling sampler (Table III "Manual Sampling" row).
///
/// Builds the set one slice at a time; at each step it examines a random
/// candidate window and keeps the slice whose addition brings the running
/// organ distribution closest (L1) to `target_pct` (percent over the five
/// target organs).
pub fn manual_calibration(
    pool: &[Slice2d],
    n: usize,
    target_pct: [f64; 5],
    seed: u64,
) -> CalibrationSet {
    assert!(!pool.is_empty(), "empty slice pool");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut counts = [0u64; 5]; // per target organ (labels 1..=5)
    let mut slices: Vec<Slice2d> = Vec::with_capacity(n);
    let hists: Vec<[u64; 7]> = pool.iter().map(|s| s.label_histogram()).collect();
    let candidates_per_step = 24.min(pool.len());

    for _ in 0..n {
        let mut best: Option<(usize, f64)> = None;
        for _ in 0..candidates_per_step {
            let i = rng.gen_range(0..pool.len());
            let mut c = counts;
            for (k, cv) in c.iter_mut().enumerate() {
                *cv += hists[i][k + 1];
            }
            let total: u64 = c.iter().sum();
            let dist: f64 = (0..5)
                .map(|k| {
                    let pct = 100.0 * c[k] as f64 / total.max(1) as f64;
                    (pct - target_pct[k]).abs()
                })
                .sum();
            if best.is_none_or(|(_, d)| dist < d) {
                best = Some((i, dist));
            }
        }
        let (i, _) = best.expect("candidates_per_step >= 1");
        for (k, cv) in counts.iter_mut().enumerate() {
            *cv += hists[i][k + 1];
        }
        slices.push(pool[i].clone());
    }
    finish(slices)
}

fn finish(slices: Vec<Slice2d>) -> CalibrationSet {
    let mut acc = FrequencyAccumulator::new();
    for s in &slices {
        acc.add_slice(s);
    }
    CalibrationSet { frequencies: acc.finish(), slices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{SplitKind, SyntheticCtOrg, SyntheticCtOrgConfig};
    use crate::volume::Organ;

    fn pool() -> Vec<Slice2d> {
        let ds = SyntheticCtOrg::new(SyntheticCtOrgConfig {
            n_patients: 24,
            slice_size: 48,
            slices_per_unit_z: 28.0,
            ..Default::default()
        });
        ds.slices(SplitKind::Train, 1)
    }

    #[test]
    fn random_sampling_mirrors_pool_distribution() {
        let pool = pool();
        let mut all = FrequencyAccumulator::new();
        for s in &pool {
            all.add_slice(s);
        }
        let pool_f = all.finish();
        let cal = random_calibration(&pool, 200, 7);
        assert_eq!(cal.slices.len(), 200);
        for organ in Organ::TARGETS {
            let d = (cal.frequencies.of(organ) - pool_f.of(organ)).abs();
            assert!(d < 8.0, "{organ}: {d:.2} pct points off pool distribution");
        }
    }

    #[test]
    fn manual_sampling_raises_rare_organs() {
        let pool = pool();
        let rand_cal = random_calibration(&pool, 150, 1);
        let man_cal = manual_calibration(&pool, 150, PAPER_MANUAL_TARGET, 1);
        // Bladder and kidneys share must increase vs random sampling
        // (the Table III effect).
        assert!(
            man_cal.frequencies.of(Organ::Bladder) > rand_cal.frequencies.of(Organ::Bladder),
            "bladder {:.2} !> {:.2}",
            man_cal.frequencies.of(Organ::Bladder),
            rand_cal.frequencies.of(Organ::Bladder)
        );
        // Dominant organs shrink or stay comparable.
        assert!(
            man_cal.frequencies.of(Organ::Bones) <= rand_cal.frequencies.of(Organ::Bones) + 2.0
        );
    }

    #[test]
    fn manual_sampling_approaches_target() {
        let pool = pool();
        let cal = manual_calibration(&pool, 200, PAPER_MANUAL_TARGET, 3);
        let mut dist = 0.0;
        for (k, organ) in Organ::TARGETS.iter().enumerate() {
            dist += (cal.frequencies.of(*organ) - PAPER_MANUAL_TARGET[k]).abs();
        }
        assert!(dist < 30.0, "total L1 distance {dist:.1}");
    }

    #[test]
    fn samplers_are_deterministic() {
        let pool = pool();
        let a = random_calibration(&pool, 50, 11);
        let b = random_calibration(&pool, 50, 11);
        assert_eq!(a.frequencies.pct, b.frequencies.pct);
        let c = manual_calibration(&pool, 50, PAPER_MANUAL_TARGET, 11);
        let d = manual_calibration(&pool, 50, PAPER_MANUAL_TARGET, 11);
        assert_eq!(c.frequencies.pct, d.frequencies.pct);
    }

    #[test]
    #[should_panic(expected = "empty slice pool")]
    fn empty_pool_rejected() {
        let _ = random_calibration(&[], 10, 0);
    }
}
