//! Minimal NIfTI-1 export/import for the synthetic volumes.
//!
//! CT-ORG ships as NIfTI (`.nii`) files; this module writes the synthetic
//! [`Volume`]s in the same single-file format (348-byte header + raw voxel
//! data) so they can be opened in standard medical viewers (3D Slicer,
//! ITK-SNAP, nibabel) for visual inspection. Only the subset of NIfTI-1
//! needed for that purpose is implemented: `float32` or `uint8` voxels,
//! 3-D geometry, no compression, native endianness (little-endian headers —
//! the only kind this writer produces and the reader accepts).

use crate::volume::Volume;
use std::io::{Read, Write};
use std::path::Path;

/// NIfTI-1 datatype code for `float32`.
const DT_FLOAT32: i16 = 16;
/// NIfTI-1 datatype code for `uint8`.
const DT_UINT8: i16 = 2;
/// Header size mandated by the standard.
const HDR_SIZE: i32 = 348;

/// Which channel of a [`Volume`] to export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NiftiChannel {
    /// Hounsfield units as `float32`.
    Intensity,
    /// Organ labels as `uint8`.
    Labels,
}

fn build_header(vol: &Volume, datatype: i16, bitpix: i16) -> Vec<u8> {
    let mut h = vec![0u8; HDR_SIZE as usize];
    h[0..4].copy_from_slice(&HDR_SIZE.to_le_bytes()); // sizeof_hdr
                                                      // dim[0] = 3 spatial dims; dim[1..=3] = x, y, z.
    let dims: [i16; 8] = [3, vol.width as i16, vol.height as i16, vol.depth as i16, 1, 1, 1, 1];
    for (i, d) in dims.iter().enumerate() {
        h[40 + 2 * i..42 + 2 * i].copy_from_slice(&d.to_le_bytes());
    }
    h[70..72].copy_from_slice(&datatype.to_le_bytes());
    h[72..74].copy_from_slice(&bitpix.to_le_bytes());
    // pixdim: qfac, then voxel spacing (1 mm isotropic placeholder).
    let pixdim: [f32; 8] = [1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
    for (i, p) in pixdim.iter().enumerate() {
        h[76 + 4 * i..80 + 4 * i].copy_from_slice(&p.to_le_bytes());
    }
    // vox_offset: data starts right after the header + 4-byte extension flag.
    h[108..112].copy_from_slice(&352.0f32.to_le_bytes());
    // scl_slope = 1 (no rescaling).
    h[112..116].copy_from_slice(&1.0f32.to_le_bytes());
    // descrip (80 bytes at offset 148).
    let desc = format!("SENECA synthetic patient {}", vol.patient_id);
    let bytes = desc.as_bytes();
    let n = bytes.len().min(79);
    h[148..148 + n].copy_from_slice(&bytes[..n]);
    // magic "n+1\0" at offset 344: single-file NIfTI.
    h[344..348].copy_from_slice(b"n+1\0");
    h
}

/// Writes one channel of a volume as a `.nii` file.
pub fn write_nifti(path: &Path, vol: &Volume, channel: NiftiChannel) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    match channel {
        NiftiChannel::Intensity => {
            f.write_all(&build_header(vol, DT_FLOAT32, 32))?;
            f.write_all(&[0u8; 4])?; // empty extension
            for v in &vol.hu {
                f.write_all(&v.to_le_bytes())?;
            }
        }
        NiftiChannel::Labels => {
            f.write_all(&build_header(vol, DT_UINT8, 8))?;
            f.write_all(&[0u8; 4])?;
            f.write_all(&vol.labels)?;
        }
    }
    Ok(())
}

/// Geometry and datatype read back from a NIfTI header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiftiInfo {
    /// X dimension (width).
    pub width: usize,
    /// Y dimension (height).
    pub height: usize,
    /// Z dimension (slices).
    pub depth: usize,
    /// NIfTI datatype code (16 = float32, 2 = uint8).
    pub datatype: i16,
}

/// Reads a `.nii` file produced by [`write_nifti`] (or any little-endian
/// single-file NIfTI-1 with float32/uint8 voxels). Returns the geometry and
/// the voxel payload as `f32` (uint8 voxels are widened).
pub fn read_nifti(path: &Path) -> std::io::Result<(NiftiInfo, Vec<f32>)> {
    let mut f = std::fs::File::open(path)?;
    let mut hdr = vec![0u8; 352];
    f.read_exact(&mut hdr)?;
    let sizeof_hdr = i32::from_le_bytes(hdr[0..4].try_into().unwrap());
    if sizeof_hdr != HDR_SIZE {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("not a little-endian NIfTI-1 header (sizeof_hdr {sizeof_hdr})"),
        ));
    }
    if &hdr[344..347] != b"n+1" {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "bad NIfTI magic"));
    }
    let dim = |i: usize| i16::from_le_bytes(hdr[40 + 2 * i..42 + 2 * i].try_into().unwrap());
    let info = NiftiInfo {
        width: dim(1).max(1) as usize,
        height: dim(2).max(1) as usize,
        depth: dim(3).max(1) as usize,
        datatype: i16::from_le_bytes(hdr[70..72].try_into().unwrap()),
    };
    let n = info.width * info.height * info.depth;
    let mut data = Vec::with_capacity(n);
    match info.datatype {
        DT_FLOAT32 => {
            let mut buf = vec![0u8; n * 4];
            f.read_exact(&mut buf)?;
            for chunk in buf.chunks_exact(4) {
                data.push(f32::from_le_bytes(chunk.try_into().unwrap()));
            }
        }
        DT_UINT8 => {
            let mut buf = vec![0u8; n];
            f.read_exact(&mut buf)?;
            data.extend(buf.iter().map(|&b| b as f32));
        }
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unsupported NIfTI datatype {other}"),
            ))
        }
    }
    Ok((info, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{SyntheticCtOrg, SyntheticCtOrgConfig};

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("seneca-nifti-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&d);
        d
    }

    fn small_volume() -> Volume {
        SyntheticCtOrg::new(SyntheticCtOrgConfig {
            n_patients: 1,
            slice_size: 32,
            slices_per_unit_z: 12.0,
            ..Default::default()
        })
        .volume(0)
    }

    #[test]
    fn intensity_roundtrip() {
        let vol = small_volume();
        let path = tmpdir().join("p0.nii");
        write_nifti(&path, &vol, NiftiChannel::Intensity).unwrap();
        let (info, data) = read_nifti(&path).unwrap();
        assert_eq!((info.width, info.height, info.depth), (vol.width, vol.height, vol.depth));
        assert_eq!(info.datatype, DT_FLOAT32);
        assert_eq!(data.len(), vol.hu.len());
        for (a, b) in data.iter().zip(&vol.hu) {
            assert_eq!(a, b, "float voxels must roundtrip bit-exactly");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn labels_roundtrip() {
        let vol = small_volume();
        let path = tmpdir().join("p0-labels.nii");
        write_nifti(&path, &vol, NiftiChannel::Labels).unwrap();
        let (info, data) = read_nifti(&path).unwrap();
        assert_eq!(info.datatype, DT_UINT8);
        for (a, b) in data.iter().zip(&vol.labels) {
            assert_eq!(*a, *b as f32);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_is_standard_sized() {
        let vol = small_volume();
        let path = tmpdir().join("p0-hdr.nii");
        write_nifti(&path, &vol, NiftiChannel::Labels).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 352 + vol.labels.len());
        assert_eq!(&bytes[344..348], b"n+1\0");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmpdir().join("garbage.nii");
        std::fs::write(&path, vec![0u8; 400]).unwrap();
        assert!(read_nifti(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
