//! Stage A of the SENECA workflow (paper §III-A):
//!
//! 1. down-size slices (512→256 in the paper; any integer factor here),
//! 2. contrast adjustment by saturating the upper/lower 1% of pixels,
//! 3. rescale intensities into `[-1, 1]`,
//! 4. remove the brain label (under-represented, paper drops it).

use crate::volume::{Organ, Slice2d};

/// Integer-factor area downsampling of intensities plus centre-sample label
/// downsampling. `factor` must divide both dimensions.
pub fn downsample(slice: &Slice2d, factor: usize) -> Slice2d {
    downsample_excluding(slice, factor, None)
}

/// [`downsample`] with an optional label excluded from the majority vote.
///
/// Excluded pixels cast no vote at all (they neither win the window nor
/// count toward background), so a label removed downstream — the brain in
/// [`preprocess`] — cannot eat the votes of the organs it overlaps. A
/// window consisting only of excluded pixels downsamples to background.
pub fn downsample_excluding(slice: &Slice2d, factor: usize, exclude: Option<u8>) -> Slice2d {
    assert!(factor >= 1, "factor must be >= 1");
    if factor == 1 {
        return slice.clone();
    }
    assert!(
        slice.width.is_multiple_of(factor) && slice.height.is_multiple_of(factor),
        "factor {factor} must divide {}x{}",
        slice.width,
        slice.height
    );
    let (w, h) = (slice.width / factor, slice.height / factor);
    let mut pixels = vec![0.0f32; w * h];
    let mut labels = vec![0u8; w * h];
    let inv = 1.0 / (factor * factor) as f32;
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for dy in 0..factor {
                for dx in 0..factor {
                    acc += slice.pixels[(y * factor + dy) * slice.width + x * factor + dx];
                }
            }
            pixels[y * w + x] = acc * inv;
            // Majority label in the window (ties: lowest label wins).
            let mut counts = [0u16; 7];
            for dy in 0..factor {
                for dx in 0..factor {
                    let l = slice.labels[(y * factor + dy) * slice.width + x * factor + dx];
                    debug_assert!(l <= 6, "corrupted slice: label {l} out of range (0..=6)");
                    if Some(l) != exclude {
                        counts[l as usize] += 1;
                    }
                }
            }
            labels[y * w + x] = majority_label(&counts);
        }
    }
    Slice2d {
        width: w,
        height: h,
        pixels,
        labels,
        patient_id: slice.patient_id,
        slice_index: slice.slice_index,
    }
}

/// The label with the highest count; exact ties resolve to the *lowest*
/// label, so background beats organs and organ labels beat later ones.
/// All-zero counts return background.
pub fn majority_label(counts: &[u16; 7]) -> u8 {
    let mut best = 0u8;
    let mut best_count = counts[0];
    for (label, &count) in counts.iter().enumerate().skip(1) {
        if count > best_count {
            best = label as u8;
            best_count = count;
        }
    }
    best
}

/// Returns the p-th percentile (0..=100) of `values` (nearest-rank).
pub fn percentile(values: &[f32], p: f64) -> f32 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p));
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Saturates the lowest and highest `pct`% of pixels (paper uses 1%) and
/// linearly rescales the result into `[-1, 1]`. Operates in place.
pub fn saturate_and_rescale(slice: &mut Slice2d, pct: f64) {
    let lo = percentile(&slice.pixels, pct);
    let hi = percentile(&slice.pixels, 100.0 - pct);
    let span = (hi - lo).max(1e-3);
    for v in &mut slice.pixels {
        let clamped = v.clamp(lo, hi);
        *v = (clamped - lo) / span * 2.0 - 1.0;
    }
}

/// Replaces brain labels with background (paper §III-A: the brain is removed
/// from the target organs).
pub fn remove_brain_label(slice: &mut Slice2d) {
    let brain = Organ::Brain.label();
    for l in &mut slice.labels {
        if *l == brain {
            *l = 0;
        }
    }
}

/// Full stage-A pipeline: downsample by `factor` with the brain excluded
/// from the label vote, remove any surviving brain labels (the `factor == 1`
/// path), saturate at 1% and rescale to `[-1, 1]`.
///
/// The brain must come out *before* the majority vote: removing it after
/// downsampling would zero whole windows that are majority-brain, and a
/// window where brain narrowly outvotes another organ would lose that
/// organ's contribution entirely.
pub fn preprocess(slice: &Slice2d, factor: usize) -> Slice2d {
    let mut s = downsample_excluding(slice, factor, Some(Organ::Brain.label()));
    remove_brain_label(&mut s);
    saturate_and_rescale(&mut s, 1.0);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_slice(w: usize, h: usize) -> Slice2d {
        let pixels = (0..w * h).map(|i| i as f32).collect();
        let labels = (0..w * h).map(|i| (i % 7) as u8).collect();
        Slice2d { width: w, height: h, pixels, labels, patient_id: 0, slice_index: 0 }
    }

    #[test]
    fn downsample_halves_dimensions_and_averages() {
        let s = Slice2d {
            width: 4,
            height: 2,
            pixels: vec![1.0, 3.0, 10.0, 20.0, 5.0, 7.0, 30.0, 40.0],
            labels: vec![0, 1, 3, 3, 1, 1, 3, 5],
            patient_id: 1,
            slice_index: 2,
        };
        let d = downsample(&s, 2);
        assert_eq!((d.width, d.height), (2, 1));
        assert_eq!(d.pixels, vec![4.0, 25.0]);
        // Majority labels: window0 = {0,1,1,1} -> 1; window1 = {3,3,3,5} -> 3.
        assert_eq!(d.labels, vec![1, 3]);
        assert_eq!(d.patient_id, 1);
    }

    #[test]
    fn downsample_512_to_256_like_paper() {
        let s = test_slice(512, 512);
        let d = downsample(&s, 2);
        assert_eq!((d.width, d.height), (256, 256));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn downsample_requires_divisible_factor() {
        let s = test_slice(10, 10);
        let _ = downsample(&s, 3);
    }

    #[test]
    fn downsample_ties_resolve_to_lowest_label() {
        // Exactly tied window {3, 5, 3, 5}: lungs (3) and bones (5) have two
        // votes each. The contract says the lowest label wins; the pre-fix
        // `max_by_key` returned the *last* maximum, i.e. bones.
        let s = Slice2d {
            width: 2,
            height: 2,
            pixels: vec![0.0; 4],
            labels: vec![3, 5, 3, 5],
            patient_id: 0,
            slice_index: 0,
        };
        let d = downsample(&s, 2);
        assert_eq!(d.labels, vec![3]);
        // Background ties with an organ: background wins.
        let s = Slice2d {
            width: 2,
            height: 2,
            pixels: vec![0.0; 4],
            labels: vec![0, 1, 0, 1],
            patient_id: 0,
            slice_index: 0,
        };
        assert_eq!(downsample(&s, 2).labels, vec![0]);
    }

    #[test]
    fn majority_label_basics() {
        assert_eq!(majority_label(&[0, 0, 0, 0, 0, 0, 0]), 0);
        assert_eq!(majority_label(&[1, 0, 0, 2, 0, 2, 0]), 3);
        assert_eq!(majority_label(&[2, 2, 0, 0, 0, 0, 0]), 0);
        assert_eq!(majority_label(&[0, 0, 4, 4, 0, 0, 4]), 2);
    }

    #[test]
    fn brain_excluded_from_vote_before_downsampling() {
        // 3x3 window: 4 brain, 3 lungs, 2 background. With the brain voting
        // (pre-fix), brain wins the window and is then zeroed — the lungs'
        // plurality among the *kept* labels is lost. Excluding brain from
        // the vote, lungs (3 votes) beat background (2 votes).
        let s = Slice2d {
            width: 3,
            height: 3,
            pixels: vec![0.0; 9],
            labels: vec![6, 6, 6, 6, 3, 3, 3, 0, 0],
            patient_id: 0,
            slice_index: 0,
        };
        let p = preprocess(&s, 3);
        assert_eq!(p.labels, vec![3]);
        // Majority-brain window with no organ contest still becomes
        // background, not brain.
        let s = Slice2d {
            width: 3,
            height: 3,
            pixels: vec![0.0; 9],
            labels: vec![6; 9],
            patient_id: 0,
            slice_index: 0,
        };
        assert_eq!(preprocess(&s, 3).labels, vec![0]);
        // Plain downsample (no exclusion) still lets brain win its window.
        let s = Slice2d {
            width: 3,
            height: 3,
            pixels: vec![0.0; 9],
            labels: vec![6, 6, 6, 6, 6, 3, 3, 0, 0],
            patient_id: 0,
            slice_index: 0,
        };
        assert_eq!(downsample(&s, 3).labels, vec![6]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn corrupted_labels_panic_in_downsample() {
        let s = Slice2d {
            width: 2,
            height: 2,
            pixels: vec![0.0; 4],
            labels: vec![0, 9, 0, 0],
            patient_id: 0,
            slice_index: 0,
        };
        let _ = downsample(&s, 2);
    }

    #[test]
    fn percentile_basics() {
        let v: Vec<f32> = (0..101).map(|i| i as f32).collect();
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
    }

    #[test]
    fn rescale_maps_to_unit_interval_and_saturates() {
        let mut s = test_slice(16, 16);
        // Insert extreme outliers that the 1% saturation must clip.
        s.pixels[0] = 1e6;
        s.pixels[1] = -1e6;
        saturate_and_rescale(&mut s, 1.0);
        for v in &s.pixels {
            assert!((-1.0..=1.0).contains(v), "{v}");
        }
        // The outliers hit the extremes exactly.
        assert_eq!(s.pixels[0], 1.0);
        assert_eq!(s.pixels[1], -1.0);
    }

    #[test]
    fn brain_removal_only_touches_brain() {
        let mut s = test_slice(7, 1);
        remove_brain_label(&mut s);
        assert_eq!(s.labels, vec![0, 1, 2, 3, 4, 5, 0]);
    }

    #[test]
    fn full_pipeline_output_ranges() {
        let s = test_slice(32, 32);
        let p = preprocess(&s, 2);
        assert_eq!((p.width, p.height), (16, 16));
        assert!(p.pixels.iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!(p.labels.iter().all(|&l| l <= 5));
    }
}
