//! Stage A of the SENECA workflow (paper §III-A):
//!
//! 1. down-size slices (512→256 in the paper; any integer factor here),
//! 2. contrast adjustment by saturating the upper/lower 1% of pixels,
//! 3. rescale intensities into `[-1, 1]`,
//! 4. remove the brain label (under-represented, paper drops it).

use crate::volume::{Organ, Slice2d};

/// Integer-factor area downsampling of intensities plus centre-sample label
/// downsampling. `factor` must divide both dimensions.
pub fn downsample(slice: &Slice2d, factor: usize) -> Slice2d {
    assert!(factor >= 1, "factor must be >= 1");
    if factor == 1 {
        return slice.clone();
    }
    assert!(
        slice.width.is_multiple_of(factor) && slice.height.is_multiple_of(factor),
        "factor {factor} must divide {}x{}",
        slice.width,
        slice.height
    );
    let (w, h) = (slice.width / factor, slice.height / factor);
    let mut pixels = vec![0.0f32; w * h];
    let mut labels = vec![0u8; w * h];
    let inv = 1.0 / (factor * factor) as f32;
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for dy in 0..factor {
                for dx in 0..factor {
                    acc += slice.pixels[(y * factor + dy) * slice.width + x * factor + dx];
                }
            }
            pixels[y * w + x] = acc * inv;
            // Majority label in the window (ties: lowest label wins).
            let mut counts = [0u16; 7];
            for dy in 0..factor {
                for dx in 0..factor {
                    let l = slice.labels[(y * factor + dy) * slice.width + x * factor + dx];
                    counts[(l as usize).min(6)] += 1;
                }
            }
            let best = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i as u8)
                .unwrap_or(0);
            labels[y * w + x] = best;
        }
    }
    Slice2d {
        width: w,
        height: h,
        pixels,
        labels,
        patient_id: slice.patient_id,
        slice_index: slice.slice_index,
    }
}

/// Returns the p-th percentile (0..=100) of `values` (nearest-rank).
pub fn percentile(values: &[f32], p: f64) -> f32 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p));
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Saturates the lowest and highest `pct`% of pixels (paper uses 1%) and
/// linearly rescales the result into `[-1, 1]`. Operates in place.
pub fn saturate_and_rescale(slice: &mut Slice2d, pct: f64) {
    let lo = percentile(&slice.pixels, pct);
    let hi = percentile(&slice.pixels, 100.0 - pct);
    let span = (hi - lo).max(1e-3);
    for v in &mut slice.pixels {
        let clamped = v.clamp(lo, hi);
        *v = (clamped - lo) / span * 2.0 - 1.0;
    }
}

/// Replaces brain labels with background (paper §III-A: the brain is removed
/// from the target organs).
pub fn remove_brain_label(slice: &mut Slice2d) {
    let brain = Organ::Brain.label();
    for l in &mut slice.labels {
        if *l == brain {
            *l = 0;
        }
    }
}

/// Full stage-A pipeline: downsample by `factor`, remove brain, saturate at
/// 1% and rescale to `[-1, 1]`.
pub fn preprocess(slice: &Slice2d, factor: usize) -> Slice2d {
    let mut s = downsample(slice, factor);
    remove_brain_label(&mut s);
    saturate_and_rescale(&mut s, 1.0);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_slice(w: usize, h: usize) -> Slice2d {
        let pixels = (0..w * h).map(|i| i as f32).collect();
        let labels = (0..w * h).map(|i| (i % 7) as u8).collect();
        Slice2d { width: w, height: h, pixels, labels, patient_id: 0, slice_index: 0 }
    }

    #[test]
    fn downsample_halves_dimensions_and_averages() {
        let s = Slice2d {
            width: 4,
            height: 2,
            pixels: vec![1.0, 3.0, 10.0, 20.0, 5.0, 7.0, 30.0, 40.0],
            labels: vec![0, 1, 3, 3, 1, 1, 3, 5],
            patient_id: 1,
            slice_index: 2,
        };
        let d = downsample(&s, 2);
        assert_eq!((d.width, d.height), (2, 1));
        assert_eq!(d.pixels, vec![4.0, 25.0]);
        // Majority labels: window0 = {0,1,1,1} -> 1; window1 = {3,3,3,5} -> 3.
        assert_eq!(d.labels, vec![1, 3]);
        assert_eq!(d.patient_id, 1);
    }

    #[test]
    fn downsample_512_to_256_like_paper() {
        let s = test_slice(512, 512);
        let d = downsample(&s, 2);
        assert_eq!((d.width, d.height), (256, 256));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn downsample_requires_divisible_factor() {
        let s = test_slice(10, 10);
        let _ = downsample(&s, 3);
    }

    #[test]
    fn percentile_basics() {
        let v: Vec<f32> = (0..101).map(|i| i as f32).collect();
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
    }

    #[test]
    fn rescale_maps_to_unit_interval_and_saturates() {
        let mut s = test_slice(16, 16);
        // Insert extreme outliers that the 1% saturation must clip.
        s.pixels[0] = 1e6;
        s.pixels[1] = -1e6;
        saturate_and_rescale(&mut s, 1.0);
        for v in &s.pixels {
            assert!((-1.0..=1.0).contains(v), "{v}");
        }
        // The outliers hit the extremes exactly.
        assert_eq!(s.pixels[0], 1.0);
        assert_eq!(s.pixels[1], -1.0);
    }

    #[test]
    fn brain_removal_only_touches_brain() {
        let mut s = test_slice(7, 1);
        remove_brain_label(&mut s);
        assert_eq!(s.labels, vec![0, 1, 2, 3, 4, 5, 0]);
    }

    #[test]
    fn full_pipeline_output_ranges() {
        let s = test_slice(32, 32);
        let p = preprocess(&s, 2);
        assert_eq!((p.width, p.height), (16, 16));
        assert!(p.pixels.iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!(p.labels.iter().all(|&l| l <= 5));
    }
}
