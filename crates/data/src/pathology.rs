//! Parametric pathologies: seeded tumors/lesions injected inside organs.
//!
//! The phantom cohort is healthy by construction, which means every
//! evaluation — and, critically, every PTQ calibration set — only ever sees
//! clean parenchyma. Real CT-ORG patients carry liver tumors, lung nodules
//! and renal cysts; segmentation models (and their quantized deployments)
//! must keep finding the *host organ* when part of it looks different.
//!
//! A [`Lesion`] is an axis-aligned ellipsoid in the normalized body frame,
//! anchored to a host organ: a voxel belongs to the lesion only when the
//! healthy classification already assigned it to that organ, so lesions clip
//! themselves to organ boundaries for free. Lesion voxels keep the host
//! organ's *label* (the lesion channel is folded into the organ mask — Dice
//! is scored on lesion-bearing anatomy) but shift its *HU*, producing the
//! hypodense tumors / solid nodules the network has never been trained on.
//! The rasteriser records the lesion voxels in [`Volume::lesion`]
//! (see [`crate::volume::Volume`]).
//!
//! [`seed_lesions`] samples a deterministic lesion set for one patient by
//! rejection-sampling centers inside the host organs of an [`Anatomy`].

use crate::anatomy::Anatomy;
use crate::volume::Organ;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One ellipsoidal lesion anchored to a host organ.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Lesion {
    /// Host organ label (the lesion exists only inside this organ).
    pub organ: Organ,
    /// Centre in the normalized body frame `(nx, ny, z)`.
    pub center: (f32, f32, f32),
    /// Ellipsoid half-axes `(rx, ry, rz)` in normalized units.
    pub radii: (f32, f32, f32),
    /// HU shift applied to host parenchyma inside the lesion.
    pub hu_offset: f32,
}

impl Lesion {
    /// True when `(nx, ny, z)` lies inside the lesion ellipsoid.
    pub fn contains(&self, nx: f32, ny: f32, z: f32) -> bool {
        let (cx, cy, cz) = self.center;
        let (rx, ry, rz) = self.radii;
        if rx <= 0.0 || ry <= 0.0 || rz <= 0.0 {
            return false;
        }
        let dx = (nx - cx) / rx;
        let dy = (ny - cy) / ry;
        let dz = (z - cz) / rz;
        dx * dx + dy * dy + dz * dz <= 1.0
    }
}

/// Lesion-seeding policy for one cohort.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathologyConfig {
    /// Minimum lesions per patient.
    pub min_lesions: usize,
    /// Maximum lesions per patient (inclusive).
    pub max_lesions: usize,
    /// Lesion in-plane radius range in normalized units (z half-extent is
    /// drawn from the same range, scaled by 0.6 — lesions are oblate like
    /// most real tumors on axial CT).
    pub radius_range: (f32, f32),
    /// Organs that can host lesions.
    pub hosts: Vec<Organ>,
}

impl Default for PathologyConfig {
    fn default() -> Self {
        Self {
            min_lesions: 1,
            max_lesions: 3,
            radius_range: (0.04, 0.12),
            hosts: vec![Organ::Liver, Organ::Lungs, Organ::Kidneys],
        }
    }
}

/// Nominal HU offset for a lesion hosted by `organ`.
///
/// Liver tumors are hypodense (−35 HU vs parenchyma), lung nodules are
/// solid soft tissue inside aerated lung (+700 HU), renal cysts are
/// fluid-attenuation (−45 HU), everything else defaults to a mildly
/// hypodense mass.
pub fn lesion_hu_offset(organ: Organ) -> f32 {
    match organ {
        Organ::Liver => -35.0,
        Organ::Lungs => 700.0,
        Organ::Kidneys => -45.0,
        _ => -30.0,
    }
}

/// Samples a deterministic lesion set for one patient.
///
/// Centers are rejection-sampled: a candidate `(nx, ny, z)` is kept only if
/// the healthy anatomy classifies it as the drawn host organ, so every
/// lesion is guaranteed to sit inside real parenchyma. Hosts that the scan
/// geometry or the draw never hits are skipped after a bounded number of
/// tries (a patient can end up with fewer than `min_lesions` only if no
/// host organ is reachable at all).
pub fn seed_lesions<R: Rng>(anatomy: &Anatomy, cfg: &PathologyConfig, rng: &mut R) -> Vec<Lesion> {
    assert!(cfg.min_lesions <= cfg.max_lesions, "lesion count range inverted");
    assert!(!cfg.hosts.is_empty(), "pathology without host organs");
    assert!(
        cfg.radius_range.0 > 0.0 && cfg.radius_range.0 <= cfg.radius_range.1,
        "degenerate lesion radius range"
    );
    let n = rng.gen_range(cfg.min_lesions..=cfg.max_lesions);
    let mut lesions = Vec::with_capacity(n);
    for _ in 0..n {
        let host = cfg.hosts[rng.gen_range(0..cfg.hosts.len())];
        // Rejection-sample a centre inside the host organ. The trunk spans
        // z in [0, 1]; organs occupy known sub-ranges, so a bounded number
        // of uniform draws finds parenchyma with overwhelming probability.
        for _try in 0..256 {
            let nx = rng.gen_range(-0.9f32..0.9);
            let ny = rng.gen_range(-0.9f32..0.9);
            let z = rng.gen_range(0.0f32..1.0);
            if anatomy.classify(nx, ny, z).0 != host.label() {
                continue;
            }
            let r = rng.gen_range(cfg.radius_range.0..=cfg.radius_range.1);
            let ar = rng.gen_range(0.8f32..1.25); // in-plane aspect jitter
            lesions.push(Lesion {
                organ: host,
                center: (nx, ny, z),
                radii: (r * ar, r / ar, r * 0.6),
                hu_offset: lesion_hu_offset(host),
            });
            break;
        }
    }
    lesions
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn anatomy(seed: u64) -> Anatomy {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Anatomy::sample(&mut rng)
    }

    #[test]
    fn lesions_land_inside_their_host_organ() {
        let a = anatomy(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let cfg = PathologyConfig { min_lesions: 4, max_lesions: 4, ..Default::default() };
        let lesions = seed_lesions(&a, &cfg, &mut rng);
        assert!(!lesions.is_empty(), "no lesion found a host");
        for l in &lesions {
            let (nx, ny, z) = l.center;
            assert_eq!(a.classify(nx, ny, z).0, l.organ.label(), "{l:?} centre off-organ");
            assert!(l.contains(nx, ny, z));
            assert!(!l.contains(nx + 1.0, ny, z));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = anatomy(4);
        let cfg = PathologyConfig::default();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        let l1 = seed_lesions(&a, &cfg, &mut r1);
        let l2 = seed_lesions(&a, &cfg, &mut r2);
        assert_eq!(l1.len(), l2.len());
        for (a, b) in l1.iter().zip(&l2) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.radii, b.radii);
            assert_eq!(a.organ, b.organ);
        }
    }

    #[test]
    fn lung_nodules_are_dense_liver_tumors_hypodense() {
        assert!(lesion_hu_offset(Organ::Lungs) > 500.0);
        assert!(lesion_hu_offset(Organ::Liver) < 0.0);
        assert!(lesion_hu_offset(Organ::Kidneys) < 0.0);
    }

    #[test]
    #[should_panic(expected = "host organs")]
    fn empty_hosts_rejected() {
        let a = anatomy(5);
        let cfg = PathologyConfig { hosts: vec![], ..Default::default() };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = seed_lesions(&a, &cfg, &mut rng);
    }
}
