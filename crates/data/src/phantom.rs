//! Rasterising an [`Anatomy`](crate::anatomy::Anatomy) into a [`Volume`].
//!
//! Each slice is rasterised in parallel (rayon); after classification the HU
//! field gets Gaussian noise plus a small in-plane box blur that simulates
//! partial-volume averaging — this is what produces the low-contrast organ
//! borders the paper emphasises.

use crate::anatomy::Anatomy;
use crate::volume::Volume;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Rasterisation settings.
#[derive(Debug, Clone, Copy)]
pub struct RasterConfig {
    /// Slice width/height in voxels (square slices, like CT).
    pub size: usize,
    /// Longitudinal extent covered by the scan, in normalized z.
    pub z_range: (f32, f32),
    /// Number of slices across `z_range`.
    pub slices: usize,
    /// Apply partial-volume blur.
    pub blur: bool,
    /// Multiplier on the anatomy's HU noise sigma (1 = nominal dose; a
    /// quarter-dose scan doubles it — see [`crate::scenario`]).
    pub noise_scale: f32,
    /// In-plane field of view: the raster grid spans `[-fov, fov]` in
    /// normalized coordinates (1 = full body; < 1 zooms into the centre at
    /// the same matrix size, like a reduced reconstruction FOV).
    pub fov: f32,
}

impl Default for RasterConfig {
    fn default() -> Self {
        Self { size: 128, z_range: (0.0, 1.0), slices: 56, blur: true, noise_scale: 1.0, fov: 1.0 }
    }
}

/// Rasterises a patient volume. Deterministic given `(anatomy, cfg, seed)`.
pub fn rasterize(anatomy: &Anatomy, cfg: &RasterConfig, seed: u64, patient_id: usize) -> Volume {
    assert!(cfg.slices >= 1 && cfg.size >= 8, "degenerate raster config");
    assert!(cfg.noise_scale >= 0.0 && cfg.fov > 0.0, "degenerate acquisition settings");
    let mut vol = Volume::air(cfg.size, cfg.size, cfg.slices, patient_id);
    let n = cfg.size;
    let slice_len = n * n;
    let (z0, z1) = cfg.z_range;
    let sigma = anatomy.noise_sigma * cfg.noise_scale;
    let has_lesions = !anatomy.lesions.is_empty();
    if has_lesions {
        vol.lesion = vec![0u8; slice_len * cfg.slices];
    }

    let hu_slices: Vec<(Vec<f32>, Vec<u8>, Vec<u8>)> = (0..cfg.slices)
        .into_par_iter()
        .map(|zi| {
            let z = if cfg.slices == 1 {
                z0
            } else {
                z0 + (z1 - z0) * zi as f32 / (cfg.slices - 1) as f32
            };
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ (patient_id as u64) << 32 ^ (zi as u64).wrapping_mul(0x9E37_79B9),
            );
            let mut hu = vec![0.0f32; slice_len];
            let mut labels = vec![0u8; slice_len];
            let mut lesion = if has_lesions { vec![0u8; slice_len] } else { Vec::new() };
            for y in 0..n {
                let ny = ((y as f32 / (n - 1) as f32) * 2.0 - 1.0) * cfg.fov;
                for x in 0..n {
                    let nx = ((x as f32 / (n - 1) as f32) * 2.0 - 1.0) * cfg.fov;
                    let (l, base_hu, in_lesion) = anatomy.classify_voxel(nx, ny, z);
                    labels[y * n + x] = l;
                    if in_lesion {
                        lesion[y * n + x] = 1;
                    }
                    // Box-Muller Gaussian noise.
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                    hu[y * n + x] = base_hu + sigma * g;
                }
            }
            if cfg.blur {
                hu = box_blur3(&hu, n, n);
            }
            (hu, labels, lesion)
        })
        .collect();

    for (zi, (hu, labels, lesion)) in hu_slices.into_iter().enumerate() {
        vol.hu[zi * slice_len..(zi + 1) * slice_len].copy_from_slice(&hu);
        vol.labels[zi * slice_len..(zi + 1) * slice_len].copy_from_slice(&labels);
        if has_lesions {
            vol.lesion[zi * slice_len..(zi + 1) * slice_len].copy_from_slice(&lesion);
        }
    }
    vol
}

/// 3x3 box blur with clamped borders (partial-volume simulation).
pub fn box_blur3(src: &[f32], w: usize, h: usize) -> Vec<f32> {
    assert_eq!(src.len(), w * h);
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for dy in -1i32..=1 {
                let yy = (y as i32 + dy).clamp(0, h as i32 - 1) as usize;
                for dx in -1i32..=1 {
                    let xx = (x as i32 + dx).clamp(0, w as i32 - 1) as usize;
                    acc += src[yy * w + xx];
                }
            }
            out[y * w + x] = acc / 9.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::Organ;
    use rand::SeedableRng;

    fn small_volume(seed: u64) -> Volume {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let anatomy = Anatomy::sample(&mut rng);
        rasterize(
            &anatomy,
            &RasterConfig {
                size: 64,
                z_range: (-0.25, 1.0),
                slices: 40,
                ..RasterConfig::default()
            },
            seed,
            3,
        )
    }

    #[test]
    fn rasterize_is_deterministic() {
        let a = small_volume(5);
        let b = small_volume(5);
        assert_eq!(a.hu, b.hu);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_volume(5);
        let b = small_volume(6);
        assert_ne!(a.hu, b.hu);
    }

    #[test]
    fn total_body_volume_contains_all_organs() {
        let v = small_volume(7);
        let h = v.label_histogram();
        for organ in Organ::ALL {
            assert!(h[organ.label() as usize] > 0, "{organ} missing");
        }
    }

    #[test]
    fn air_dominates_outside_and_is_dark() {
        let v = small_volume(8);
        // Corner voxel: outside the body, near -1000 HU.
        let corner = v.hu[0];
        assert!(corner < -700.0, "corner {corner}");
    }

    #[test]
    fn blur_softens_label_boundaries() {
        // With blur, HU at a lung/tissue boundary is between the two tissue
        // values rather than bimodal. Check global: lung interior voxels
        // average far below boundary voxels.
        let v = small_volume(9);
        let n = v.width;
        let mut interior = vec![];
        let mut boundary = vec![];
        let lungs = Organ::Lungs.label();
        for z in 0..v.depth {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = (z * n + y) * n + x;
                    if v.labels[i] != lungs {
                        continue;
                    }
                    let neighbours =
                        [v.labels[i - 1], v.labels[i + 1], v.labels[i - n], v.labels[i + n]];
                    if neighbours.iter().all(|&l| l == lungs) {
                        interior.push(v.hu[i]);
                    } else {
                        boundary.push(v.hu[i]);
                    }
                }
            }
        }
        assert!(!interior.is_empty() && !boundary.is_empty());
        let mi: f32 = interior.iter().sum::<f32>() / interior.len() as f32;
        let mb: f32 = boundary.iter().sum::<f32>() / boundary.len() as f32;
        assert!(mb > mi + 30.0, "boundary {mb} vs interior {mi}");
    }

    #[test]
    fn box_blur_preserves_constant_field() {
        let src = vec![5.0f32; 12];
        let out = box_blur3(&src, 4, 3);
        for v in out {
            assert!((v - 5.0).abs() < 1e-6);
        }
    }
}
