//! Organ pixel-frequency accounting — regenerates Table I.

use crate::dataset::SyntheticCtOrg;
use crate::volume::{Organ, Slice2d};
use serde::{Deserialize, Serialize};

/// Organ frequencies as percentages of *labeled* pixels (Table I convention).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrganFrequencies {
    /// Percent of labeled pixels per organ, Table I column order
    /// (liver, bladder, lungs, kidneys, bones, brain).
    pub pct: [f64; 6],
    /// Total labeled pixels counted.
    pub labeled: u64,
    /// Total pixels counted (labeled + background).
    pub total: u64,
}

impl OrganFrequencies {
    /// Frequency of one organ in percent.
    pub fn of(&self, organ: Organ) -> f64 {
        self.pct[organ.label() as usize - 1]
    }

    /// Builds frequencies from raw per-label counts (index = label value).
    pub fn from_histogram(h: &[u64; 7]) -> Self {
        let labeled: u64 = h[1..=6].iter().sum();
        let total: u64 = h.iter().sum();
        let mut pct = [0.0; 6];
        for (i, p) in pct.iter_mut().enumerate() {
            *p = 100.0 * h[i + 1] as f64 / labeled.max(1) as f64;
        }
        Self { pct, labeled, total }
    }

    /// Table-I-style one-line report.
    pub fn table_row(&self) -> String {
        Organ::ALL
            .iter()
            .map(|o| format!("{}: {:.2}%", o.name(), self.of(*o)))
            .collect::<Vec<_>>()
            .join("  ")
    }
}

/// Accumulates label histograms across slices/volumes.
#[derive(Debug, Clone, Default)]
pub struct FrequencyAccumulator {
    hist: [u64; 7],
}

impl FrequencyAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one slice.
    pub fn add_slice(&mut self, slice: &Slice2d) {
        let h = slice.label_histogram();
        for (a, b) in self.hist.iter_mut().zip(&h) {
            *a += b;
        }
    }

    /// Adds a raw histogram.
    pub fn add_histogram(&mut self, h: &[u64; 7]) {
        for (a, b) in self.hist.iter_mut().zip(h) {
            *a += b;
        }
    }

    /// Finalises into frequencies.
    pub fn finish(&self) -> OrganFrequencies {
        OrganFrequencies::from_histogram(&self.hist)
    }
}

/// Computes whole-cohort organ frequencies (streams volumes one at a time).
pub fn cohort_frequencies(ds: &SyntheticCtOrg) -> OrganFrequencies {
    let mut acc = FrequencyAccumulator::new();
    for id in 0..ds.config.n_patients {
        acc.add_histogram(&ds.volume(id).label_histogram());
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticCtOrgConfig;

    #[test]
    fn from_histogram_percentages() {
        let h = [100, 10, 0, 30, 0, 60, 0];
        let f = OrganFrequencies::from_histogram(&h);
        assert_eq!(f.labeled, 100);
        assert_eq!(f.total, 200);
        assert!((f.of(Organ::Liver) - 10.0).abs() < 1e-9);
        assert!((f.of(Organ::Lungs) - 30.0).abs() < 1e-9);
        assert!((f.of(Organ::Bones) - 60.0).abs() < 1e-9);
        assert_eq!(f.of(Organ::Bladder), 0.0);
    }

    #[test]
    fn accumulator_sums_slices() {
        let s1 = Slice2d {
            width: 2,
            height: 1,
            pixels: vec![0.0; 2],
            labels: vec![1, 3],
            patient_id: 0,
            slice_index: 0,
        };
        let mut acc = FrequencyAccumulator::new();
        acc.add_slice(&s1);
        acc.add_slice(&s1);
        let f = acc.finish();
        assert_eq!(f.labeled, 4);
        assert!((f.of(Organ::Liver) - 50.0).abs() < 1e-9);
    }

    /// The headline Table I reproduction: ordering and rough magnitudes.
    /// (Exact percentages are asserted loosely — the phantom is calibrated,
    /// not fitted.)
    #[test]
    fn cohort_frequencies_match_table1_shape() {
        let ds = SyntheticCtOrg::new(SyntheticCtOrgConfig {
            n_patients: 30,
            slice_size: 64,
            slices_per_unit_z: 32.0,
            ..Default::default()
        });
        let f = cohort_frequencies(&ds);
        // Ordering: bones & lungs dominate, then liver, kidneys, bladder, brain.
        assert!(f.of(Organ::Lungs) > f.of(Organ::Liver));
        assert!(f.of(Organ::Bones) > f.of(Organ::Liver));
        assert!(f.of(Organ::Liver) > f.of(Organ::Kidneys));
        assert!(f.of(Organ::Kidneys) > f.of(Organ::Bladder));
        assert!(f.of(Organ::Bladder) > f.of(Organ::Brain));
        // Magnitudes within a factor ~2 of Table I.
        for organ in Organ::TARGETS {
            let paper = organ.paper_frequency_pct();
            let ours = f.of(organ);
            assert!(
                ours > paper * 0.4 && ours < paper * 2.5,
                "{organ}: ours {ours:.2}% vs paper {paper:.2}%"
            );
        }
        // Brain drastically under-represented.
        assert!(f.of(Organ::Brain) < 1.5, "brain {:.2}%", f.of(Organ::Brain));
    }
}

#[cfg(test)]
mod debug_print {
    use super::*;
    use crate::dataset::SyntheticCtOrgConfig;

    #[test]
    #[ignore]
    fn print_frequencies() {
        let ds = crate::dataset::SyntheticCtOrg::new(SyntheticCtOrgConfig {
            n_patients: 30,
            slice_size: 64,
            slices_per_unit_z: 32.0,
            ..Default::default()
        });
        let f = cohort_frequencies(&ds);
        println!("{}", f.table_row());
    }
}
