//! The synthetic 140-patient cohort standing in for CT-ORG.
//!
//! Volumes are generated lazily and deterministically from `(config.seed,
//! patient_id)`, so experiments never need the whole cohort in memory.
//! Like CT-ORG, the cohort mixes chest-only and total-body acquisitions;
//! only a small fraction of total-body scans include the head, which is what
//! makes the brain label massively under-represented (Table I: 0.18%).

use crate::anatomy::Anatomy;
use crate::pathology::{seed_lesions, PathologyConfig};
use crate::phantom::RasterConfig;
use crate::scenario::{rasterize_scenario, Scenario};
use crate::volume::{Slice2d, Volume};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Acquisition coverage of one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanKind {
    /// Chest-only: apex of the lungs to the upper liver.
    ChestOnly,
    /// Shoulders to pelvis (most "total-body" CT-ORG scans).
    TotalBody,
    /// Head to pelvis (rare; the only scans containing the brain).
    TotalBodyWithHead,
}

impl ScanKind {
    /// Longitudinal extent in normalized z.
    pub fn z_range(self) -> (f32, f32) {
        match self {
            ScanKind::ChestOnly => (0.0, 0.55),
            ScanKind::TotalBody => (0.0, 1.0),
            ScanKind::TotalBodyWithHead => (-0.25, 1.0),
        }
    }
}

/// Dataset split membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitKind {
    /// Training patients (~70%).
    Train,
    /// Validation patients (~15%).
    Val,
    /// Held-out test patients (~15%).
    Test,
}

/// Cohort generation settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticCtOrgConfig {
    /// Number of patients (CT-ORG has 140).
    pub n_patients: usize,
    /// Raster resolution (the real dataset is 512x512; smaller values trade
    /// fidelity for speed and are used by tests).
    pub slice_size: usize,
    /// Slices generated per unit of normalized z.
    pub slices_per_unit_z: f32,
    /// Master seed.
    pub seed: u64,
    /// Fraction of chest-only scans.
    pub chest_only_fraction: f64,
    /// Fraction of *all* scans that include the head.
    pub head_fraction: f64,
    /// Partial-volume blur on/off.
    pub blur: bool,
}

impl Default for SyntheticCtOrgConfig {
    fn default() -> Self {
        Self {
            n_patients: 140,
            slice_size: 128,
            slices_per_unit_z: 56.0,
            seed: 0x5EED_C70E,
            chest_only_fraction: 0.35,
            head_fraction: 0.025,
            blur: true,
        }
    }
}

/// The synthetic cohort.
#[derive(Debug, Clone)]
pub struct SyntheticCtOrg {
    /// Generation settings.
    pub config: SyntheticCtOrgConfig,
}

impl SyntheticCtOrg {
    /// Creates a cohort handle (no volumes generated yet).
    pub fn new(config: SyntheticCtOrgConfig) -> Self {
        Self { config }
    }

    /// Per-patient RNG.
    fn patient_rng(&self, patient_id: usize) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(
            self.config.seed.wrapping_mul(0x100_0000_01B3) ^ patient_id as u64,
        )
    }

    /// The acquisition kind of a patient (deterministic).
    pub fn scan_kind(&self, patient_id: usize) -> ScanKind {
        let mut rng = self.patient_rng(patient_id);
        let u: f64 = rng.gen();
        if u < self.config.head_fraction {
            ScanKind::TotalBodyWithHead
        } else if u < self.config.head_fraction + self.config.chest_only_fraction {
            ScanKind::ChestOnly
        } else {
            ScanKind::TotalBody
        }
    }

    /// Split membership (~71/14/14 by patient id, deterministic; modulo 7
    /// so even small test cohorts keep all three splits populated).
    pub fn split(&self, patient_id: usize) -> SplitKind {
        match patient_id % 7 {
            0..=4 => SplitKind::Train,
            5 => SplitKind::Val,
            _ => SplitKind::Test,
        }
    }

    /// Patient ids belonging to a split.
    pub fn patients(&self, split: SplitKind) -> Vec<usize> {
        (0..self.config.n_patients).filter(|&id| self.split(id) == split).collect()
    }

    /// Generates the full volume of one patient (healthy, nominal
    /// acquisition — this is what training and calibration see).
    pub fn volume(&self, patient_id: usize) -> Volume {
        self.scenario_volume(patient_id, &Scenario::nominal(), None)
    }

    /// Generates one patient under an acquisition [`Scenario`], optionally
    /// with seeded pathology. `(Scenario::nominal(), None)` reproduces
    /// [`Self::volume`] bit for bit: lesion seeding uses its own RNG stream
    /// (`seed ^ 0x1E51_0000 ^ patient_id`), so healthy anatomy sampling is
    /// untouched, and nominal scenario multipliers are exact 1.0s.
    pub fn scenario_volume(
        &self,
        patient_id: usize,
        scenario: &Scenario,
        pathology: Option<&PathologyConfig>,
    ) -> Volume {
        assert!(patient_id < self.config.n_patients, "patient {patient_id} out of cohort");
        let mut rng = self.patient_rng(patient_id);
        let _ = rng.gen::<f64>(); // consumed by scan_kind
        let mut anatomy = Anatomy::sample(&mut rng);
        if let Some(cfg) = pathology {
            let mut lrng = rand::rngs::StdRng::seed_from_u64(
                self.config.seed ^ 0x1E51_0000 ^ patient_id as u64,
            );
            anatomy.lesions = seed_lesions(&anatomy, cfg, &mut lrng);
        }
        let kind = self.scan_kind(patient_id);
        let (z0, z1) = kind.z_range();
        let slices = ((z1 - z0) * self.config.slices_per_unit_z).round().max(8.0) as usize;
        rasterize_scenario(
            &anatomy,
            &RasterConfig {
                size: self.config.slice_size,
                z_range: (z0, z1),
                slices,
                blur: self.config.blur,
                ..RasterConfig::default()
            },
            scenario,
            self.config.seed ^ 0xABCD,
            patient_id,
        )
    }

    /// Extracts every `stride`-th slice of every patient in `split`
    /// (raw HU slices — apply [`crate::preprocess`] before training).
    pub fn slices(&self, split: SplitKind, stride: usize) -> Vec<Slice2d> {
        assert!(stride >= 1);
        let mut out = Vec::new();
        for id in self.patients(split) {
            let vol = self.volume(id);
            for z in (0..vol.depth).step_by(stride) {
                out.push(vol.slice(z));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::Organ;

    fn tiny_cohort() -> SyntheticCtOrg {
        SyntheticCtOrg::new(SyntheticCtOrgConfig {
            n_patients: 20,
            slice_size: 48,
            slices_per_unit_z: 24.0,
            ..Default::default()
        })
    }

    #[test]
    fn splits_partition_the_cohort() {
        let ds = tiny_cohort();
        let train = ds.patients(SplitKind::Train);
        let val = ds.patients(SplitKind::Val);
        let test = ds.patients(SplitKind::Test);
        assert_eq!(train.len() + val.len() + test.len(), 20);
        assert_eq!(train.len(), 15);
        assert_eq!(val.len(), 3);
        assert_eq!(test.len(), 2);
        for id in &train {
            assert!(!val.contains(id) && !test.contains(id));
        }
    }

    #[test]
    fn volumes_are_deterministic() {
        let ds = tiny_cohort();
        let a = ds.volume(3);
        let b = ds.volume(3);
        assert_eq!(a.hu, b.hu);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn scan_kind_controls_depth() {
        let ds = tiny_cohort();
        for id in 0..20 {
            let vol = ds.volume(id);
            let kind = ds.scan_kind(id);
            let (z0, z1) = kind.z_range();
            let expect = ((z1 - z0) * 24.0).round().max(8.0) as usize;
            assert_eq!(vol.depth, expect, "patient {id} kind {kind:?}");
        }
    }

    #[test]
    fn chest_only_scans_have_no_bladder() {
        let ds = tiny_cohort();
        for id in 0..20 {
            if ds.scan_kind(id) == ScanKind::ChestOnly {
                let h = ds.volume(id).label_histogram();
                assert_eq!(h[Organ::Bladder.label() as usize], 0, "patient {id}");
                assert!(h[Organ::Lungs.label() as usize] > 0, "patient {id}");
            }
        }
    }

    #[test]
    fn brain_only_in_head_scans() {
        let ds = SyntheticCtOrg::new(SyntheticCtOrgConfig {
            n_patients: 60,
            slice_size: 48,
            slices_per_unit_z: 24.0,
            head_fraction: 0.10,
            ..Default::default()
        });
        let mut head_scans = 0;
        for id in 0..60 {
            let has_brain = ds.volume(id).label_histogram()[Organ::Brain.label() as usize] > 0;
            let is_head = ds.scan_kind(id) == ScanKind::TotalBodyWithHead;
            assert_eq!(has_brain, is_head, "patient {id}");
            head_scans += is_head as usize;
        }
        assert!(head_scans >= 1, "cohort draw produced no head scans");
    }

    #[test]
    fn slices_iterate_with_stride() {
        let ds = tiny_cohort();
        let all = ds.slices(SplitKind::Test, 1);
        let half = ds.slices(SplitKind::Test, 2);
        assert!(half.len() >= all.len() / 2);
        assert!(half.len() <= all.len() / 2 + ds.patients(SplitKind::Test).len());
    }

    #[test]
    #[should_panic(expected = "out of cohort")]
    fn volume_bounds_checked() {
        let ds = tiny_cohort();
        let _ = ds.volume(99);
    }

    #[test]
    fn nominal_scenario_volume_matches_plain_volume() {
        // volume() delegates to scenario_volume(); the healthy nominal path
        // must stay bit-identical (zoo caches key off these voxels).
        let ds = tiny_cohort();
        let plain = ds.volume(4);
        let nominal = ds.scenario_volume(4, &Scenario::nominal(), None);
        assert_eq!(plain.hu, nominal.hu);
        assert_eq!(plain.labels, nominal.labels);
        assert!(nominal.lesion.is_empty());
    }

    #[test]
    fn pathology_volumes_are_deterministic_and_lesion_bearing() {
        let ds = tiny_cohort();
        let cfg = PathologyConfig { min_lesions: 2, max_lesions: 3, ..Default::default() };
        let sc = Scenario { dose: 0.5, slice_thickness: 2, fov: 0.9 };
        let a = ds.scenario_volume(7, &sc, Some(&cfg));
        let b = ds.scenario_volume(7, &sc, Some(&cfg));
        assert_eq!(a.hu, b.hu);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.lesion, b.lesion);
        // At least one patient in the cohort rasterises lesion voxels.
        let total: u64 = (0..8)
            .map(|id| ds.scenario_volume(id, &Scenario::nominal(), Some(&cfg)).lesion_voxels())
            .sum();
        assert!(total > 0, "no lesion voxels across 8 patients");
    }

    #[test]
    fn pathology_keeps_healthy_label_geometry() {
        // Lesions are folded into organ labels: the label field with
        // pathology is identical to the healthy one (HU differs inside).
        let ds = tiny_cohort();
        let cfg = PathologyConfig { min_lesions: 3, max_lesions: 3, ..Default::default() };
        let healthy = ds.volume(0);
        let sick = ds.scenario_volume(0, &Scenario::nominal(), Some(&cfg));
        assert_eq!(healthy.labels, sick.labels);
        if sick.lesion_voxels() > 0 {
            assert_ne!(healthy.hu, sick.hu);
        }
    }
}
