//! # seneca-data
//!
//! A synthetic stand-in for the CT-ORG dataset (140 CT volumes with six
//! labeled organs) used by the SENECA paper. Real TCIA data cannot ship with
//! this reproduction, so [`phantom`] procedurally generates abdominal/chest
//! CT volumes whose *statistical structure* matches what the paper's methods
//! react to: organ pixel frequencies close to Table I (including the brain's
//! extreme under-representation), heavy class imbalance, and low-contrast
//! organ boundaries (soft tissue at 40–65 HU with partial-volume blur).
//!
//! Modules:
//! * [`volume`] — 3-D volumes (HU voxels + labels) and slice extraction;
//! * [`anatomy`] — per-patient parametric organ geometry;
//! * [`phantom`] — the rasteriser producing volumes from anatomy;
//! * [`dataset`] — the 140-patient synthetic cohort, deterministic per
//!   patient id, with train/val/test splits;
//! * [`preprocess`] — stage A of the workflow: downsampling, [-1, 1]
//!   rescaling, 1%/99% percentile saturation, brain-label removal;
//! * [`calibration`] — the Table III calibration-set samplers (random vs
//!   manually frequency-leveled);
//! * [`pathology`] — parametric lesions (liver tumors, lung nodules, renal
//!   cysts) injected inside host organs, labels folded into the organ mask;
//! * [`scenario`] — acquisition scenarios (dose / slice thickness / FOV)
//!   and the factorial grid driving the robustness experiment;
//! * [`stats`] — organ pixel-frequency accounting (Table I);
//! * [`nifti`] — minimal NIfTI-1 export so synthetic volumes open in
//!   standard medical viewers (CT-ORG's native format).

pub mod anatomy;
pub mod calibration;
pub mod dataset;
pub mod nifti;
pub mod pathology;
pub mod phantom;
pub mod preprocess;
pub mod scenario;
pub mod stats;
pub mod volume;

pub use dataset::{ScanKind, SplitKind, SyntheticCtOrg, SyntheticCtOrgConfig};
pub use volume::{Organ, Slice2d, Volume};
