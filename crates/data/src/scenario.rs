//! Acquisition scenarios: dose, slice thickness and field of view.
//!
//! The robustness suite evaluates every model on *distributions the
//! calibration set never saw*. A [`Scenario`] perturbs the acquisition, not
//! the model input pipeline: dose scales the rasteriser's HU noise (quarter
//! dose doubles sigma, the usual `1/sqrt(dose)` photon-statistics law), FOV
//! shrinks the reconstructed in-plane extent at the same matrix size, and
//! slice thickness merges adjacent axial slices (z partial-volume
//! averaging, with the label majority vote resolving ties to the lowest
//! label exactly like [`crate::preprocess::downsample`]).
//!
//! Scenarios apply **at rasterization**, before stage-A preprocessing, so
//! the FP32 baseline and every quantized deployment see bit-identical
//! inputs for a given `(anatomy, scenario, seed)` — the measured Dice gap
//! is attributable to quantization, never to input jitter.

use crate::anatomy::Anatomy;
use crate::phantom::{rasterize, RasterConfig};
use crate::preprocess::majority_label;
use crate::volume::Volume;
use serde::{Deserialize, Serialize};

/// One acquisition scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Relative tube current (1 = the nominal acquisition the training and
    /// calibration sets were drawn from). Noise sigma scales `1/sqrt(dose)`.
    pub dose: f32,
    /// Axial slices merged into one (1 = native thickness).
    pub slice_thickness: usize,
    /// In-plane field of view as a fraction of the full body frame
    /// (1 = full FOV; 0.8 reconstructs the central 80% at the same matrix).
    pub fov: f32,
}

impl Scenario {
    /// The nominal acquisition: full dose, native thickness, full FOV.
    /// Volumes rasterised under it are bit-identical to the healthy
    /// pipeline's output.
    pub fn nominal() -> Self {
        Self { dose: 1.0, slice_thickness: 1, fov: 1.0 }
    }

    /// Noise sigma multiplier implied by the dose (`1/sqrt(dose)`).
    pub fn noise_scale(&self) -> f32 {
        assert!(self.dose > 0.0, "dose must be positive");
        1.0 / self.dose.sqrt()
    }

    /// Compact scenario key, e.g. `d100_t1_f100` for the nominal scan.
    pub fn name(&self) -> String {
        format!(
            "d{:03}_t{}_f{:03}",
            (self.dose * 100.0).round() as u32,
            self.slice_thickness,
            (self.fov * 100.0).round() as u32
        )
    }
}

/// A full factorial grid over dose, slice thickness and FOV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioGrid {
    /// Relative doses to sweep (include 1.0 for the in-distribution corner).
    pub doses: Vec<f32>,
    /// Slice-merge factors to sweep.
    pub thicknesses: Vec<usize>,
    /// FOV fractions to sweep.
    pub fovs: Vec<f32>,
}

impl ScenarioGrid {
    /// The grid used by the recorded robustness experiment: 3 doses x
    /// 2 thicknesses x 2 FOVs, anchored at the nominal corner.
    pub fn paper_default() -> Self {
        Self { doses: vec![1.0, 0.5, 0.25], thicknesses: vec![1, 2], fovs: vec![1.0, 0.85] }
    }

    /// All scenarios in row-major (dose, thickness, fov) order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        assert!(
            !self.doses.is_empty() && !self.thicknesses.is_empty() && !self.fovs.is_empty(),
            "empty scenario grid axis"
        );
        let mut out =
            Vec::with_capacity(self.doses.len() * self.thicknesses.len() * self.fovs.len());
        for &dose in &self.doses {
            for &slice_thickness in &self.thicknesses {
                for &fov in &self.fovs {
                    out.push(Scenario { dose, slice_thickness, fov });
                }
            }
        }
        out
    }
}

/// Rasterises `anatomy` under a scenario. With [`Scenario::nominal`] this is
/// exactly [`rasterize`] with `base` — bit for bit.
pub fn rasterize_scenario(
    anatomy: &Anatomy,
    base: &RasterConfig,
    scenario: &Scenario,
    seed: u64,
    patient_id: usize,
) -> Volume {
    assert!(scenario.slice_thickness >= 1, "slice thickness must be >= 1");
    let cfg = RasterConfig {
        noise_scale: base.noise_scale * scenario.noise_scale(),
        fov: base.fov * scenario.fov,
        ..*base
    };
    let vol = rasterize(anatomy, &cfg, seed, patient_id);
    if scenario.slice_thickness == 1 {
        vol
    } else {
        apply_slice_thickness(&vol, scenario.slice_thickness)
    }
}

/// Merges groups of `t` adjacent axial slices: HU is averaged (z
/// partial-volume), labels take the per-voxel majority across the group
/// (ties to the lowest label), the lesion mask ORs. A trailing partial
/// group is kept and averaged over its actual members.
pub fn apply_slice_thickness(vol: &Volume, t: usize) -> Volume {
    assert!(t >= 1, "slice thickness must be >= 1");
    if t == 1 {
        return vol.clone();
    }
    let n = vol.slice_len();
    let depth = vol.depth.div_ceil(t);
    let mut out = Volume::air(vol.width, vol.height, depth, vol.patient_id);
    let has_lesions = !vol.lesion.is_empty();
    if has_lesions {
        out.lesion = vec![0u8; n * depth];
    }
    for zo in 0..depth {
        let z_first = zo * t;
        let z_last = (z_first + t).min(vol.depth);
        let inv = 1.0 / (z_last - z_first) as f32;
        for i in 0..n {
            let mut acc = 0.0f32;
            let mut counts = [0u16; 7];
            let mut lesion = 0u8;
            for z in z_first..z_last {
                let v = z * n + i;
                acc += vol.hu[v];
                let l = vol.labels[v];
                debug_assert!(l <= 6, "corrupted volume: label {l} out of range (0..=6)");
                counts[l as usize] += 1;
                if has_lesions && vol.lesion[v] != 0 {
                    lesion = 1;
                }
            }
            out.hu[zo * n + i] = acc * inv;
            out.labels[zo * n + i] = majority_label(&counts);
            if has_lesions {
                out.lesion[zo * n + i] = lesion;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathology::{seed_lesions, PathologyConfig};
    use rand::SeedableRng;

    fn anatomy(seed: u64) -> Anatomy {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Anatomy::sample(&mut rng)
    }

    fn base_cfg() -> RasterConfig {
        RasterConfig { size: 64, z_range: (0.0, 1.0), slices: 24, ..RasterConfig::default() }
    }

    #[test]
    fn nominal_scenario_is_bit_identical_to_plain_rasterization() {
        let a = anatomy(11);
        let plain = rasterize(&a, &base_cfg(), 42, 1);
        let nominal = rasterize_scenario(&a, &base_cfg(), &Scenario::nominal(), 42, 1);
        assert_eq!(plain.hu, nominal.hu);
        assert_eq!(plain.labels, nominal.labels);
    }

    #[test]
    fn scenario_rasterization_is_deterministic() {
        // Same (anatomy, scenario, seed) -> bit-identical volumes,
        // lesions included (extends rasterize_is_deterministic in phantom).
        let mut a = anatomy(12);
        let mut lrng = rand::rngs::StdRng::seed_from_u64(99);
        a.lesions = seed_lesions(&a, &PathologyConfig::default(), &mut lrng);
        let sc = Scenario { dose: 0.25, slice_thickness: 2, fov: 0.85 };
        let v1 = rasterize_scenario(&a, &base_cfg(), &sc, 7, 2);
        let v2 = rasterize_scenario(&a, &base_cfg(), &sc, 7, 2);
        assert_eq!(v1.hu, v2.hu);
        assert_eq!(v1.labels, v2.labels);
        assert_eq!(v1.lesion, v2.lesion);
    }

    #[test]
    fn low_dose_raises_noise() {
        let a = anatomy(13);
        let full = rasterize_scenario(&a, &base_cfg(), &Scenario::nominal(), 5, 0);
        let quarter = rasterize_scenario(
            &a,
            &base_cfg(),
            &Scenario { dose: 0.25, ..Scenario::nominal() },
            5,
            0,
        );
        let half = rasterize_scenario(
            &a,
            &base_cfg(),
            &Scenario { dose: 0.5, ..Scenario::nominal() },
            5,
            0,
        );
        // Same labels (noise never moves anatomy).
        assert_eq!(full.labels, quarter.labels);
        // Dose only rescales the (identically seeded) noise field, so the
        // voxelwise deviation from nominal grows like `noise_scale - 1`:
        // quarter dose deviates (2-1)/(sqrt2-1) = 2.41x more than half dose.
        let dev = |v: &Volume| {
            v.hu.iter().zip(&full.hu).map(|(a, b)| (a - b).abs()).sum::<f32>() / v.hu.len() as f32
        };
        let (dq, dh) = (dev(&quarter), dev(&half));
        assert!(dq > 0.0 && dh > 0.0, "dose change must perturb HU");
        assert!(dq > dh * 2.0, "quarter-dose deviation {dq} !> 2x half-dose {dh}");
        assert_eq!(Scenario { dose: 0.25, ..Scenario::nominal() }.noise_scale(), 2.0);
    }

    #[test]
    fn reduced_fov_zooms_into_the_body() {
        let a = anatomy(14);
        // Zooming into the centre makes the body fill more of the matrix:
        // strictly fewer air voxels on the mid slice, same matrix size.
        let sc = Scenario { fov: 0.6, ..Scenario::nominal() };
        let zoomed = rasterize_scenario(&a, &base_cfg(), &sc, 5, 0);
        let full = rasterize_scenario(&a, &base_cfg(), &Scenario::nominal(), 5, 0);
        let mid = zoomed.depth / 2;
        let air = |v: &Volume| {
            let s = mid * v.slice_len();
            v.hu[s..s + v.slice_len()].iter().filter(|&&h| h < -700.0).count()
        };
        let (az, af) = (air(&zoomed), air(&full));
        assert!(af > 0, "full-FOV mid slice must contain air");
        assert!(az < af, "zoomed air {az} !< full-FOV air {af}");
        // Zoom does not change the matrix size.
        assert_eq!(zoomed.width, full.width);
        assert_eq!(zoomed.depth, full.depth);
    }

    #[test]
    fn slice_thickness_merges_depth_and_averages_hu() {
        let a = anatomy(15);
        let native = rasterize_scenario(&a, &base_cfg(), &Scenario::nominal(), 9, 3);
        let thick = rasterize_scenario(
            &a,
            &base_cfg(),
            &Scenario { slice_thickness: 2, ..Scenario::nominal() },
            9,
            3,
        );
        assert_eq!(thick.depth, native.depth.div_ceil(2));
        // First merged voxel is the mean of the native pair.
        let expect = (native.hu[0] + native.hu[native.slice_len()]) / 2.0;
        assert!((thick.hu[0] - expect).abs() < 1e-5);
    }

    #[test]
    fn thickness_vote_ties_go_to_the_lowest_label() {
        let mut v = Volume::air(2, 1, 2, 0);
        v.labels = vec![5, 0, 3, 4];
        let t = apply_slice_thickness(&v, 2);
        assert_eq!(t.depth, 1);
        // Voxel 0: {5, 3} tie -> 3; voxel 1: {0, 4} tie -> 0.
        assert_eq!(t.labels, vec![3, 0]);
    }

    #[test]
    fn grid_enumerates_the_full_factorial() {
        let grid = ScenarioGrid::paper_default();
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 12);
        assert!(scenarios.contains(&Scenario::nominal()));
        // Names are unique keys.
        let names: std::collections::HashSet<String> = scenarios.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), scenarios.len());
        assert_eq!(Scenario::nominal().name(), "d100_t1_f100");
    }

    #[test]
    fn lesions_survive_the_scenario_pipeline() {
        let mut a = anatomy(16);
        let mut lrng = rand::rngs::StdRng::seed_from_u64(3);
        a.lesions = seed_lesions(
            &a,
            &PathologyConfig { min_lesions: 3, max_lesions: 3, ..Default::default() },
            &mut lrng,
        );
        let sc = Scenario { dose: 0.5, slice_thickness: 1, fov: 0.9 };
        let v = rasterize_scenario(&a, &base_cfg(), &sc, 21, 4);
        assert!(v.lesion_voxels() > 0, "no lesion voxel rasterised");
        // Lesion voxels are folded into organ labels, never a new label.
        // (Only guaranteed at native thickness — z-merging ORs the mask but
        // majority-votes the labels, so merged boundary voxels may differ.)
        for (i, &m) in v.lesion.iter().enumerate() {
            if m != 0 {
                assert!((1..=5).contains(&v.labels[i]), "lesion voxel label {}", v.labels[i]);
            }
        }
        // The mask survives z-merging too (OR semantics).
        let thick = apply_slice_thickness(&v, 2);
        assert!(thick.lesion_voxels() > 0);
        assert!(thick.lesion_voxels() <= v.lesion_voxels());
    }
}
