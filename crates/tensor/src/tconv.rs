//! 2x2 stride-2 transpose convolution (the SENECA decoder up-sampler).
//!
//! With kernel size equal to stride there is no output overlap: each output
//! pixel `(2h+ky, 2w+kx)` receives exactly one contribution per input
//! channel and belongs to exactly one kernel position `(ky, kx)`. That makes
//! the forward pass four independent 1x1 convolutions — lowered here to a
//! single GEMM per image (`[4*C_out, C_in] x [C_in, H*W]`, the input plane
//! already *is* the column matrix) with the stride-2 scatter fused into the
//! GEMM tile store (see [`crate::igemm`]), so no pre-scatter buffer is ever
//! materialized.

use crate::igemm::{igemm_tconv2x2, sgemm_tconv2x2};
use crate::shape::Shape4;
use crate::tensor::Tensor;
use rayon::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Per-thread scratch for [`tconv2x2_into`]: the `[4*C_out, C_in]`
    /// repacked weights and the kidx-replicated bias — reused across calls
    /// so steady-state execution stays allocation-free.
    static TCONV_WORK: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
    /// Per-thread scratch for [`qtconv2x2_i8_into`] (the unpacked INT8
    /// route): repacked weights and accumulator-scale bias.
    static QTCONV_I8_WORK: RefCell<(Vec<i8>, Vec<i32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Repacks `[C_in, C_out, 2, 2]` transpose-conv weights into the
/// `[4*C_out, C_in]` GEMM operand: row `co*4 + kidx` holds the `(ky, kx)`
/// tap of every input channel. The rows are **co-major** so that an
/// `MC = 32`-row GEMM block spans whole output planes — which is what lets
/// the scatter-fused tile store split the output race-free (see
/// [`crate::igemm`]). Shared by the f32 and INT8 paths (and the `seneca-ir`
/// weight-packing pass, which repacks once at model load). Row order only
/// permutes GEMM output rows, so the scattered result is unchanged.
pub fn repack_tconv_weights<T: Copy>(c_in: usize, c_out: usize, w: &[T], wk: &mut [T]) {
    assert_eq!(w.len(), c_in * c_out * 4, "weight size");
    assert!(wk.len() >= 4 * c_out * c_in, "repack buffer size");
    for co in 0..c_out {
        for kidx in 0..4 {
            let row = &mut wk[(co * 4 + kidx) * c_in..][..c_in];
            for (ci, v) in row.iter_mut().enumerate() {
                *v = w[(ci * c_out + co) * 4 + kidx];
            }
        }
    }
}

/// Stride-2 scatter of a materialized `[4*C_out, H*W]` pre-scatter GEMM
/// output `y` (co-major rows, matching [`repack_tconv_weights`]) into one
/// `[C_out, 2H, 2W]` image plane: position `(2iy+ky, 2ix+kx)` of plane `co`
/// comes from GEMM row `co*4 + kidx`, element `iy*W + ix`. The hot forward
/// paths fuse this store into the GEMM tiles; this standalone version is the
/// materialized reference the fused kernels are tested against. Parallel
/// over output planes; writes are disjoint. Every output element is written
/// exactly once, so `out` may hold stale data.
pub fn scatter_tconv2x2<T: Copy + Send + Sync>(
    c_out: usize,
    h: usize,
    w: usize,
    y: &[T],
    out: &mut [T],
) {
    let hw = h * w;
    let (oh, ow) = (2 * h, 2 * w);
    assert_eq!(y.len(), 4 * c_out * hw, "pre-scatter size");
    assert_eq!(out.len(), c_out * oh * ow, "output plane size");
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(co, y_plane)| {
        for kidx in 0..4 {
            let (ky, kx) = (kidx / 2, kidx % 2);
            let src = &y[(co * 4 + kidx) * hw..][..hw];
            for iy in 0..h {
                let srow = &src[iy * w..(iy + 1) * w];
                let drow = &mut y_plane[(2 * iy + ky) * ow..][..ow];
                for (d, &v) in drow[kx..].iter_mut().step_by(2).zip(srow) {
                    *d = v;
                }
            }
        }
    });
}

/// Forward transpose convolution.
///
/// * `x`: `[N, C_in, H, W]`
/// * `w`: `[C_in, C_out, 2, 2]` (PyTorch `ConvTranspose2d` weight layout)
/// * `b`: length `C_out` (empty slice skips the bias)
///
/// Returns `[N, C_out, 2H, 2W]`.
pub fn tconv2x2(x: &Tensor, w: &Tensor, b: &[f32]) -> Tensor {
    let xs = x.shape();
    let mut out = Tensor::zeros(Shape4::new(xs.n, w.shape().c, xs.h * 2, xs.w * 2));
    tconv2x2_into(xs, x.data(), w, b, out.data_mut());
    out
}

/// Transpose convolution into a caller-owned output slice ([`tconv2x2`]
/// semantics). The output buffer may hold stale data: every element is
/// overwritten by the scatter-fused GEMM store. Returns the output shape.
pub fn tconv2x2_into(xs: Shape4, x: &[f32], w: &Tensor, b: &[f32], out: &mut [f32]) -> Shape4 {
    let ws = w.shape();
    assert_eq!(x.len(), xs.len(), "input buffer/shape mismatch");
    assert_eq!(ws.n, xs.c, "C_in mismatch");
    assert_eq!((ws.h, ws.w), (2, 2), "kernel must be 2x2");
    let c_out = ws.c;
    assert!(b.is_empty() || b.len() == c_out);

    let out_shape = Shape4::new(xs.n, c_out, xs.h * 2, xs.w * 2);
    assert_eq!(out.len(), out_shape.len(), "output buffer size");
    let (h, wd) = (xs.h, xs.w);

    TCONV_WORK.with(|cell| {
        let (wk, bias4) = &mut *cell.borrow_mut();

        let wk_len = 4 * c_out * xs.c;
        if wk.len() < wk_len {
            wk.resize(wk_len, 0.0);
        }
        repack_tconv_weights(xs.c, c_out, w.data(), wk);

        // Bias replicated per kernel position so the fused store can index
        // it by GEMM row; each output pixel gets it exactly once.
        if !b.is_empty() {
            if bias4.len() < 4 * c_out {
                bias4.resize(4 * c_out, 0.0);
            }
            for (i, v) in bias4[..4 * c_out].iter_mut().enumerate() {
                *v = b[i / 4];
            }
        }
        let bias4 = if b.is_empty() { &[][..] } else { &bias4[..4 * c_out] };

        for n in 0..xs.n {
            let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
            let out_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
            // The `[C_in, H*W]` input plane is already the column matrix.
            sgemm_tconv2x2(c_out, xs.c, &wk[..wk_len], x_n, h, wd, bias4, out_n);
        }
    });
    out_shape
}

/// Quantized (INT8) transpose convolution of a whole batch into a
/// caller-owned output slice, repacking the `[C_in, C_out, 2, 2]` weights
/// per call (thread-local scratch). `bias` is at accumulator scale, length
/// `C_out` (or empty). The GEMM, requantise-clamp epilogue, and stride-2
/// scatter are all one fused pass. Returns the output shape.
///
/// Shared by `seneca-quant`'s eager graph executor and the IR executor's
/// unpacked arm; the packed arms in `seneca-ir` call the
/// [`crate::igemm::igemm_tconv2x2_packed`] family directly.
#[allow(clippy::too_many_arguments)]
pub fn qtconv2x2_i8_into(
    xs: Shape4,
    x: &[i8],
    w: &[i8],
    c_out: usize,
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) -> Shape4 {
    assert_eq!(x.len(), xs.len(), "input buffer/shape mismatch");
    assert_eq!(w.len(), xs.c * c_out * 4, "weight size");
    let out_shape = Shape4::new(xs.n, c_out, xs.h * 2, xs.w * 2);
    assert_eq!(out.len(), out_shape.len(), "output buffer size");

    QTCONV_I8_WORK.with(|cell| {
        let (wk, bias4) = &mut *cell.borrow_mut();
        let wk_len = 4 * c_out * xs.c;
        if wk.len() < wk_len {
            wk.resize(wk_len, 0);
        }
        repack_tconv_weights(xs.c, c_out, w, wk);
        if bias4.len() < 4 * c_out {
            bias4.resize(4 * c_out, 0);
        }
        for (i, v) in bias4[..4 * c_out].iter_mut().enumerate() {
            *v = bias.get(i / 4).copied().unwrap_or(0);
        }
        for n in 0..xs.n {
            let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
            let out_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
            igemm_tconv2x2(
                c_out,
                xs.c,
                &wk[..wk_len],
                x_n,
                xs.h,
                xs.w,
                &bias4[..4 * c_out],
                shift,
                relu,
                out_n,
            );
        }
    });
    out_shape
}

/// Gradients produced by [`tconv2x2_backward`].
#[derive(Debug, Clone)]
pub struct TconvGrads {
    /// Gradient w.r.t. the input.
    pub dx: Tensor,
    /// Gradient w.r.t. the weights.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias.
    pub db: Vec<f32>,
}

/// Backward pass of [`tconv2x2`].
pub fn tconv2x2_backward(x: &Tensor, w: &Tensor, dy: &Tensor) -> TconvGrads {
    let xs = x.shape();
    let ws = w.shape();
    let ys = dy.shape();
    let c_out = ws.c;
    assert_eq!(ys.c, c_out);
    assert_eq!((ys.h, ys.w), (xs.h * 2, xs.w * 2));

    let mut dx = Tensor::zeros(xs);
    let mut dw = Tensor::zeros(ws);
    let mut db = vec![0.0f32; c_out];
    let (h, wd) = (xs.h, xs.w);
    let ow = ys.w;

    // db
    for n in 0..ys.n {
        for (co, dbc) in db.iter_mut().enumerate() {
            let plane = &dy.data()[(n * c_out + co) * ys.hw()..(n * c_out + co + 1) * ys.hw()];
            *dbc += plane.iter().sum::<f32>();
        }
    }

    // dx[n,ci,iy,ix] = Σ_co Σ_k dy[n,co,2iy+ky,2ix+kx] * w[ci,co,ky,kx]
    let w_data = w.data();
    let dy_data = dy.data();
    dx.data_mut().par_chunks_mut(h * wd).enumerate().for_each(|(plane_idx, dx_plane)| {
        let n = plane_idx / xs.c;
        let ci = plane_idx % xs.c;
        for co in 0..c_out {
            let dy_plane = &dy_data[(n * c_out + co) * ys.hw()..(n * c_out + co + 1) * ys.hw()];
            let w_base = (ci * c_out + co) * 4;
            let (w00, w01, w10, w11) =
                (w_data[w_base], w_data[w_base + 1], w_data[w_base + 2], w_data[w_base + 3]);
            for iy in 0..h {
                let oy = iy * 2;
                for ix in 0..wd {
                    let ox = ix * 2;
                    dx_plane[iy * wd + ix] += dy_plane[oy * ow + ox] * w00
                        + dy_plane[oy * ow + ox + 1] * w01
                        + dy_plane[(oy + 1) * ow + ox] * w10
                        + dy_plane[(oy + 1) * ow + ox + 1] * w11;
                }
            }
        }
    });

    // dw[ci,co,ky,kx] = Σ_n,iy,ix x[n,ci,iy,ix] * dy[n,co,2iy+ky,2ix+kx]
    let x_data = x.data();
    dw.data_mut().par_chunks_mut(c_out * 4).enumerate().for_each(|(ci, dw_ci)| {
        for n in 0..xs.n {
            let x_plane = &x_data[(n * xs.c + ci) * h * wd..(n * xs.c + ci + 1) * h * wd];
            for co in 0..c_out {
                let dy_plane = &dy_data[(n * c_out + co) * ys.hw()..(n * c_out + co + 1) * ys.hw()];
                let acc = &mut dw_ci[co * 4..(co + 1) * 4];
                for iy in 0..h {
                    let oy = iy * 2;
                    for ix in 0..wd {
                        let ox = ix * 2;
                        let xv = x_plane[iy * wd + ix];
                        acc[0] += xv * dy_plane[oy * ow + ox];
                        acc[1] += xv * dy_plane[oy * ow + ox + 1];
                        acc[2] += xv * dy_plane[(oy + 1) * ow + ox];
                        acc[3] += xv * dy_plane[(oy + 1) * ow + ox + 1];
                    }
                }
            }
        }
    });

    TconvGrads { dx, dw, db }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(shape: Shape4, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn forward_doubles_spatial_dims() {
        let x = rand_tensor(Shape4::new(2, 3, 4, 5), 1);
        let w = rand_tensor(Shape4::new(3, 6, 2, 2), 2);
        let y = tconv2x2(&x, &w, &[]);
        assert_eq!(y.shape(), Shape4::new(2, 6, 8, 10));
    }

    #[test]
    fn forward_single_pixel_broadcasts_kernel() {
        // One input pixel -> the kernel replicated in the output block.
        let mut x = Tensor::zeros(Shape4::new(1, 1, 2, 2));
        *x.at_mut(0, 0, 1, 0) = 2.0;
        let w = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let y = tconv2x2(&x, &w, &[]);
        assert_eq!(y.at(0, 0, 2, 0), 2.0);
        assert_eq!(y.at(0, 0, 2, 1), 4.0);
        assert_eq!(y.at(0, 0, 3, 0), 6.0);
        assert_eq!(y.at(0, 0, 3, 1), 8.0);
        assert_eq!(y.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn bias_is_added_once_per_pixel() {
        let x = Tensor::zeros(Shape4::new(1, 2, 3, 3));
        let w = rand_tensor(Shape4::new(2, 4, 2, 2), 3);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let y = tconv2x2(&x, &w, &b);
        for co in 0..4 {
            for hh in 0..6 {
                for ww in 0..6 {
                    assert_eq!(y.at(0, co, hh, ww), b[co]);
                }
            }
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let x = rand_tensor(Shape4::new(1, 2, 3, 3), 4);
        let w = rand_tensor(Shape4::new(2, 3, 2, 2), 5);
        let g = rand_tensor(Shape4::new(1, 3, 6, 6), 6);
        let loss = |x: &Tensor, w: &Tensor| -> f32 {
            tconv2x2(x, w, &[]).data().iter().zip(g.data()).map(|(a, b)| a * b).sum()
        };
        let grads = tconv2x2_backward(&x, &w, &g);
        let eps = 1e-3;
        for &i in &[0usize, 5, 11, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - grads.dx.data()[i]).abs() < 2e-2);
        }
        for &i in &[0usize, 7, 13, 23] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - grads.dw.data()[i]).abs() < 2e-2);
        }
    }

    #[test]
    fn db_sums_upstream_gradient() {
        let x = rand_tensor(Shape4::new(2, 1, 2, 2), 7);
        let w = rand_tensor(Shape4::new(1, 2, 2, 2), 8);
        let dy = Tensor::full(Shape4::new(2, 2, 4, 4), 1.0);
        let grads = tconv2x2_backward(&x, &w, &dy);
        assert_eq!(grads.db, vec![32.0, 32.0]);
    }
}
